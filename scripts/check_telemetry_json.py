#!/usr/bin/env python3
"""Validate apexc telemetry artifacts against their schemas.

Usage:
    check_telemetry_json.py trace   out_trace.json
    check_telemetry_json.py metrics out_metrics.json

`trace` checks a Chrome trace-event file (--trace): the envelope, and
that every event is either thread_name metadata ("M") or a complete
span ("X") with non-negative timestamps and a depth argument.

`metrics` checks a registry dump (--metrics-out): section layout,
name-sorted entries, and histogram invariants (ascending bounds, one
overflow bucket, bucket counts summing to the observation count).

Exit code 0 when the file validates, 1 with a reason on stderr when
it does not.  Stdlib only.
"""

import json
import sys


class SchemaError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise SchemaError(message)


def check_sorted_names(entries, section):
    names = [e.get("name") for e in entries]
    for n in names:
        require(isinstance(n, str) and n, f"{section}: unnamed entry")
    require(names == sorted(names), f"{section}: not sorted by name")
    require(len(names) == len(set(names)),
            f"{section}: duplicate names")


def check_trace(doc):
    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("displayTimeUnit") == "ms",
            "displayTimeUnit must be 'ms'")
    events = doc.get("traceEvents")
    require(isinstance(events, list), "traceEvents must be a list")
    spans = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        require(isinstance(ev, dict), f"{where}: not an object")
        ph = ev.get("ph")
        require(ph in ("X", "M"), f"{where}: ph must be X or M")
        require(isinstance(ev.get("pid"), int), f"{where}: bad pid")
        require(isinstance(ev.get("tid"), int), f"{where}: bad tid")
        args = ev.get("args")
        require(isinstance(args, dict), f"{where}: bad args")
        if ph == "M":
            require(ev.get("name") == "thread_name",
                    f"{where}: metadata must be thread_name")
            require(isinstance(args.get("name"), str),
                    f"{where}: thread_name needs args.name")
            continue
        spans += 1
        require(isinstance(ev.get("name"), str) and ev["name"],
                f"{where}: span needs a name")
        require(ev.get("cat") == "apex", f"{where}: cat must be apex")
        for field in ("ts", "dur"):
            v = ev.get(field)
            require(isinstance(v, (int, float)) and v >= 0,
                    f"{where}: {field} must be a non-negative number")
        depth = args.get("depth")
        require(isinstance(depth, int) and depth >= 0,
                f"{where}: args.depth must be a non-negative int")
    require(spans > 0, "trace contains no span events")


# Resource-exhaustion metrics (DESIGN.md Sec. 7h).  The apex.resource
# namespace is a closed set: a new counter there must be registered
# here (and documented) or the metrics artifact fails validation.
RESOURCE_COUNTERS = {
    "apex.resource.accept_exhausted",
    "apex.resource.metrics_flush_failures",
    "apex.resource.sweep_durability_failures",
}


def check_resource_metrics(doc):
    for c in doc["counters"]:
        name = c.get("name", "")
        if name.startswith("apex.resource."):
            require(name in RESOURCE_COUNTERS,
                    f"counter {name}: unknown apex.resource.* metric "
                    "(register it in RESOURCE_COUNTERS)")
    for g in doc["gauges"]:
        if g.get("name") == "apex.cache.disk_disabled":
            require(g.get("value") in (0, 1, 0.0, 1.0),
                    "gauge apex.cache.disk_disabled: must be 0 or 1")


def check_metrics(doc):
    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("apex_metrics") == 1,
            "apex_metrics schema marker missing")
    for section in ("counters", "gauges", "histograms"):
        entries = doc.get(section)
        require(isinstance(entries, list),
                f"{section} must be a list")
        check_sorted_names(entries, section)
    for c in doc["counters"]:
        require(isinstance(c.get("value"), int),
                f"counter {c.get('name')}: value must be an int")
    for g in doc["gauges"]:
        require(isinstance(g.get("value"), (int, float)),
                f"gauge {g.get('name')}: value must be a number")
    for h in doc["histograms"]:
        name = h.get("name")
        bounds = h.get("bounds")
        counts = h.get("counts")
        require(isinstance(bounds, list) and bounds,
                f"histogram {name}: bounds must be non-empty")
        require(bounds == sorted(bounds) and
                len(bounds) == len(set(bounds)),
                f"histogram {name}: bounds must be ascending")
        require(isinstance(counts, list) and
                len(counts) == len(bounds) + 1,
                f"histogram {name}: need len(bounds)+1 buckets "
                "(last is overflow)")
        require(all(isinstance(c, int) and c >= 0 for c in counts),
                f"histogram {name}: bucket counts must be "
                "non-negative ints")
        require(isinstance(h.get("sum"), (int, float)),
                f"histogram {name}: sum must be a number")
        require(h.get("count") == sum(counts),
                f"histogram {name}: count != sum of buckets")
    check_resource_metrics(doc)


def main(argv):
    if len(argv) != 3 or argv[1] not in ("trace", "metrics"):
        print(__doc__.strip(), file=sys.stderr)
        return 1
    kind, path = argv[1], argv[2]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    try:
        (check_trace if kind == "trace" else check_metrics)(doc)
    except SchemaError as e:
        print(f"{path}: schema violation: {e}", file=sys.stderr)
        return 1
    print(f"{path}: valid {kind} artifact")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
