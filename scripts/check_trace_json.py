#!/usr/bin/env python3
"""Validate request-scoped observability artifacts (DESIGN.md Sec. 7i).

Usage:
    check_trace_json.py merged   out.json
    check_trace_json.py statusz  statusz.json
    check_trace_json.py eventlog daemon-events.jsonl

`merged` checks the multi-process Chrome-trace file written by
`apexc client sweep --trace`: one process_name metadata lane per
process, the client / apexd / apexd workers lanes all present and
populated, every span carrying the same 16-hex trace_id, and the
per-process dropped-span counts in otherData.

`statusz` checks the JSON printed by `apexc client top --json`: the
schema marker, the sampling interval, and per-sample field types plus
monotonicity of timestamps and cumulative counters.

`eventlog` checks a structured log file (`apexd --log-out`): every
line is one JSON object with ts_ms / level / component / message, and
trace_id (when present) is a 16-hex request id.

Exit code 0 when the file validates, 1 with a reason on stderr when
it does not.  Stdlib only.
"""

import json
import re
import sys


class SchemaError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise SchemaError(message)


TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")

# The lanes `apexc client sweep --trace` emits.  The workers lane is
# always present; it only holds spans when the daemon ran the sweep
# with a worker pool (--jobs > 1), which is how CI runs it.
REQUIRED_LANES = {"client", "apexd", "apexd workers"}


def check_merged(doc):
    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("displayTimeUnit") == "ms",
            "displayTimeUnit must be 'ms'")
    events = doc.get("traceEvents")
    require(isinstance(events, list), "traceEvents must be a list")

    lanes = {}  # pid -> process name
    spans_per_pid = {}
    trace_ids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        require(isinstance(ev, dict), f"{where}: not an object")
        ph = ev.get("ph")
        require(ph in ("X", "M"), f"{where}: ph must be X or M")
        require(isinstance(ev.get("pid"), int), f"{where}: bad pid")
        require(isinstance(ev.get("tid"), int), f"{where}: bad tid")
        args = ev.get("args")
        require(isinstance(args, dict), f"{where}: bad args")
        if ph == "M":
            name = ev.get("name")
            require(name in ("process_name", "thread_name"),
                    f"{where}: metadata must be process_name or "
                    "thread_name")
            require(isinstance(args.get("name"), str) and args["name"],
                    f"{where}: {name} needs args.name")
            if name == "process_name":
                require(ev["pid"] not in lanes,
                        f"{where}: duplicate process_name for pid "
                        f"{ev['pid']}")
                lanes[ev["pid"]] = args["name"]
            continue
        require(isinstance(ev.get("name"), str) and ev["name"],
                f"{where}: span needs a name")
        require(ev.get("cat") == "apex", f"{where}: cat must be apex")
        for field in ("ts", "dur"):
            v = ev.get(field)
            require(isinstance(v, (int, float)) and v >= 0,
                    f"{where}: {field} must be a non-negative number")
        tid = args.get("trace_id")
        require(isinstance(tid, str) and TRACE_ID_RE.match(tid),
                f"{where}: span needs a 16-hex args.trace_id")
        trace_ids.add(tid)
        spans_per_pid[ev["pid"]] = spans_per_pid.get(ev["pid"], 0) + 1

    names = set(lanes.values())
    require(REQUIRED_LANES <= names,
            f"missing process lanes: {sorted(REQUIRED_LANES - names)}")
    require(len(lanes) == len(names), "duplicate process lane names")
    for pid in spans_per_pid:
        require(pid in lanes,
                f"spans under pid {pid} with no process_name lane")
    for pid, name in lanes.items():
        require(spans_per_pid.get(pid, 0) > 0,
                f"lane '{name}' (pid {pid}) contains no spans")
    # One file = one request: every span shares its trace id.
    require(len(trace_ids) == 1,
            f"expected exactly one trace_id, saw {len(trace_ids)}")

    dropped = doc.get("otherData", {}).get("dropped")
    require(isinstance(dropped, dict),
            "otherData.dropped must map process names to span loss")
    require(set(dropped) == names,
            "otherData.dropped keys must match the process lanes")
    for name, count in dropped.items():
        require(isinstance(count, int) and count >= 0,
                f"otherData.dropped['{name}'] must be a "
                "non-negative int")


# Cumulative counters in a status snapshot: totals since daemon
# start, so they may never decrease across the ring.
MONOTONIC_FIELDS = (
    "accepted", "rejected", "coalesced", "sweeps",
    "cache_hits", "cache_misses", "worker_restarts", "trace_dropped",
    "mined_patterns", "mine_embeddings", "mine_pruned",
)
GAUGE_FIELDS = (
    "sessions", "queue_depth", "active_sweeps", "inflight_bytes",
)
LATENCY_FIELDS = ("request_p50_ms", "request_p99_ms")


def check_statusz(doc):
    require(isinstance(doc, dict), "top level must be an object")
    require(doc.get("apex_statusz") == 1,
            "apex_statusz schema marker missing")
    interval = doc.get("interval_ms")
    require(isinstance(interval, (int, float)) and interval > 0,
            "interval_ms must be a positive number")
    samples = doc.get("samples")
    require(isinstance(samples, list) and samples,
            "samples must be a non-empty list")
    prev = None
    for i, s in enumerate(samples):
        where = f"samples[{i}]"
        require(isinstance(s, dict), f"{where}: not an object")
        require(isinstance(s.get("ts_ms"), (int, float)),
                f"{where}: ts_ms must be a number")
        for field in MONOTONIC_FIELDS + GAUGE_FIELDS:
            v = s.get(field)
            require(isinstance(v, int) and v >= 0,
                    f"{where}: {field} must be a non-negative int")
        for field in LATENCY_FIELDS:
            v = s.get(field)
            require(isinstance(v, (int, float)) and v >= 0,
                    f"{where}: {field} must be a non-negative number")
        if prev is not None:
            require(s["ts_ms"] >= prev["ts_ms"],
                    f"{where}: ts_ms went backwards")
            for field in MONOTONIC_FIELDS:
                require(s[field] >= prev[field],
                        f"{where}: cumulative {field} decreased")
        prev = s


LOG_LEVELS = {"debug", "info", "warn", "error"}


def check_eventlog(path):
    lines = 0
    with open(path, "r", encoding="utf-8") as f:
        for n, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            where = f"line {n}"
            try:
                ev = json.loads(raw)
            except json.JSONDecodeError as e:
                raise SchemaError(f"{where}: not JSON: {e}")
            require(isinstance(ev, dict), f"{where}: not an object")
            require(isinstance(ev.get("ts_ms"), int),
                    f"{where}: ts_ms must be an int")
            require(ev.get("level") in LOG_LEVELS,
                    f"{where}: bad level {ev.get('level')!r}")
            require(isinstance(ev.get("component"), str) and
                    ev["component"],
                    f"{where}: component must be a non-empty string")
            require(isinstance(ev.get("message"), str),
                    f"{where}: message must be a string")
            if "trace_id" in ev:
                require(isinstance(ev["trace_id"], str) and
                        TRACE_ID_RE.match(ev["trace_id"]),
                        f"{where}: trace_id must be 16 hex digits")
            lines += 1
    return lines


def main(argv):
    if len(argv) != 3 or argv[1] not in ("merged", "statusz",
                                         "eventlog"):
        print(__doc__.strip(), file=sys.stderr)
        return 1
    kind, path = argv[1], argv[2]
    try:
        if kind == "eventlog":
            lines = check_eventlog(path)
            print(f"{path}: valid event log ({lines} line(s))")
            return 0
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        (check_merged if kind == "merged" else check_statusz)(doc)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    except SchemaError as e:
        print(f"{path}: schema violation: {e}", file=sys.stderr)
        return 1
    print(f"{path}: valid {kind} artifact")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
