#!/usr/bin/env python3
"""Perf-smoke gate for the combinatorial kernels.

Compares a fresh `bench_micro_algorithms --kernels` run against the
checked-in BENCH_kernels.json baseline.  The instances are seeded and
the branch-and-bound is deterministic, so `apex.clique.nodes` (the
`nodes` field) is byte-stable across machines: a change in node count
means the search itself changed, not the hardware.

Failure conditions:
  * any clique row expands more than 2x the baseline's node count
    (the pruning bound regressed);
  * the largest clique row's weak-bound/coloring-bound node ratio
    falls below 5x (the headline reduction claim);
  * any row reports match:false (optimized and reference kernels
    disagreed — a determinism-contract break).

Usage: check_kernel_perf.py CURRENT.json BASELINE.json
"""

import json
import sys

NODE_REGRESSION_FACTOR = 2.0
MIN_CLIQUE_RATIO = 5.0


def load_rows(path):
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    current = load_rows(sys.argv[1])
    baseline = load_rows(sys.argv[2])
    failures = []

    for row in current:
        if not row.get("match", True):
            failures.append(
                f"{row['kernel']} n={row['n']}: optimized and "
                "reference kernels disagree (match:false)")

    base_clique = {r["n"]: r for r in baseline
                   if r["kernel"] == "clique"}
    cur_clique = [r for r in current if r["kernel"] == "clique"]
    if not cur_clique:
        failures.append("no clique rows in current output")
    for row in cur_clique:
        base = base_clique.get(row["n"])
        if base is None:
            continue
        limit = NODE_REGRESSION_FACTOR * base["nodes"]
        if row["nodes"] > limit:
            failures.append(
                f"clique n={row['n']}: {row['nodes']} nodes "
                f"expanded vs baseline {base['nodes']} "
                f"(> {NODE_REGRESSION_FACTOR}x)")

    if cur_clique:
        largest = max(cur_clique, key=lambda r: r["n"])
        if largest["ratio"] < MIN_CLIQUE_RATIO:
            failures.append(
                f"clique n={largest['n']}: weak/coloring node ratio "
                f"{largest['ratio']:.2f} < {MIN_CLIQUE_RATIO}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        sys.exit(1)
    print(f"kernel perf smoke OK ({len(current)} rows)")


if __name__ == "__main__":
    main()
