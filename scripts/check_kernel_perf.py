#!/usr/bin/env python3
"""Perf-smoke gate for the combinatorial kernels.

Compares a fresh `bench_micro_algorithms --kernels` run against the
checked-in BENCH_kernels.json baseline.  The instances are seeded and
the branch-and-bound is deterministic, so `apex.clique.nodes` (the
`nodes` field) is byte-stable across machines: a change in node count
means the search itself changed, not the hardware.

Also gates `bench_micro_algorithms --miner` rows (one per paper app,
diffed against BENCH_miner.json): the DFS-code engine must produce the
byte-identical pattern list (`match`), the same pattern count as the
baseline, and at least MIN_MINER_ISO_FACTOR fewer full
isomorphism-matcher invocations than the reference growth miner — the
headline claim of the incremental-embedding rework.

Failure conditions:
  * any clique row expands more than 2x the baseline's node count
    (the pruning bound regressed);
  * the largest clique row's weak-bound/coloring-bound node ratio
    falls below 5x (the headline reduction claim);
  * any miner row whose pattern count drifts from the baseline or
    whose matcher-call reduction falls below MIN_MINER_ISO_FACTOR;
  * any row reports match:false (optimized and reference kernels
    disagreed — a determinism-contract break).

Usage: check_kernel_perf.py CURRENT.json BASELINE.json
"""

import json
import sys

NODE_REGRESSION_FACTOR = 2.0
MIN_CLIQUE_RATIO = 5.0
MIN_MINER_ISO_FACTOR = 3.0


def load_rows(path):
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    current = load_rows(sys.argv[1])
    baseline = load_rows(sys.argv[2])
    failures = []

    for row in current:
        if not row.get("match", True):
            tag = row.get("app", row.get("n"))
            failures.append(
                f"{row['kernel']} {tag}: optimized and "
                "reference kernels disagree (match:false)")

    # Miner rows (from --miner runs).  Counters are deterministic per
    # (app, options), so pattern-count drift means the search changed;
    # the iso-call factor is the incremental-embedding headline.
    base_miner = {r["app"]: r for r in baseline
                  if r["kernel"] == "miner"}
    cur_miner = [r for r in current if r["kernel"] == "miner"]
    if base_miner and not cur_miner:
        failures.append("no miner rows in current output")
    for row in cur_miner:
        base = base_miner.get(row["app"])
        if base is not None and row["patterns"] != base["patterns"]:
            failures.append(
                f"miner {row['app']}: {row['patterns']} patterns vs "
                f"baseline {base['patterns']} (search changed)")
        if row["iso_calls"] * MIN_MINER_ISO_FACTOR > \
                row["iso_calls_ref"]:
            failures.append(
                f"miner {row['app']}: {row['iso_calls']} matcher "
                f"calls vs reference {row['iso_calls_ref']} "
                f"(< {MIN_MINER_ISO_FACTOR}x reduction)")

    base_clique = {r["n"]: r for r in baseline
                   if r["kernel"] == "clique"}
    cur_clique = [r for r in current if r["kernel"] == "clique"]
    if base_clique and not cur_clique:
        failures.append("no clique rows in current output")
    for row in cur_clique:
        base = base_clique.get(row["n"])
        if base is None:
            continue
        limit = NODE_REGRESSION_FACTOR * base["nodes"]
        if row["nodes"] > limit:
            failures.append(
                f"clique n={row['n']}: {row['nodes']} nodes "
                f"expanded vs baseline {base['nodes']} "
                f"(> {NODE_REGRESSION_FACTOR}x)")

    if cur_clique:
        largest = max(cur_clique, key=lambda r: r["n"])
        if largest["ratio"] < MIN_CLIQUE_RATIO:
            failures.append(
                f"clique n={largest['n']}: weak/coloring node ratio "
                f"{largest['ratio']:.2f} < {MIN_CLIQUE_RATIO}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        sys.exit(1)
    print(f"kernel perf smoke OK ({len(current)} rows)")


if __name__ == "__main__":
    main()
