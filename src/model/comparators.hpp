#ifndef APEX_MODEL_COMPARATORS_H_
#define APEX_MODEL_COMPARATORS_H_

#include <string>

/**
 * @file
 * Analytical comparator platforms for Fig. 17 / Fig. 18.
 *
 * The paper compares its CGRAs against a Virtex Ultrascale+ VU9P FPGA
 * (Clockwork-compiled), a Catapult-HLS ASIC, and the Simba ML
 * accelerator.  None of those toolchains/hardware are available here,
 * so each platform is modeled analytically, anchored to the *ratios*
 * the paper reports (CGRA-IP 38x-159x more energy-efficient than the
 * FPGA; ASIC below the CGRA; Simba ~16x more energy-efficient than
 * CGRA-ML on a ResNet layer).  See DESIGN.md substitution table.
 */

namespace apex::model {

/** Energy/runtime estimate of an application on one platform. */
struct PlatformResult {
    std::string platform; ///< "fpga", "asic", "simba".
    double energy_uj;     ///< Total energy, micro-joules.
    double runtime_ms;    ///< End-to-end runtime, milliseconds.
};

/**
 * FPGA (Virtex US+ VU9P) estimate derived from a CGRA measurement.
 *
 * An FPGA implements the same word-level datapath in bit-level LUT
 * fabric: roughly 40-130x the energy per op (lookup + long generic
 * routing) and a ~3x slower clock.  @p op_events is the number of
 * word-level compute events, @p cgra_runtime_ms the baseline CGRA
 * runtime.
 */
PlatformResult fpgaEstimate(double op_events, double cgra_runtime_ms);

/**
 * ASIC (Catapult HLS + Design Compiler) estimate: fixed-function
 * datapath, no configuration or interconnect overhead — energy is the
 * raw functional-unit energy of the application's ops, runtime matches
 * the CGRA (paper: "runtimes comparable to an ASIC").
 */
PlatformResult asicEstimate(double raw_compute_energy_uj,
                            double cgra_runtime_ms);

/**
 * Simba estimate for an ML layer: a dedicated MAC-array accelerator,
 * anchored at ~16x lower energy than CGRA-ML on ResNet (Sec. 5.4.2).
 */
PlatformResult simbaEstimate(double cgra_ml_energy_uj,
                             double cgra_ml_runtime_ms);

} // namespace apex::model

#endif // APEX_MODEL_COMPARATORS_H_
