#ifndef APEX_MODEL_TECH_H_
#define APEX_MODEL_TECH_H_

#include <array>

#include "model/hw_block.hpp"

/**
 * @file
 * Technology cost model — the repository's EDA-synthesis substitute.
 *
 * Per-block area (um^2), active energy (pJ per executed op), and
 * combinational delay (ns) in a 16nm-class standard-cell process, plus
 * the structural overheads (muxes, configuration bits, register file)
 * and the interconnect (switch-box / connection-box / memory-tile)
 * costs needed for CGRA-level evaluation.
 *
 * The table is calibrated so that the baseline PE core of Fig. 1 /
 * Table 2 of the APEX paper evaluates to ~989 um^2 and so that relative
 * block costs follow standard-cell intuition (mul >> shift ~ minmax >
 * addsub > cmp > logic).  The paper's conclusions concern *relative*
 * area/energy between PE variants; this consistent cost model preserves
 * those relations (see DESIGN.md, substitutions table).
 */

namespace apex::model {

/** Cost record for one hardware block class. */
struct BlockCost {
    double area;   ///< um^2.
    double energy; ///< pJ per executed operation.
    double delay;  ///< ns through the block.
};

/** Full technology model. */
struct TechModel {
    /** Per block class costs, indexed by HwBlockClass. */
    std::array<BlockCost, kNumHwBlockClasses> block;

    // --- PE structural overheads -----------------------------------
    double mux_input_area;     ///< um^2 per extra 16-bit mux input.
    double mux_input_area_bit; ///< um^2 per extra 1-bit mux input.
    double mux_energy;         ///< pJ per word passing through a mux.
    double mux_delay;          ///< ns per 2:1 mux stage.
    double config_bit_area;    ///< um^2 per configuration flop.
    double decode_area_per_op; ///< um^2 of instruction decode per op.
    double decode_energy;      ///< pJ per cycle: decode base cost.
    /** pJ per configuration bit per cycle (config/clock network
     * toggling scales with the instruction width). */
    double config_bit_energy;
    /** pJ per supported op per cycle (decode tree toggling). */
    double decode_energy_per_op;
    /** Fraction of a block's active energy it burns when idle but not
     * operand-isolated (every unit of a monolithic ALU toggles every
     * cycle — the dominant inefficiency of general-purpose PEs). */
    double idle_toggle_factor;
    double pipe_reg_area;      ///< um^2 per 16-bit pipeline register.
    double pipe_reg_energy;    ///< pJ per clocked 16-bit register.
    double reg_setup_delay;    ///< ns of register setup + clk->q.
    double rf_area;            ///< um^2 of the PE register file.
    double rf_energy;          ///< pJ per register-file access.

    // --- Interconnect ------------------------------------------------
    int sb_tracks;             ///< Routing tracks per side per direction.
    double sb_area;            ///< um^2 per switch box (word tracks).
    double sb_energy_per_hop;  ///< pJ per word crossing one SB.
    double sb_hop_delay;       ///< ns through one (unregistered) SB.
    double cb_area_per_input;  ///< um^2 per 16-bit PE/MEM input CB.
    double cb_area_per_input_bit; ///< um^2 per 1-bit input CB.
    double cb_energy;          ///< pJ per word through a CB.
    double mem_tile_area;      ///< um^2 per memory tile (2x2KB SRAM).
    double mem_energy_access;  ///< pJ per memory-tile word access.

    // --- Timing targets ----------------------------------------------
    double target_period;      ///< ns (paper: 1.1 ns, ~0.9 GHz).
};

/** @return the calibrated default technology model. */
const TechModel &defaultTech();

/** @return cost record for @p cls under @p tech. */
inline const BlockCost &
blockCost(const TechModel &tech, HwBlockClass cls)
{
    return tech.block[static_cast<int>(cls)];
}

} // namespace apex::model

#endif // APEX_MODEL_TECH_H_
