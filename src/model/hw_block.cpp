#include "model/hw_block.hpp"

#include <cassert>
#include <cstdlib>

namespace apex::model {

using ir::Op;

HwBlockClass
blockClassOf(Op op)
{
    switch (op) {
      case Op::kAdd:
      case Op::kSub:
        return HwBlockClass::kAddSub;
      case Op::kMul:
        return HwBlockClass::kMul;
      case Op::kShl:
      case Op::kLshr:
      case Op::kAshr:
        return HwBlockClass::kShift;
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kNot:
        return HwBlockClass::kLogicWord;
      case Op::kEq:
      case Op::kNeq:
      case Op::kUlt:
      case Op::kUle:
      case Op::kUgt:
      case Op::kUge:
      case Op::kSlt:
      case Op::kSle:
      case Op::kSgt:
      case Op::kSge:
        return HwBlockClass::kCompare;
      case Op::kMin:
      case Op::kMax:
      case Op::kAbs:
        return HwBlockClass::kMinMax;
      case Op::kSel:
        return HwBlockClass::kSelect;
      case Op::kLut:
      case Op::kBitAnd:
      case Op::kBitOr:
      case Op::kBitXor:
      case Op::kBitNot:
        return HwBlockClass::kLutBit;
      case Op::kConst:
        return HwBlockClass::kConstReg;
      case Op::kConstBit:
        return HwBlockClass::kConstRegBit;
      default:
        assert(false && "op has no hardware block class");
        std::abort();
    }
}

bool
blockImplements(HwBlockClass cls, Op op)
{
    if (!ir::opIsCompute(op) && op != Op::kConst && op != Op::kConstBit)
        return false;
    return blockClassOf(op) == cls;
}

std::vector<Op>
opsOfClass(HwBlockClass cls)
{
    std::vector<Op> result;
    for (int i = 0; i < ir::kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        if ((ir::opIsCompute(op) || op == Op::kConst ||
             op == Op::kConstBit) &&
            blockClassOf(op) == cls) {
            result.push_back(op);
        }
    }
    return result;
}

std::string_view
blockClassName(HwBlockClass cls)
{
    switch (cls) {
      case HwBlockClass::kAddSub:      return "addsub";
      case HwBlockClass::kMul:         return "mul";
      case HwBlockClass::kShift:       return "shift";
      case HwBlockClass::kLogicWord:   return "logic";
      case HwBlockClass::kCompare:     return "cmp";
      case HwBlockClass::kMinMax:      return "minmax";
      case HwBlockClass::kSelect:      return "sel";
      case HwBlockClass::kLutBit:      return "lut";
      case HwBlockClass::kConstReg:    return "creg";
      case HwBlockClass::kConstRegBit: return "cregb";
      default:                         return "?";
    }
}

} // namespace apex::model
