#include "model/tech.hpp"

namespace apex::model {

namespace {

/**
 * Calibration notes.
 *
 * Block areas are chosen so the baseline PE of Fig. 1 (full integer
 * ALU + multiplier + LUT + register file + constant registers + operand
 * and output muxing + instruction decode/config) evaluates to roughly
 * the 988.81 um^2/PE reported in Table 2 of the paper, and so the
 * specialized single-application PEs land in the few-hundred um^2 range
 * the paper reports.  Energy: the per-op decode/clocking overhead is a
 * large fraction of a simple op's energy, which is what makes merged
 * multi-op PEs (one decode, several ops) substantially more
 * energy-efficient — the effect the paper measures.
 */
TechModel
makeDefaultTech()
{
    TechModel t{};

    auto set = [&](HwBlockClass c, double area, double energy,
                   double delay) {
        t.block[static_cast<int>(c)] = BlockCost{area, energy, delay};
    };

    // Energies follow 16nm-class integer-datapath numbers: the
    // arithmetic itself is cheap (a 16-bit multiply is ~0.2 pJ);
    // configuration decode, clocking and muxing dominate — which is
    // exactly why merged multi-op PEs (one overhead, several ops) win
    // so much energy in the paper.
    //   class                      area(um^2) energy(pJ) delay(ns)
    set(HwBlockClass::kAddSub,      30.0,  0.030, 0.30);
    set(HwBlockClass::kMul,        130.0,  0.200, 0.95);
    set(HwBlockClass::kShift,       45.0,  0.025, 0.25);
    set(HwBlockClass::kLogicWord,   16.0,  0.010, 0.10);
    set(HwBlockClass::kCompare,     20.0,  0.015, 0.22);
    set(HwBlockClass::kMinMax,      38.0,  0.025, 0.32);
    set(HwBlockClass::kSelect,      12.0,  0.010, 0.10);
    set(HwBlockClass::kLutBit,       6.0,  0.004, 0.08);
    set(HwBlockClass::kConstReg,    16.0,  0.002, 0.02);
    set(HwBlockClass::kConstRegBit,  1.5,  0.001, 0.02);

    t.mux_input_area = 9.0;
    t.mux_input_area_bit = 0.8;
    t.mux_energy = 0.020;
    t.mux_delay = 0.04;
    t.config_bit_area = 1.1;
    t.decode_area_per_op = 5.0;
    t.decode_energy = 0.05;
    t.config_bit_energy = 0.002;
    t.decode_energy_per_op = 0.004;
    t.idle_toggle_factor = 0.25;
    t.pipe_reg_area = 14.0;
    t.pipe_reg_energy = 0.050;
    t.reg_setup_delay = 0.06;
    t.rf_area = 250.0;
    t.rf_energy = 0.11;

    t.sb_tracks = 5;
    t.sb_area = 1400.0;
    t.sb_energy_per_hop = 0.045;
    t.sb_hop_delay = 0.22;
    t.cb_area_per_input = 200.0;
    t.cb_area_per_input_bit = 20.0;
    t.cb_energy = 0.020;
    t.mem_tile_area = 15000.0;
    t.mem_energy_access = 1.10;

    t.target_period = 1.1;
    return t;
}

} // namespace

const TechModel &
defaultTech()
{
    static const TechModel tech = makeDefaultTech();
    return tech;
}

} // namespace apex::model
