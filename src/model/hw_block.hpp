#ifndef APEX_MODEL_HW_BLOCK_H_
#define APEX_MODEL_HW_BLOCK_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "ir/op.hpp"

/**
 * @file
 * Hardware block classes.
 *
 * Datapath merging (Sec. 3.3) may merge two operation nodes when they
 * "can both be implemented on the same hardware block".  This header
 * defines that equivalence: every compute op belongs to exactly one
 * block class, and one physical instance of a class can execute any op
 * of the class (selected by configuration).
 */

namespace apex::model {

/** Classes of physical functional units inside a PE. */
enum class HwBlockClass : std::uint8_t {
    kAddSub,    ///< Adder/subtractor (add, sub).
    kMul,       ///< 16x16 multiplier (low half).
    kShift,     ///< Barrel shifter (shl, lshr, ashr).
    kLogicWord, ///< Word-wide bitwise logic (and, or, xor, not).
    kCompare,   ///< Signed/unsigned comparator (eq..sge).
    kMinMax,    ///< Min/max/abs unit (comparator + mux datapath).
    kSelect,    ///< Word 2:1 select driven by a bit.
    kLutBit,    ///< 3-input LUT covering all 1-bit logic.
    kConstReg,  ///< 16-bit configuration-time constant register.
    kConstRegBit, ///< 1-bit constant register.
    kNumClasses,
};

/** Number of block classes. */
inline constexpr int kNumHwBlockClasses =
    static_cast<int>(HwBlockClass::kNumClasses);

/** @return the block class implementing @p op; aborts for structural
 * ops other than constants. */
HwBlockClass blockClassOf(ir::Op op);

/** @return true when a block of class @p cls can execute @p op. */
bool blockImplements(HwBlockClass cls, ir::Op op);

/** @return all compute ops a block of class @p cls can execute. */
std::vector<ir::Op> opsOfClass(HwBlockClass cls);

/** @return short lowercase name, e.g. "addsub". */
std::string_view blockClassName(HwBlockClass cls);

} // namespace apex::model

#endif // APEX_MODEL_HW_BLOCK_H_
