#include "model/comparators.hpp"

namespace apex::model {

namespace {

// Anchoring constants (see header).  Energy per word-level op event on
// the FPGA fabric, in pJ: an op that costs ~0.1-1.0 pJ on the CGRA
// costs tens of pJ in LUT fabric + generic routing.
constexpr double kFpgaEnergyPerOpPj = 28.0;
constexpr double kFpgaClockSlowdown = 3.0;

// ASIC keeps the CGRA's pipelined throughput (paper Sec. 5.4.1).
constexpr double kAsicRuntimeFactor = 1.0;

// Simba vs CGRA-ML on ResNet (paper Sec. 5.4.2).
constexpr double kSimbaEnergyRatio = 16.0;
constexpr double kSimbaRuntimeFactor = 0.6;

} // namespace

PlatformResult
fpgaEstimate(double op_events, double cgra_runtime_ms)
{
    PlatformResult r;
    r.platform = "fpga";
    r.energy_uj = op_events * kFpgaEnergyPerOpPj * 1e-6;
    r.runtime_ms = cgra_runtime_ms * kFpgaClockSlowdown;
    return r;
}

PlatformResult
asicEstimate(double raw_compute_energy_uj, double cgra_runtime_ms)
{
    PlatformResult r;
    r.platform = "asic";
    r.energy_uj = raw_compute_energy_uj;
    r.runtime_ms = cgra_runtime_ms * kAsicRuntimeFactor;
    return r;
}

PlatformResult
simbaEstimate(double cgra_ml_energy_uj, double cgra_ml_runtime_ms)
{
    PlatformResult r;
    r.platform = "simba";
    r.energy_uj = cgra_ml_energy_uj / kSimbaEnergyRatio;
    r.runtime_ms = cgra_ml_runtime_ms * kSimbaRuntimeFactor;
    return r;
}

} // namespace apex::model
