#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * Laplacian pyramid level (held-out application, Fig. 13): a Gaussian
 * low-pass of the input followed by the band-pass difference
 * L = in - expand(blur(in)), with a reconstruction clamp.
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

AppInfo
laplacianPyramid(int unroll)
{
    GraphBuilder b;
    const std::vector<int> kernel = {1, 2, 1, 2, 4, 2, 1, 2, 1};

    for (int lane = 0; lane < unroll; ++lane) {
        Value in = b.input("px" + std::to_string(lane));
        const std::vector<Value> taps =
            windowTaps(b, in, 3, 3, "lap" + std::to_string(lane));
        Value center = taps[4];

        std::vector<Value> ws;
        for (int w : kernel)
            ws.push_back(b.constant(static_cast<std::uint64_t>(w)));
        Value low = b.lshr(b.macTree(taps, ws), b.constant(4));

        // Expand approximation: average the low-pass with its
        // register-delayed neighbour (upsampling interpolation).
        Value low_d = b.reg(low);
        Value expanded =
            b.lshr(b.add(low, low_d), b.constant(1));

        Value band = b.sub(center, expanded);
        Value biased = b.add(band, b.constant(128));
        Value out = b.clamp(biased, b.constant(0), b.constant(255));
        b.output(out, "lap_px" + std::to_string(lane));
        b.output(low, "low_px" + std::to_string(lane));
    }

    AppInfo info;
    info.name = "laplacian";
    info.description = "Laplacian pyramid image representation";
    info.domain = Domain::kImageProcessing;
    info.graph = b.take();
    info.work_items_per_frame = 1920.0 * 1080.0;
    info.items_per_cycle = unroll;
    info.unseen = true;
    return info;
}

} // namespace apex::apps
