#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * FAST corner detection (held-out application, Fig. 13): compares the
 * 16 pixels on a Bresenham circle around the candidate against
 * center +/- threshold and counts how many are consistently brighter
 * or darker; a corner needs a long contiguous arc — approximated here
 * (as in the fast lowered pipelines) by a count threshold, built from
 * compare / select / add chains.
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

AppInfo
fastCorner()
{
    GraphBuilder b;

    Value in = b.input("px");
    const std::vector<Value> taps = windowTaps(b, in, 7, 7, "fast");
    auto tap = [&](int r, int c) { return taps[r * 7 + c]; };
    Value center = tap(3, 3);

    // The 16-pixel Bresenham circle of radius 3.
    const int ring[16][2] = {
        {0, 3}, {0, 4}, {1, 5}, {2, 6}, {3, 6}, {4, 6}, {5, 5},
        {6, 4}, {6, 3}, {6, 2}, {5, 1}, {4, 0}, {3, 0}, {2, 0},
        {1, 1}, {0, 2}};

    Value thresh = b.constant(20);
    Value hi = b.add(center, thresh);
    Value lo = b.sub(center, thresh);

    Value brighter_count = b.constant(0);
    Value darker_count = b.constant(0);
    Value one = b.constant(1);
    Value zero = b.constant(0);
    for (const auto &rc : ring) {
        Value p = tap(rc[0], rc[1]);
        Value is_brighter = b.sgt(p, hi);
        Value is_darker = b.slt(p, lo);
        brighter_count = b.add(brighter_count,
                               b.select(is_brighter, one, zero));
        darker_count = b.add(darker_count,
                             b.select(is_darker, one, zero));
    }

    Value need = b.constant(12);
    Value is_corner = b.bitOr(b.sge(brighter_count, need),
                              b.sge(darker_count, need));
    b.outputBit(is_corner, "corner");

    // Corner score: max deviation sum (used for non-max suppression
    // downstream).
    Value score = b.max(brighter_count, darker_count);
    b.output(b.mul(score, b.abs(b.sub(center, tap(0, 3)))), "score");

    AppInfo info;
    info.name = "fast";
    info.description = "FAST corner detection";
    info.domain = Domain::kImageProcessing;
    info.graph = b.take();
    info.work_items_per_frame = 1920.0 * 1080.0;
    info.items_per_cycle = 1;
    info.unseen = true;
    return info;
}

} // namespace apex::apps
