#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * Unsharp masking: out = clamp(in + gain * (in - blur(in))), with the
 * Gaussian blur from the 3x3 binomial kernel and a fixed-point gain.
 * The paper's unsharp run uses register files for its long delay
 * chains (Table 3, #RF = 180); the wide 7x7 support below produces
 * the long tap-delay chains responsible for that.
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

namespace {

Value
blur7(GraphBuilder &b, const std::vector<Value> &taps)
{
    // Separable 7-tap binomial approximation applied over the 7x7
    // window's central row and column (cheap large-support blur).
    const std::vector<int> k = {1, 6, 15, 20, 15, 6, 1};
    std::vector<Value> ins, ws;
    for (int i = 0; i < 7; ++i) {
        ins.push_back(taps[3 * 7 + i]); // central row
        ws.push_back(b.constant(static_cast<std::uint64_t>(k[i])));
    }
    for (int i = 0; i < 7; ++i) {
        if (i == 3)
            continue; // centre already counted
        ins.push_back(taps[i * 7 + 3]); // central column
        ws.push_back(b.constant(static_cast<std::uint64_t>(k[i])));
    }
    Value acc = b.macTree(ins, ws);
    return b.lshr(acc, b.constant(7));
}

} // namespace

AppInfo
unsharp(int unroll)
{
    GraphBuilder b;
    for (int lane = 0; lane < unroll; ++lane) {
        Value in = b.input("px" + std::to_string(lane));
        const std::vector<Value> taps =
            windowTaps(b, in, 7, 7, "unsharp" + std::to_string(lane));
        Value center = taps[3 * 7 + 3];

        Value blurred = blur7(b, taps);
        Value high_pass = b.sub(center, blurred);
        Value amplified = b.ashr(b.mul(high_pass, b.constant(96)),
                                 b.constant(6));
        Value sharp = b.add(center, amplified);
        Value out = b.clamp(sharp, b.constant(0), b.constant(255));
        b.output(out, "sharp_px" + std::to_string(lane));
    }

    AppInfo info;
    info.name = "unsharp";
    info.description = "Sharpens an image";
    info.domain = Domain::kImageProcessing;
    info.graph = b.take();
    info.work_items_per_frame = 1920.0 * 1080.0;
    info.items_per_cycle = unroll;
    return info;
}

} // namespace apex::apps
