#include "apps/apps.hpp"

namespace apex::apps {

std::vector<AppInfo>
ipApps()
{
    std::vector<AppInfo> v;
    v.push_back(cameraPipeline());
    v.push_back(harrisCorner());
    v.push_back(gaussianBlur());
    v.push_back(unsharp());
    return v;
}

std::vector<AppInfo>
mlApps()
{
    std::vector<AppInfo> v;
    v.push_back(resnetLayer());
    v.push_back(mobilenetLayer());
    return v;
}

std::vector<AppInfo>
analyzedApps()
{
    std::vector<AppInfo> v = ipApps();
    for (AppInfo &a : mlApps())
        v.push_back(std::move(a));
    return v;
}

std::vector<AppInfo>
unseenApps()
{
    std::vector<AppInfo> v;
    v.push_back(laplacianPyramid());
    v.push_back(stereo());
    v.push_back(fastCorner());
    return v;
}

std::vector<AppInfo>
allApps()
{
    std::vector<AppInfo> v = analyzedApps();
    for (AppInfo &a : unseenApps())
        v.push_back(std::move(a));
    return v;
}

} // namespace apex::apps
