#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * One MobileNet layer: depthwise-separable convolution — a per-channel
 * 3x3 depthwise convolution followed by a cross-channel 1x1 pointwise
 * convolution, each with bias and ReLU6 (clamped ReLU).
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

AppInfo
mobilenetLayer(int channels)
{
    GraphBuilder b;

    // Depthwise stage: 3x3 conv per channel.
    std::vector<Value> dw_out;
    for (int c = 0; c < channels; ++c) {
        Value in = b.input("act_c" + std::to_string(c));
        const std::vector<Value> taps =
            windowTaps(b, in, 3, 3, "mbn_c" + std::to_string(c));
        std::vector<Value> ws;
        for (int t = 0; t < 9; ++t) {
            const int w = ((c * 11 + t * 5) % 9) - 4;
            ws.push_back(b.constant(static_cast<std::uint64_t>(w)));
        }
        Value acc = b.macTree(taps, ws, b.constant(3 + c));
        Value scaled = b.ashr(acc, b.constant(3));
        // ReLU6: clamp(x, 0, 6<<4) in fixed point.
        Value act = b.clamp(scaled, b.constant(0), b.constant(96));
        dw_out.push_back(act);
    }

    // Pointwise stage: 1x1 conv across channels per output channel.
    for (int oc = 0; oc < channels; ++oc) {
        std::vector<Value> ws;
        for (int c = 0; c < channels; ++c) {
            const int w = ((oc * 13 + c * 3) % 11) - 5;
            ws.push_back(b.constant(static_cast<std::uint64_t>(w)));
        }
        Value acc = b.macTree(dw_out, ws, b.constant(2 + oc));
        Value scaled = b.ashr(acc, b.constant(3));
        Value act = b.clamp(scaled, b.constant(0), b.constant(96));
        b.output(act, "out_c" + std::to_string(oc));
    }

    AppInfo info;
    info.name = "mobilenet";
    info.description = "Neural network layer for low-power devices";
    info.domain = Domain::kMachineLearning;
    info.graph = b.take();
    info.work_items_per_frame = 112.0 * 112.0 * channels;
    info.items_per_cycle = channels;
    return info;
}

} // namespace apex::apps
