#ifndef APEX_APPS_WINDOW_H_
#define APEX_APPS_WINDOW_H_

#include <string>
#include <vector>

#include "ir/builder.hpp"

/**
 * @file
 * Line-buffer window helper shared by the stencil applications.
 *
 * A rows x cols stencil over a streaming image is realized the way the
 * AHA memory tiles realize it: (rows - 1) line-buffer memory nodes
 * delay the input stream by full image rows, and shift registers
 * provide the column taps.  The helper returns the rows*cols tap
 * values (row-major) for a given input stream.
 */

namespace apex::apps {

/**
 * Build the taps of a rows x cols sliding window over @p stream.
 *
 * @param b       Builder owning the graph.
 * @param stream  Streaming word input (pixel stream).
 * @param rows    Window height (>= 1); rows-1 memory nodes are created.
 * @param cols    Window width (>= 1); (cols-1) registers per row.
 * @param name    Debug name prefix for the memory nodes.
 * @return taps in row-major order, taps[r * cols + c].
 */
std::vector<ir::Value> windowTaps(ir::GraphBuilder &b, ir::Value stream,
                                  int rows, int cols,
                                  const std::string &name);

} // namespace apex::apps

#endif // APEX_APPS_WINDOW_H_
