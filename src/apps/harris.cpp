#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * Harris corner detection: Sobel gradients, structure-tensor products,
 * 3x3 window accumulation, corner response det - k*trace^2 (k applied
 * as a shift), and a threshold compare.
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

namespace {

Value
convWeighted(GraphBuilder &b, const std::vector<Value> &taps,
             const std::vector<int> &weights)
{
    // Skip zero weights: Halide lowering removes multiplies by zero.
    std::vector<Value> ins, ws;
    for (std::size_t i = 0; i < taps.size(); ++i) {
        if (weights[i] == 0)
            continue;
        ins.push_back(taps[i]);
        ws.push_back(b.constant(static_cast<std::uint64_t>(weights[i])));
    }
    return b.macTree(ins, ws);
}

/** Sum of a 3x3 window of values (add reduction tree). */
Value
sum9(GraphBuilder &b, const std::vector<Value> &v)
{
    Value s01 = b.add(v[0], v[1]);
    Value s23 = b.add(v[2], v[3]);
    Value s45 = b.add(v[4], v[5]);
    Value s67 = b.add(v[6], v[7]);
    Value s = b.add(b.add(s01, s23), b.add(s45, s67));
    return b.add(s, v[8]);
}

void
harrisPixel(GraphBuilder &b, const std::vector<Value> &taps5,
            int lane)
{
    const std::string suffix = "_px" + std::to_string(lane);

    // 3x3 sub-windows of the 5x5 tap array: index (r, c) with
    // r, c in [0, 5).
    auto tap = [&](int r, int c) { return taps5[r * 5 + c]; };

    // Gradients at the 9 positions of the central 3x3 region.
    std::vector<Value> ixx, iyy, ixy;
    for (int r = 1; r <= 3; ++r) {
        for (int c = 1; c <= 3; ++c) {
            std::vector<Value> w = {
                tap(r - 1, c - 1), tap(r - 1, c), tap(r - 1, c + 1),
                tap(r, c - 1),     tap(r, c),     tap(r, c + 1),
                tap(r + 1, c - 1), tap(r + 1, c), tap(r + 1, c + 1)};
            Value gx = convWeighted(b, w,
                                    {-1, 0, 1, -2, 0, 2, -1, 0, 1});
            Value gy = convWeighted(b, w,
                                    {1, 2, 1, 0, 0, 0, -1, -2, -1});
            Value gxs = b.ashr(gx, b.constant(2));
            Value gys = b.ashr(gy, b.constant(2));
            ixx.push_back(b.mul(gxs, gxs));
            iyy.push_back(b.mul(gys, gys));
            ixy.push_back(b.mul(gxs, gys));
        }
    }

    // Structure tensor: windowed sums.
    Value sxx = b.ashr(sum9(b, ixx), b.constant(4));
    Value syy = b.ashr(sum9(b, iyy), b.constant(4));
    Value sxy = b.ashr(sum9(b, ixy), b.constant(4));

    // Response: det - (trace^2 >> 4)   (k = 1/16).
    Value det = b.sub(b.mul(sxx, syy), b.mul(sxy, sxy));
    Value trace = b.add(sxx, syy);
    Value k_term = b.ashr(b.mul(trace, trace), b.constant(4));
    Value response = b.sub(det, k_term);

    b.output(response, "response" + suffix);
    Value is_corner = b.sgt(response, b.constant(128));
    b.outputBit(is_corner, "corner" + suffix);
}

} // namespace

AppInfo
harrisCorner(int unroll)
{
    GraphBuilder b;
    for (int lane = 0; lane < unroll; ++lane) {
        Value in = b.input("gray_px" + std::to_string(lane));
        const std::vector<Value> taps =
            windowTaps(b, in, 5, 5, "harris" + std::to_string(lane));
        harrisPixel(b, taps, lane);
    }

    AppInfo info;
    info.name = "harris";
    info.description = "Identifies corners within an image";
    info.domain = Domain::kImageProcessing;
    info.graph = b.take();
    info.work_items_per_frame = 1920.0 * 1080.0;
    info.items_per_cycle = unroll;
    return info;
}

} // namespace apex::apps
