#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * One residual-network layer: a 3x3 convolution over several input
 * channels, bias add, ReLU, and the residual shortcut add.  Lowered
 * (as in the paper's Halide ML flow) to unrolled multiply-accumulate
 * trees with constant weights per (input-channel, tap) pair.
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

AppInfo
resnetLayer(int channels)
{
    GraphBuilder b;

    // Input channel streams, each with a 3x3 line-buffered window.
    std::vector<std::vector<Value>> windows;
    std::vector<Value> residual_in;
    for (int c = 0; c < channels; ++c) {
        Value in = b.input("act_c" + std::to_string(c));
        windows.push_back(
            windowTaps(b, in, 3, 3, "resnet_c" + std::to_string(c)));
        residual_in.push_back(in);
    }

    // Output channels: full cross-channel 3x3 MAC reduction.
    for (int oc = 0; oc < channels; ++oc) {
        std::vector<Value> ins, ws;
        for (int c = 0; c < channels; ++c) {
            for (int t = 0; t < 9; ++t) {
                ins.push_back(windows[c][t]);
                // Deterministic pseudo-weights; the values are
                // irrelevant to mining (constants share one label).
                const int w = ((oc * 31 + c * 7 + t * 3) % 13) - 6;
                ws.push_back(
                    b.constant(static_cast<std::uint64_t>(w)));
            }
        }
        Value acc = b.macTree(ins, ws,
                              b.constant(5 + oc)); // bias
        Value scaled = b.ashr(acc, b.constant(4));
        Value activated = b.relu(scaled);
        Value out = b.add(activated, residual_in[oc]);
        b.output(out, "out_c" + std::to_string(oc));
    }

    AppInfo info;
    info.name = "resnet";
    info.description = "Residual neural network layer";
    info.domain = Domain::kMachineLearning;
    info.graph = b.take();
    info.work_items_per_frame = 56.0 * 56.0 * channels;
    info.items_per_cycle = channels;
    return info;
}

} // namespace apex::apps
