#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * Camera pipeline (Sec. 5.1): denoise -> demosaic -> color-correction
 * matrix -> color curve.  Roughly 90 primitive ops per output pixel;
 * the paper computes 4 output pixels per cycle to fill a 32x16 CGRA.
 *
 * The op mix matches the paper's description: "uses all the operations
 * in the baseline PE except for left shift and bitwise logical
 * operations" — multiply/add/sub for convolutions and the CCM, right
 * shifts for normalization, min/max for clamping, abs and compares/sel
 * in the denoiser.
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

namespace {

/** Weighted 3x3 convolution with constant weights and a right-shift
 * normalization; weights given row-major. */
Value
conv3x3(GraphBuilder &b, const std::vector<Value> &taps,
        const std::vector<int> &weights, int shift)
{
    std::vector<Value> ws;
    ws.reserve(9);
    for (int w : weights)
        ws.push_back(b.constant(static_cast<std::uint64_t>(w)));
    Value acc = b.macTree(taps, ws);
    return b.lshr(acc, b.constant(static_cast<std::uint64_t>(shift)));
}

/** One per-pixel camera pipeline instance. */
void
cameraPixel(GraphBuilder &b, const std::vector<Value> &taps, int lane)
{
    const std::string suffix = "_px" + std::to_string(lane);

    // --- Denoise: soft median — clamp center between the min and max
    // of its cross neighbours, then blend with a blurred estimate.
    Value center = taps[4];
    Value north = taps[1], south = taps[7], west = taps[3],
          east = taps[5];
    Value lo = b.min(b.min(north, south), b.min(west, east));
    Value hi = b.max(b.max(north, south), b.max(west, east));
    Value clamped = b.clamp(center, lo, hi);
    Value blur = conv3x3(b, taps, {1, 2, 1, 2, 4, 2, 1, 2, 1}, 4);
    // Blend: if |center - blur| is small keep center, else use clamp.
    Value diff = b.abs(b.sub(center, blur));
    Value is_noise = b.ugt(diff, b.constant(24));
    Value denoised = b.select(is_noise, clamped, center);

    // --- Demosaic: reconstruct missing channels by neighbour averages
    // (shift-normalized adds over the denoised mosaic neighbourhood).
    Value g_interp = b.lshr(
        b.add(b.add(north, south), b.add(west, east)), b.constant(2));
    Value d_nw = taps[0], d_ne = taps[2], d_sw = taps[6], d_se = taps[8];
    Value rb_interp = b.lshr(
        b.add(b.add(d_nw, d_ne), b.add(d_sw, d_se)), b.constant(2));
    Value r = denoised;
    Value g = g_interp;
    Value bch = rb_interp;

    // --- Color-correction matrix: 3x3 constant matrix, one dot
    // product per output channel, fixed-point with arithmetic shift.
    auto ccm_row = [&](int w0, int w1, int w2, int bias) {
        Value acc = b.macTree(
            {r, g, bch},
            {b.constant(static_cast<std::uint64_t>(w0)),
             b.constant(static_cast<std::uint64_t>(w1)),
             b.constant(static_cast<std::uint64_t>(w2))},
            b.constant(static_cast<std::uint64_t>(bias)));
        return b.ashr(acc, b.constant(6));
    };
    Value cr = ccm_row(78, -8, -6, 32);
    Value cg = ccm_row(-10, 82, -8, 32);
    Value cb = ccm_row(-4, -12, 80, 32);

    // --- Color curve: quadratic tone curve x + (x*(255-x))>>9, then
    // clamp to [0, 255].
    auto curve = [&](Value x, const char *nm) {
        Value inv = b.sub(b.constant(255), x);
        Value quad = b.ashr(b.mul(x, inv), b.constant(9));
        Value toned = b.add(x, quad);
        Value out = b.clamp(toned, b.constant(0), b.constant(255));
        return b.output(out, std::string(nm) + suffix);
    };
    curve(cr, "r");
    curve(cg, "g");
    curve(cb, "b");
}

} // namespace

AppInfo
cameraPipeline(int unroll)
{
    GraphBuilder b;
    for (int lane = 0; lane < unroll; ++lane) {
        Value in = b.input("raw_px" + std::to_string(lane));
        const std::vector<Value> taps =
            windowTaps(b, in, 3, 3, "cam" + std::to_string(lane));
        cameraPixel(b, taps, lane);
    }

    AppInfo info;
    info.name = "camera";
    info.description = "Transforms camera data into an RGB image";
    info.domain = Domain::kImageProcessing;
    info.graph = b.take();
    info.work_items_per_frame = 1920.0 * 1080.0;
    info.items_per_cycle = unroll;
    return info;
}

} // namespace apex::apps
