#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * Stereo depth estimation (held-out application, Fig. 13): block
 * matching — for each candidate disparity, the sum of absolute
 * differences (SAD) over a 3x3 window between the left and a shifted
 * right image; the disparity with minimal SAD wins (argmin via
 * compare + select chains).
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

namespace {

/** SAD over two 9-tap windows. */
Value
sad9(GraphBuilder &b, const std::vector<Value> &l,
     const std::vector<Value> &r, int offset)
{
    std::vector<Value> diffs;
    for (int i = 0; i < 9; ++i) {
        // Column-shifted right window tap: offset along the row.
        const int rr = i / 3, rc = i % 3;
        int sc = rc + offset;
        if (sc > 2)
            sc = 2; // clamp at the window border
        diffs.push_back(b.abs(b.sub(l[i], r[rr * 3 + sc])));
    }
    Value s01 = b.add(diffs[0], diffs[1]);
    Value s23 = b.add(diffs[2], diffs[3]);
    Value s45 = b.add(diffs[4], diffs[5]);
    Value s67 = b.add(diffs[6], diffs[7]);
    Value s = b.add(b.add(s01, s23), b.add(s45, s67));
    return b.add(s, diffs[8]);
}

} // namespace

AppInfo
stereo(int disparities)
{
    GraphBuilder b;

    Value left = b.input("left_px");
    Value right = b.input("right_px");
    const std::vector<Value> lw = windowTaps(b, left, 3, 3, "st_l");
    const std::vector<Value> rw = windowTaps(b, right, 3, 3, "st_r");

    // Delayed right-image streams realize larger disparities: each
    // extra register shifts the candidate window one pixel.
    Value best_sad;
    Value best_disp;
    for (int d = 0; d < disparities; ++d) {
        Value sad = sad9(b, lw, rw, d % 3);
        if (d > 0) {
            // Deeper disparities examine an older (registered) window.
            sad = b.reg(sad);
        }
        Value disp = b.constant(static_cast<std::uint64_t>(d));
        if (d == 0) {
            best_sad = sad;
            best_disp = disp;
        } else {
            Value better = b.ult(sad, best_sad);
            best_sad = b.select(better, sad, best_sad);
            best_disp = b.select(better, disp, best_disp);
        }
    }

    b.output(best_disp, "disparity");
    b.output(best_sad, "confidence");

    AppInfo info;
    info.name = "stereo";
    info.description = "Transforms stereo pairs into a depth map";
    info.domain = Domain::kImageProcessing;
    info.graph = b.take();
    info.work_items_per_frame = 1280.0 * 720.0;
    info.items_per_cycle = 1;
    info.unseen = true;
    return info;
}

} // namespace apex::apps
