#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/window.hpp"

/**
 * @file
 * 3x3 Gaussian blur: binomial kernel [1 2 1; 2 4 2; 1 2 1] / 16,
 * lowered to an unrolled multiply-accumulate chain with a logical
 * right shift for the normalization — the Fig. 3 convolution shape.
 */

namespace apex::apps {

using ir::GraphBuilder;
using ir::Value;

AppInfo
gaussianBlur(int unroll)
{
    GraphBuilder b;
    const std::vector<int> kernel = {1, 2, 1, 2, 4, 2, 1, 2, 1};

    for (int lane = 0; lane < unroll; ++lane) {
        Value in = b.input("px" + std::to_string(lane));
        const std::vector<Value> taps =
            windowTaps(b, in, 3, 3, "gauss" + std::to_string(lane));

        std::vector<Value> ws;
        ws.reserve(kernel.size());
        for (int w : kernel)
            ws.push_back(b.constant(static_cast<std::uint64_t>(w)));

        Value acc = b.macTree(taps, ws);
        Value out = b.lshr(acc, b.constant(4));
        b.output(out, "blurred_px" + std::to_string(lane));
    }

    AppInfo info;
    info.name = "gaussian";
    info.description = "Blurs an image";
    info.domain = Domain::kImageProcessing;
    info.graph = b.take();
    info.work_items_per_frame = 1920.0 * 1080.0;
    info.items_per_cycle = unroll;
    return info;
}

} // namespace apex::apps
