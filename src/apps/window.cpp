#include "apps/window.hpp"

#include <cassert>

namespace apex::apps {

using ir::Value;

std::vector<Value>
windowTaps(ir::GraphBuilder &b, Value stream, int rows, int cols,
           const std::string &name)
{
    assert(rows >= 1 && cols >= 1);

    // Row streams: row 0 is the live stream; row r is delayed by r
    // image lines through a chain of line-buffer memory nodes.
    std::vector<Value> row_stream(rows);
    row_stream[0] = stream;
    for (int r = 1; r < rows; ++r) {
        row_stream[r] = b.mem(row_stream[r - 1],
                              name + "_lb" + std::to_string(r));
    }

    // Column taps: shift registers along each row.
    std::vector<Value> taps(rows * cols);
    for (int r = 0; r < rows; ++r) {
        Value v = row_stream[r];
        // The most recent pixel is the rightmost column.
        taps[r * cols + (cols - 1)] = v;
        for (int c = cols - 2; c >= 0; --c) {
            v = b.reg(v);
            taps[r * cols + c] = v;
        }
    }
    return taps;
}

} // namespace apex::apps
