#ifndef APEX_APPS_APPS_H_
#define APEX_APPS_APPS_H_

#include <string>
#include <vector>

#include "ir/graph.hpp"

/**
 * @file
 * Application benchmark suite (Table 1 of the paper).
 *
 * Each function lowers one application kernel to a dataflow graph — the
 * Halide-frontend substitute (see DESIGN.md).  The graphs reproduce the
 * op mix and structure the paper's applications exhibit after Halide ->
 * CoreIR lowering: unrolled convolutions as multiply-accumulate chains
 * with constant weights, line-buffer memory nodes, clamping with
 * min/max, shifts for normalization, and compare/select logic.
 *
 * The "analyzed" set (camera, Harris, Gaussian, unsharp, ResNet layer,
 * MobileNet layer) drives PE generation; the "unseen" set (Laplacian
 * pyramid, stereo, FAST corner) evaluates domain generalization
 * (Fig. 13).
 */

namespace apex::apps {

/** Application domain (Table 1). */
enum class Domain { kImageProcessing, kMachineLearning };

/** One benchmark application. */
struct AppInfo {
    std::string name;        ///< Short identifier, e.g. "camera".
    std::string description; ///< Table 1 description.
    Domain domain;           ///< IP or ML.
    ir::Graph graph;         ///< Lowered dataflow graph.
    /** Output items (pixels / activations) produced per frame. */
    double work_items_per_frame;
    /** Output items produced per CGRA cycle (unroll factor). */
    int items_per_cycle;
    /** True when the app was held out of PE generation (Fig. 13). */
    bool unseen = false;
};

/**
 * Camera pipeline: denoise, demosaic, color-correct and color-curve
 * raw sensor data into RGB (Sec. 5.1; ~90 primitive ops per output
 * pixel before unrolling).
 *
 * @param unroll  Output pixels computed in parallel (paper uses 4).
 */
AppInfo cameraPipeline(int unroll = 4);

/** Harris corner detection (gradients, structure tensor, response). */
AppInfo harrisCorner(int unroll = 2);

/** 3x3 Gaussian blur with power-of-two normalization. */
AppInfo gaussianBlur(int unroll = 4);

/** Unsharp masking (blur, high-pass, amplify, clamp). */
AppInfo unsharp(int unroll = 2);

/** One residual network layer: 3x3 conv + bias + ReLU + residual add. */
AppInfo resnetLayer(int channels = 4);

/** One MobileNet layer: depthwise 3x3 + pointwise 1x1 + ReLU6. */
AppInfo mobilenetLayer(int channels = 4);

/** Laplacian pyramid level (unseen; Fig. 13). */
AppInfo laplacianPyramid(int unroll = 2);

/** Stereo block matching via SAD minimization (unseen; Fig. 13). */
AppInfo stereo(int disparities = 4);

/** FAST corner detection (unseen; Fig. 13). */
AppInfo fastCorner();

/** The six applications analyzed for PE generation. */
std::vector<AppInfo> analyzedApps();

/** The four image-processing applications among the analyzed set. */
std::vector<AppInfo> ipApps();

/** The two machine-learning applications among the analyzed set. */
std::vector<AppInfo> mlApps();

/** The three held-out applications (Fig. 13). */
std::vector<AppInfo> unseenApps();

/** All nine applications. */
std::vector<AppInfo> allApps();

} // namespace apex::apps

#endif // APEX_APPS_APPS_H_
