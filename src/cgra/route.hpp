#ifndef APEX_CGRA_ROUTE_H_
#define APEX_CGRA_ROUTE_H_

#include <string>
#include <vector>

#include "cgra/place.hpp"
#include "core/deadline.hpp"

/**
 * @file
 * Routing: negotiated-congestion (PathFinder-style) routing of the
 * contracted netlist over the fabric's per-link track resources.
 *
 * Each directed link between adjacent tiles carries
 * TechModel::sb_tracks wires.  Every net is routed with A* under a
 * cost that adds growing penalties for present and historical
 * congestion; iterations of rip-up-and-reroute continue until no
 * link is over capacity (or the iteration limit is hit).
 *
 * Every track has a configurable pipeline register, so a route of h
 * hops can absorb up to h of the edge's registers; the rare shortfall
 * (chains of <= rf_cutoff registers across a 1-hop route) is
 * reported as register overflow and accounted against the
 * destination tile's input register.
 */

namespace apex::cgra {

/** Router parameters. */
struct RouterOptions {
    int max_iterations = 32;
    double present_factor = 0.6;   ///< Growth of the present penalty.
    double history_increment = 0.4;
    int tracks = 5;                ///< Capacity per directed link.
    /** Wall-clock bound, polled before each rip-up iteration.  Expiry
     * returns a kTimeout RouteResult (not kRouteFailed: the fabric
     * was never proven unroutable, the router just ran out of time
     * negotiating congestion). */
    Deadline deadline;
};

/** Result of routing. */
struct RouteResult {
    bool success = false;
    std::string error; ///< Legacy mirror of status (when failed).
    /** Typed outcome (kRouteFailed on congestion / unroutable nets). */
    Status status;
    /** Per contracted edge: the links (Fabric::linkIndex) crossed. */
    std::vector<std::vector<int>> paths;
    std::vector<int> link_usage; ///< Final wires per link.
    int total_hops = 0;          ///< Sum of path lengths.
    int iterations = 0;          ///< PathFinder iterations used.
    int register_overflow = 0;   ///< Registers that did not fit.

    /** @return tiles whose SB is crossed by some route. */
    std::vector<int>
    tilesTouched(const Fabric &fabric) const;
};

/** Route the placed netlist. */
RouteResult route(const Fabric &fabric,
                  const PlacementResult &placement,
                  const RouterOptions &options = {});

} // namespace apex::cgra

#endif // APEX_CGRA_ROUTE_H_
