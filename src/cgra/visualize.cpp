#include "cgra/visualize.hpp"

#include <set>
#include <sstream>

namespace apex::cgra {

std::string
visualize(const Fabric &fabric, const mapper::MappedGraph &mapped,
          const PlacementResult &placement,
          const RouteResult &routing)
{
    // Per-tile glyph, defaulting to the idle pattern.
    std::vector<char> glyph(fabric.tileCount(), ' ');
    for (int y = -1; y <= fabric.height(); ++y) {
        for (int x = 0; x < fabric.width(); ++x) {
            const Coord c{x, y};
            switch (fabric.kindAt(c)) {
              case TileKind::kPe:
                glyph[fabric.indexOf(c)] = '.';
                break;
              case TileKind::kMem:
                glyph[fabric.indexOf(c)] = ',';
                break;
              case TileKind::kIo:
                glyph[fabric.indexOf(c)] = ' ';
                break;
            }
        }
    }

    // Routing-only tiles first so occupants overwrite them.
    for (int tile : routing.tilesTouched(fabric)) {
        if (glyph[tile] == '.' || glyph[tile] == ',')
            glyph[tile] = '+';
    }

    for (std::size_t id = 0; id < mapped.nodes.size(); ++id) {
        if (!isPlaceable(mapped.nodes[id].kind))
            continue;
        const Coord c = placement.loc[id];
        if (c.x < 0)
            continue;
        char g = '?';
        switch (mapped.nodes[id].kind) {
          case mapper::MappedKind::kPe:      g = 'P'; break;
          case mapper::MappedKind::kMem:     g = 'M'; break;
          case mapper::MappedKind::kRegFile: g = 'R'; break;
          case mapper::MappedKind::kInput:
          case mapper::MappedKind::kInputBit:
            g = 'I';
            break;
          default:
            g = 'O';
            break;
        }
        glyph[fabric.indexOf(c)] = g;
    }

    std::ostringstream os;
    os << "floorplan " << fabric.width() << 'x' << fabric.height()
       << " (P=pe M=mem R=regfile I/O=pads +=routing .=idle)\n";
    for (int y = -1; y <= fabric.height(); ++y) {
        os << "  ";
        for (int x = 0; x < fabric.width(); ++x)
            os << glyph[fabric.indexOf({x, y})];
        os << '\n';
    }
    return os.str();
}

} // namespace apex::cgra
