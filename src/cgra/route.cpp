#include "cgra/route.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>
#include <sstream>

#include "core/fault.hpp"
#include "runtime/telemetry.hpp"

namespace apex::cgra {

namespace {

struct QueueEntry {
    double cost;
    double heuristic;
    int tile; ///< Dense tile index.
    bool operator>(const QueueEntry &o) const {
        return cost + heuristic > o.cost + o.heuristic;
    }
};

int
manhattan(Coord a, Coord b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/** Signal identity: edges with the same source share tracks.  This
 * includes register-delayed variants of the same stream — every SB
 * track has a configurable register (Sec. 4.3), so a differently-
 * delayed consumer taps the shared wire after a register further
 * along the route instead of occupying its own track.  (Without this,
 * the k column taps of a stencil window would demand k tracks through
 * the input pad's single fabric boundary.) */
std::int64_t
signalKey(const PlacedEdge &e)
{
    return static_cast<std::int64_t>(e.src);
}

} // namespace

std::vector<int>
RouteResult::tilesTouched(const Fabric &fabric) const
{
    std::set<int> tiles;
    for (const auto &path : paths) {
        for (int link : path) {
            const auto [src, dst] = fabric.linkEnds(link);
            tiles.insert(fabric.indexOf(src));
            tiles.insert(fabric.indexOf(dst));
        }
    }
    return {tiles.begin(), tiles.end()};
}

RouteResult
route(const Fabric &fabric, const PlacementResult &placement,
      const RouterOptions &options)
{
    APEX_SPAN("route",
              {{"nets",
                static_cast<long long>(placement.edges.size())},
               {"tracks", options.tracks}});
    telemetry::StageTimer timer(
        telemetry::histogram("apex.route.ms"));
    telemetry::counter("apex.route.calls").add(1);

    RouteResult result;
    // Counts every exit path once: iterations consumed, and whether
    // this call failed (declared after `result`, so it reads the
    // final state just before the return value leaves scope).
    struct OutcomeCounters {
        const RouteResult &r;
        ~OutcomeCounters()
        {
            telemetry::counter("apex.route.ripup_iterations")
                .add(r.iterations);
            if (!r.success)
                telemetry::counter("apex.route.failures").add(1);
        }
    } outcome_counters{result};
    if (Status fault = checkFault(FaultStage::kRoute); !fault.ok()) {
        result.status = std::move(fault);
        result.error = result.status.toString();
        return result;
    }
    const int links = fabric.linkCount();
    std::vector<double> history(links, 0.0);
    // Distinct signals per link (net-aware capacity).
    std::vector<std::set<std::int64_t>> link_signals(links);
    result.paths.assign(placement.edges.size(), {});

    // A* for one net under the current congestion costs.  Links
    // already carrying this signal cost almost nothing (multicast
    // branches share the wire).
    auto route_net = [&](Coord from, Coord to, std::int64_t key,
                         double present_pen) -> std::vector<int> {
        const int n = fabric.tileCount();
        std::vector<double> best(n, 1e18);
        std::vector<int> via_link(n, -1);
        std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                            std::greater<QueueEntry>>
            frontier;
        const int start = fabric.indexOf(from);
        const int goal = fabric.indexOf(to);
        best[start] = 0.0;
        frontier.push({0.0, 1.0 * manhattan(from, to), start});

        while (!frontier.empty()) {
            const QueueEntry top = frontier.top();
            frontier.pop();
            if (top.tile == goal)
                break;
            if (top.cost > best[top.tile] + 1e-12)
                continue;
            const Coord c = fabric.coordAt(top.tile);
            for (const Coord &nb : fabric.neighbours(c)) {
                const int link = fabric.linkIndex(c, nb);
                double cost;
                if (link_signals[link].count(key)) {
                    cost = 0.05; // free ride on our own net
                } else {
                    cost = 1.0 + history[link];
                    const int used = static_cast<int>(
                        link_signals[link].size());
                    if (used >= options.tracks)
                        cost += present_pen *
                                (used - options.tracks + 1);
                }
                const int nb_idx = fabric.indexOf(nb);
                const double total = top.cost + cost;
                if (total + 1e-12 < best[nb_idx]) {
                    best[nb_idx] = total;
                    via_link[nb_idx] = link;
                    frontier.push(
                        {total, 1.0 * manhattan(nb, to), nb_idx});
                }
            }
        }
        if (via_link[goal] < 0 && goal != start)
            return {};
        std::vector<int> path;
        int cursor = goal;
        while (cursor != start) {
            const int link = via_link[cursor];
            path.push_back(link);
            cursor = fabric.indexOf(fabric.linkEnds(link).first);
        }
        std::reverse(path.begin(), path.end());
        return path;
    };

    double present_pen = options.present_factor;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
        // Each rip-up pass re-routes every net, so the iteration
        // boundary is the natural (and sufficient) poll point.
        if (Status s = options.deadline.check(
                "rip-up iteration " + std::to_string(iter + 1));
            !s.ok()) {
            result.status = std::move(s);
            result.error = result.status.message();
            return result;
        }
        result.iterations = iter + 1;
        // Rip up everything and reroute under current penalties.
        for (auto &s : link_signals)
            s.clear();
        bool failed = false;
        for (std::size_t e = 0; e < placement.edges.size(); ++e) {
            const PlacedEdge &edge = placement.edges[e];
            const Coord from = placement.loc[edge.src];
            const Coord to = placement.loc[edge.dst];
            const std::int64_t key = signalKey(edge);
            auto path = route_net(from, to, key, present_pen);
            if (path.empty() && from != to) {
                failed = true;
                std::ostringstream os;
                os << "net " << e << " unroutable ((" << from.x << ','
                   << from.y << ") -> (" << to.x << ',' << to.y
                   << "))";
                result.status =
                    Status(ErrorCode::kRouteFailed, os.str());
                result.error = result.status.message();
                break;
            }
            for (int link : path)
                link_signals[link].insert(key);
            result.paths[e] = std::move(path);
        }
        if (failed)
            return result;

        // Congestion check on distinct signals per link.
        int overused = 0;
        for (int l = 0; l < links; ++l) {
            const int used =
                static_cast<int>(link_signals[l].size());
            if (used > options.tracks) {
                ++overused;
                history[l] += options.history_increment *
                              (used - options.tracks);
            }
        }
        if (overused == 0) {
            result.success = true;
            break;
        }
        present_pen *= 1.8;
    }

    result.link_usage.assign(links, 0);
    for (int l = 0; l < links; ++l)
        result.link_usage[l] =
            static_cast<int>(link_signals[l].size());

    if (!result.success) {
        if (result.error.empty()) {
            int overused = 0, worst = 0;
            for (int l = 0; l < links; ++l) {
                if (result.link_usage[l] > options.tracks) {
                    ++overused;
                    worst = std::max(worst, result.link_usage[l]);
                }
            }
            std::ostringstream os;
            os << "congestion not resolved after "
               << result.iterations << " iterations: " << overused
               << " links over capacity (worst " << worst << "/"
               << options.tracks << " tracks)";
            result.status = Status(ErrorCode::kRouteFailed, os.str());
            result.error = os.str();
        }
        return result;
    }
    result.total_hops = 0;
    for (const auto &path : result.paths)
        result.total_hops += static_cast<int>(path.size());
    for (std::size_t e = 0; e < placement.edges.size(); ++e) {
        const int hops = static_cast<int>(result.paths[e].size());
        if (placement.edges[e].regs > hops)
            result.register_overflow +=
                placement.edges[e].regs - hops;
    }
    return result;
}

} // namespace apex::cgra
