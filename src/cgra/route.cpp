#include "cgra/route.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "core/fault.hpp"
#include "runtime/telemetry.hpp"

/*
 * PathFinder router on flat per-tile arrays.  The historic version
 * allocated std::map/std::set search tables per net; this one hoists
 * flat vectors indexed by dense tile id across all nets of a rip-up
 * pass and invalidates them with an epoch counter, keeps per-link
 * signal sets as small vectors (distinct signals per link are bounded
 * by the track count that congestion is negotiating toward), and
 * replaces std::priority_queue with push_heap/pop_heap on one hoisted
 * vector — the exact algorithm priority_queue uses, so pop order and
 * therefore every routed path is byte-identical to the historic
 * router.
 */
namespace apex::cgra {

namespace {

struct QueueEntry {
    double cost;
    double heuristic;
    int tile; ///< Dense tile index.
    bool operator>(const QueueEntry &o) const {
        return cost + heuristic > o.cost + o.heuristic;
    }
};

int
manhattan(Coord a, Coord b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/** Signal identity: edges with the same source share tracks.  This
 * includes register-delayed variants of the same stream — every SB
 * track has a configurable register (Sec. 4.3), so a differently-
 * delayed consumer taps the shared wire after a register further
 * along the route instead of occupying its own track.  (Without this,
 * the k column taps of a stencil window would demand k tracks through
 * the input pad's single fabric boundary.) */
std::int64_t
signalKey(const PlacedEdge &e)
{
    return static_cast<std::int64_t>(e.src);
}

/** Distinct signals on one link, as a small vector: linear membership
 * beats a std::set for the handful of signals congestion negotiation
 * allows per link, and clear() keeps the capacity across rip-ups. */
struct LinkSignals {
    std::vector<std::int64_t> keys;

    bool
    contains(std::int64_t key) const
    {
        return std::find(keys.begin(), keys.end(), key) != keys.end();
    }

    void
    insert(std::int64_t key)
    {
        if (!contains(key))
            keys.push_back(key);
    }

    int
    count() const
    {
        return static_cast<int>(keys.size());
    }
};

/** One outgoing hop of a tile, precomputed so the inner A* loop never
 * re-derives link indices or dense neighbour ids. */
struct Hop {
    int link;    ///< Fabric::linkIndex of tile -> nb.
    int nb_idx;  ///< Dense index of the neighbour.
    Coord nb;    ///< Neighbour coordinate (for the heuristic).
};

} // namespace

std::vector<int>
RouteResult::tilesTouched(const Fabric &fabric) const
{
    std::vector<int> tiles;
    for (const auto &path : paths) {
        for (int link : path) {
            const auto [src, dst] = fabric.linkEnds(link);
            tiles.push_back(fabric.indexOf(src));
            tiles.push_back(fabric.indexOf(dst));
        }
    }
    std::sort(tiles.begin(), tiles.end());
    tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());
    return tiles;
}

RouteResult
route(const Fabric &fabric, const PlacementResult &placement,
      const RouterOptions &options)
{
    APEX_SPAN("route",
              {{"nets",
                static_cast<long long>(placement.edges.size())},
               {"tracks", options.tracks}});
    telemetry::StageTimer timer(
        telemetry::histogram("apex.route.ms"));
    telemetry::counter("apex.route.calls").add(1);

    RouteResult result;
    // Counts every exit path once: iterations consumed, and whether
    // this call failed (declared after `result`, so it reads the
    // final state just before the return value leaves scope).
    struct OutcomeCounters {
        const RouteResult &r;
        ~OutcomeCounters()
        {
            telemetry::counter("apex.route.ripup_iterations")
                .add(r.iterations);
            if (!r.success)
                telemetry::counter("apex.route.failures").add(1);
        }
    } outcome_counters{result};
    if (Status fault = checkFault(FaultStage::kRoute); !fault.ok()) {
        result.status = std::move(fault);
        result.error = result.status.toString();
        return result;
    }
    const int links = fabric.linkCount();
    const int n = fabric.tileCount();
    std::vector<double> history(links, 0.0);
    // Distinct signals per link (net-aware capacity).
    std::vector<LinkSignals> link_signals(links);
    result.paths.assign(placement.edges.size(), {});

    // Per-tile outgoing hops and per-link source-tile indices,
    // computed once: the A* loop and path reconstruction only touch
    // flat arrays afterwards.  Hop order matches fabric.neighbours()
    // so relaxation ties resolve exactly as before.
    std::vector<std::vector<Hop>> hops(n);
    for (int t = 0; t < n; ++t) {
        const Coord c = fabric.coordAt(t);
        for (const Coord &nb : fabric.neighbours(c))
            hops[t].push_back(
                {fabric.linkIndex(c, nb), fabric.indexOf(nb), nb});
    }
    std::vector<int> link_src(links, -1);
    for (int l = 0; l < links; ++l)
        link_src[l] = fabric.indexOf(fabric.linkEnds(l).first);

    // Search tables hoisted across nets; `visit_epoch[t] == epoch`
    // marks best/via_link as valid for the current net, so resetting
    // between nets is one integer increment instead of two O(n)
    // fills.
    std::vector<double> best(n, 0.0);
    std::vector<int> via_link(n, -1);
    std::vector<int> visit_epoch(n, 0);
    int epoch = 0;
    std::vector<QueueEntry> frontier;

    // A* for one net under the current congestion costs.  Links
    // already carrying this signal cost almost nothing (multicast
    // branches share the wire).
    auto route_net = [&](Coord from, Coord to, std::int64_t key,
                         double present_pen) -> std::vector<int> {
        ++epoch;
        frontier.clear();
        const int start = fabric.indexOf(from);
        const int goal = fabric.indexOf(to);
        best[start] = 0.0;
        via_link[start] = -1;
        visit_epoch[start] = epoch;
        frontier.push_back({0.0, 1.0 * manhattan(from, to), start});

        while (!frontier.empty()) {
            std::pop_heap(frontier.begin(), frontier.end(),
                          std::greater<QueueEntry>());
            const QueueEntry top = frontier.back();
            frontier.pop_back();
            if (top.tile == goal)
                break;
            if (top.cost > best[top.tile] + 1e-12)
                continue;
            for (const Hop &hop : hops[top.tile]) {
                const int link = hop.link;
                double cost;
                if (link_signals[link].contains(key)) {
                    cost = 0.05; // free ride on our own net
                } else {
                    cost = 1.0 + history[link];
                    const int used = link_signals[link].count();
                    if (used >= options.tracks)
                        cost += present_pen *
                                (used - options.tracks + 1);
                }
                const int nb_idx = hop.nb_idx;
                const double nb_best =
                    visit_epoch[nb_idx] == epoch ? best[nb_idx]
                                                 : 1e18;
                const double total = top.cost + cost;
                if (total + 1e-12 < nb_best) {
                    best[nb_idx] = total;
                    via_link[nb_idx] = link;
                    visit_epoch[nb_idx] = epoch;
                    frontier.push_back(
                        {total, 1.0 * manhattan(hop.nb, to), nb_idx});
                    std::push_heap(frontier.begin(), frontier.end(),
                                   std::greater<QueueEntry>());
                }
            }
        }
        const bool reached =
            visit_epoch[goal] == epoch && via_link[goal] >= 0;
        if (!reached && goal != start)
            return {};
        std::vector<int> path;
        int cursor = goal;
        while (cursor != start) {
            const int link = via_link[cursor];
            path.push_back(link);
            cursor = link_src[link];
        }
        std::reverse(path.begin(), path.end());
        return path;
    };

    double present_pen = options.present_factor;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
        // Each rip-up pass re-routes every net, so the iteration
        // boundary is the natural (and sufficient) poll point.
        if (Status s = options.deadline.check(
                "rip-up iteration " + std::to_string(iter + 1));
            !s.ok()) {
            result.status = std::move(s);
            result.error = result.status.message();
            return result;
        }
        result.iterations = iter + 1;
        // Rip up everything and reroute under current penalties.
        for (auto &s : link_signals)
            s.keys.clear();
        bool failed = false;
        for (std::size_t e = 0; e < placement.edges.size(); ++e) {
            const PlacedEdge &edge = placement.edges[e];
            const Coord from = placement.loc[edge.src];
            const Coord to = placement.loc[edge.dst];
            const std::int64_t key = signalKey(edge);
            auto path = route_net(from, to, key, present_pen);
            if (path.empty() && from != to) {
                failed = true;
                std::ostringstream os;
                os << "net " << e << " unroutable ((" << from.x << ','
                   << from.y << ") -> (" << to.x << ',' << to.y
                   << "))";
                result.status =
                    Status(ErrorCode::kRouteFailed, os.str());
                result.error = result.status.message();
                break;
            }
            for (int link : path)
                link_signals[link].insert(key);
            result.paths[e] = std::move(path);
        }
        if (failed)
            return result;

        // Congestion check on distinct signals per link.
        int overused = 0;
        for (int l = 0; l < links; ++l) {
            const int used = link_signals[l].count();
            if (used > options.tracks) {
                ++overused;
                history[l] += options.history_increment *
                              (used - options.tracks);
            }
        }
        if (overused == 0) {
            result.success = true;
            break;
        }
        present_pen *= 1.8;
    }

    result.link_usage.assign(links, 0);
    for (int l = 0; l < links; ++l)
        result.link_usage[l] = link_signals[l].count();

    if (!result.success) {
        if (result.error.empty()) {
            int overused = 0, worst = 0;
            for (int l = 0; l < links; ++l) {
                if (result.link_usage[l] > options.tracks) {
                    ++overused;
                    worst = std::max(worst, result.link_usage[l]);
                }
            }
            std::ostringstream os;
            os << "congestion not resolved after "
               << result.iterations << " iterations: " << overused
               << " links over capacity (worst " << worst << "/"
               << options.tracks << " tracks)";
            result.status = Status(ErrorCode::kRouteFailed, os.str());
            result.error = os.str();
        }
        return result;
    }
    result.total_hops = 0;
    for (const auto &path : result.paths)
        result.total_hops += static_cast<int>(path.size());
    for (std::size_t e = 0; e < placement.edges.size(); ++e) {
        const int hops_used =
            static_cast<int>(result.paths[e].size());
        if (placement.edges[e].regs > hops_used)
            result.register_overflow +=
                placement.edges[e].regs - hops_used;
    }
    return result;
}

} // namespace apex::cgra
