#ifndef APEX_CGRA_METRICS_H_
#define APEX_CGRA_METRICS_H_

#include "cgra/route.hpp"
#include "mapper/rewrite.hpp"

/**
 * @file
 * Resource utilization accounting for a placed-and-routed
 * application — the inputs to Table 3 and the interconnect terms of
 * the post-PnR evaluation (Fig. 15).
 */

namespace apex::cgra {

/** Table 3-style utilization of one placed & routed application. */
struct Utilization {
    int pes = 0;        ///< PE tiles executing compute.
    int mems = 0;       ///< Memory tiles.
    int rf_entries = 0; ///< Register-file FIFO slots in PE tiles.
    int ios = 0;        ///< IO pads.
    int regs = 0;       ///< Interconnect pipeline registers.
    int routing_tiles = 0; ///< Tiles used only for routing.
    int sb_hops = 0;    ///< Total switch-box crossings.
};

/** Compute utilization from mapping + placement + routing. */
Utilization utilizationOf(const Fabric &fabric,
                          const mapper::MappedGraph &mapped,
                          const PlacementResult &placement,
                          const RouteResult &routing);

} // namespace apex::cgra

#endif // APEX_CGRA_METRICS_H_
