#ifndef APEX_CGRA_VISUALIZE_H_
#define APEX_CGRA_VISUALIZE_H_

#include <string>

#include "cgra/route.hpp"

/**
 * @file
 * ASCII floorplan visualization of a placed-and-routed application —
 * the quick look a physical designer takes before trusting numbers.
 *
 * One character per tile:
 *   'P' PE executing compute        'M' memory tile in use
 *   'R' register-file FIFO tile     'I'/'O' IO pads
 *   '+' routing-only tile (wires through, tile unused)
 *   '.' idle PE tile                ',' idle MEM tile
 */

namespace apex::cgra {

/** Render the floorplan of a placed & routed application. */
std::string visualize(const Fabric &fabric,
                      const mapper::MappedGraph &mapped,
                      const PlacementResult &placement,
                      const RouteResult &routing);

} // namespace apex::cgra

#endif // APEX_CGRA_VISUALIZE_H_
