#ifndef APEX_CGRA_PLACE_H_
#define APEX_CGRA_PLACE_H_

#include <string>
#include <vector>

#include "cgra/fabric.hpp"
#include "core/status.hpp"
#include "mapper/mapped_graph.hpp"

/**
 * @file
 * Placement: assign every *placeable* mapped node (PE instances,
 * memory tiles, register-file FIFOs — which occupy a PE tile's
 * register file — and IO pads) to a fabric tile of the right kind,
 * minimizing total half-perimeter wirelength with simulated
 * annealing.
 *
 * Pipeline registers (kReg) are not placed: they live on interconnect
 * tracks.  For placement and routing, register chains are contracted
 * into their carrying edge, which remembers how many registers the
 * route must absorb.
 */

namespace apex::cgra {

/** A contracted netlist edge between two placeable nodes. */
struct PlacedEdge {
    int src = -1;  ///< Producer mapped-node id.
    int dst = -1;  ///< Consumer mapped-node id.
    int regs = 0;  ///< Pipeline registers absorbed on this route.
};

/** Annealing parameters. */
struct PlacerOptions {
    unsigned seed = 0xCA11;
    int moves_per_node = 150;
    double initial_temperature = 8.0;
    double cooling = 0.95;
};

/** Result of placement. */
struct PlacementResult {
    bool success = false;
    std::string error; ///< Legacy mirror of status (when failed).
    /** Typed outcome: kBudgetExhausted when the fabric is too
     * small (retrying another seed cannot help), kPlaceFailed
     * otherwise. */
    Status status;
    /** Location per mapped node; kReg (and const-only) nodes get
     * {-1, -1} — they do not occupy tiles. */
    std::vector<Coord> loc;
    std::vector<PlacedEdge> edges; ///< Contracted netlist.
    double wirelength = 0.0;       ///< Final HPWL sum.
};

/** @return true when @p kind occupies a fabric tile. */
bool isPlaceable(mapper::MappedKind kind);

/** Contract kReg chains: the netlist the placer/router work on. */
std::vector<PlacedEdge>
contractRegisters(const mapper::MappedGraph &mapped);

/** Place @p mapped onto @p fabric (homogeneous PEs). */
PlacementResult place(const Fabric &fabric,
                      const mapper::MappedGraph &mapped,
                      const PlacerOptions &options = {});

/**
 * Heterogeneous placement: every kPe node carries a PE type in
 * @p pe_type_of_node (indexed by mapped-node id; ignored for
 * non-PE nodes), and the fabric's PE tiles are interleaved among
 * @p num_pe_types type-specialized tile pools (tile i serves type
 * i % num_pe_types).  Register-file nodes may use any PE tile pool
 * (they only borrow the tile's register file) and are assigned to
 * pool 0.
 */
PlacementResult placeHetero(const Fabric &fabric,
                            const mapper::MappedGraph &mapped,
                            const std::vector<int> &pe_type_of_node,
                            int num_pe_types,
                            const PlacerOptions &options = {});

} // namespace apex::cgra

#endif // APEX_CGRA_PLACE_H_
