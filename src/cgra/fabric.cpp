#include "cgra/fabric.hpp"

#include <cassert>

namespace apex::cgra {

Fabric::Fabric(int width, int height, int mem_period)
    : width_(width), height_(height), mem_period_(mem_period)
{
    assert(width > 0 && height > 0 && mem_period > 1);
}

TileKind
Fabric::kindAt(Coord c) const
{
    assert(inBounds(c));
    if (c.y == -1 || c.y == height_)
        return TileKind::kIo;
    return (c.x % mem_period_ == mem_period_ - 1) ? TileKind::kMem
                                                  : TileKind::kPe;
}

bool
Fabric::inBounds(Coord c) const
{
    return c.x >= 0 && c.x < width_ && c.y >= -1 && c.y <= height_;
}

std::vector<Coord>
Fabric::peTiles() const
{
    std::vector<Coord> result;
    for (int y = 0; y < height_; ++y)
        for (int x = 0; x < width_; ++x)
            if (kindAt({x, y}) == TileKind::kPe)
                result.push_back({x, y});
    return result;
}

std::vector<Coord>
Fabric::memTiles() const
{
    std::vector<Coord> result;
    for (int y = 0; y < height_; ++y)
        for (int x = 0; x < width_; ++x)
            if (kindAt({x, y}) == TileKind::kMem)
                result.push_back({x, y});
    return result;
}

std::vector<Coord>
Fabric::ioTiles() const
{
    std::vector<Coord> result;
    for (int x = 0; x < width_; ++x)
        result.push_back({x, -1});
    for (int x = 0; x < width_; ++x)
        result.push_back({x, height_});
    return result;
}

int
Fabric::indexOf(Coord c) const
{
    assert(inBounds(c));
    return (c.y + 1) * width_ + c.x;
}

Coord
Fabric::coordAt(int index) const
{
    return Coord{index % width_, index / width_ - 1};
}

int
Fabric::tileCount() const
{
    return width_ * (height_ + 2);
}

std::vector<Coord>
Fabric::neighbours(Coord c) const
{
    std::vector<Coord> result;
    const Coord candidates[4] = {{c.x - 1, c.y},
                                 {c.x + 1, c.y},
                                 {c.x, c.y - 1},
                                 {c.x, c.y + 1}};
    for (const Coord &n : candidates) {
        if (!inBounds(n))
            continue;
        // IO rows only connect vertically into the array, not along
        // the boundary.
        if ((c.y == -1 || c.y == height_) && n.y == c.y)
            continue;
        result.push_back(n);
    }
    return result;
}

int
Fabric::linkIndex(Coord c, Coord n) const
{
    // Four directions per source tile: 0=W, 1=E, 2=N, 3=S.
    int dir;
    if (n.x == c.x - 1)
        dir = 0;
    else if (n.x == c.x + 1)
        dir = 1;
    else if (n.y == c.y - 1)
        dir = 2;
    else
        dir = 3;
    return indexOf(c) * 4 + dir;
}

int
Fabric::linkCount() const
{
    return tileCount() * 4;
}

std::pair<Coord, Coord>
Fabric::linkEnds(int link) const
{
    const Coord src = coordAt(link / 4);
    const int dir = link % 4;
    Coord dst = src;
    switch (dir) {
      case 0: dst.x -= 1; break;
      case 1: dst.x += 1; break;
      case 2: dst.y -= 1; break;
      default: dst.y += 1; break;
    }
    return {src, dst};
}

} // namespace apex::cgra
