#include "cgra/metrics.hpp"

#include <set>

namespace apex::cgra {

using mapper::MappedKind;

Utilization
utilizationOf(const Fabric &fabric,
              const mapper::MappedGraph &mapped,
              const PlacementResult &placement,
              const RouteResult &routing)
{
    Utilization u;
    std::set<int> occupied;
    for (std::size_t id = 0; id < mapped.nodes.size(); ++id) {
        const mapper::MappedNode &n = mapped.nodes[id];
        switch (n.kind) {
          case MappedKind::kPe:
            ++u.pes;
            break;
          case MappedKind::kMem:
            ++u.mems;
            break;
          case MappedKind::kRegFile:
            u.rf_entries += n.depth;
            break;
          case MappedKind::kInput:
          case MappedKind::kInputBit:
          case MappedKind::kOutput:
          case MappedKind::kOutputBit:
            ++u.ios;
            break;
          case MappedKind::kReg:
            ++u.regs;
            break;
        }
        if (isPlaceable(n.kind) && placement.loc[id].x >= 0)
            occupied.insert(fabric.indexOf(placement.loc[id]));
    }

    u.sb_hops = routing.total_hops;
    for (int tile : routing.tilesTouched(fabric)) {
        if (!occupied.count(tile))
            ++u.routing_tiles;
    }
    return u;
}

} // namespace apex::cgra
