#include "cgra/place.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>

#include "core/fault.hpp"
#include "runtime/telemetry.hpp"

namespace apex::cgra {

using mapper::MappedGraph;
using mapper::MappedKind;

bool
isPlaceable(MappedKind kind)
{
    switch (kind) {
      case MappedKind::kPe:
      case MappedKind::kMem:
      case MappedKind::kRegFile:
      case MappedKind::kInput:
      case MappedKind::kInputBit:
      case MappedKind::kOutput:
      case MappedKind::kOutputBit:
        return true;
      default:
        return false;
    }
}

std::vector<PlacedEdge>
contractRegisters(const MappedGraph &mapped)
{
    std::vector<PlacedEdge> edges;
    for (std::size_t id = 0; id < mapped.nodes.size(); ++id) {
        const mapper::MappedNode &n = mapped.nodes[id];
        if (!isPlaceable(n.kind))
            continue;
        for (int src : n.inputs) {
            PlacedEdge e;
            e.dst = static_cast<int>(id);
            int cursor = src;
            while (mapped.nodes[cursor].kind == MappedKind::kReg) {
                ++e.regs;
                cursor = mapped.nodes[cursor].inputs[0];
            }
            e.src = cursor;
            edges.push_back(e);
        }
    }
    return edges;
}

namespace {

int
manhattan(Coord a, Coord b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

} // namespace

PlacementResult
place(const Fabric &fabric, const MappedGraph &mapped,
      const PlacerOptions &options)
{
    return placeHetero(fabric, mapped, {}, 1, options);
}

PlacementResult
placeHetero(const Fabric &fabric, const MappedGraph &mapped,
            const std::vector<int> &pe_type_of_node,
            int num_pe_types, const PlacerOptions &options)
{
    APEX_SPAN("place",
              {{"nodes", static_cast<long long>(mapped.nodes.size())},
               {"seed", static_cast<long long>(options.seed)}});
    telemetry::StageTimer timer(
        telemetry::histogram("apex.place.ms"));
    telemetry::counter("apex.place.attempts").add(1);

    PlacementResult result;
    struct OutcomeCounters {
        const PlacementResult &r;
        ~OutcomeCounters()
        {
            if (!r.success)
                telemetry::counter("apex.place.failures").add(1);
        }
    } outcome_counters{result};
    if (Status fault = checkFault(FaultStage::kPlace); !fault.ok()) {
        result.status = std::move(fault);
        result.error = result.status.toString();
        return result;
    }
    result.loc.assign(mapped.nodes.size(), Coord{-1, -1});
    result.edges = contractRegisters(mapped);

    // Slot classes: one per PE type, then MEM, then IO.
    const int num_classes = num_pe_types + 2;
    const int mem_class = num_pe_types;
    const int io_class = num_pe_types + 1;

    auto class_of = [&](std::size_t id) {
        switch (mapped.nodes[id].kind) {
          case MappedKind::kPe: {
            const int type =
                id < pe_type_of_node.size() ? pe_type_of_node[id]
                                            : 0;
            return std::min(type, num_pe_types - 1);
          }
          case MappedKind::kRegFile:
            return 0; // borrows a PE tile's register file
          case MappedKind::kMem:
            return mem_class;
          default:
            return io_class;
        }
    };

    // Collect placeable nodes per class.
    std::vector<std::vector<int>> nodes_of_class(num_classes);
    for (std::size_t id = 0; id < mapped.nodes.size(); ++id) {
        if (!isPlaceable(mapped.nodes[id].kind))
            continue;
        nodes_of_class[class_of(id)].push_back(
            static_cast<int>(id));
    }

    // PE tile pools: interleave by tile index among the PE types.
    std::vector<std::vector<Coord>> slots_of_class(num_classes);
    {
        const auto pe_tiles = fabric.peTiles();
        for (std::size_t i = 0; i < pe_tiles.size(); ++i) {
            slots_of_class[i % num_pe_types].push_back(pe_tiles[i]);
        }
        slots_of_class[mem_class] = fabric.memTiles();
        slots_of_class[io_class] = fabric.ioTiles();
    }

    for (int c = 0; c < num_classes; ++c) {
        if (nodes_of_class[c].size() > slots_of_class[c].size()) {
            std::ostringstream os;
            os << "fabric too small: class " << c << " needs "
               << nodes_of_class[c].size() << " tiles, has "
               << slots_of_class[c].size();
            result.status =
                Status(ErrorCode::kBudgetExhausted, os.str());
            result.error = os.str();
            return result;
        }
    }

    // Initial placement: nodes in order onto slots in order (slots
    // enumerate row-major, which clusters connected nodes decently).
    std::mt19937 rng(options.seed);
    std::vector<int> slot_of_node(mapped.nodes.size(), -1);
    std::vector<std::vector<int>> node_in_slot(num_classes);
    for (int c = 0; c < num_classes; ++c) {
        node_in_slot[c].assign(slots_of_class[c].size(), -1);
        for (std::size_t k = 0; k < nodes_of_class[c].size(); ++k) {
            const int node = nodes_of_class[c][k];
            slot_of_node[node] = static_cast<int>(k);
            node_in_slot[c][k] = node;
            result.loc[node] = slots_of_class[c][k];
        }
    }

    // Incident contracted edges per node.
    std::vector<std::vector<int>> incident(mapped.nodes.size());
    for (std::size_t e = 0; e < result.edges.size(); ++e) {
        incident[result.edges[e].src].push_back(
            static_cast<int>(e));
        incident[result.edges[e].dst].push_back(
            static_cast<int>(e));
    }

    auto edge_cost = [&](const PlacedEdge &e) {
        return static_cast<double>(
            manhattan(result.loc[e.src], result.loc[e.dst]));
    };
    auto node_cost = [&](int node) {
        double cost = 0.0;
        for (int e : incident[node])
            cost += edge_cost(result.edges[e]);
        return cost;
    };

    // Simulated annealing: swap a node with another node (or empty
    // slot) of the same class.
    int placeable_total = 0;
    for (int c = 0; c < num_classes; ++c)
        placeable_total += static_cast<int>(nodes_of_class[c].size());
    const int total_moves = placeable_total * options.moves_per_node;
    double temperature = options.initial_temperature;
    std::uniform_real_distribution<double> uniform(0.0, 1.0);

    for (int move = 0; move < total_moves; ++move) {
        if (move > 0 && move % std::max(placeable_total, 1) == 0)
            temperature *= options.cooling;

        // Pick a random placeable node.
        int c;
        do {
            c = static_cast<int>(rng() % num_classes);
        } while (nodes_of_class[c].empty());
        const int node =
            nodes_of_class[c][rng() % nodes_of_class[c].size()];
        const int new_slot =
            static_cast<int>(rng() % slots_of_class[c].size());
        const int old_slot = slot_of_node[node];
        if (new_slot == old_slot)
            continue;
        const int other = node_in_slot[c][new_slot];

        double before = node_cost(node);
        if (other >= 0)
            before += node_cost(other);

        // Apply.
        result.loc[node] = slots_of_class[c][new_slot];
        if (other >= 0)
            result.loc[other] = slots_of_class[c][old_slot];

        double after = node_cost(node);
        if (other >= 0)
            after += node_cost(other);

        const double delta = after - before;
        if (delta <= 0.0 ||
            uniform(rng) < std::exp(-delta / std::max(temperature,
                                                      1e-3))) {
            slot_of_node[node] = new_slot;
            node_in_slot[c][new_slot] = node;
            node_in_slot[c][old_slot] = other;
            if (other >= 0)
                slot_of_node[other] = old_slot;
        } else {
            // Revert.
            result.loc[node] = slots_of_class[c][old_slot];
            if (other >= 0)
                result.loc[other] = slots_of_class[c][new_slot];
        }
    }

    result.wirelength = 0.0;
    for (const PlacedEdge &e : result.edges)
        result.wirelength += edge_cost(e);
    result.success = true;
    return result;
}

} // namespace apex::cgra
