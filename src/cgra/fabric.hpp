#ifndef APEX_CGRA_FABRIC_H_
#define APEX_CGRA_FABRIC_H_

#include <string>
#include <vector>

#include "model/tech.hpp"

/**
 * @file
 * CGRA fabric model (Fig. 1): a grid of PE and MEM tiles connected by
 * a statically-configured interconnect of switch boxes (SBs) with
 * five 16-bit tracks per side per direction and connection boxes
 * (CBs) on every tile input.  IO pads sit on the top and bottom
 * boundary rows.
 *
 * Following the AHA Amber layout the paper builds on, every fourth
 * column holds memory tiles; the rest are PE tiles.  The routing
 * abstraction is per-link: each directed link between adjacent tiles
 * carries `TechModel::sb_tracks` wires, each with a configurable
 * pipeline register (Sec. 4.3: "our switch boxes have configurable
 * pipelining registers on every track").
 */

namespace apex::cgra {

/** Kind of fabric tile. */
enum class TileKind : std::uint8_t { kPe, kMem, kIo };

/** Tile coordinate; IO rows are y == -1 (top) and y == height. */
struct Coord {
    int x = 0;
    int y = 0;
    auto operator<=>(const Coord &) const = default;
};

/** The CGRA fabric. */
class Fabric {
  public:
    /**
     * @param width       Tiles per row (paper: 32).
     * @param height      Tiles per column (paper: 16).
     * @param mem_period  Every mem_period-th column is a MEM column.
     */
    Fabric(int width, int height, int mem_period = 4);

    int width() const { return width_; }
    int height() const { return height_; }

    /** @return tile kind at (x, y); IO on the boundary rows. */
    TileKind kindAt(Coord c) const;

    /** @return true for in-fabric coordinates incl. the IO rows. */
    bool inBounds(Coord c) const;

    /** @return all PE-tile coordinates. */
    std::vector<Coord> peTiles() const;
    /** @return all MEM-tile coordinates. */
    std::vector<Coord> memTiles() const;
    /** @return all IO slots (top and bottom rows). */
    std::vector<Coord> ioTiles() const;

    /** Dense index of a coordinate (for per-tile arrays). */
    int indexOf(Coord c) const;
    /** Inverse of indexOf(). */
    Coord coordAt(int index) const;
    /** Number of dense indices (tiles + IO slots). */
    int tileCount() const;

    /** 4-neighbourhood of @p c restricted to the fabric. */
    std::vector<Coord> neighbours(Coord c) const;

    /** Dense index of the directed link c -> n (adjacent tiles). */
    int linkIndex(Coord c, Coord n) const;
    /** Number of directed links. */
    int linkCount() const;
    /** Endpoints of a link index (src, dst). */
    std::pair<Coord, Coord> linkEnds(int link) const;

  private:
    int width_;
    int height_;
    int mem_period_;
};

} // namespace apex::cgra

#endif // APEX_CGRA_FABRIC_H_
