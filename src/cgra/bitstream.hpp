#ifndef APEX_CGRA_BITSTREAM_H_
#define APEX_CGRA_BITSTREAM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cgra/route.hpp"
#include "mapper/rewrite.hpp"

/**
 * @file
 * Configuration bitstream generation: serialize the PE configurations
 * (opcodes, mux selects, constants, output selects), the switch-box
 * link usage and the connection-box bindings into a deterministic
 * word stream — the artifact that would program the fabric.
 */

namespace apex::cgra {

/** A generated bitstream. */
struct Bitstream {
    std::vector<std::uint64_t> words; ///< Packed config words.
    int bits = 0;                     ///< Total payload bits.

    /** FNV-1a digest (deterministic identity for tests/logs). */
    std::uint64_t digest() const;
};

/** Serialize the full CGRA configuration. */
Bitstream generateBitstream(const Fabric &fabric,
                            const mapper::MappedGraph &mapped,
                            const std::vector<mapper::RewriteRule>
                                &rules,
                            const pe::PeSpec &spec,
                            const PlacementResult &placement,
                            const RouteResult &routing);

/** One decoded PE tile configuration. */
struct DecodedPeTile {
    int tile_index = -1;  ///< Fabric::indexOf of the PE tile.
    pe::PeConfig config;  ///< Reconstructed configuration.
};

/** A decoded bitstream (see decodeBitstream). */
struct DecodedBitstream {
    int width = 0;
    int height = 0;
    std::vector<DecodedPeTile> pes;
    std::vector<int> rf_depths;
    /** (link index, wires) pairs for every used link. */
    std::vector<std::pair<int, int>> links;
};

/**
 * Decode a bitstream produced by generateBitstream() — the loader
 * side of the configuration path, enabling true round-trip checks.
 *
 * The layout is self-describing given the PE specification and the
 * PE / register-file tile counts (which a loader knows from the
 * accompanying design database).
 *
 * @return the decoded records, or nullopt on a truncated stream.
 */
std::optional<DecodedBitstream>
decodeBitstream(const Bitstream &bitstream, const pe::PeSpec &spec,
                int pe_count, int rf_count);

} // namespace apex::cgra

#endif // APEX_CGRA_BITSTREAM_H_
