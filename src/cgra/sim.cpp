#include "cgra/sim.hpp"

#include <algorithm>

#include "pipeline/app_pipeline.hpp"

namespace apex::cgra {

using mapper::MappedGraph;
using mapper::MappedKind;
using mapper::MappedNode;

namespace {

/** Evaluate one PE instance on the currently-visible input values. */
std::uint64_t
evalPe(const MappedNode &node, const mapper::RewriteRule &rule,
       const pe::PeSpec &spec, const pe::PeFunctionalModel &model,
       const std::vector<std::uint64_t> &visible)
{
    pe::PeConfig cfg = rule.config;
    for (std::size_t c = 0; c < rule.const_bindings.size(); ++c)
        cfg.const_val[rule.const_bindings[c].second] =
            node.const_vals[c];

    pe::PeInputs in;
    in.word.assign(spec.word_inputs.size(), 0);
    in.bit.assign(spec.bit_inputs.size(), 0);
    for (std::size_t k = 0; k < rule.placeholders.size(); ++k) {
        const std::uint64_t v = visible[node.inputs[k]];
        if (rule.pattern.op(rule.placeholders[k]) ==
            ir::Op::kInputBit) {
            in.bit[rule.input_ports[k]] = v & 1;
        } else {
            in.word[rule.input_ports[k]] = v;
        }
    }
    pe::PeOutputs out;
    if (!model.evaluate(cfg, in, &out))
        return 0;
    return rule.word_output ? out.word : out.bit;
}

} // namespace

CycleSimulator::CycleSimulator(
    const MappedGraph &mapped,
    const std::vector<mapper::RewriteRule> &rules,
    const pe::PeSpec &spec)
    : mapped_(mapped), rules_(rules), spec_(spec), model_(spec),
      topo_(mapped.topoOrder())
{
    for (std::size_t id = 0; id < mapped.nodes.size(); ++id) {
        const MappedKind k = mapped.nodes[id].kind;
        if (k == MappedKind::kInput || k == MappedKind::kInputBit)
            input_pads_.push_back(static_cast<int>(id));
        if (k == MappedKind::kOutput || k == MappedKind::kOutputBit)
            output_pads_.push_back(static_cast<int>(id));
    }
    auto by_app_node = [&](int a, int b) {
        return mapped.nodes[a].app_node < mapped.nodes[b].app_node;
    };
    std::sort(input_pads_.begin(), input_pads_.end(), by_app_node);
    std::sort(output_pads_.begin(), output_pads_.end(), by_app_node);
}

SimTrace
CycleSimulator::run(
    const std::vector<std::vector<std::uint64_t>> &input_streams,
    int cycles)
{
    const int pe_latency = std::max(spec_.pipeline_stages, 0);
    const std::size_t n = mapped_.nodes.size();

    // Per-node latency and delay queue: front() is the value computed
    // `latency` cycles ago (zero-filled at reset).
    std::vector<int> latency(n, 0);
    std::vector<std::deque<std::uint64_t>> pipe(n);
    for (std::size_t id = 0; id < n; ++id) {
        latency[id] =
            pipeline::nodeLatency(mapped_.nodes[id], pe_latency);
        pipe[id].assign(latency[id], 0);
    }

    SimTrace trace;
    trace.cycles = cycles;
    trace.outputs.assign(output_pads_.size(), {});
    const auto arrivals =
        pipeline::arrivalCycles(mapped_, pe_latency);
    for (int pad : output_pads_)
        trace.latency.push_back(arrivals[pad]);

    std::vector<std::uint64_t> visible(n, 0);

    for (int t = 0; t < cycles; ++t) {
        // Phase 1: input pads take this cycle's samples; latency
        // nodes expose the head of their delay queue.
        for (std::size_t i = 0; i < input_pads_.size(); ++i) {
            const auto *stream =
                i < input_streams.size() ? &input_streams[i]
                                         : nullptr;
            visible[input_pads_[i]] =
                (stream && t < static_cast<int>(stream->size()))
                    ? (*stream)[t]
                    : 0;
        }
        for (std::size_t id = 0; id < n; ++id)
            if (latency[id] > 0)
                visible[id] = pipe[id].front();

        // Phase 2: settle the combinational nodes in topo order.
        for (int id : topo_) {
            if (latency[id] > 0)
                continue;
            const MappedNode &node = mapped_.nodes[id];
            switch (node.kind) {
              case MappedKind::kOutput:
              case MappedKind::kOutputBit:
                visible[id] = visible[node.inputs[0]];
                break;
              case MappedKind::kPe:
                visible[id] = evalPe(node, rules_[node.rule], spec_,
                                     model_, visible);
                break;
              default:
                break; // inputs already bound; no other latency-0 kind
            }
        }

        // Phase 3: latency nodes capture this cycle's inputs.
        for (std::size_t id = 0; id < n; ++id) {
            if (latency[id] == 0)
                continue;
            const MappedNode &node = mapped_.nodes[id];
            const std::uint64_t next =
                node.kind == MappedKind::kPe
                    ? evalPe(node, rules_[node.rule], spec_, model_,
                             visible)
                    : visible[node.inputs[0]];
            pipe[id].pop_front();
            pipe[id].push_back(next);
        }

        for (std::size_t o = 0; o < output_pads_.size(); ++o)
            trace.outputs[o].push_back(visible[output_pads_[o]]);
    }
    return trace;
}

} // namespace apex::cgra
