#ifndef APEX_CGRA_SIM_H_
#define APEX_CGRA_SIM_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "mapper/rewrite.hpp"
#include "mapper/select.hpp"

/**
 * @file
 * Cycle-level CGRA simulator — the Synopsys-VCS-simulation substitute
 * (Sec. 4, step 3c).  Streams input samples through the mapped,
 * pipelined application: every node with latency L produces
 * out(t) = f(in(t - L)), with PE instances evaluated through the PE
 * functional model under their rewrite-rule configuration, memory
 * and register nodes delaying by one cycle, and register files by
 * their FIFO depth.
 *
 * The golden property (checked by the integration tests): after the
 * pipeline fills, each output stream equals the combinational
 * reference (ir::Interpreter) applied to the input stream, delayed
 * by that output's latency.
 */

namespace apex::cgra {

/** Streaming simulation result. */
struct SimTrace {
    /** outputs[o][t]: value of output pad o (application output
     * order) at cycle t. */
    std::vector<std::vector<std::uint64_t>> outputs;
    /** Latency (cycles) of each output pad. */
    std::vector<int> latency;
    int cycles = 0;
};

/** Cycle-level simulator over a mapped application. */
class CycleSimulator {
  public:
    CycleSimulator(const mapper::MappedGraph &mapped,
                   const std::vector<mapper::RewriteRule> &rules,
                   const pe::PeSpec &spec);

    /**
     * Run for @p cycles cycles.
     *
     * @param input_streams  Per input pad (application input order):
     *                       one value per cycle; shorter streams are
     *                       zero-extended.
     */
    SimTrace run(const std::vector<std::vector<std::uint64_t>>
                     &input_streams,
                 int cycles);

  private:
    const mapper::MappedGraph &mapped_;
    const std::vector<mapper::RewriteRule> &rules_;
    const pe::PeSpec &spec_;
    pe::PeFunctionalModel model_;
    std::vector<int> topo_;
    std::vector<int> input_pads_;  ///< In application input order.
    std::vector<int> output_pads_; ///< In application output order.
};

} // namespace apex::cgra

#endif // APEX_CGRA_SIM_H_
