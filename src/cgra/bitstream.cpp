#include "cgra/bitstream.hpp"

namespace apex::cgra {

namespace {

/** Little bit-packing writer. */
class BitWriter {
  public:
    void
    write(std::uint64_t value, int bits)
    {
        for (int b = 0; b < bits; ++b) {
            const int word = total_ / 64;
            const int off = total_ % 64;
            if (word >= static_cast<int>(words_.size()))
                words_.push_back(0);
            words_[word] |= ((value >> b) & 1) << off;
            ++total_;
        }
    }

    Bitstream
    finish()
    {
        Bitstream bs;
        bs.words = std::move(words_);
        bs.bits = total_;
        return bs;
    }

  private:
    std::vector<std::uint64_t> words_;
    int total_ = 0;
};

/** Bit-unpacking reader matching BitWriter's layout. */
class BitReader {
  public:
    explicit BitReader(const Bitstream &bs) : bs_(bs) {}

    bool
    read(int bits, std::uint64_t *value)
    {
        if (pos_ + bits > bs_.bits)
            return false;
        std::uint64_t v = 0;
        for (int b = 0; b < bits; ++b) {
            const int word = pos_ / 64;
            const int off = pos_ % 64;
            v |= ((bs_.words[word] >> off) & 1) << b;
            ++pos_;
        }
        *value = v;
        return true;
    }

    int remaining() const { return bs_.bits - pos_; }

  private:
    const Bitstream &bs_;
    int pos_ = 0;
};

} // namespace

std::uint64_t
Bitstream::digest() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t w : words) {
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xFF;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

Bitstream
generateBitstream(const Fabric &fabric,
                  const mapper::MappedGraph &mapped,
                  const std::vector<mapper::RewriteRule> &rules,
                  const pe::PeSpec &spec,
                  const PlacementResult &placement,
                  const RouteResult &routing)
{
    BitWriter writer;

    // Header: fabric geometry.
    writer.write(static_cast<std::uint64_t>(fabric.width()), 8);
    writer.write(static_cast<std::uint64_t>(fabric.height()), 8);

    // PE tile configurations, in tile order for determinism.
    for (std::size_t id = 0; id < mapped.nodes.size(); ++id) {
        const mapper::MappedNode &n = mapped.nodes[id];
        if (n.kind != mapper::MappedKind::kPe)
            continue;
        const Coord loc = placement.loc[id];
        writer.write(static_cast<std::uint64_t>(
                         fabric.indexOf(loc)),
                     16);
        const mapper::RewriteRule &rule = rules[n.rule];
        pe::PeConfig cfg = rule.config;
        for (std::size_t c = 0; c < rule.const_bindings.size(); ++c)
            cfg.const_val[rule.const_bindings[c].second] =
                n.const_vals[c];

        for (int sel : cfg.mux_sel)
            writer.write(static_cast<std::uint64_t>(sel), 4);
        for (int b : spec.multi_op_blocks) {
            writer.write(
                static_cast<std::uint64_t>(cfg.block_op[b]), 6);
        }
        for (std::uint64_t v : cfg.const_val)
            writer.write(v, 16);
        for (std::uint64_t t : cfg.lut_table)
            writer.write(t, 8);
        writer.write(static_cast<std::uint64_t>(cfg.word_out_sel),
                     4);
        writer.write(static_cast<std::uint64_t>(cfg.bit_out_sel), 4);
    }

    // Register-file FIFO depths.
    for (const mapper::MappedNode &n : mapped.nodes) {
        if (n.kind == mapper::MappedKind::kRegFile)
            writer.write(static_cast<std::uint64_t>(n.depth), 8);
    }

    // Switch-box configuration: per used link, its usage count and
    // the register count absorbed (tracks are interchangeable in the
    // per-link abstraction, so usage suffices).
    for (std::size_t l = 0; l < routing.link_usage.size(); ++l) {
        if (routing.link_usage[l] == 0)
            continue;
        writer.write(static_cast<std::uint64_t>(l), 16);
        writer.write(
            static_cast<std::uint64_t>(routing.link_usage[l]), 4);
    }

    return writer.finish();
}

std::optional<DecodedBitstream>
decodeBitstream(const Bitstream &bitstream, const pe::PeSpec &spec,
                int pe_count, int rf_count)
{
    BitReader reader(bitstream);
    DecodedBitstream out;
    std::uint64_t v;

    if (!reader.read(8, &v))
        return std::nullopt;
    out.width = static_cast<int>(v);
    if (!reader.read(8, &v))
        return std::nullopt;
    out.height = static_cast<int>(v);

    for (int p = 0; p < pe_count; ++p) {
        DecodedPeTile tile;
        tile.config = pe::defaultConfig(spec);
        if (!reader.read(16, &v))
            return std::nullopt;
        tile.tile_index = static_cast<int>(v);
        for (std::size_t m = 0; m < spec.muxes.size(); ++m) {
            if (!reader.read(4, &v))
                return std::nullopt;
            tile.config.mux_sel[m] = static_cast<int>(v);
        }
        for (int b : spec.multi_op_blocks) {
            if (!reader.read(6, &v))
                return std::nullopt;
            tile.config.block_op[b] = static_cast<ir::Op>(v);
        }
        for (std::size_t c = 0; c < spec.const_regs.size(); ++c) {
            if (!reader.read(16, &v))
                return std::nullopt;
            tile.config.const_val[c] = v;
        }
        for (std::size_t l = 0; l < spec.lut_blocks.size(); ++l) {
            if (!reader.read(8, &v))
                return std::nullopt;
            tile.config.lut_table[l] = v;
        }
        if (!reader.read(4, &v))
            return std::nullopt;
        tile.config.word_out_sel = static_cast<int>(v);
        if (!reader.read(4, &v))
            return std::nullopt;
        tile.config.bit_out_sel = static_cast<int>(v);
        out.pes.push_back(std::move(tile));
    }

    for (int r = 0; r < rf_count; ++r) {
        if (!reader.read(8, &v))
            return std::nullopt;
        out.rf_depths.push_back(static_cast<int>(v));
    }

    while (reader.remaining() >= 20) {
        std::uint64_t link, wires;
        if (!reader.read(16, &link) || !reader.read(4, &wires))
            return std::nullopt;
        out.links.emplace_back(static_cast<int>(link),
                               static_cast<int>(wires));
    }
    return out;
}

} // namespace apex::cgra
