#include "pipeline/app_pipeline.hpp"

#include <algorithm>

#include "runtime/telemetry.hpp"

namespace apex::pipeline {

using mapper::MappedGraph;
using mapper::MappedKind;
using mapper::MappedNode;

int
nodeLatency(const MappedNode &node, int pe_latency)
{
    switch (node.kind) {
      case MappedKind::kPe:      return pe_latency;
      case MappedKind::kMem:     return 1;
      case MappedKind::kReg:     return 1;
      case MappedKind::kRegFile: return node.depth;
      default:                   return 0;
    }
}

std::vector<int>
arrivalCycles(const MappedGraph &mapped, int pe_latency)
{
    std::vector<int> arrival(mapped.nodes.size(), 0);
    for (int id : mapped.topoOrder()) {
        const MappedNode &n = mapped.nodes[id];
        int in_arrival = 0;
        for (int src : n.inputs)
            in_arrival = std::max(in_arrival, arrival[src]);
        arrival[id] = in_arrival + nodeLatency(n, pe_latency);
    }
    return arrival;
}

std::vector<int>
pipelineSkew(const MappedGraph &mapped, int pe_latency)
{
    // Skew = extra delay introduced by PE pipelining (plus the
    // compensation registers balancing it) relative to the
    // functional schedule.  The application's own registers (window
    // taps, FIFOs) are *functional* delays and contribute no skew —
    // they define WHICH data elements combine, and branch delay
    // matching must preserve those offsets.
    std::vector<int> skew(mapped.nodes.size(), 0);
    for (int id : mapped.topoOrder()) {
        const MappedNode &n = mapped.nodes[id];
        int in_skew = 0;
        for (int src : n.inputs)
            in_skew = std::max(in_skew, skew[src]);
        int own = 0;
        switch (n.kind) {
          case MappedKind::kPe:
            own = pe_latency;
            break;
          case MappedKind::kReg:
            own = n.is_balancing ? 1 : 0;
            break;
          case MappedKind::kRegFile:
            own = n.balancing_regs;
            break;
          default:
            break;
        }
        skew[id] = in_skew + own;
    }
    return skew;
}

AppPipelineResult
balanceBranchDelays(MappedGraph *mapped, int pe_latency)
{
    AppPipelineResult result;

    // One topo pass, tracking the *post-insertion* skew: inserted
    // registers compensate a source's skew deficit, so after
    // insertion every input of a node carries the same skew and the
    // node's output skew is that value plus its own PE latency.
    const std::vector<int> order = mapped->topoOrder();
    std::vector<int> skew(mapped->nodes.size(), 0);
    for (int id : order) {
        // No reference into `nodes` may live across the push_back
        // below — it reallocates the vector.
        const std::size_t arity = mapped->nodes[id].inputs.size();
        int latest = 0;
        for (std::size_t k = 0; k < arity; ++k)
            latest = std::max(latest, skew[mapped->nodes[id].inputs[k]]);
        if (arity >= 2) {
            for (std::size_t k = 0; k < arity; ++k) {
                int src = mapped->nodes[id].inputs[k];
                int lag = latest - skew[src];
                while (lag > 0) {
                    MappedNode reg;
                    reg.kind = MappedKind::kReg;
                    reg.inputs = {src};
                    reg.is_balancing = true;
                    reg.name = "bdm_reg";
                    src = static_cast<int>(mapped->nodes.size());
                    mapped->nodes.push_back(std::move(reg));
                    skew.push_back(latest - lag + 1);
                    ++result.registers_added;
                    --lag;
                }
                mapped->nodes[id].inputs[k] = src;
            }
        }
        int own = 0;
        switch (mapped->nodes[id].kind) {
          case MappedKind::kPe:
            own = pe_latency;
            break;
          case MappedKind::kReg:
            own = mapped->nodes[id].is_balancing ? 1 : 0;
            break;
          case MappedKind::kRegFile:
            own = mapped->nodes[id].balancing_regs;
            break;
          default:
            break;
        }
        skew[id] = latest + own;
    }

    const auto final_arrival = arrivalCycles(*mapped, pe_latency);
    for (std::size_t id = 0; id < mapped->nodes.size(); ++id) {
        const MappedKind k = mapped->nodes[id].kind;
        if (k == MappedKind::kOutput || k == MappedKind::kOutputBit)
            result.max_latency =
                std::max(result.max_latency, final_arrival[id]);
    }
    return result;
}

AppPipelineResult
foldRegisterChains(MappedGraph *mapped,
                   const AppPipelineOptions &options)
{
    AppPipelineResult result;
    if (!options.use_register_files)
        return result;

    const int n = static_cast<int>(mapped->nodes.size());
    std::vector<int> consumer_count(n, 0);
    std::vector<int> sole_consumer(n, -1);
    for (int id = 0; id < n; ++id) {
        for (int src : mapped->nodes[id].inputs) {
            ++consumer_count[src];
            sole_consumer[src] = id;
        }
    }

    // A reg is an interior chain link when its single consumer is
    // another register; a chain *tail* is a reg that is not interior.
    auto interior = [&](int id) {
        return mapped->nodes[id].kind == MappedKind::kReg &&
               consumer_count[id] == 1 &&
               mapped->nodes[sole_consumer[id]].kind ==
                   MappedKind::kReg;
    };

    std::vector<int> replacement(n, -1); // chain tail -> RF node id
    std::vector<bool> dead(n, false);

    for (int id = 0; id < n; ++id) {
        const MappedNode &node = mapped->nodes[id];
        if (node.kind != MappedKind::kReg || dead[id] ||
            interior(id)) {
            continue;
        }
        // `id` is a chain tail: walk upstream collecting links that
        // are dedicated to this chain.
        std::vector<int> chain = {id};
        int cursor = node.inputs[0];
        while (cursor >= 0 && !dead[cursor] && interior(cursor)) {
            chain.push_back(cursor);
            cursor = mapped->nodes[cursor].inputs[0];
        }
        const int length = static_cast<int>(chain.size());
        if (length <= options.rf_cutoff)
            continue;
        MappedNode rf;
        rf.kind = MappedKind::kRegFile;
        rf.depth = length;
        for (int link : chain)
            rf.balancing_regs += mapped->nodes[link].is_balancing;
        rf.inputs = {cursor};
        rf.name = "rf_fifo";
        const int rf_id = static_cast<int>(mapped->nodes.size());
        mapped->nodes.push_back(std::move(rf));
        replacement[id] = rf_id;
        for (int link : chain)
            dead[link] = true;
        ++result.regfiles_created;
        result.registers_folded += length;
    }

    // Rewire consumers of replaced tails, then compact dead nodes.
    for (MappedNode &node : mapped->nodes) {
        for (int &src : node.inputs)
            if (src < n && replacement[src] >= 0)
                src = replacement[src];
    }
    MappedGraph compacted;
    std::vector<int> remap(mapped->nodes.size(), -1);
    for (std::size_t id = 0; id < mapped->nodes.size(); ++id) {
        if (id < static_cast<std::size_t>(n) && dead[id])
            continue;
        remap[id] = static_cast<int>(compacted.nodes.size());
        compacted.nodes.push_back(mapped->nodes[id]);
    }
    for (MappedNode &node : compacted.nodes)
        for (int &src : node.inputs)
            src = remap[src];
    *mapped = std::move(compacted);
    return result;
}

AppPipelineResult
pipelineApplication(MappedGraph *mapped, int pe_latency,
                    const AppPipelineOptions &options)
{
    APEX_SPAN("pipeline.app");
    telemetry::StageTimer timer(
        telemetry::histogram("apex.pipeline.app.ms"));
    AppPipelineResult result = balanceBranchDelays(mapped, pe_latency);
    const AppPipelineResult fold =
        foldRegisterChains(mapped, options);
    result.regfiles_created = fold.regfiles_created;
    result.registers_folded = fold.registers_folded;
    return result;
}

bool
delaysBalanced(const MappedGraph &mapped, int pe_latency)
{
    const auto skew = pipelineSkew(mapped, pe_latency);
    for (const MappedNode &n : mapped.nodes) {
        if (n.inputs.size() < 2)
            continue;
        const int first = skew[n.inputs[0]];
        for (int src : n.inputs)
            if (skew[src] != first)
                return false;
    }
    return true;
}

} // namespace apex::pipeline
