#ifndef APEX_PIPELINE_APP_PIPELINE_H_
#define APEX_PIPELINE_APP_PIPELINE_H_

#include <vector>

#include "mapper/mapped_graph.hpp"

/**
 * @file
 * Application pipelining (Sec. 4.3): when applications are mapped to
 * pipelined PEs, every multi-input node must see its operands with
 * equal latency.  Branch delay matching walks the mapped graph from
 * inputs to outputs tracking data arrival cycles and inserts pipeline
 * registers on the early paths.  Long register chains are then
 * replaced by register files acting as FIFOs (Fig. 9), which
 * dramatically reduces interconnect register pressure.
 */

namespace apex::pipeline {

/** Statistics of the application pipelining pass. */
struct AppPipelineResult {
    int registers_added = 0;   ///< kReg nodes inserted for balancing.
    int regfiles_created = 0;  ///< Register-file FIFOs substituted.
    int registers_folded = 0;  ///< kReg nodes absorbed into RFs.
    int max_latency = 0;       ///< Input->output latency in cycles.
};

/** Pipelining knobs. */
struct AppPipelineOptions {
    /** Register chains longer than this become register files
     * (paper: "chains greater than length 2"; adjustable). */
    int rf_cutoff = 2;
    /** Skip the register-file substitution entirely. */
    bool use_register_files = true;
};

/** @return the latency in cycles contributed by one mapped node. */
int nodeLatency(const mapper::MappedNode &node, int pe_latency);

/**
 * Compute per-node output arrival cycles under @p pe_latency
 * (PE pipeline depth; 0 for combinational PEs).
 */
std::vector<int> arrivalCycles(const mapper::MappedGraph &mapped,
                               int pe_latency);

/**
 * Per-node *pipeline skew*: the delay added on top of the functional
 * schedule by PE pipelining and by compensation registers.  The
 * application's own registers/memories/FIFOs are functional delays
 * (they select WHICH stream elements combine) and contribute zero;
 * balancing registers and the balancing share of folded register
 * files contribute their depth; PEs contribute pe_latency.
 *
 * After branch delay matching, every multi-input node sees equal
 * skew on all inputs, and each output stream equals the functional
 * reference (ir::StreamingInterpreter) delayed by its pad's skew.
 */
std::vector<int> pipelineSkew(const mapper::MappedGraph &mapped,
                              int pe_latency);

/**
 * Branch delay matching: insert kReg nodes so all inputs of every
 * node arrive in the same cycle.  @p mapped is modified in place.
 */
AppPipelineResult balanceBranchDelays(mapper::MappedGraph *mapped,
                                      int pe_latency);

/**
 * Replace register chains longer than the cutoff with register-file
 * FIFO nodes (Fig. 9).  Preserves per-path latency exactly.
 */
AppPipelineResult foldRegisterChains(mapper::MappedGraph *mapped,
                                     const AppPipelineOptions
                                         &options = {});

/**
 * Full application pipelining: balance, then fold chains.
 */
AppPipelineResult pipelineApplication(mapper::MappedGraph *mapped,
                                      int pe_latency,
                                      const AppPipelineOptions
                                          &options = {});

/** @return true when every multi-input node's operands arrive in the
 * same cycle (the branch-delay-matching postcondition). */
bool delaysBalanced(const mapper::MappedGraph &mapped,
                    int pe_latency);

} // namespace apex::pipeline

#endif // APEX_PIPELINE_APP_PIPELINE_H_
