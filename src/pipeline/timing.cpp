#include "pipeline/timing.hpp"

#include <algorithm>
#include <functional>

namespace apex::pipeline {

using merging::DpNodeKind;
using pe::PeSpec;

namespace {

/** Acyclic view of the feasible-edge graph: per-node predecessor
 * list (src, through_mux), back edges dropped via DFS coloring. */
struct AcyclicView {
    std::vector<std::vector<std::pair<int, bool>>> preds;
    std::vector<int> topo; ///< Topological order of the view.
};

AcyclicView
acyclicView(const PeSpec &spec)
{
    const auto &dp = spec.dp;
    const int n = static_cast<int>(dp.nodes.size());
    AcyclicView view;
    view.preds.resize(n);

    // Successor lists from feasible edges.
    std::vector<std::vector<std::pair<int, bool>>> succs(n);
    for (int id : dp.blockIds()) {
        const int arity = dp.nodes[id].arity();
        for (int p = 0; p < arity; ++p) {
            const bool mux = spec.muxIndexOf(id, p) >= 0;
            for (int src : dp.sourcesOf(id, p))
                succs[src].emplace_back(id, mux);
        }
    }

    // DFS; skip gray->gray (back) edges.
    std::vector<int> color(n, 0); // 0 white, 1 gray, 2 black
    std::function<void(int)> dfs = [&](int u) {
        color[u] = 1;
        for (const auto &[v, mux] : succs[u]) {
            if (color[v] == 1)
                continue; // back edge: never active in a real config
            view.preds[v].emplace_back(u, mux);
            if (color[v] == 0)
                dfs(v);
        }
        color[u] = 2;
        view.topo.push_back(u);
    };
    for (int u = 0; u < n; ++u)
        if (color[u] == 0)
            dfs(u);
    std::reverse(view.topo.begin(), view.topo.end());
    return view;
}

double
nodeDelay(const PeSpec &spec, const model::TechModel &tech, int id)
{
    const merging::DpNode &nd = spec.dp.nodes[id];
    if (nd.kind != DpNodeKind::kBlock)
        return 0.0;
    // A multi-op block is as slow as its slowest op's class; classes
    // are uniform per block, so this is the class delay.
    return model::blockCost(tech, nd.cls).delay;
}

} // namespace

TimingReport
analyzeTiming(const PeSpec &spec, const model::TechModel &tech)
{
    const AcyclicView view = acyclicView(spec);
    const int n = static_cast<int>(spec.dp.nodes.size());

    TimingReport report;
    report.arrival.assign(n, 0.0);
    for (int id : view.topo) {
        double in_arrival = 0.0;
        for (const auto &[src, mux] : view.preds[id]) {
            in_arrival = std::max(
                in_arrival,
                report.arrival[src] + (mux ? tech.mux_delay : 0.0));
        }
        report.arrival[id] = in_arrival + nodeDelay(spec, tech, id);
        report.critical_path =
            std::max(report.critical_path, report.arrival[id]);
    }
    report.critical_path += tech.reg_setup_delay;
    return report;
}

double
assignStages(const PeSpec &spec, const model::TechModel &tech,
             int stages, std::vector<int> *stage_out)
{
    const AcyclicView view = acyclicView(spec);
    const int n = static_cast<int>(spec.dp.nodes.size());

    // Feasibility check at period T: ASAP levelization.  Returns the
    // stage count used and fills per-node stages/arrivals.
    auto levelize = [&](double period, std::vector<int> *stage)
        -> int {
        std::vector<double> local(n, 0.0);
        stage->assign(n, 0);
        int max_stage = 0;
        for (int id : view.topo) {
            const double d = nodeDelay(spec, tech, id);
            if (d + tech.reg_setup_delay > period)
                return -1; // a single block exceeds the period
            int s = 0;
            for (const auto &[src, mux] : view.preds[id]) {
                (void)mux;
                s = std::max(s, (*stage)[src]);
            }
            double arrive;
            for (;;) {
                arrive = 0.0;
                for (const auto &[src, mux] : view.preds[id]) {
                    if ((*stage)[src] == s) {
                        arrive = std::max(
                            arrive, local[src] +
                                        (mux ? tech.mux_delay : 0.0));
                    }
                    // Values from earlier stages arrive registered at
                    // time 0 of stage s.
                }
                if (arrive + d + tech.reg_setup_delay <= period)
                    break;
                ++s; // push this node into the next stage
            }
            (*stage)[id] = s;
            local[id] = arrive + d;
            max_stage = std::max(max_stage, s);
        }
        return max_stage + 1;
    };

    const double upper =
        analyzeTiming(spec, tech).critical_path + 1e-6;
    double lo = 0.0, hi = upper;
    std::vector<int> best_stage(n, 0);
    double best_period = upper;
    levelize(upper, &best_stage);

    if (stages <= 1) {
        if (stage_out)
            *stage_out = std::move(best_stage);
        return upper;
    }

    for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        std::vector<int> stage;
        const int used = levelize(mid, &stage);
        if (used >= 1 && used <= stages) {
            best_period = mid;
            best_stage = std::move(stage);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    if (stage_out)
        *stage_out = std::move(best_stage);
    return best_period;
}

double
stagedCriticalPath(const PeSpec &spec, const model::TechModel &tech,
                   int stages)
{
    return assignStages(spec, tech, stages, nullptr);
}

} // namespace apex::pipeline
