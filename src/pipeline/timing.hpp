#ifndef APEX_PIPELINE_TIMING_H_
#define APEX_PIPELINE_TIMING_H_

#include <vector>

#include "pe/spec.hpp"

/**
 * @file
 * Static timing analysis of PE datapaths (Sec. 4.2, after Hitchcock's
 * timing-analysis formulation): longest combinational path through
 * the datapath under the technology delay model, where each block
 * contributes its class delay and each multiplexer site one mux
 * delay.
 *
 * Because feasible-edge graphs of merged datapaths may contain cycles
 * across mutually-exclusive configurations, the analysis treats the
 * feasible-edge graph conservatively but breaks cycles by ignoring
 * back edges discovered in DFS order (a cycle can never be active in
 * a real configuration).
 */

namespace apex::pipeline {

/** Per-node arrival times of the longest-path analysis. */
struct TimingReport {
    std::vector<double> arrival; ///< ns at each datapath node output.
    double critical_path = 0.0;  ///< Longest input->output delay, ns.
};

/** Compute arrival times and the critical path of @p spec. */
TimingReport analyzeTiming(const pe::PeSpec &spec,
                           const model::TechModel &tech);

/**
 * Critical path after pipelining into @p stages balanced stages using
 * the stage assignment of assignStages() (retimed register
 * placement).  stages <= 1 returns the combinational critical path.
 */
double stagedCriticalPath(const pe::PeSpec &spec,
                          const model::TechModel &tech, int stages);

/**
 * Assign each datapath node to a pipeline stage (0-based) such that
 * no intra-stage path exceeds the returned period; greedy ASAP
 * levelization with a binary search over the period — the DAG
 * retiming of Calland et al. specialized to forward retiming.
 *
 * @param spec    PE specification.
 * @param tech    Delay model.
 * @param stages  Desired number of stages (>= 1).
 * @param stage   Out: stage index per datapath node.
 * @return the achieved per-stage critical path (ns).
 */
double assignStages(const pe::PeSpec &spec,
                    const model::TechModel &tech, int stages,
                    std::vector<int> *stage);

} // namespace apex::pipeline

#endif // APEX_PIPELINE_TIMING_H_
