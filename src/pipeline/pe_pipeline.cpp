#include "pipeline/pe_pipeline.hpp"

#include "pipeline/timing.hpp"
#include "runtime/telemetry.hpp"

namespace apex::pipeline {

PePipelineResult
pipelinePe(pe::PeSpec &spec, const model::TechModel &tech,
           const PePipelineOptions &options)
{
    APEX_SPAN("pipeline.pe");
    telemetry::StageTimer timer(
        telemetry::histogram("apex.pipeline.pe.ms"));
    PePipelineResult result;
    result.unpipelined = analyzeTiming(spec, tech).critical_path;

    int stages = 1;
    double period = result.unpipelined;
    std::vector<int> stage_of;
    assignStages(spec, tech, 1, &stage_of);

    // Iteratively add stages while (a) the target period is not met
    // and (b) one more stage still buys a significant reduction —
    // the paper's critical-path model loop.
    while (stages < options.max_stages &&
           period > tech.target_period) {
        std::vector<int> next_stage_of;
        const double next_period =
            assignStages(spec, tech, stages + 1, &next_stage_of);
        const double gain = (period - next_period) / period;
        if (gain < options.min_gain)
            break;
        ++stages;
        period = next_period;
        stage_of = std::move(next_stage_of);
    }

    result.stages = stages;
    result.period = period;
    result.stage_of = std::move(stage_of);
    spec.pipeline_stages = stages > 1 ? stages : 0;
    return result;
}

} // namespace apex::pipeline
