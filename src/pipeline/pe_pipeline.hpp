#ifndef APEX_PIPELINE_PE_PIPELINE_H_
#define APEX_PIPELINE_PE_PIPELINE_H_

#include <vector>

#include "pe/spec.hpp"

/**
 * @file
 * Automated PE pipelining (Sec. 4.2): choose the number of pipeline
 * stages for a PE by iteratively adding stages while each one still
 * yields a significant critical-path reduction, then retime the
 * registers into balanced positions (timing.hpp's stage assignment).
 */

namespace apex::pipeline {

/** Result of pipelining one PE. */
struct PePipelineResult {
    int stages = 1;              ///< Chosen stage count (1 = none).
    double period = 0.0;         ///< Achieved critical path, ns.
    double unpipelined = 0.0;    ///< Combinational critical path, ns.
    std::vector<int> stage_of;   ///< Stage per datapath node.
};

/** Pipelining knobs. */
struct PePipelineOptions {
    int max_stages = 6;
    /** Stop adding stages when the relative critical-path reduction
     * of one more stage falls below this fraction. */
    double min_gain = 0.10;
};

/**
 * Pipeline @p spec for the technology's target period; updates
 * spec.pipeline_stages (1 stage means the PE stays combinational,
 * pipeline_stages = 0).
 */
PePipelineResult pipelinePe(pe::PeSpec &spec,
                            const model::TechModel &tech,
                            const PePipelineOptions &options = {});

} // namespace apex::pipeline

#endif // APEX_PIPELINE_PE_PIPELINE_H_
