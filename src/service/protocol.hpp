#ifndef APEX_SERVICE_PROTOCOL_H_
#define APEX_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"
#include "core/sweep.hpp"
#include "runtime/telemetry.hpp"

/**
 * @file
 * Wire protocol of the DSE service (see DESIGN.md Sec. 7g).
 *
 * Frames reuse the checksummed record format of runtime/record.hpp
 * with their own magic ("apexsvc") and framing version, decoded
 * incrementally by runtime::FrameDecoder; this header defines the
 * *payloads* — typed request/reply structs with encode/decode pairs
 * built on the shared primitives of core/encoding.hpp.  Every
 * decoder returns false on malformed input; a false after a
 * checksum-verified frame means a schema skew, and the session is
 * dropped.
 *
 * Conversation shape (client drives):
 *
 *   hello           -> hello.ok | hello.err        (negotiation)
 *   info            -> info.ok                     (build identity)
 *   metrics         -> metrics.ok                  (registry JSON)
 *   sweep           -> ack | reject,
 *                      then progress* (opt-in), then report
 *   trace           -> trace.ok                    (v3: span slice)
 *   statusz         -> statusz.ok                  (v3: live ring)
 *   bye             -> bye.ok, connection closes
 *
 * The hello handshake negotiates the protocol version: the server
 * accepts any client version in [kMinProtocolVersion,
 * kProtocolVersion] and the session speaks the client's version.
 * trace/statusz exist only on negotiated-v3 sessions; sweep and
 * progress frames grew a trailing trace_id that v2 decoders ignore
 * and v3 decoders default to 0 when absent, so both directions of a
 * one-version skew keep working.
 *
 * The correctness contract of the sweep path: renderSweepText() over
 * a decoded SweepReply produces byte-identical stdout to the batch
 * `apexc sweep` with the same flags — the daemon's job count,
 * executor assignment and coalescing are invisible in the bytes
 * (guaranteed by runSweep's determinism contract).
 */

namespace apex::service {

/** Frame magic + framing version of service sockets (the payload
 * schema version is kProtocolVersion in version.hpp). */
inline constexpr std::string_view kServiceMagic = "apexsvc";
inline constexpr int kServiceWireVersion = 1;

// Frame types.
inline constexpr std::string_view kFrameHello = "hello";
inline constexpr std::string_view kFrameHelloOk = "hello.ok";
inline constexpr std::string_view kFrameHelloErr = "hello.err";
inline constexpr std::string_view kFrameInfo = "info";
inline constexpr std::string_view kFrameInfoOk = "info.ok";
inline constexpr std::string_view kFrameMetrics = "metrics";
inline constexpr std::string_view kFrameMetricsOk = "metrics.ok";
inline constexpr std::string_view kFrameSweep = "sweep";
inline constexpr std::string_view kFrameAck = "ack";
inline constexpr std::string_view kFrameReject = "reject";
inline constexpr std::string_view kFrameProgress = "progress";
inline constexpr std::string_view kFrameReport = "report";
inline constexpr std::string_view kFrameBye = "bye";
inline constexpr std::string_view kFrameByeOk = "bye.ok";
// v3 conversations (sent only on negotiated-v3 sessions).
inline constexpr std::string_view kFrameTrace = "trace";
inline constexpr std::string_view kFrameTraceOk = "trace.ok";
inline constexpr std::string_view kFrameStatusz = "statusz";
inline constexpr std::string_view kFrameStatuszOk = "statusz.ok";

// --------------------------------------------------------------------
// Handshake
// --------------------------------------------------------------------

/** First frame on every connection. */
struct HelloRequest {
    int protocol = 0;   ///< Client's kProtocolVersion.
    std::string client; ///< Free-form identity ("apexc", a test, ...).
};

/** hello.ok payload. */
struct HelloReply {
    int protocol = 0;           ///< Server's kProtocolVersion.
    std::string server_version; ///< versionString().
};

std::string encodeHello(const HelloRequest &req);
bool decodeHello(const std::string &payload, HelloRequest *out);
std::string encodeHelloReply(const HelloReply &rep);
bool decodeHelloReply(const std::string &payload, HelloReply *out);

// --------------------------------------------------------------------
// Build identity (the `info` request)
// --------------------------------------------------------------------

/** info.ok payload: enough to diagnose any client/daemon skew. */
struct InfoReply {
    int protocol = 0;
    std::string version; ///< versionString().
    std::string commit;  ///< buildCommit().
    std::string flags;   ///< buildFlags().
};

std::string encodeInfoReply(const InfoReply &rep);
bool decodeInfoReply(const std::string &payload, InfoReply *out);

// --------------------------------------------------------------------
// Sweep request / streaming response
// --------------------------------------------------------------------

/**
 * One sweep over the built-in application set — the CLI-level knobs
 * of `apexc sweep`, shipped to the daemon.  The daemon decides the
 * execution resources (its own job count and executors); runSweep's
 * determinism contract makes that invisible in the reply bytes.
 */
struct SweepRequest {
    std::uint64_t id = 0;       ///< Client-chosen request id, echoed
                                ///< in every response frame.
    int priority = 0;           ///< Higher pops from the queue first.
    std::string level = "map";  ///< map | pnr | pipe.
    std::string isolate = "thread"; ///< thread | process.
    int cell_retries = 2;
    double deadline_ms = 0.0;      ///< <= 0: unbounded.
    double cell_deadline_ms = 0.0; ///< <= 0: none.
    bool want_progress = false;    ///< Stream per-cell progress.
    /** Request trace context (v3; 0 = none).  Encoded as a trailing
     * field: a v2 decoder ignores it, a v3 decoder reading a v2
     * payload defaults it to 0, so the field never breaks a
     * one-version skew in either direction. */
    std::uint64_t trace_id = 0;
};

std::string encodeSweepRequest(const SweepRequest &req);
bool decodeSweepRequest(const std::string &payload, SweepRequest *out);

/** ack payload: the request is queued (or attached to an identical
 * in-flight sweep). */
struct SweepAck {
    std::uint64_t id = 0;
    bool coalesced = false; ///< Attached to an in-flight request.
};

std::string encodeAck(const SweepAck &ack);
bool decodeAck(const std::string &payload, SweepAck *out);

/** reject payload: admission control refused the request. */
struct SweepReject {
    std::uint64_t id = 0;
    ErrorCode code = ErrorCode::kUnavailable;
    std::string reason;
    /**
     * Load-shedding hint: how long the daemon suggests the client
     * wait before resubmitting (0 = no hint — e.g. the reject is a
     * permanent kInvalidArgument, retrying is pointless).  A
     * self-healing client (runSweepResilient) sleeps max(hint, its
     * own backoff) so a shedding daemon shapes its readmission
     * traffic instead of being hammered.
     */
    double retry_after_ms = 0.0;
};

std::string encodeReject(const SweepReject &rej);
bool decodeReject(const std::string &payload, SweepReject *out);

/** progress payload: one completed cell (streamed when the request
 * opted in; attached requests observe cells of the shared sweep). */
struct SweepProgressFrame {
    std::uint64_t id = 0;
    int done = 0;
    int total = 0;
    std::string app;
    std::string variant;
    /** The *subscriber's* trace context (v3; trailing, like
     * SweepRequest::trace_id): coalesced subscribers of one shared
     * sweep each receive their own trace_id back, not the primary's. */
    std::uint64_t trace_id = 0;
};

std::string encodeProgress(const SweepProgressFrame &p);
bool decodeProgress(const std::string &payload,
                    SweepProgressFrame *out);

/** report payload: the complete sweep outcome.  deadline_bounded /
 * deadline_expired carry the server-side state the batch CLI reads
 * locally to pick its exit code. */
struct SweepReply {
    std::uint64_t id = 0;
    bool deadline_bounded = false;
    bool deadline_expired = false;
    bool cancelled = false; ///< Daemon shut down mid-sweep.
    std::vector<core::SweepEntry> entries;
    ExplorationReport report;
};

std::string encodeSweepReply(const SweepReply &rep);
bool decodeSweepReply(const std::string &payload, SweepReply *out);

// --------------------------------------------------------------------
// Request trace slices (v3)
// --------------------------------------------------------------------

/** Mint a process-unique request trace id (never 0): pid, a steady
 * clock read and a process-wide counter mixed through fnv1a.  Not a
 * secret — just unique enough that concurrent clients of one daemon
 * cannot collide in practice. */
std::uint64_t mintTraceId();

/** trace payload: fetch the daemon-side spans of one request. */
struct TraceRequest {
    std::uint64_t trace_id = 0;
};

std::string encodeTraceRequest(const TraceRequest &req);
bool decodeTraceRequest(const std::string &payload, TraceRequest *out);

/** trace.ok payload: every daemon span stamped with the request's
 * trace id, plus the daemon's span-loss counters so a truncated
 * slice is detectable (events may have been dropped at a full ring
 * or evicted from the bounded collector store). */
struct TraceReply {
    std::uint64_t trace_id = 0;
    long long dropped = 0;
    long long evicted = 0;
    std::vector<telemetry::SpanEvent> events;
};

std::string encodeTraceReply(const TraceReply &rep);
bool decodeTraceReply(const std::string &payload, TraceReply *out);

// --------------------------------------------------------------------
// Live introspection (v3: the statusz ring)
// --------------------------------------------------------------------

/** One periodic sample of the daemon's vitals: instantaneous gauges
 * plus cumulative counters (clients difference consecutive samples
 * for rates).  p50/p99 are computed daemon-side from the
 * apex.service.request_ms histogram's bucket deltas over the
 * sampling interval (NaN-free: 0 when the interval saw no requests). */
struct StatusSnapshot {
    double ts_ms = 0.0;       ///< monotonicNanos()-based sample time.
    int sessions = 0;         ///< Connected sessions.
    int queue_depth = 0;      ///< Admission queue depth.
    int active_sweeps = 0;    ///< Jobs admitted and not yet reported.
    long long inflight_bytes = 0; ///< Undelivered reply bytes.
    long long accepted = 0;   ///< Cumulative apex.service.accepted.
    long long rejected = 0;   ///< Cumulative apex.service.rejected.
    long long coalesced = 0;  ///< Cumulative apex.service.coalesced.
    long long sweeps = 0;     ///< Cumulative apex.service.sweeps.
    long long cache_hits = 0;   ///< Cumulative apex.cache.hits.
    long long cache_misses = 0; ///< Cumulative apex.cache.misses.
    long long worker_restarts = 0; ///< Cumulative apex.worker.restarts.
    long long trace_dropped = 0;   ///< Cumulative apex.trace.dropped.
    long long mined_patterns = 0;  ///< Cumulative apex.mine.patterns.
    long long mine_embeddings = 0; ///< Cumulative apex.mine.embeddings.
    /** Cumulative apex.mine.pruned_noncanonical: candidate growth
     * branches killed by the DFS-code canonicality check. */
    long long mine_pruned = 0;
    double request_p50_ms = 0.0; ///< Interval p50 (bucket estimate).
    double request_p99_ms = 0.0; ///< Interval p99 (bucket estimate).
};

/** statusz payload: cap on returned samples (0 = everything the
 * ring holds, newest last). */
struct StatuszRequest {
    int max_samples = 0;
};

std::string encodeStatuszRequest(const StatuszRequest &req);
bool decodeStatuszRequest(const std::string &payload,
                          StatuszRequest *out);

/** statusz.ok payload: the snapshot ring, oldest first. */
struct StatuszReply {
    double interval_ms = 0.0; ///< Daemon's sampling interval.
    std::vector<StatusSnapshot> samples;
};

std::string encodeStatuszReply(const StatuszReply &rep);
bool decodeStatuszReply(const std::string &payload, StatuszReply *out);

/** Stable JSON rendering of a statusz reply (`apexc client top
 * --json`): `{"apex_statusz":1,"interval_ms":...,"samples":[...]}`.
 * CI schema-validates this shape. */
std::string statuszJson(const StatuszReply &rep);

/** Human-readable `apexc client top` screen: the latest sample's
 * vitals plus rates differenced from the previous sample. */
std::string renderStatuszText(const StatuszReply &rep);

// --------------------------------------------------------------------
// Rendering (the byte-identity contract)
// --------------------------------------------------------------------

/**
 * The exact stdout of `apexc sweep`: one line per entry, then the
 * report summary.  Batch mode and the service client both print
 * through this function, so "client output == batch output" holds by
 * construction and is enforced end-to-end by the service tests.
 */
std::string renderSweepText(const std::vector<core::SweepEntry> &entries,
                            const ExplorationReport &report);

/** Exit code `apexc sweep` maps @p rep to (mirrors the batch rules:
 * timeout when a bounded sweep starved, first failure's code when
 * nothing ran, cancelled when the daemon stopped mid-sweep). */
int sweepExitCode(const SweepReply &rep);

} // namespace apex::service

#endif // APEX_SERVICE_PROTOCOL_H_
