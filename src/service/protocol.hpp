#ifndef APEX_SERVICE_PROTOCOL_H_
#define APEX_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"
#include "core/sweep.hpp"

/**
 * @file
 * Wire protocol of the DSE service (see DESIGN.md Sec. 7g).
 *
 * Frames reuse the checksummed record format of runtime/record.hpp
 * with their own magic ("apexsvc") and framing version, decoded
 * incrementally by runtime::FrameDecoder; this header defines the
 * *payloads* — typed request/reply structs with encode/decode pairs
 * built on the shared primitives of core/encoding.hpp.  Every
 * decoder returns false on malformed input; a false after a
 * checksum-verified frame means a schema skew, and the session is
 * dropped.
 *
 * Conversation shape (client drives):
 *
 *   hello           -> hello.ok | hello.err        (version check)
 *   info            -> info.ok                     (build identity)
 *   metrics         -> metrics.ok                  (registry JSON)
 *   sweep           -> ack | reject,
 *                      then progress* (opt-in), then report
 *   bye             -> bye.ok, connection closes
 *
 * The correctness contract of the sweep path: renderSweepText() over
 * a decoded SweepReply produces byte-identical stdout to the batch
 * `apexc sweep` with the same flags — the daemon's job count,
 * executor assignment and coalescing are invisible in the bytes
 * (guaranteed by runSweep's determinism contract).
 */

namespace apex::service {

/** Frame magic + framing version of service sockets (the payload
 * schema version is kProtocolVersion in version.hpp). */
inline constexpr std::string_view kServiceMagic = "apexsvc";
inline constexpr int kServiceWireVersion = 1;

// Frame types.
inline constexpr std::string_view kFrameHello = "hello";
inline constexpr std::string_view kFrameHelloOk = "hello.ok";
inline constexpr std::string_view kFrameHelloErr = "hello.err";
inline constexpr std::string_view kFrameInfo = "info";
inline constexpr std::string_view kFrameInfoOk = "info.ok";
inline constexpr std::string_view kFrameMetrics = "metrics";
inline constexpr std::string_view kFrameMetricsOk = "metrics.ok";
inline constexpr std::string_view kFrameSweep = "sweep";
inline constexpr std::string_view kFrameAck = "ack";
inline constexpr std::string_view kFrameReject = "reject";
inline constexpr std::string_view kFrameProgress = "progress";
inline constexpr std::string_view kFrameReport = "report";
inline constexpr std::string_view kFrameBye = "bye";
inline constexpr std::string_view kFrameByeOk = "bye.ok";

// --------------------------------------------------------------------
// Handshake
// --------------------------------------------------------------------

/** First frame on every connection. */
struct HelloRequest {
    int protocol = 0;   ///< Client's kProtocolVersion.
    std::string client; ///< Free-form identity ("apexc", a test, ...).
};

/** hello.ok payload. */
struct HelloReply {
    int protocol = 0;           ///< Server's kProtocolVersion.
    std::string server_version; ///< versionString().
};

std::string encodeHello(const HelloRequest &req);
bool decodeHello(const std::string &payload, HelloRequest *out);
std::string encodeHelloReply(const HelloReply &rep);
bool decodeHelloReply(const std::string &payload, HelloReply *out);

// --------------------------------------------------------------------
// Build identity (the `info` request)
// --------------------------------------------------------------------

/** info.ok payload: enough to diagnose any client/daemon skew. */
struct InfoReply {
    int protocol = 0;
    std::string version; ///< versionString().
    std::string commit;  ///< buildCommit().
    std::string flags;   ///< buildFlags().
};

std::string encodeInfoReply(const InfoReply &rep);
bool decodeInfoReply(const std::string &payload, InfoReply *out);

// --------------------------------------------------------------------
// Sweep request / streaming response
// --------------------------------------------------------------------

/**
 * One sweep over the built-in application set — the CLI-level knobs
 * of `apexc sweep`, shipped to the daemon.  The daemon decides the
 * execution resources (its own job count and executors); runSweep's
 * determinism contract makes that invisible in the reply bytes.
 */
struct SweepRequest {
    std::uint64_t id = 0;       ///< Client-chosen request id, echoed
                                ///< in every response frame.
    int priority = 0;           ///< Higher pops from the queue first.
    std::string level = "map";  ///< map | pnr | pipe.
    std::string isolate = "thread"; ///< thread | process.
    int cell_retries = 2;
    double deadline_ms = 0.0;      ///< <= 0: unbounded.
    double cell_deadline_ms = 0.0; ///< <= 0: none.
    bool want_progress = false;    ///< Stream per-cell progress.
};

std::string encodeSweepRequest(const SweepRequest &req);
bool decodeSweepRequest(const std::string &payload, SweepRequest *out);

/** ack payload: the request is queued (or attached to an identical
 * in-flight sweep). */
struct SweepAck {
    std::uint64_t id = 0;
    bool coalesced = false; ///< Attached to an in-flight request.
};

std::string encodeAck(const SweepAck &ack);
bool decodeAck(const std::string &payload, SweepAck *out);

/** reject payload: admission control refused the request. */
struct SweepReject {
    std::uint64_t id = 0;
    ErrorCode code = ErrorCode::kUnavailable;
    std::string reason;
    /**
     * Load-shedding hint: how long the daemon suggests the client
     * wait before resubmitting (0 = no hint — e.g. the reject is a
     * permanent kInvalidArgument, retrying is pointless).  A
     * self-healing client (runSweepResilient) sleeps max(hint, its
     * own backoff) so a shedding daemon shapes its readmission
     * traffic instead of being hammered.
     */
    double retry_after_ms = 0.0;
};

std::string encodeReject(const SweepReject &rej);
bool decodeReject(const std::string &payload, SweepReject *out);

/** progress payload: one completed cell (streamed when the request
 * opted in; attached requests observe cells of the shared sweep). */
struct SweepProgressFrame {
    std::uint64_t id = 0;
    int done = 0;
    int total = 0;
    std::string app;
    std::string variant;
};

std::string encodeProgress(const SweepProgressFrame &p);
bool decodeProgress(const std::string &payload,
                    SweepProgressFrame *out);

/** report payload: the complete sweep outcome.  deadline_bounded /
 * deadline_expired carry the server-side state the batch CLI reads
 * locally to pick its exit code. */
struct SweepReply {
    std::uint64_t id = 0;
    bool deadline_bounded = false;
    bool deadline_expired = false;
    bool cancelled = false; ///< Daemon shut down mid-sweep.
    std::vector<core::SweepEntry> entries;
    ExplorationReport report;
};

std::string encodeSweepReply(const SweepReply &rep);
bool decodeSweepReply(const std::string &payload, SweepReply *out);

// --------------------------------------------------------------------
// Rendering (the byte-identity contract)
// --------------------------------------------------------------------

/**
 * The exact stdout of `apexc sweep`: one line per entry, then the
 * report summary.  Batch mode and the service client both print
 * through this function, so "client output == batch output" holds by
 * construction and is enforced end-to-end by the service tests.
 */
std::string renderSweepText(const std::vector<core::SweepEntry> &entries,
                            const ExplorationReport &report);

/** Exit code `apexc sweep` maps @p rep to (mirrors the batch rules:
 * timeout when a bounded sweep starved, first failure's code when
 * nothing ran, cancelled when the daemon stopped mid-sweep). */
int sweepExitCode(const SweepReply &rep);

} // namespace apex::service

#endif // APEX_SERVICE_PROTOCOL_H_
