#ifndef APEX_SERVICE_QUEUE_H_
#define APEX_SERVICE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "runtime/telemetry.hpp"

/**
 * @file
 * Bounded admission queue of the DSE service.
 *
 * Backpressure lives here: a sweep is hours of CPU, so the daemon
 * admits at most `max_depth` queued requests and *rejects* the rest
 * with an explicit frame instead of buffering unbounded work — a
 * client learns immediately that the service is saturated and can
 * back off, retry elsewhere, or fail its own caller.
 *
 * Ordering is (priority desc, arrival order): a higher-priority
 * request pops first, ties pop FIFO.  The depth gauge (when given)
 * tracks the live queue length for `apex.service.queue_depth`.
 *
 * shutdown() makes every present and future pop() return nullopt
 * without draining what is queued — pending jobs are abandoned (their
 * sessions are closing anyway) so SIGTERM never waits on hours of
 * queued sweeps.
 */

namespace apex::service {

template <typename T>
class AdmissionQueue {
  public:
    explicit AdmissionQueue(std::size_t max_depth,
                            telemetry::Gauge *depth_gauge = nullptr)
        : max_depth_(max_depth), depth_gauge_(depth_gauge)
    {
        if (depth_gauge_ != nullptr)
            depth_gauge_->set(0.0);
    }

    /** Enqueue @p item; false when the queue is full or shut down
     * (the caller sends the reject frame). */
    bool push(T item, int priority = 0)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (shutdown_ || items_.size() >= max_depth_)
                return false;
            // Key sorts by (priority desc, arrival asc): map order is
            // ascending, so negate the priority.
            items_.emplace(std::make_pair(-priority, next_seq_++),
                           std::move(item));
            if (depth_gauge_ != nullptr)
                depth_gauge_->set(static_cast<double>(items_.size()));
        }
        cv_.notify_one();
        return true;
    }

    /** Block until an item is available or shutdown(); nullopt means
     * the queue is shut down and the worker should exit. */
    std::optional<T> pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock,
                 [this] { return shutdown_ || !items_.empty(); });
        if (shutdown_)
            return std::nullopt;
        auto it = items_.begin();
        T item = std::move(it->second);
        items_.erase(it);
        if (depth_gauge_ != nullptr)
            depth_gauge_->set(static_cast<double>(items_.size()));
        return item;
    }

    /** Abandon queued items and wake every blocked pop(). */
    void shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
            items_.clear();
            if (depth_gauge_ != nullptr)
                depth_gauge_->set(0.0);
        }
        cv_.notify_all();
    }

    std::size_t depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

  private:
    const std::size_t max_depth_;
    telemetry::Gauge *depth_gauge_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool shutdown_ = false;
    std::uint64_t next_seq_ = 0;
    std::map<std::pair<int, std::uint64_t>, T> items_;
};

} // namespace apex::service

#endif // APEX_SERVICE_QUEUE_H_
