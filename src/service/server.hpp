#ifndef APEX_SERVICE_SERVER_H_
#define APEX_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.hpp"
#include "core/sweep.hpp"
#include "runtime/cache.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/session.hpp"

/**
 * @file
 * apexd — the long-running DSE service daemon.
 *
 * The daemon keeps the expensive state of a sweep hot across
 * requests: the application set (parsed graphs), and a shared
 * content-addressed ArtifactCache whose rewrite-rule and evaluation
 * artifacts make the Nth sweep incremental.  Requests arrive over a
 * Unix-domain socket (optionally TCP on 127.0.0.1) as checksummed
 * frames (service/protocol.hpp) and flow through:
 *
 *   session layer  — handshake, request ids (session.hpp)
 *   admission      — bounded priority queue; a full queue REJECTS
 *                    with an explicit frame (queue.hpp)
 *   coalescing     — requests are keyed on the sweep's content
 *                    fingerprint (core::sweepFingerprint + the
 *                    outcome-shaping knobs); an identical in-flight
 *                    request gains a subscriber instead of a second
 *                    execution, and every subscriber receives the
 *                    full report
 *   execution      — N executor threads pop jobs and run
 *                    core::runSweep on the shared cache; progress
 *                    streams to subscribed sessions per completed
 *                    cell
 *
 * Threading: one io thread owns every socket (poll + reads + writes);
 * executors never touch a socket — they enqueue outbound frames and
 * wake the io thread through a self-pipe.  stop() (SIGTERM path)
 * stops accepting, abandons the queue, cancels running sweeps
 * cooperatively (subscribers receive a cancelled report) and joins
 * every thread.
 *
 * Metrics: apex.service.accepted / rejected / coalesced counters,
 * apex.service.queue_depth gauge, apex.service.sweeps (sweeps
 * actually executed — coalescing keeps this below accepted), and the
 * apex.service.request_ms latency histogram.
 */

namespace apex::service {

/** Daemon configuration. */
struct ServerOptions {
    /** Unix-domain socket path (required; an existing file is
     * replaced). */
    std::string unix_path;
    /** TCP listener on 127.0.0.1 (< 0: none, 0: ephemeral — read the
     * bound port back with tcpPort()). */
    int tcp_port = -1;
    /** Executor threads: sweeps running concurrently. */
    int executors = 1;
    /** Admission bound: queued (not yet running) requests beyond this
     * are rejected. */
    std::size_t queue_depth = 8;
    /** Worker lanes per sweep (core::SweepOptions::jobs). */
    int jobs = 1;
    /** Artifact-cache directory ("" = in-memory only). */
    std::string cache_dir;
    /**
     * Test hook: hold each job this long between dequeue and
     * execution, widening the window in which an identical request
     * coalesces deterministically.  0 in production.
     */
    double admission_hold_ms = 0.0;

    /**
     * Soft memory budget in bytes over the frames sitting in the
     * executor->io handoff (undelivered reports and progress).  When
     * exceeded, new sweeps are shed with kUnavailable + retry_after
     * until the io thread drains — slow readers cost admission, not
     * the daemon's address space.  0 = unlimited.
     */
    std::size_t mem_budget_bytes = 0;
    /** Per-session cap on sweeps in flight (admitted, report not yet
     * handed to the io thread); one greedy client saturating the
     * admission queue is shed instead of starving everyone else.
     * 0 = unlimited. */
    int session_cap = 0;
    /** Readmission hint carried by load-shedding rejects (queue
     * full, memory budget, session cap). */
    double retry_after_ms = 250.0;

    /** Cadence of the statusz vitals sampler (io thread); <= 0
     * disables sampling and `statusz` replies stay empty. */
    double statusz_interval_ms = 1000.0;
    /** Snapshots retained in the statusz ring (oldest evicted
     * first): 120 @ 1 s = the last two minutes. */
    std::size_t statusz_capacity = 120;
};

/** One admitted sweep: the request plus every session subscribed to
 * its outcome (the first requester and each coalesced duplicate). */
struct SweepJob {
    struct Subscriber {
        std::uint64_t session_id = 0;
        std::uint64_t request_id = 0;
        bool want_progress = false;
        /** Requester's own trace id: progress frames echo it even
         * when the request coalesced onto a job executing under a
         * different (the first requester's) trace id. */
        std::uint64_t trace_id = 0;
    };

    std::uint64_t key = 0;    ///< Coalescing fingerprint.
    SweepRequest request;     ///< First requester's knobs.
    std::mutex mu;            ///< Guards subscribers.
    std::vector<Subscriber> subscribers;
};

class Server {
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind listeners, load the application set, spawn the io thread
     * and the executors.  Non-ok leaves the server stopped. */
    Status start();

    /** Graceful shutdown (idempotent): stop accepting, abandon the
     * queue, cancel running sweeps, join every thread, close every
     * session, remove the socket file. */
    void stop();

    /** Bound TCP port (0 when no TCP listener). */
    int tcpPort() const { return tcp_port_; }

    /** Structured log of resource-exhaustion episodes (accept
     * failures, shedding): one record per episode, not per event.
     * Snapshot; safe from any thread. */
    Diagnostics diagnostics() const;

  private:
    struct Outbound {
        std::uint64_t session_id = 0;
        std::string type;
        std::string payload;
    };

    void ioLoop();
    void executorLoop();
    void acceptPending(int listen_fd);
    /** True while accepts are paused after fd/memory exhaustion. */
    bool acceptPaused() const;
    /** Record one exhaustion/shedding episode (bounded logging). */
    void logEpisode(const std::string &stage, const Status &status);
    /** Dispatch one post-handshake frame; false drops the session. */
    bool dispatch(Session &session, const runtime::FramedRecord &rec);
    void admitSweep(Session &session, const SweepRequest &request);
    void runJob(const std::shared_ptr<SweepJob> &job);
    void broadcastProgress(const std::shared_ptr<SweepJob> &job,
                           const core::SweepProgress &progress);
    /** Queue @p frame for the io thread and wake it. */
    void enqueueOutbound(std::uint64_t session_id,
                         std::string_view type, std::string payload);
    void dropSession(std::uint64_t session_id);
    std::uint64_t coalescingKey(const SweepRequest &request) const;
    /** Append one vitals snapshot to the statusz ring (io thread). */
    void sampleStatusz();

    ServerOptions options_;
    std::atomic<bool> stop_{false};
    bool started_ = false;

    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = 0;
    int wake_rd_ = -1;
    int wake_wr_ = -1;

    // Hot cross-request state.
    std::vector<apps::AppInfo> apps_;
    std::unique_ptr<runtime::ArtifactCache> cache_;

    // Sessions (io thread only, except id allocation).
    std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
    std::uint64_t next_session_id_ = 1;

    // Accept-exhaustion backoff (io thread only): while paused the
    // listeners stay out of the poll set so an EMFILE'd daemon idles
    // instead of spinning on a permanently readable listener.
    std::chrono::steady_clock::time_point accept_pause_until_{};
    double accept_backoff_ms_ = 0.0;

    // Admission + coalescing.
    AdmissionQueue<std::shared_ptr<SweepJob>> queue_;
    std::mutex inflight_mu_;
    std::map<std::uint64_t, std::shared_ptr<SweepJob>> inflight_;
    /** Sweeps in flight per session (guarded by inflight_mu_). */
    std::map<std::uint64_t, int> session_inflight_;
    /** One diagnostics line per saturation episode, not per reject. */
    std::atomic<bool> queue_saturated_{false};

    /**
     * Coalesced-trace aliases (guarded by inflight_mu_): joiner's
     * trace id -> the trace id the shared job executes under.  A
     * `trace` request for a joiner id serves the primary's span slice
     * rewritten to the joiner's id, so every subscriber can fetch
     * "its" request.  Bounded FIFO — an alias outliving the window is
     * a cold trace, not a leak.
     */
    std::map<std::uint64_t, std::uint64_t> trace_alias_;
    std::deque<std::uint64_t> trace_alias_order_;

    // Live introspection (io thread only): periodic vitals snapshots
    // served verbatim by `statusz`.
    std::deque<StatusSnapshot> statusz_ring_;
    std::chrono::steady_clock::time_point next_statusz_sample_{};
    /** request_ms histogram state at the previous sample — the delta
     * yields per-interval p50/p99. */
    std::vector<long long> prev_request_buckets_;

    // Executor -> io thread handoff.
    std::mutex outbound_mu_;
    std::vector<Outbound> outbound_;
    /** Bytes sitting in outbound_ + being flushed (mem budget). */
    std::atomic<std::size_t> outbound_bytes_{0};

    /** Exhaustion-episode log (guarded by diag_mu_). */
    mutable std::mutex diag_mu_;
    Diagnostics diag_;

    std::thread io_thread_;
    std::vector<std::thread> executors_;
};

} // namespace apex::service

#endif // APEX_SERVICE_SERVER_H_
