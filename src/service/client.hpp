#ifndef APEX_SERVICE_CLIENT_H_
#define APEX_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "core/status.hpp"
#include "runtime/wire.hpp"
#include "service/protocol.hpp"

/**
 * @file
 * Blocking client of the DSE service.
 *
 * A Client owns one connection: connect() dials the daemon's
 * Unix-domain socket (or 127.0.0.1:port) and completes the hello
 * handshake; the request methods then drive one
 * request/streamed-response exchange each.  Every failure is a
 * Status — kUnavailable when the daemon is absent or hangs up,
 * kInternal on protocol violations — so `apexc client ...` maps
 * errors to exit codes exactly like every other command.
 *
 * The client is synchronous by design: `apexc client sweep` has
 * nothing to do but wait, and a blocking read loop keeps the
 * byte-identity path (decode reply -> renderSweepText) trivial to
 * audit.
 */

namespace apex::service {

class Client {
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Dial @p unix_path and complete the hello handshake. */
    Status connect(const std::string &unix_path);

    /** Dial 127.0.0.1:@p port and complete the hello handshake. */
    Status connectTcp(int port);

    /** Server build identity (`info` request). */
    Status info(InfoReply *out);

    /** Telemetry registry snapshot of the daemon (`metrics`
     * request): the JSON document, verbatim. */
    Status metrics(std::string *out);

    /** Daemon-side span slice of one request (`trace`, v3).  Fails
     * fast with kInvalidArgument when the session negotiated v2 —
     * the caller then merges an empty slice instead of stalling. */
    Status trace(std::uint64_t trace_id, TraceReply *out);

    /** Snapshot ring of the daemon's vitals (`statusz`, v3;
     * @p max_samples 0 = everything).  v2 sessions fail fast, as
     * with trace(). */
    Status statusz(int max_samples, StatuszReply *out);

    /**
     * Run one sweep: send the request, wait through ack | reject,
     * stream progress frames into @p on_progress (may be null) and
     * decode the final report into @p reply.  A reject becomes a
     * Status carrying the daemon's code and reason.  @p ack_out (may
     * be null) receives the ack — tests read `coalesced` from it.
     * @p reject_out (may be null) receives the full reject frame —
     * the resilient path reads the retry_after_ms hint from it.
     */
    Status runSweep(const SweepRequest &request, SweepReply *reply,
                    const std::function<void(const SweepProgressFrame &)>
                        &on_progress = nullptr,
                    SweepAck *ack_out = nullptr,
                    SweepReject *reject_out = nullptr);

    /** Polite goodbye (bye -> bye.ok); the connection closes. */
    void goodbye();

    /** Server version string captured at the handshake. */
    const std::string &serverVersion() const { return server_version_; }

    /** Protocol version the handshake negotiated (0 before
     * connect()).  Callers gate v3-only features on this. */
    int serverProtocol() const { return negotiated_protocol_; }

  private:
    Status handshake();
    /** Block until one frame arrives (kUnavailable on EOF). */
    Status readFrame(runtime::FramedRecord *out);
    Status sendFrame(std::string_view type, std::string_view payload);

    int fd_ = -1;
    runtime::FrameDecoder decoder_{kServiceMagic, kServiceWireVersion};
    std::string server_version_;
    int negotiated_protocol_ = 0;
};

/** Reconnect/retry knobs of runSweepResilient(). */
struct RetryPolicy {
    /** Total submission attempts (connect + sweep counts as one);
     * <= 1 means a single try, no retries. */
    int max_attempts = 5;
    /** First backoff delay; each further retry doubles it. */
    double base_ms = 200.0;
    /** Backoff ceiling. */
    double max_ms = 5000.0;
    /** Seed of the deterministic jitter (0 = derive from the pid).
     * Tests pin it so sleep sequences are reproducible. */
    std::uint64_t jitter_seed = 0;
    /** Test hook: invoked with each delay instead of sleeping.
     * Null = really sleep. */
    std::function<void(double ms)> sleep_fn;
};

/** What the resilient path did to land the sweep (telemetry for
 * tests and the --progress footer). */
struct RetryStats {
    int attempts = 0;     ///< Submissions tried (>= 1).
    int rejects = 0;      ///< Load-shedding rejects absorbed.
    int disconnects = 0;  ///< Connections lost (or never made).
    double slept_ms = 0;  ///< Total backoff budget consumed.
};

/**
 * Self-healing sweep submission: dial the daemon (@p unix_path, or
 * 127.0.0.1:@p tcp_port when the path is empty), submit @p request
 * and collect the report, absorbing every *transient* failure —
 * connect refused while the daemon restarts, a load-shedding reject,
 * the connection dying mid-sweep (daemon SIGKILLed) — by
 * reconnecting with exponential backoff + deterministic jitter and
 * resubmitting the same request.  Rejects carrying a retry_after_ms
 * hint stretch the backoff to at least the hint, so a shedding
 * daemon shapes its own readmission traffic.
 *
 * Resubmission is idempotent by construction: requests coalesce on
 * the sweep fingerprint, and a daemon with a cache dir journals each
 * sweep under that fingerprint, so a restarted daemon replays the
 * completed cells and the eventual report is byte-identical to an
 * undisturbed run.  Permanent failures (kInvalidArgument, protocol
 * violations) return immediately; exhausting max_attempts returns
 * the last transient Status (kUnavailable -> exit 16), never a hang.
 */
Status runSweepResilient(
    const std::string &unix_path, int tcp_port,
    const SweepRequest &request, const RetryPolicy &policy,
    SweepReply *reply,
    const std::function<void(const SweepProgressFrame &)>
        &on_progress = nullptr,
    RetryStats *stats = nullptr);

} // namespace apex::service

#endif // APEX_SERVICE_CLIENT_H_
