#ifndef APEX_SERVICE_CLIENT_H_
#define APEX_SERVICE_CLIENT_H_

#include <functional>
#include <string>

#include "core/status.hpp"
#include "runtime/wire.hpp"
#include "service/protocol.hpp"

/**
 * @file
 * Blocking client of the DSE service.
 *
 * A Client owns one connection: connect() dials the daemon's
 * Unix-domain socket (or 127.0.0.1:port) and completes the hello
 * handshake; the request methods then drive one
 * request/streamed-response exchange each.  Every failure is a
 * Status — kUnavailable when the daemon is absent or hangs up,
 * kInternal on protocol violations — so `apexc client ...` maps
 * errors to exit codes exactly like every other command.
 *
 * The client is synchronous by design: `apexc client sweep` has
 * nothing to do but wait, and a blocking read loop keeps the
 * byte-identity path (decode reply -> renderSweepText) trivial to
 * audit.
 */

namespace apex::service {

class Client {
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Dial @p unix_path and complete the hello handshake. */
    Status connect(const std::string &unix_path);

    /** Dial 127.0.0.1:@p port and complete the hello handshake. */
    Status connectTcp(int port);

    /** Server build identity (`info` request). */
    Status info(InfoReply *out);

    /** Telemetry registry snapshot of the daemon (`metrics`
     * request): the JSON document, verbatim. */
    Status metrics(std::string *out);

    /**
     * Run one sweep: send the request, wait through ack | reject,
     * stream progress frames into @p on_progress (may be null) and
     * decode the final report into @p reply.  A reject becomes a
     * Status carrying the daemon's code and reason.  @p ack_out (may
     * be null) receives the ack — tests read `coalesced` from it.
     */
    Status runSweep(const SweepRequest &request, SweepReply *reply,
                    const std::function<void(const SweepProgressFrame &)>
                        &on_progress = nullptr,
                    SweepAck *ack_out = nullptr);

    /** Polite goodbye (bye -> bye.ok); the connection closes. */
    void goodbye();

    /** Server version string captured at the handshake. */
    const std::string &serverVersion() const { return server_version_; }

  private:
    Status handshake();
    /** Block until one frame arrives (kUnavailable on EOF). */
    Status readFrame(runtime::FramedRecord *out);
    Status sendFrame(std::string_view type, std::string_view payload);

    int fd_ = -1;
    runtime::FrameDecoder decoder_{kServiceMagic, kServiceWireVersion};
    std::string server_version_;
};

} // namespace apex::service

#endif // APEX_SERVICE_CLIENT_H_
