#include "service/protocol.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/encoding.hpp"
#include "core/evaluate.hpp"

namespace apex::service {

namespace {

using namespace core::enc;

/** Hex-float doubles round-trip IEEE values exactly, so a decoded
 * deadline (or metric) is bit-identical to the encoded one. */
void
putDouble(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    os << buf << '\n';
}

bool
getDouble(std::istream &is, double *out)
{
    std::string tok;
    if (!(is >> tok))
        return false;
    is.get();
    char *end = nullptr;
    *out = std::strtod(tok.c_str(), &end);
    return end != nullptr && *end == '\0' && end != tok.c_str();
}

} // namespace

// --- hello -----------------------------------------------------------

std::string
encodeHello(const HelloRequest &req)
{
    std::ostringstream os;
    os << req.protocol << '\n';
    putStr(os, req.client);
    return os.str();
}

bool
decodeHello(const std::string &payload, HelloRequest *out)
{
    std::istringstream is(payload);
    if (!(is >> out->protocol))
        return false;
    is.get();
    return getStr(is, &out->client);
}

std::string
encodeHelloReply(const HelloReply &rep)
{
    std::ostringstream os;
    os << rep.protocol << '\n';
    putStr(os, rep.server_version);
    return os.str();
}

bool
decodeHelloReply(const std::string &payload, HelloReply *out)
{
    std::istringstream is(payload);
    if (!(is >> out->protocol))
        return false;
    is.get();
    return getStr(is, &out->server_version);
}

// --- info ------------------------------------------------------------

std::string
encodeInfoReply(const InfoReply &rep)
{
    std::ostringstream os;
    os << rep.protocol << '\n';
    putStr(os, rep.version);
    putStr(os, rep.commit);
    putStr(os, rep.flags);
    return os.str();
}

bool
decodeInfoReply(const std::string &payload, InfoReply *out)
{
    std::istringstream is(payload);
    if (!(is >> out->protocol))
        return false;
    is.get();
    return getStr(is, &out->version) && getStr(is, &out->commit) &&
           getStr(is, &out->flags);
}

// --- sweep request ---------------------------------------------------

std::string
encodeSweepRequest(const SweepRequest &req)
{
    std::ostringstream os;
    os << req.id << ' ' << req.priority << ' ' << req.cell_retries
       << ' ' << (req.want_progress ? 1 : 0) << '\n';
    putStr(os, req.level);
    putStr(os, req.isolate);
    putDouble(os, req.deadline_ms);
    putDouble(os, req.cell_deadline_ms);
    return os.str();
}

bool
decodeSweepRequest(const std::string &payload, SweepRequest *out)
{
    std::istringstream is(payload);
    int want_progress = 0;
    if (!(is >> out->id >> out->priority >> out->cell_retries >>
          want_progress))
        return false;
    is.get();
    out->want_progress = want_progress != 0;
    return getStr(is, &out->level) && getStr(is, &out->isolate) &&
           getDouble(is, &out->deadline_ms) &&
           getDouble(is, &out->cell_deadline_ms);
}

// --- ack / reject ----------------------------------------------------

std::string
encodeAck(const SweepAck &ack)
{
    std::ostringstream os;
    os << ack.id << ' ' << (ack.coalesced ? 1 : 0) << '\n';
    return os.str();
}

bool
decodeAck(const std::string &payload, SweepAck *out)
{
    std::istringstream is(payload);
    int coalesced = 0;
    if (!(is >> out->id >> coalesced))
        return false;
    out->coalesced = coalesced != 0;
    return true;
}

std::string
encodeReject(const SweepReject &rej)
{
    std::ostringstream os;
    os << rej.id << ' ' << static_cast<int>(rej.code) << '\n';
    putStr(os, rej.reason);
    putDouble(os, rej.retry_after_ms);
    return os.str();
}

bool
decodeReject(const std::string &payload, SweepReject *out)
{
    std::istringstream is(payload);
    int code = 0;
    if (!(is >> out->id >> code))
        return false;
    is.get();
    out->code = static_cast<ErrorCode>(code);
    return getStr(is, &out->reason) &&
           getDouble(is, &out->retry_after_ms);
}

// --- progress --------------------------------------------------------

std::string
encodeProgress(const SweepProgressFrame &p)
{
    std::ostringstream os;
    os << p.id << ' ' << p.done << ' ' << p.total << '\n';
    putStr(os, p.app);
    putStr(os, p.variant);
    return os.str();
}

bool
decodeProgress(const std::string &payload, SweepProgressFrame *out)
{
    std::istringstream is(payload);
    if (!(is >> out->id >> out->done >> out->total))
        return false;
    is.get();
    return getStr(is, &out->app) && getStr(is, &out->variant);
}

// --- report ----------------------------------------------------------

std::string
encodeSweepReply(const SweepReply &rep)
{
    std::ostringstream os;
    os << rep.id << '\n';
    os << (rep.deadline_bounded ? 1 : 0) << ' '
       << (rep.deadline_expired ? 1 : 0) << ' '
       << (rep.cancelled ? 1 : 0) << '\n';
    os << rep.entries.size() << '\n';
    for (const core::SweepEntry &e : rep.entries) {
        putStr(os, e.app);
        putStr(os, e.variant);
        putStr(os, core::serializeEvalResult(e.result));
    }
    const ExplorationReport &r = rep.report;
    os << r.evaluated << ' ' << r.skipped << ' ' << r.degraded
       << '\n';
    os << r.failures.size() << '\n';
    for (const StageFailure &f : r.failures) {
        putStr(os, f.app);
        putStr(os, f.variant);
        putStr(os, f.stage);
        putStatus(os, f.status);
        os << f.attempts << '\n';
    }
    putDiagnostics(os, r.diagnostics);
    return os.str();
}

bool
decodeSweepReply(const std::string &payload, SweepReply *out)
{
    std::istringstream is(payload);
    if (!(is >> out->id))
        return false;
    is.get();
    int bounded = 0;
    int expired = 0;
    int cancelled = 0;
    if (!(is >> bounded >> expired >> cancelled))
        return false;
    is.get();
    out->deadline_bounded = bounded != 0;
    out->deadline_expired = expired != 0;
    out->cancelled = cancelled != 0;

    std::size_t n = 0;
    if (!(is >> n))
        return false;
    is.get();
    out->entries.clear();
    // No reserve(n): the count is wire-supplied, so allocation must
    // track the entries the payload actually delivers, not a forged
    // header.  A bogus count fails at the first missing entry.
    for (std::size_t i = 0; i < n; ++i) {
        core::SweepEntry e;
        std::string blob;
        if (!getStr(is, &e.app) || !getStr(is, &e.variant) ||
            !getStr(is, &blob))
            return false;
        Result<core::EvalResult> parsed = core::parseEvalResult(blob);
        if (!parsed.ok())
            return false;
        e.result = std::move(parsed).value();
        out->entries.push_back(std::move(e));
    }

    ExplorationReport &r = out->report;
    r = ExplorationReport{};
    if (!(is >> r.evaluated >> r.skipped >> r.degraded))
        return false;
    is.get();
    std::size_t nfail = 0;
    if (!(is >> nfail))
        return false;
    is.get();
    // Wire-supplied count: no reserve (see entries above).
    for (std::size_t i = 0; i < nfail; ++i) {
        StageFailure f;
        if (!getStr(is, &f.app) || !getStr(is, &f.variant) ||
            !getStr(is, &f.stage) || !getStatus(is, &f.status))
            return false;
        if (!(is >> f.attempts))
            return false;
        is.get();
        r.failures.push_back(std::move(f));
    }
    return getDiagnostics(is, &r.diagnostics);
}

// --- rendering -------------------------------------------------------

std::string
renderSweepText(const std::vector<core::SweepEntry> &entries,
                const ExplorationReport &report)
{
    std::string out;
    char buf[256];
    for (const core::SweepEntry &e : entries) {
        std::snprintf(buf, sizeof buf,
                      "%-10s %-16s pe_count=%-3d pe_area_um2=%-10.1f "
                      "pe_energy_pj=%.3f\n",
                      e.app.c_str(), e.variant.c_str(),
                      e.result.pe_count, e.result.pe_area,
                      e.result.pe_energy);
        out += buf;
    }
    out += report.summary();
    out += '\n';
    return out;
}

int
sweepExitCode(const SweepReply &rep)
{
    if (rep.cancelled)
        return exitCodeFor(ErrorCode::kCancelled);
    if (rep.report.evaluated == 0 && rep.deadline_bounded &&
        rep.deadline_expired)
        return exitCodeFor(ErrorCode::kTimeout);
    if (rep.report.evaluated == 0 && !rep.report.failures.empty())
        return exitCodeFor(rep.report.failures.front().status.code());
    return 0;
}

} // namespace apex::service
