#include "service/protocol.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include <unistd.h>

#include "core/encoding.hpp"
#include "core/evaluate.hpp"

namespace apex::service {

namespace {

using namespace core::enc;

/** Hex-float doubles round-trip IEEE values exactly, so a decoded
 * deadline (or metric) is bit-identical to the encoded one. */
void
putDouble(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    os << buf << '\n';
}

bool
getDouble(std::istream &is, double *out)
{
    std::string tok;
    if (!(is >> tok))
        return false;
    is.get();
    char *end = nullptr;
    *out = std::strtod(tok.c_str(), &end);
    return end != nullptr && *end == '\0' && end != tok.c_str();
}

} // namespace

// --- hello -----------------------------------------------------------

std::string
encodeHello(const HelloRequest &req)
{
    std::ostringstream os;
    os << req.protocol << '\n';
    putStr(os, req.client);
    return os.str();
}

bool
decodeHello(const std::string &payload, HelloRequest *out)
{
    std::istringstream is(payload);
    if (!(is >> out->protocol))
        return false;
    is.get();
    return getStr(is, &out->client);
}

std::string
encodeHelloReply(const HelloReply &rep)
{
    std::ostringstream os;
    os << rep.protocol << '\n';
    putStr(os, rep.server_version);
    return os.str();
}

bool
decodeHelloReply(const std::string &payload, HelloReply *out)
{
    std::istringstream is(payload);
    if (!(is >> out->protocol))
        return false;
    is.get();
    return getStr(is, &out->server_version);
}

// --- info ------------------------------------------------------------

std::string
encodeInfoReply(const InfoReply &rep)
{
    std::ostringstream os;
    os << rep.protocol << '\n';
    putStr(os, rep.version);
    putStr(os, rep.commit);
    putStr(os, rep.flags);
    return os.str();
}

bool
decodeInfoReply(const std::string &payload, InfoReply *out)
{
    std::istringstream is(payload);
    if (!(is >> out->protocol))
        return false;
    is.get();
    return getStr(is, &out->version) && getStr(is, &out->commit) &&
           getStr(is, &out->flags);
}

// --- sweep request ---------------------------------------------------

std::string
encodeSweepRequest(const SweepRequest &req)
{
    std::ostringstream os;
    os << req.id << ' ' << req.priority << ' ' << req.cell_retries
       << ' ' << (req.want_progress ? 1 : 0) << '\n';
    putStr(os, req.level);
    putStr(os, req.isolate);
    putDouble(os, req.deadline_ms);
    putDouble(os, req.cell_deadline_ms);
    // v3 trailer; a v2 decoder stops before it (istream decoders
    // ignore trailing bytes), so emitting it unconditionally is safe
    // against old servers.
    os << req.trace_id << '\n';
    return os.str();
}

bool
decodeSweepRequest(const std::string &payload, SweepRequest *out)
{
    std::istringstream is(payload);
    int want_progress = 0;
    if (!(is >> out->id >> out->priority >> out->cell_retries >>
          want_progress))
        return false;
    is.get();
    out->want_progress = want_progress != 0;
    if (!getStr(is, &out->level) || !getStr(is, &out->isolate) ||
        !getDouble(is, &out->deadline_ms) ||
        !getDouble(is, &out->cell_deadline_ms))
        return false;
    // Permissive trailer: absent on v2 payloads, so EOF here means
    // "no trace context", never a malformed frame.
    out->trace_id = 0;
    unsigned long long trace = 0;
    if (is >> trace)
        out->trace_id = trace;
    return true;
}

// --- ack / reject ----------------------------------------------------

std::string
encodeAck(const SweepAck &ack)
{
    std::ostringstream os;
    os << ack.id << ' ' << (ack.coalesced ? 1 : 0) << '\n';
    return os.str();
}

bool
decodeAck(const std::string &payload, SweepAck *out)
{
    std::istringstream is(payload);
    int coalesced = 0;
    if (!(is >> out->id >> coalesced))
        return false;
    out->coalesced = coalesced != 0;
    return true;
}

std::string
encodeReject(const SweepReject &rej)
{
    std::ostringstream os;
    os << rej.id << ' ' << static_cast<int>(rej.code) << '\n';
    putStr(os, rej.reason);
    putDouble(os, rej.retry_after_ms);
    return os.str();
}

bool
decodeReject(const std::string &payload, SweepReject *out)
{
    std::istringstream is(payload);
    int code = 0;
    if (!(is >> out->id >> code))
        return false;
    is.get();
    out->code = static_cast<ErrorCode>(code);
    return getStr(is, &out->reason) &&
           getDouble(is, &out->retry_after_ms);
}

// --- progress --------------------------------------------------------

std::string
encodeProgress(const SweepProgressFrame &p)
{
    std::ostringstream os;
    os << p.id << ' ' << p.done << ' ' << p.total << '\n';
    putStr(os, p.app);
    putStr(os, p.variant);
    os << p.trace_id << '\n'; // v3 trailer (see encodeSweepRequest).
    return os.str();
}

bool
decodeProgress(const std::string &payload, SweepProgressFrame *out)
{
    std::istringstream is(payload);
    if (!(is >> out->id >> out->done >> out->total))
        return false;
    is.get();
    if (!getStr(is, &out->app) || !getStr(is, &out->variant))
        return false;
    out->trace_id = 0;
    unsigned long long trace = 0;
    if (is >> trace) // Absent on v2 payloads: default, don't fail.
        out->trace_id = trace;
    return true;
}

// --- report ----------------------------------------------------------

std::string
encodeSweepReply(const SweepReply &rep)
{
    std::ostringstream os;
    os << rep.id << '\n';
    os << (rep.deadline_bounded ? 1 : 0) << ' '
       << (rep.deadline_expired ? 1 : 0) << ' '
       << (rep.cancelled ? 1 : 0) << '\n';
    os << rep.entries.size() << '\n';
    for (const core::SweepEntry &e : rep.entries) {
        putStr(os, e.app);
        putStr(os, e.variant);
        putStr(os, core::serializeEvalResult(e.result));
    }
    const ExplorationReport &r = rep.report;
    os << r.evaluated << ' ' << r.skipped << ' ' << r.degraded
       << '\n';
    os << r.failures.size() << '\n';
    for (const StageFailure &f : r.failures) {
        putStr(os, f.app);
        putStr(os, f.variant);
        putStr(os, f.stage);
        putStatus(os, f.status);
        os << f.attempts << '\n';
    }
    putDiagnostics(os, r.diagnostics);
    return os.str();
}

bool
decodeSweepReply(const std::string &payload, SweepReply *out)
{
    std::istringstream is(payload);
    if (!(is >> out->id))
        return false;
    is.get();
    int bounded = 0;
    int expired = 0;
    int cancelled = 0;
    if (!(is >> bounded >> expired >> cancelled))
        return false;
    is.get();
    out->deadline_bounded = bounded != 0;
    out->deadline_expired = expired != 0;
    out->cancelled = cancelled != 0;

    std::size_t n = 0;
    if (!(is >> n))
        return false;
    is.get();
    out->entries.clear();
    // No reserve(n): the count is wire-supplied, so allocation must
    // track the entries the payload actually delivers, not a forged
    // header.  A bogus count fails at the first missing entry.
    for (std::size_t i = 0; i < n; ++i) {
        core::SweepEntry e;
        std::string blob;
        if (!getStr(is, &e.app) || !getStr(is, &e.variant) ||
            !getStr(is, &blob))
            return false;
        Result<core::EvalResult> parsed = core::parseEvalResult(blob);
        if (!parsed.ok())
            return false;
        e.result = std::move(parsed).value();
        out->entries.push_back(std::move(e));
    }

    ExplorationReport &r = out->report;
    r = ExplorationReport{};
    if (!(is >> r.evaluated >> r.skipped >> r.degraded))
        return false;
    is.get();
    std::size_t nfail = 0;
    if (!(is >> nfail))
        return false;
    is.get();
    // Wire-supplied count: no reserve (see entries above).
    for (std::size_t i = 0; i < nfail; ++i) {
        StageFailure f;
        if (!getStr(is, &f.app) || !getStr(is, &f.variant) ||
            !getStr(is, &f.stage) || !getStatus(is, &f.status))
            return false;
        if (!(is >> f.attempts))
            return false;
        is.get();
        r.failures.push_back(std::move(f));
    }
    return getDiagnostics(is, &r.diagnostics);
}

// --- trace (v3) ------------------------------------------------------

std::uint64_t
mintTraceId()
{
    static std::atomic<std::uint64_t> sequence{0};
    std::uint64_t h = 1469598103934665603ull; // fnv1a64 offset basis.
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(static_cast<std::uint64_t>(::getpid()));
    mix(static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count()));
    mix(sequence.fetch_add(1, std::memory_order_relaxed));
    return h == 0 ? 1 : h; // 0 means "no trace context" everywhere.
}

std::string
encodeTraceRequest(const TraceRequest &req)
{
    std::ostringstream os;
    os << req.trace_id << '\n';
    return os.str();
}

bool
decodeTraceRequest(const std::string &payload, TraceRequest *out)
{
    std::istringstream is(payload);
    unsigned long long trace = 0;
    if (!(is >> trace))
        return false;
    out->trace_id = trace;
    return true;
}

std::string
encodeTraceReply(const TraceReply &rep)
{
    std::ostringstream os;
    os << rep.trace_id << ' ' << rep.dropped << ' ' << rep.evicted
       << '\n';
    os << rep.events.size() << '\n';
    for (const telemetry::SpanEvent &ev : rep.events) {
        putStr(os, ev.name);
        putStr(os, ev.scope);
        putStr(os, ev.args);
        putDouble(os, ev.ts_us);
        putDouble(os, ev.dur_us);
        os << ev.lane << ' ' << ev.thread_ord << ' ' << ev.depth
           << ' ' << ev.trace_id << '\n';
    }
    return os.str();
}

bool
decodeTraceReply(const std::string &payload, TraceReply *out)
{
    std::istringstream is(payload);
    unsigned long long trace = 0;
    if (!(is >> trace >> out->dropped >> out->evicted))
        return false;
    is.get();
    out->trace_id = trace;
    std::size_t n = 0;
    if (!(is >> n))
        return false;
    is.get();
    out->events.clear();
    // No reserve(n): wire-supplied count (see decodeSweepReply).
    for (std::size_t i = 0; i < n; ++i) {
        telemetry::SpanEvent ev;
        if (!getStr(is, &ev.name) || !getStr(is, &ev.scope) ||
            !getStr(is, &ev.args) || !getDouble(is, &ev.ts_us) ||
            !getDouble(is, &ev.dur_us))
            return false;
        unsigned long long ev_trace = 0;
        if (!(is >> ev.lane >> ev.thread_ord >> ev.depth >> ev_trace))
            return false;
        is.get();
        ev.trace_id = ev_trace;
        out->events.push_back(std::move(ev));
    }
    return true;
}

// --- statusz (v3) ----------------------------------------------------

std::string
encodeStatuszRequest(const StatuszRequest &req)
{
    std::ostringstream os;
    os << req.max_samples << '\n';
    return os.str();
}

bool
decodeStatuszRequest(const std::string &payload, StatuszRequest *out)
{
    std::istringstream is(payload);
    return static_cast<bool>(is >> out->max_samples);
}

namespace {

void
putSnapshot(std::ostream &os, const StatusSnapshot &s)
{
    os << s.sessions << ' ' << s.queue_depth << ' '
       << s.active_sweeps << ' ' << s.inflight_bytes << '\n';
    os << s.accepted << ' ' << s.rejected << ' ' << s.coalesced
       << ' ' << s.sweeps << '\n';
    os << s.cache_hits << ' ' << s.cache_misses << ' '
       << s.worker_restarts << ' ' << s.trace_dropped << '\n';
    os << s.mined_patterns << ' ' << s.mine_embeddings << ' '
       << s.mine_pruned << '\n';
    putDouble(os, s.ts_ms);
    putDouble(os, s.request_p50_ms);
    putDouble(os, s.request_p99_ms);
}

bool
getSnapshot(std::istream &is, StatusSnapshot *out)
{
    if (!(is >> out->sessions >> out->queue_depth >>
          out->active_sweeps >> out->inflight_bytes))
        return false;
    is.get();
    if (!(is >> out->accepted >> out->rejected >> out->coalesced >>
          out->sweeps))
        return false;
    is.get();
    if (!(is >> out->cache_hits >> out->cache_misses >>
          out->worker_restarts >> out->trace_dropped))
        return false;
    is.get();
    if (!(is >> out->mined_patterns >> out->mine_embeddings >>
          out->mine_pruned))
        return false;
    is.get();
    return getDouble(is, &out->ts_ms) &&
           getDouble(is, &out->request_p50_ms) &&
           getDouble(is, &out->request_p99_ms);
}

std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

std::string
encodeStatuszReply(const StatuszReply &rep)
{
    std::ostringstream os;
    putDouble(os, rep.interval_ms);
    os << rep.samples.size() << '\n';
    for (const StatusSnapshot &s : rep.samples)
        putSnapshot(os, s);
    return os.str();
}

bool
decodeStatuszReply(const std::string &payload, StatuszReply *out)
{
    std::istringstream is(payload);
    if (!getDouble(is, &out->interval_ms))
        return false;
    std::size_t n = 0;
    if (!(is >> n))
        return false;
    is.get();
    out->samples.clear();
    // No reserve(n): wire-supplied count (see decodeSweepReply).
    for (std::size_t i = 0; i < n; ++i) {
        StatusSnapshot s;
        if (!getSnapshot(is, &s))
            return false;
        out->samples.push_back(s);
    }
    return true;
}

std::string
statuszJson(const StatuszReply &rep)
{
    std::string out = "{\"apex_statusz\":1,\"interval_ms\":" +
                      jsonNumber(rep.interval_ms) + ",\"samples\":[";
    bool first = true;
    for (const StatusSnapshot &s : rep.samples) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"ts_ms\":" + jsonNumber(s.ts_ms) +
               ",\"sessions\":" + std::to_string(s.sessions) +
               ",\"queue_depth\":" + std::to_string(s.queue_depth) +
               ",\"active_sweeps\":" +
               std::to_string(s.active_sweeps) +
               ",\"inflight_bytes\":" +
               std::to_string(s.inflight_bytes) +
               ",\"accepted\":" + std::to_string(s.accepted) +
               ",\"rejected\":" + std::to_string(s.rejected) +
               ",\"coalesced\":" + std::to_string(s.coalesced) +
               ",\"sweeps\":" + std::to_string(s.sweeps) +
               ",\"cache_hits\":" + std::to_string(s.cache_hits) +
               ",\"cache_misses\":" + std::to_string(s.cache_misses) +
               ",\"worker_restarts\":" +
               std::to_string(s.worker_restarts) +
               ",\"trace_dropped\":" +
               std::to_string(s.trace_dropped) +
               ",\"mined_patterns\":" +
               std::to_string(s.mined_patterns) +
               ",\"mine_embeddings\":" +
               std::to_string(s.mine_embeddings) +
               ",\"mine_pruned\":" + std::to_string(s.mine_pruned) +
               ",\"request_p50_ms\":" + jsonNumber(s.request_p50_ms) +
               ",\"request_p99_ms\":" + jsonNumber(s.request_p99_ms) +
               "}";
    }
    out += "]}";
    return out;
}

std::string
renderStatuszText(const StatuszReply &rep)
{
    char buf[256];
    std::string out;
    if (rep.samples.empty())
        return "apexd statusz: no samples yet\n";
    const StatusSnapshot &now = rep.samples.back();
    const StatusSnapshot *prev = rep.samples.size() >= 2
                                     ? &rep.samples[rep.samples.size() - 2]
                                     : nullptr;
    std::snprintf(buf, sizeof buf,
                  "apexd statusz  %zu sample(s), interval %.0f ms\n",
                  rep.samples.size(), rep.interval_ms);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "  sessions %d  queue %d  active %d  "
                  "inflight_bytes %lld\n",
                  now.sessions, now.queue_depth, now.active_sweeps,
                  now.inflight_bytes);
    out += buf;
    const long long lookups = now.cache_hits + now.cache_misses;
    std::snprintf(buf, sizeof buf,
                  "  cache hit rate %.1f%% (%lld/%lld)  "
                  "worker restarts %lld  trace drops %lld\n",
                  lookups > 0 ? 100.0 *
                                    static_cast<double>(now.cache_hits) /
                                    static_cast<double>(lookups)
                              : 0.0,
                  now.cache_hits, lookups, now.worker_restarts,
                  now.trace_dropped);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "  mining: patterns %lld  embeddings %lld  "
                  "pruned %lld\n",
                  now.mined_patterns, now.mine_embeddings,
                  now.mine_pruned);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "  request p50/p99 %.1f/%.1f ms\n",
                  now.request_p50_ms, now.request_p99_ms);
    out += buf;
    if (prev != nullptr) {
        std::snprintf(buf, sizeof buf,
                      "  last interval: accepted +%lld  rejected "
                      "+%lld  coalesced +%lld  sweeps +%lld\n",
                      now.accepted - prev->accepted,
                      now.rejected - prev->rejected,
                      now.coalesced - prev->coalesced,
                      now.sweeps - prev->sweeps);
        out += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "  totals: accepted %lld  rejected %lld  "
                  "coalesced %lld  sweeps %lld\n",
                  now.accepted, now.rejected, now.coalesced,
                  now.sweeps);
    out += buf;
    return out;
}

// --- rendering -------------------------------------------------------

std::string
renderSweepText(const std::vector<core::SweepEntry> &entries,
                const ExplorationReport &report)
{
    std::string out;
    char buf[256];
    for (const core::SweepEntry &e : entries) {
        std::snprintf(buf, sizeof buf,
                      "%-10s %-16s pe_count=%-3d pe_area_um2=%-10.1f "
                      "pe_energy_pj=%.3f\n",
                      e.app.c_str(), e.variant.c_str(),
                      e.result.pe_count, e.result.pe_area,
                      e.result.pe_energy);
        out += buf;
    }
    out += report.summary();
    out += '\n';
    return out;
}

int
sweepExitCode(const SweepReply &rep)
{
    if (rep.cancelled)
        return exitCodeFor(ErrorCode::kCancelled);
    if (rep.report.evaluated == 0 && rep.deadline_bounded &&
        rep.deadline_expired)
        return exitCodeFor(ErrorCode::kTimeout);
    if (rep.report.evaluated == 0 && !rep.report.failures.empty())
        return exitCodeFor(rep.report.failures.front().status.code());
    return 0;
}

} // namespace apex::service
