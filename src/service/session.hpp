#ifndef APEX_SERVICE_SESSION_H_
#define APEX_SERVICE_SESSION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/wire.hpp"
#include "service/protocol.hpp"

/**
 * @file
 * One accepted connection of the DSE service.
 *
 * A Session owns the socket fd, the incremental frame decoder and the
 * handshake state machine.  The first frame on every connection must
 * be `hello` carrying the client's protocol version: a mismatch is
 * answered with `hello.err` naming both versions and the session is
 * dropped — version skew fails loudly at the handshake, never as a
 * garbled payload mid-request.  After `hello.ok` the session is
 * *ready* and decoded frames are handed to the server for dispatch.
 *
 * Threading: the io thread owns all reads.  send() performs a
 * complete write and may be called from the io thread only
 * (executors hand outbound frames to the io thread via the server's
 * outbound queue).  A write that makes zero progress for the stall
 * bound (kernel buffer full, peer not reading) fails instead of
 * wedging the io thread; the server then drops the session — a
 * stuck peer costs one session and at most one stall window, never
 * the daemon.
 */

namespace apex::service {

class Session {
  public:
    Session(int fd, std::uint64_t id);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    int fd() const { return fd_; }
    std::uint64_t id() const { return id_; }
    bool ready() const { return ready_; }

    /** Version this session speaks, fixed at the handshake: the
     * client's hello.protocol when it falls inside
     * [kMinProtocolVersion, kProtocolVersion].  v3-only requests
     * (trace, statusz) are dispatched only on sessions >= 3. */
    int protocolVersion() const { return negotiated_protocol_; }

    /**
     * Drain readable bytes and decode frames.  The hello handshake is
     * handled internally (replies sent, state advanced); frames
     * arriving after a completed handshake are appended to @p out for
     * the server to dispatch.  Returns false when the session must be
     * dropped: peer closed, read error, corrupt stream, failed
     * handshake, or a failed reply write.
     */
    bool onReadable(std::vector<runtime::FramedRecord> *out);

    /** Send one protocol frame (complete blocking write).  False on
     * a write failure — the caller drops the session. */
    bool send(std::string_view type, std::string_view payload);

  private:
    /** Consume buffered frames; false drops the session. */
    bool dispatchDecoded(std::vector<runtime::FramedRecord> *out);

    int fd_ = -1;
    std::uint64_t id_ = 0;
    bool ready_ = false;
    int negotiated_protocol_ = 0; ///< 0 until the handshake lands.
    runtime::FrameDecoder decoder_;
};

} // namespace apex::service

#endif // APEX_SERVICE_SESSION_H_
