#include "service/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "runtime/cache.hpp"
#include "runtime/telemetry.hpp"
#include "service/version.hpp"

namespace apex::service {

namespace {

Status
unavailable(const std::string &what)
{
    return Status(ErrorCode::kUnavailable,
                  what + ": " + std::strerror(errno));
}

} // namespace

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Status
Client::connect(const std::string &unix_path)
{
    std::signal(SIGPIPE, SIG_IGN);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (unix_path.size() >= sizeof addr.sun_path)
        return Status(ErrorCode::kInvalidArgument,
                      "socket path too long: " + unix_path);
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return unavailable("socket");
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const Status s = unavailable("connect " + unix_path);
        ::close(fd_);
        fd_ = -1;
        return s;
    }
    return handshake();
}

Status
Client::connectTcp(int port)
{
    std::signal(SIGPIPE, SIG_IGN);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return unavailable("socket");
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const Status s = unavailable(
            "connect 127.0.0.1:" + std::to_string(port));
        ::close(fd_);
        fd_ = -1;
        return s;
    }
    return handshake();
}

Status
Client::handshake()
{
    HelloRequest hello;
    hello.protocol = kProtocolVersion;
    hello.client = "apexc";
    Status s = sendFrame(kFrameHello, encodeHello(hello));
    if (!s.ok())
        return s;
    runtime::FramedRecord rec;
    s = readFrame(&rec);
    if (!s.ok())
        return s;
    if (rec.type == kFrameHelloErr)
        return Status(ErrorCode::kUnavailable, rec.payload);
    HelloReply reply;
    if (rec.type != kFrameHelloOk ||
        !decodeHelloReply(rec.payload, &reply))
        return Status(ErrorCode::kInternal,
                      "unexpected handshake reply '" + rec.type + "'");
    server_version_ = reply.server_version;
    negotiated_protocol_ = reply.protocol;
    return Status::okStatus();
}

Status
Client::info(InfoReply *out)
{
    Status s = sendFrame(kFrameInfo, "");
    if (!s.ok())
        return s;
    runtime::FramedRecord rec;
    s = readFrame(&rec);
    if (!s.ok())
        return s;
    if (rec.type != kFrameInfoOk || !decodeInfoReply(rec.payload, out))
        return Status(ErrorCode::kInternal,
                      "unexpected info reply '" + rec.type + "'");
    return Status::okStatus();
}

Status
Client::metrics(std::string *out)
{
    Status s = sendFrame(kFrameMetrics, "");
    if (!s.ok())
        return s;
    runtime::FramedRecord rec;
    s = readFrame(&rec);
    if (!s.ok())
        return s;
    if (rec.type != kFrameMetricsOk)
        return Status(ErrorCode::kInternal,
                      "unexpected metrics reply '" + rec.type + "'");
    *out = std::move(rec.payload);
    return Status::okStatus();
}

Status
Client::trace(std::uint64_t trace_id, TraceReply *out)
{
    if (negotiated_protocol_ < 3)
        return Status(ErrorCode::kInvalidArgument,
                      "daemon negotiated protocol v" +
                          std::to_string(negotiated_protocol_) +
                          "; trace slices need v3");
    TraceRequest req;
    req.trace_id = trace_id;
    Status s = sendFrame(kFrameTrace, encodeTraceRequest(req));
    if (!s.ok())
        return s;
    runtime::FramedRecord rec;
    s = readFrame(&rec);
    if (!s.ok())
        return s;
    if (rec.type != kFrameTraceOk ||
        !decodeTraceReply(rec.payload, out))
        return Status(ErrorCode::kInternal,
                      "unexpected trace reply '" + rec.type + "'");
    return Status::okStatus();
}

Status
Client::statusz(int max_samples, StatuszReply *out)
{
    if (negotiated_protocol_ < 3)
        return Status(ErrorCode::kInvalidArgument,
                      "daemon negotiated protocol v" +
                          std::to_string(negotiated_protocol_) +
                          "; statusz needs v3");
    StatuszRequest req;
    req.max_samples = max_samples;
    Status s = sendFrame(kFrameStatusz, encodeStatuszRequest(req));
    if (!s.ok())
        return s;
    runtime::FramedRecord rec;
    s = readFrame(&rec);
    if (!s.ok())
        return s;
    if (rec.type != kFrameStatuszOk ||
        !decodeStatuszReply(rec.payload, out))
        return Status(ErrorCode::kInternal,
                      "unexpected statusz reply '" + rec.type + "'");
    return Status::okStatus();
}

Status
Client::runSweep(
    const SweepRequest &request, SweepReply *reply,
    const std::function<void(const SweepProgressFrame &)> &on_progress,
    SweepAck *ack_out, SweepReject *reject_out)
{
    Status s = sendFrame(kFrameSweep, encodeSweepRequest(request));
    if (!s.ok())
        return s;
    // Streamed response: ack | reject first, then any number of
    // progress frames, then the report.  Frames for other request ids
    // cannot appear — the protocol is client-driven, one request at a
    // time per connection.
    bool acked = false;
    for (;;) {
        runtime::FramedRecord rec;
        s = readFrame(&rec);
        if (!s.ok())
            return s;
        if (!acked) {
            if (rec.type == kFrameReject) {
                SweepReject rej;
                if (!decodeReject(rec.payload, &rej))
                    return Status(ErrorCode::kInternal,
                                  "malformed reject frame");
                if (reject_out != nullptr)
                    *reject_out = rej;
                return Status(rej.code, rej.reason);
            }
            SweepAck ack;
            if (rec.type != kFrameAck ||
                !decodeAck(rec.payload, &ack))
                return Status(ErrorCode::kInternal,
                              "expected ack, got '" + rec.type + "'");
            if (ack_out != nullptr)
                *ack_out = ack;
            acked = true;
            continue;
        }
        if (rec.type == kFrameProgress) {
            SweepProgressFrame p;
            if (decodeProgress(rec.payload, &p) && on_progress)
                on_progress(p);
            continue;
        }
        if (rec.type == kFrameReport) {
            if (!decodeSweepReply(rec.payload, reply))
                return Status(ErrorCode::kInternal,
                              "malformed report frame");
            return Status::okStatus();
        }
        return Status(ErrorCode::kInternal,
                      "unexpected frame '" + rec.type +
                          "' mid-sweep");
    }
}

void
Client::goodbye()
{
    if (fd_ < 0)
        return;
    if (sendFrame(kFrameBye, "").ok()) {
        runtime::FramedRecord rec;
        (void)readFrame(&rec); // bye.ok (best effort).
    }
    ::close(fd_);
    fd_ = -1;
}

Status
Client::readFrame(runtime::FramedRecord *out)
{
    for (;;) {
        const runtime::DecodeResult r = decoder_.next(out);
        if (r == runtime::DecodeResult::kFrame)
            return Status::okStatus();
        if (r == runtime::DecodeResult::kCorrupt)
            return Status(ErrorCode::kInternal,
                          "service stream corrupt: " +
                              decoder_.corruptReason());
        // kNeedMore: block for bytes.  The fd is blocking, so the
        // drain must stop after one read — whatever arrived may
        // already complete the frame, and a second read() on a quiet
        // daemon would block forever.  kOpen means *something* was
        // delivered: loop and decode.
        const runtime::DrainResult d = runtime::drainFd(
            fd_, decoder_, runtime::DrainMode::kSingleRead);
        if (d == runtime::DrainResult::kEof)
            return Status(ErrorCode::kUnavailable,
                          "daemon closed the connection");
        if (d == runtime::DrainResult::kError)
            return unavailable("read");
    }
}

Status
Client::sendFrame(std::string_view type, std::string_view payload)
{
    if (fd_ < 0)
        return Status(ErrorCode::kUnavailable, "not connected");
    Status s = runtime::writeFrame(fd_, kServiceMagic,
                                   kServiceWireVersion, type, payload);
    if (!s.ok())
        return Status(ErrorCode::kUnavailable,
                      "daemon write failed: " + s.message());
    return Status::okStatus();
}

namespace {

/** Backoff before retry @p attempt: base * 2^(attempt-1) capped at
 * max_ms, scaled by a deterministic jitter in [0.5, 1.0) so a fleet
 * of shed clients doesn't resubmit in lockstep, then stretched to at
 * least the daemon's retry_after hint. */
double
backoffDelayMs(const RetryPolicy &policy, int attempt,
               double hint_ms)
{
    double delay = policy.base_ms > 0 ? policy.base_ms : 1.0;
    for (int i = 1; i < attempt && delay < policy.max_ms; ++i)
        delay *= 2.0;
    delay = std::min(delay, policy.max_ms);
    const std::uint64_t seed =
        policy.jitter_seed != 0
            ? policy.jitter_seed
            : static_cast<std::uint64_t>(::getpid());
    char key[48];
    std::snprintf(key, sizeof key, "%llu:%d",
                  static_cast<unsigned long long>(seed), attempt);
    const double frac =
        0.5 + static_cast<double>(runtime::fnv1a64(key) % 1000) /
                  2000.0;
    return std::max(delay * frac, hint_ms);
}

/** Only daemon-absent / shedding failures are worth a retry; a
 * kInvalidArgument or protocol violation will fail identically
 * forever. */
bool
transientCode(ErrorCode code)
{
    return code == ErrorCode::kUnavailable;
}

} // namespace

Status
runSweepResilient(
    const std::string &unix_path, int tcp_port,
    const SweepRequest &request, const RetryPolicy &policy,
    SweepReply *reply,
    const std::function<void(const SweepProgressFrame &)> &on_progress,
    RetryStats *stats)
{
    RetryStats local;
    RetryStats &st = stats != nullptr ? *stats : local;
    st = RetryStats{};
    const int max_attempts = std::max(policy.max_attempts, 1);

    Status last;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        ++st.attempts;
        double hint_ms = 0.0;
        // A fresh Client per attempt: the decoder and the handshake
        // state must never straddle two connections.
        Client client;
        last = unix_path.empty() ? client.connectTcp(tcp_port)
                                 : client.connect(unix_path);
        if (last.ok()) {
            SweepReject rej;
            last = client.runSweep(request, reply, on_progress,
                                   nullptr, &rej);
            if (last.ok()) {
                client.goodbye();
                return last;
            }
            if (rej.reason.empty()) {
                ++st.disconnects; // Connection died mid-sweep.
            } else {
                ++st.rejects; // Explicit shedding frame.
                hint_ms = rej.retry_after_ms;
            }
        } else {
            ++st.disconnects; // Never connected.
        }
        if (!transientCode(last.code()) || attempt == max_attempts)
            break;
        const double delay =
            backoffDelayMs(policy, attempt, hint_ms);
        st.slept_ms += delay;
        telemetry::counter("apex.client.retries").add(1);
        if (policy.sleep_fn) {
            policy.sleep_fn(delay);
        } else {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay));
        }
    }
    if (st.attempts > 1)
        last = last.withContext("after " +
                                std::to_string(st.attempts) +
                                " attempts");
    return last;
}

} // namespace apex::service
