#include "service/version.hpp"

namespace apex::service {

std::string
buildCommit()
{
#ifdef APEX_BUILD_COMMIT
    return APEX_BUILD_COMMIT;
#else
    return "unknown";
#endif
}

std::string
buildFlags()
{
#ifdef APEX_BUILD_TYPE
    return APEX_BUILD_TYPE;
#else
    return "unknown";
#endif
}

std::string
versionString()
{
    return "apex " + buildCommit() + " (" + buildFlags() +
           ") protocol v" + std::to_string(kProtocolVersion);
}

} // namespace apex::service
