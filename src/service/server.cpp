#include "service/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/deadline.hpp"
#include "core/explorer.hpp"
#include "core/fault.hpp"
#include "runtime/eventlog.hpp"
#include "runtime/telemetry.hpp"
#include "service/version.hpp"

namespace apex::service {

namespace {

using Clock = std::chrono::steady_clock;

Status
posixError(const std::string &what)
{
    return Status(ErrorCode::kUnavailable,
                  what + ": " + std::strerror(errno));
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Parse a request's level name (validated at admission so a typo is
 * a reject frame, not a queued job that fails later). */
bool
parseLevelName(const std::string &name, core::EvalLevel *out)
{
    if (name == "map")
        *out = core::EvalLevel::kPostMapping;
    else if (name == "pnr")
        *out = core::EvalLevel::kPostPnr;
    else if (name == "pipe")
        *out = core::EvalLevel::kPostPipelining;
    else
        return false;
    return true;
}

bool
parseIsolateName(const std::string &name, core::IsolateMode *out)
{
    if (name == "thread")
        *out = core::IsolateMode::kInProcess;
    else if (name == "process")
        *out = core::IsolateMode::kProcess;
    else
        return false;
    return true;
}

/** SweepOptions a request maps to (sans runtime resources).  Shared
 * by the coalescing key and the executor so the fingerprint always
 * describes exactly the sweep that would run. */
core::SweepOptions
sweepOptionsFor(const SweepRequest &request)
{
    core::SweepOptions opts;
    (void)parseLevelName(request.level, &opts.level);
    (void)parseIsolateName(request.isolate, &opts.isolate);
    opts.cell_retries = request.cell_retries;
    opts.cell_deadline_ms = request.cell_deadline_ms;
    return opts;
}

/** Accept-pause knobs: first exhaustion pauses the listeners briefly,
 * repeats double the pause up to the cap — long enough for fds to be
 * returned, short enough that recovery is prompt. */
constexpr double kAcceptBackoffMinMs = 50.0;
constexpr double kAcceptBackoffMaxMs = 2000.0;

std::string
hexKey(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Coalesced-trace aliases retained; past this the oldest is evicted
 * — an alias outliving two minutes of ring history is already a cold
 * trace nobody can usefully fetch. */
constexpr std::size_t kTraceAliasCap = 1024;

/** Quantile over one interval's histogram bucket deltas: the upper
 * bound of the bucket where the cumulative count crosses q*total
 * (the overflow bucket reports the last finite bound). */
double
quantileFromDeltas(const std::vector<double> &bounds,
                   const std::vector<long long> &deltas, double q)
{
    long long total = 0;
    for (long long d : deltas)
        total += d;
    if (total <= 0)
        return 0.0;
    const double target = q * static_cast<double>(total);
    long long cumulative = 0;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        cumulative += deltas[i];
        if (static_cast<double>(cumulative) >= target)
            return i < bounds.size() ? bounds[i] : bounds.back();
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_depth,
             &telemetry::gauge("apex.service.queue_depth"))
{
}

Server::~Server()
{
    stop();
}

Status
Server::start()
{
    if (started_)
        return Status(ErrorCode::kInternal, "server already started");
    if (options_.unix_path.empty())
        return Status(ErrorCode::kInvalidArgument,
                      "a unix socket path is required");

    // A dead peer must cost a Status from writeAll, not the process.
    std::signal(SIGPIPE, SIG_IGN);

    // Hot state, loaded once and shared by every request.
    apps_ = apps::allApps();
    runtime::CacheOptions copt;
    if (!options_.cache_dir.empty())
        copt.disk_dir = options_.cache_dir;
    cache_ = std::make_unique<runtime::ArtifactCache>(copt);

    // Any failure below must release everything opened so far:
    // started_ stays false, so stop() will never clean up after a
    // failed start.  The socket file is unlinked only once it is
    // ours — before that, a file at the path belongs to whoever put
    // it there.
    bool own_path = false;
    const auto fail = [&](Status s) {
        for (int *fd : {&unix_fd_, &tcp_fd_, &wake_rd_, &wake_wr_}) {
            if (*fd >= 0)
                ::close(*fd);
            *fd = -1;
        }
        if (own_path)
            (void)::unlink(options_.unix_path.c_str());
        return s;
    };

    // Self-pipe: executors wake the io thread for outbound frames.
    int wake[2] = {-1, -1};
    if (::pipe(wake) != 0)
        return posixError("pipe");
    wake_rd_ = wake[0];
    wake_wr_ = wake[1];
    setNonBlocking(wake_rd_);
    setNonBlocking(wake_wr_);

    // Unix-domain listener (the primary transport).
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof addr.sun_path)
        return fail(Status(ErrorCode::kInvalidArgument,
                           "socket path too long: " +
                               options_.unix_path));
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0)
        return fail(posixError("socket"));
    (void)::unlink(options_.unix_path.c_str());
    own_path = true;
    if (::bind(unix_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(unix_fd_, 64) != 0)
        return fail(posixError("bind " + options_.unix_path));
    setNonBlocking(unix_fd_);

    // Optional TCP listener, loopback only.
    if (options_.tcp_port >= 0) {
        tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcp_fd_ < 0)
            return fail(posixError("socket (tcp)"));
        const int one = 1;
        (void)::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                           sizeof one);
        struct sockaddr_in tin;
        std::memset(&tin, 0, sizeof tin);
        tin.sin_family = AF_INET;
        tin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        tin.sin_port =
            htons(static_cast<std::uint16_t>(options_.tcp_port));
        if (::bind(tcp_fd_,
                   reinterpret_cast<struct sockaddr *>(&tin),
                   sizeof tin) != 0 ||
            ::listen(tcp_fd_, 64) != 0)
            return fail(posixError("bind 127.0.0.1"));
        socklen_t len = sizeof tin;
        if (::getsockname(tcp_fd_,
                          reinterpret_cast<struct sockaddr *>(&tin),
                          &len) == 0)
            tcp_port_ = ntohs(tin.sin_port);
        setNonBlocking(tcp_fd_);
    }

    stop_.store(false);
    started_ = true;
    statusz_ring_.clear();
    prev_request_buckets_.clear();
    next_statusz_sample_ = Clock::now();
    const int executors = options_.executors > 0 ? options_.executors
                                                 : 1;
    executors_.reserve(executors);
    for (int i = 0; i < executors; ++i)
        executors_.emplace_back([this] { executorLoop(); });
    io_thread_ = std::thread([this] { ioLoop(); });
    return Status::okStatus();
}

void
Server::stop()
{
    if (!started_)
        return;
    stop_.store(true);
    queue_.shutdown();
    // Wake the io thread; a full pipe already guarantees a wakeup.
    const char byte = 1;
    (void)!::write(wake_wr_, &byte, 1);
    for (std::thread &t : executors_)
        t.join();
    executors_.clear();
    io_thread_.join();

    sessions_.clear();
    {
        std::lock_guard<std::mutex> lock(outbound_mu_);
        outbound_.clear();
    }
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.clear();
        session_inflight_.clear();
        trace_alias_.clear();
        trace_alias_order_.clear();
    }
    outbound_bytes_.store(0);
    accept_backoff_ms_ = 0.0;
    accept_pause_until_ = {};
    queue_saturated_.store(false);
    for (int *fd : {&unix_fd_, &tcp_fd_, &wake_rd_, &wake_wr_}) {
        if (*fd >= 0)
            ::close(*fd);
        *fd = -1;
    }
    (void)::unlink(options_.unix_path.c_str());
    started_ = false;
}

bool
Server::acceptPaused() const
{
    return Clock::now() < accept_pause_until_;
}

void
Server::logEpisode(const std::string &stage, const Status &status)
{
    // One structured line per episode (the callers latch), correlated
    // to the request being served when one is in scope.  Falls back to
    // stderr when apexd ran without --log-out.
    eventlog::emit(eventlog::Level::kError, "service." + stage,
                   status.toString(), telemetry::currentTraceId());
    std::lock_guard<std::mutex> lock(diag_mu_);
    diag_.error(stage, status);
}

Diagnostics
Server::diagnostics() const
{
    std::lock_guard<std::mutex> lock(diag_mu_);
    return diag_;
}

void
Server::acceptPending(int listen_fd)
{
    for (;;) {
        int fd = -1;
        int err = 0;
        // Fault hook: rehearse running out of file descriptors
        // without actually exhausting the process's fd table.
        if (!checkFault(FaultStage::kAcceptEmfile).ok()) {
            err = EMFILE;
        } else {
            fd = ::accept(listen_fd, nullptr, nullptr);
            err = fd < 0 ? errno : 0;
        }
        if (fd >= 0) {
            // A successful accept ends any exhaustion episode.
            accept_backoff_ms_ = 0.0;
            setNonBlocking(fd);
            const std::uint64_t id = next_session_id_++;
            sessions_.emplace(id, std::make_unique<Session>(fd, id));
            continue;
        }
        switch (err) {
        case EINTR:
        case ECONNABORTED: // Peer gone between listen and accept.
            continue;
        case EMFILE:  // Process fd table full.
        case ENFILE:  // System fd table full.
        case ENOBUFS: // Kernel socket memory exhausted.
        case ENOMEM: {
            // Pause the listener with exponential backoff: accepting
            // again before an fd is returned would spin on the same
            // errno.  Pending connections wait in the kernel backlog;
            // the episode is logged once, on its first pause.
            const bool new_episode = accept_backoff_ms_ == 0.0;
            accept_backoff_ms_ =
                new_episode ? kAcceptBackoffMinMs
                            : std::min(accept_backoff_ms_ * 2.0,
                                       kAcceptBackoffMaxMs);
            accept_pause_until_ =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        accept_backoff_ms_));
            telemetry::counter("apex.resource.accept_exhausted")
                .add(1);
            if (new_episode)
                logEpisode(
                    "accept",
                    Status(ErrorCode::kResourceExhausted,
                           std::string("accept failed: ") +
                               std::strerror(err) +
                               "; pausing listeners"));
            return;
        }
        default:
            // EAGAIN/EWOULDBLOCK (backlog drained) or a transient
            // per-connection failure; either way, nothing to accept
            // right now.
            return;
        }
    }
}

void
Server::ioLoop()
{
    std::vector<struct pollfd> fds;
    std::vector<std::uint64_t> fd_sessions;
    while (!stop_.load()) {
        fds.clear();
        fd_sessions.clear();
        fds.push_back({wake_rd_, POLLIN, 0});
        // While an exhaustion pause is active the listeners stay out
        // of the poll set entirely — a readable listener we refuse to
        // accept from would turn every poll into a busy spin.  The
        // 100ms poll timeout re-evaluates the pause.
        std::size_t unix_idx = 0;
        std::size_t tcp_idx = 0;
        if (!acceptPaused()) {
            unix_idx = fds.size();
            fds.push_back({unix_fd_, POLLIN, 0});
            if (tcp_fd_ >= 0) {
                tcp_idx = fds.size();
                fds.push_back({tcp_fd_, POLLIN, 0});
            }
        }
        const std::size_t first_session = fds.size();
        for (const auto &[id, session] : sessions_) {
            fds.push_back({session->fd(), POLLIN, 0});
            fd_sessions.push_back(id);
        }

        // A finite timeout bounds the stop() latency even if the
        // wakeup byte is lost to a racing drain.
        if (::poll(fds.data(), fds.size(), 100) < 0 &&
            errno != EINTR)
            break;
        if (stop_.load())
            break;

        // Vitals sampling rides the poll cadence: the 100ms timeout
        // bounds how late a sample can land even on an idle daemon.
        if (options_.statusz_interval_ms > 0 &&
            Clock::now() >= next_statusz_sample_) {
            sampleStatusz();
            next_statusz_sample_ =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        options_.statusz_interval_ms));
        }

        if (fds[0].revents != 0) {
            char buf[256];
            while (::read(wake_rd_, buf, sizeof buf) > 0) {
            }
        }
        // Outbound frames from the executors (completion reports,
        // progress): flush every pass, whatever woke us.
        std::vector<Outbound> pending;
        {
            std::lock_guard<std::mutex> lock(outbound_mu_);
            pending.swap(outbound_);
        }
        for (Outbound &out : pending) {
            // Delivered or dropped, the frame leaves the handoff —
            // release its budget either way.
            outbound_bytes_.fetch_sub(out.payload.size(),
                                      std::memory_order_relaxed);
            auto it = sessions_.find(out.session_id);
            if (it == sessions_.end())
                continue; // Subscriber disconnected mid-sweep.
            if (!it->second->send(out.type, out.payload))
                dropSession(out.session_id);
        }

        if (unix_idx != 0 && fds[unix_idx].revents != 0)
            acceptPending(unix_fd_);
        if (tcp_idx != 0 && fds[tcp_idx].revents != 0)
            acceptPending(tcp_fd_);

        for (std::size_t i = first_session; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            const std::uint64_t id = fd_sessions[i - first_session];
            auto it = sessions_.find(id);
            if (it == sessions_.end())
                continue; // Dropped by an outbound failure above.
            Session &session = *it->second;
            std::vector<runtime::FramedRecord> frames;
            bool keep = session.onReadable(&frames);
            for (const runtime::FramedRecord &rec : frames)
                if (!dispatch(session, rec)) {
                    keep = false;
                    break;
                }
            if (!keep)
                dropSession(id);
        }
    }
}

bool
Server::dispatch(Session &session, const runtime::FramedRecord &rec)
{
    if (rec.type == kFrameSweep) {
        SweepRequest request;
        if (!decodeSweepRequest(rec.payload, &request))
            return false; // Schema skew: drop the session.
        admitSweep(session, request);
        return true;
    }
    if (rec.type == kFrameInfo) {
        InfoReply info;
        info.protocol = kProtocolVersion;
        info.version = versionString();
        info.commit = buildCommit();
        info.flags = buildFlags();
        return session.send(kFrameInfoOk, encodeInfoReply(info));
    }
    if (rec.type == kFrameMetrics) {
        return session.send(
            kFrameMetricsOk,
            telemetry::Registry::instance().jsonDump());
    }
    // v3 conversations: a v2 session sending these is a protocol
    // violation (it never negotiated them) and is dropped like any
    // other unknown frame.
    if (rec.type == kFrameTrace && session.protocolVersion() >= 3) {
        TraceRequest req;
        if (!decodeTraceRequest(rec.payload, &req))
            return false;
        // A coalesced joiner asks for *its* trace id; the alias map
        // redirects to the id the shared job executed under and the
        // slice is rewritten so the caller sees its own request.
        std::uint64_t executed_as = req.trace_id;
        {
            std::lock_guard<std::mutex> lock(inflight_mu_);
            auto it = trace_alias_.find(req.trace_id);
            if (it != trace_alias_.end())
                executed_as = it->second;
        }
        TraceReply reply;
        reply.trace_id = req.trace_id;
        reply.events = telemetry::eventsForTrace(executed_as);
        if (executed_as != req.trace_id)
            for (telemetry::SpanEvent &ev : reply.events)
                ev.trace_id = req.trace_id;
        reply.dropped = telemetry::droppedEvents();
        reply.evicted = telemetry::evictedEvents();
        return session.send(kFrameTraceOk, encodeTraceReply(reply));
    }
    if (rec.type == kFrameStatusz && session.protocolVersion() >= 3) {
        StatuszRequest req;
        if (!decodeStatuszRequest(rec.payload, &req))
            return false;
        StatuszReply reply;
        reply.interval_ms = options_.statusz_interval_ms;
        std::size_t first = 0;
        if (req.max_samples > 0 &&
            statusz_ring_.size() >
                static_cast<std::size_t>(req.max_samples))
            first = statusz_ring_.size() -
                    static_cast<std::size_t>(req.max_samples);
        reply.samples.assign(statusz_ring_.begin() + first,
                             statusz_ring_.end());
        return session.send(kFrameStatuszOk,
                            encodeStatuszReply(reply));
    }
    if (rec.type == kFrameBye) {
        (void)session.send(kFrameByeOk, "");
        return false; // Graceful close.
    }
    return false; // Unknown frame type: protocol violation.
}

std::uint64_t
Server::coalescingKey(const SweepRequest &request) const
{
    // The journal/core fingerprint covers everything that shapes the
    // cells' *content*; the service key additionally folds in the
    // knobs that shape the *report* (deadlines can turn cells into
    // timeout failures, isolation changes crash verdicts), so two
    // coalesced requests are guaranteed byte-identical replies.
    const core::Explorer explorer(model::defaultTech());
    const std::uint64_t fp = core::sweepFingerprint(
        apps_, explorer, model::defaultTech(),
        sweepOptionsFor(request));
    char knobs[160];
    std::snprintf(knobs, sizeof knobs, "%016llx %s %s %d %a %a",
                  static_cast<unsigned long long>(fp),
                  request.level.c_str(), request.isolate.c_str(),
                  request.cell_retries, request.deadline_ms,
                  request.cell_deadline_ms);
    return runtime::fnv1a64(knobs);
}

void
Server::admitSweep(Session &session, const SweepRequest &request)
{
    // Stamp the requester's trace id over admission: the io-thread
    // span below and any shedding episode logged here correlate to
    // the request that triggered them.
    telemetry::ScopedTraceId trace_scope;
    if (request.trace_id != 0)
        trace_scope.set(request.trace_id);
    APEX_SPAN("service.admit");

    core::EvalLevel level;
    core::IsolateMode isolate;
    if (!parseLevelName(request.level, &level) ||
        !parseIsolateName(request.isolate, &isolate)) {
        SweepReject rej;
        rej.id = request.id;
        rej.code = ErrorCode::kInvalidArgument;
        rej.reason = "unknown level '" + request.level +
                     "' or isolate '" + request.isolate + "'";
        (void)session.send(kFrameReject, encodeReject(rej));
        return;
    }

    // Load shedding happens before any state is created, and every
    // shedding reject carries the retry_after hint so a well-behaved
    // client backs off instead of hammering a daemon under pressure.
    const auto shed = [&](const char *counter_name,
                          std::string reason) {
        telemetry::counter(counter_name).add(1);
        telemetry::counter("apex.service.rejected").add(1);
        SweepReject rej;
        rej.id = request.id;
        rej.code = ErrorCode::kUnavailable;
        rej.reason = std::move(reason);
        rej.retry_after_ms = options_.retry_after_ms;
        (void)session.send(kFrameReject, encodeReject(rej));
    };

    // Soft memory budget over undelivered frames: a slow reader (or
    // many fat reports at once) pushes back on admission instead of
    // growing the handoff without bound.
    if (options_.mem_budget_bytes > 0 &&
        outbound_bytes_.load(std::memory_order_relaxed) >
            options_.mem_budget_bytes) {
        shed("apex.service.shed_memory",
             "daemon over its memory budget (" +
                 std::to_string(options_.mem_budget_bytes) +
                 " bytes of undelivered frames); retry later");
        return;
    }

    const std::uint64_t key = coalescingKey(request);
    SweepJob::Subscriber sub;
    sub.session_id = session.id();
    sub.request_id = request.id;
    sub.want_progress = request.want_progress;
    sub.trace_id = request.trace_id;

    std::lock_guard<std::mutex> lock(inflight_mu_);

    // Per-session cap: one greedy client gets per-client pushback
    // while everyone else's requests keep flowing.
    if (options_.session_cap > 0 &&
        session_inflight_[session.id()] >= options_.session_cap) {
        shed("apex.service.shed_session",
             "session already has " +
                 std::to_string(options_.session_cap) +
                 " sweeps in flight; retry later");
        return;
    }

    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
        {
            std::lock_guard<std::mutex> job_lock(it->second->mu);
            it->second->subscribers.push_back(sub);
        }
        // The joiner's sweep executes under the first requester's
        // trace id; remember the alias so a later `trace` request for
        // the joiner's id finds the shared slice.
        if (sub.trace_id != 0 &&
            it->second->request.trace_id != sub.trace_id &&
            trace_alias_.emplace(sub.trace_id,
                                 it->second->request.trace_id)
                .second) {
            trace_alias_order_.push_back(sub.trace_id);
            if (trace_alias_order_.size() > kTraceAliasCap) {
                trace_alias_.erase(trace_alias_order_.front());
                trace_alias_order_.pop_front();
            }
        }
        ++session_inflight_[session.id()];
        telemetry::counter("apex.service.accepted").add(1);
        telemetry::counter("apex.service.coalesced").add(1);
        SweepAck ack;
        ack.id = request.id;
        ack.coalesced = true;
        (void)session.send(kFrameAck, encodeAck(ack));
        return;
    }

    auto job = std::make_shared<SweepJob>();
    job->key = key;
    job->request = request;
    job->subscribers.push_back(sub);
    inflight_.emplace(key, job);
    if (!queue_.push(job, request.priority)) {
        inflight_.erase(key);
        // Bounded logging: a saturated queue rejects every arrival
        // for as long as the burst lasts — log the *episode* once,
        // not one line per rejected request.
        if (!queue_saturated_.exchange(true)) {
            telemetry::counter("apex.service.saturation_episodes")
                .add(1);
            logEpisode("admission",
                       Status(ErrorCode::kUnavailable,
                              "admission queue saturated (depth " +
                                  std::to_string(
                                      options_.queue_depth) +
                                  "); shedding load"));
        }
        shed("apex.service.shed_queue",
             "admission queue full (depth " +
                 std::to_string(options_.queue_depth) +
                 "); retry later");
        return;
    }
    queue_saturated_.store(false);
    ++session_inflight_[session.id()];
    telemetry::counter("apex.service.accepted").add(1);
    SweepAck ack;
    ack.id = request.id;
    ack.coalesced = false;
    (void)session.send(kFrameAck, encodeAck(ack));
}

void
Server::executorLoop()
{
    while (auto job = queue_.pop()) {
        if (options_.admission_hold_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    options_.admission_hold_ms));
        runJob(*job);
    }
}

void
Server::runJob(const std::shared_ptr<SweepJob> &job)
{
    const Clock::time_point t0 = Clock::now();
    telemetry::counter("apex.service.sweeps").add(1);

    const SweepRequest &request = job->request;
    // Every span the sweep emits on this executor (and, via
    // SweepOptions::trace_id, on the worker lanes) carries the
    // request's trace id, so `trace` can slice it back out.
    telemetry::ScopedTraceId trace_scope;
    if (request.trace_id != 0)
        trace_scope.set(request.trace_id);
    APEX_SPAN("service.execute");
    core::SweepOptions opts = sweepOptionsFor(request);
    opts.trace_id = request.trace_id;
    opts.jobs = options_.jobs;
    opts.cache = cache_.get();
    opts.cancel = &stop_;
    // With a cache dir the daemon journals every sweep under a
    // per-coalescing-key directory and always resumes: a daemon
    // killed mid-sweep replays the completed cells when the same
    // request is resubmitted after restart, so a self-healing client
    // pays only for the missing cells the second time.
    if (!options_.cache_dir.empty()) {
        const std::string dir =
            options_.cache_dir + "/sweep-" + hexKey(job->key);
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (!ec) {
            opts.journal_dir = dir;
            opts.resume = true;
        }
    }
    // The budget starts when execution starts: queue wait is the
    // price of admission, not of the sweep (matching the batch CLI,
    // where the deadline clock starts after flag parsing).
    const bool bounded = request.deadline_ms > 0;
    if (bounded)
        opts.deadline = Deadline::after(request.deadline_ms);
    opts.progress = [this, &job](const core::SweepProgress &p) {
        broadcastProgress(job, p);
    };

    // Variant construction observes the sweep deadline too, exactly
    // like the batch path.
    core::ExplorerOptions ex_options;
    ex_options.miner.deadline = opts.deadline;
    ex_options.merge.deadline = opts.deadline;
    const core::Explorer explorer(model::defaultTech(), ex_options);
    core::SweepOutcome outcome = core::runSweep(
        apps_, explorer, model::defaultTech(), opts);

    SweepReply reply;
    reply.deadline_bounded = bounded;
    reply.deadline_expired = bounded && opts.deadline.expired();
    reply.cancelled = stop_.load();
    reply.entries = std::move(outcome.entries);
    reply.report = std::move(outcome.report);

    // Stop accepting coalesced joiners *before* publishing: a request
    // arriving after this point starts a fresh sweep instead of
    // attaching to a completed one.
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(job->key);
    }
    telemetry::histogram("apex.service.request_ms")
        .observe(std::chrono::duration<double, std::milli>(
                     Clock::now() - t0)
                     .count());

    std::vector<SweepJob::Subscriber> subscribers;
    {
        std::lock_guard<std::mutex> job_lock(job->mu);
        subscribers = job->subscribers;
    }
    for (const SweepJob::Subscriber &sub : subscribers) {
        reply.id = sub.request_id;
        enqueueOutbound(sub.session_id, kFrameReport,
                        encodeSweepReply(reply));
    }

    // The report is on its way: release each subscriber's slot in
    // its session's in-flight cap.
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        for (const SweepJob::Subscriber &sub : subscribers) {
            auto sit = session_inflight_.find(sub.session_id);
            if (sit != session_inflight_.end() && --sit->second <= 0)
                session_inflight_.erase(sit);
        }
    }
}

void
Server::broadcastProgress(const std::shared_ptr<SweepJob> &job,
                          const core::SweepProgress &progress)
{
    SweepProgressFrame frame;
    frame.done = progress.done;
    frame.total = progress.total;
    frame.app = progress.app;
    frame.variant = progress.variant;

    std::vector<SweepJob::Subscriber> subscribers;
    {
        std::lock_guard<std::mutex> job_lock(job->mu);
        subscribers = job->subscribers;
    }
    for (const SweepJob::Subscriber &sub : subscribers) {
        if (!sub.want_progress)
            continue;
        frame.id = sub.request_id;
        // Each subscriber sees its own trace id, even on a coalesced
        // job executing under the first requester's.
        frame.trace_id = sub.trace_id;
        enqueueOutbound(sub.session_id, kFrameProgress,
                        encodeProgress(frame));
    }
}

void
Server::enqueueOutbound(std::uint64_t session_id,
                        std::string_view type, std::string payload)
{
    if (stop_.load())
        return; // The io thread is winding down; nobody to deliver.
    outbound_bytes_.fetch_add(payload.size(),
                              std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(outbound_mu_);
        outbound_.push_back(
            {session_id, std::string(type), std::move(payload)});
    }
    const char byte = 1;
    (void)!::write(wake_wr_, &byte, 1);
}

void
Server::sampleStatusz()
{
    StatusSnapshot snap;
    snap.ts_ms = telemetry::monotonicNanos() / 1e6;
    snap.sessions = static_cast<int>(sessions_.size());
    snap.queue_depth = static_cast<int>(
        telemetry::gauge("apex.service.queue_depth").value());
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        snap.active_sweeps = static_cast<int>(inflight_.size());
    }
    snap.inflight_bytes = static_cast<long long>(
        outbound_bytes_.load(std::memory_order_relaxed));
    snap.accepted =
        telemetry::counter("apex.service.accepted").value();
    snap.rejected =
        telemetry::counter("apex.service.rejected").value();
    snap.coalesced =
        telemetry::counter("apex.service.coalesced").value();
    snap.sweeps = telemetry::counter("apex.service.sweeps").value();
    snap.cache_hits = telemetry::counter("apex.cache.hits").value();
    snap.cache_misses =
        telemetry::counter("apex.cache.misses").value();
    snap.worker_restarts =
        telemetry::counter("apex.worker.restarts").value();
    snap.trace_dropped = telemetry::droppedEvents();
    snap.mined_patterns =
        telemetry::counter("apex.mine.patterns").value();
    snap.mine_embeddings =
        telemetry::counter("apex.mine.embeddings").value();
    snap.mine_pruned =
        telemetry::counter("apex.mine.pruned_noncanonical").value();

    // Per-interval latency quantiles from the request_ms histogram:
    // the delta against the previous sample isolates this interval's
    // completions from the daemon's lifetime distribution.
    telemetry::Histogram &hist =
        telemetry::histogram("apex.service.request_ms");
    const std::vector<double> &bounds = hist.bounds();
    std::vector<long long> counts(bounds.size() + 1, 0);
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] = hist.bucketCount(i);
    if (prev_request_buckets_.size() != counts.size())
        prev_request_buckets_.assign(counts.size(), 0);
    std::vector<long long> deltas(counts.size(), 0);
    for (std::size_t i = 0; i < counts.size(); ++i)
        deltas[i] = counts[i] - prev_request_buckets_[i];
    prev_request_buckets_ = counts;
    snap.request_p50_ms = quantileFromDeltas(bounds, deltas, 0.50);
    snap.request_p99_ms = quantileFromDeltas(bounds, deltas, 0.99);

    statusz_ring_.push_back(snap);
    while (statusz_ring_.size() > options_.statusz_capacity &&
           !statusz_ring_.empty())
        statusz_ring_.pop_front();
}

void
Server::dropSession(std::uint64_t session_id)
{
    sessions_.erase(session_id);
    // A dead session's in-flight slots would otherwise leak into the
    // cap bookkeeping forever (its reports are discarded above).
    std::lock_guard<std::mutex> lock(inflight_mu_);
    session_inflight_.erase(session_id);
}

} // namespace apex::service
