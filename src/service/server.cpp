#include "service/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "core/deadline.hpp"
#include "core/explorer.hpp"
#include "runtime/telemetry.hpp"
#include "service/version.hpp"

namespace apex::service {

namespace {

using Clock = std::chrono::steady_clock;

Status
posixError(const std::string &what)
{
    return Status(ErrorCode::kUnavailable,
                  what + ": " + std::strerror(errno));
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Parse a request's level name (validated at admission so a typo is
 * a reject frame, not a queued job that fails later). */
bool
parseLevelName(const std::string &name, core::EvalLevel *out)
{
    if (name == "map")
        *out = core::EvalLevel::kPostMapping;
    else if (name == "pnr")
        *out = core::EvalLevel::kPostPnr;
    else if (name == "pipe")
        *out = core::EvalLevel::kPostPipelining;
    else
        return false;
    return true;
}

bool
parseIsolateName(const std::string &name, core::IsolateMode *out)
{
    if (name == "thread")
        *out = core::IsolateMode::kInProcess;
    else if (name == "process")
        *out = core::IsolateMode::kProcess;
    else
        return false;
    return true;
}

/** SweepOptions a request maps to (sans runtime resources).  Shared
 * by the coalescing key and the executor so the fingerprint always
 * describes exactly the sweep that would run. */
core::SweepOptions
sweepOptionsFor(const SweepRequest &request)
{
    core::SweepOptions opts;
    (void)parseLevelName(request.level, &opts.level);
    (void)parseIsolateName(request.isolate, &opts.isolate);
    opts.cell_retries = request.cell_retries;
    opts.cell_deadline_ms = request.cell_deadline_ms;
    return opts;
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_depth,
             &telemetry::gauge("apex.service.queue_depth"))
{
}

Server::~Server()
{
    stop();
}

Status
Server::start()
{
    if (started_)
        return Status(ErrorCode::kInternal, "server already started");
    if (options_.unix_path.empty())
        return Status(ErrorCode::kInvalidArgument,
                      "a unix socket path is required");

    // A dead peer must cost a Status from writeAll, not the process.
    std::signal(SIGPIPE, SIG_IGN);

    // Hot state, loaded once and shared by every request.
    apps_ = apps::allApps();
    runtime::CacheOptions copt;
    if (!options_.cache_dir.empty())
        copt.disk_dir = options_.cache_dir;
    cache_ = std::make_unique<runtime::ArtifactCache>(copt);

    // Any failure below must release everything opened so far:
    // started_ stays false, so stop() will never clean up after a
    // failed start.  The socket file is unlinked only once it is
    // ours — before that, a file at the path belongs to whoever put
    // it there.
    bool own_path = false;
    const auto fail = [&](Status s) {
        for (int *fd : {&unix_fd_, &tcp_fd_, &wake_rd_, &wake_wr_}) {
            if (*fd >= 0)
                ::close(*fd);
            *fd = -1;
        }
        if (own_path)
            (void)::unlink(options_.unix_path.c_str());
        return s;
    };

    // Self-pipe: executors wake the io thread for outbound frames.
    int wake[2] = {-1, -1};
    if (::pipe(wake) != 0)
        return posixError("pipe");
    wake_rd_ = wake[0];
    wake_wr_ = wake[1];
    setNonBlocking(wake_rd_);
    setNonBlocking(wake_wr_);

    // Unix-domain listener (the primary transport).
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof addr.sun_path)
        return fail(Status(ErrorCode::kInvalidArgument,
                           "socket path too long: " +
                               options_.unix_path));
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0)
        return fail(posixError("socket"));
    (void)::unlink(options_.unix_path.c_str());
    own_path = true;
    if (::bind(unix_fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(unix_fd_, 64) != 0)
        return fail(posixError("bind " + options_.unix_path));
    setNonBlocking(unix_fd_);

    // Optional TCP listener, loopback only.
    if (options_.tcp_port >= 0) {
        tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcp_fd_ < 0)
            return fail(posixError("socket (tcp)"));
        const int one = 1;
        (void)::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                           sizeof one);
        struct sockaddr_in tin;
        std::memset(&tin, 0, sizeof tin);
        tin.sin_family = AF_INET;
        tin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        tin.sin_port =
            htons(static_cast<std::uint16_t>(options_.tcp_port));
        if (::bind(tcp_fd_,
                   reinterpret_cast<struct sockaddr *>(&tin),
                   sizeof tin) != 0 ||
            ::listen(tcp_fd_, 64) != 0)
            return fail(posixError("bind 127.0.0.1"));
        socklen_t len = sizeof tin;
        if (::getsockname(tcp_fd_,
                          reinterpret_cast<struct sockaddr *>(&tin),
                          &len) == 0)
            tcp_port_ = ntohs(tin.sin_port);
        setNonBlocking(tcp_fd_);
    }

    stop_.store(false);
    started_ = true;
    const int executors = options_.executors > 0 ? options_.executors
                                                 : 1;
    executors_.reserve(executors);
    for (int i = 0; i < executors; ++i)
        executors_.emplace_back([this] { executorLoop(); });
    io_thread_ = std::thread([this] { ioLoop(); });
    return Status::okStatus();
}

void
Server::stop()
{
    if (!started_)
        return;
    stop_.store(true);
    queue_.shutdown();
    // Wake the io thread; a full pipe already guarantees a wakeup.
    const char byte = 1;
    (void)!::write(wake_wr_, &byte, 1);
    for (std::thread &t : executors_)
        t.join();
    executors_.clear();
    io_thread_.join();

    sessions_.clear();
    {
        std::lock_guard<std::mutex> lock(outbound_mu_);
        outbound_.clear();
    }
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.clear();
    }
    for (int *fd : {&unix_fd_, &tcp_fd_, &wake_rd_, &wake_wr_}) {
        if (*fd >= 0)
            ::close(*fd);
        *fd = -1;
    }
    (void)::unlink(options_.unix_path.c_str());
    started_ = false;
}

void
Server::acceptPending(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN (or a raced-away connection).
        setNonBlocking(fd);
        const std::uint64_t id = next_session_id_++;
        sessions_.emplace(id, std::make_unique<Session>(fd, id));
    }
}

void
Server::ioLoop()
{
    std::vector<struct pollfd> fds;
    std::vector<std::uint64_t> fd_sessions;
    while (!stop_.load()) {
        fds.clear();
        fd_sessions.clear();
        fds.push_back({wake_rd_, POLLIN, 0});
        fds.push_back({unix_fd_, POLLIN, 0});
        if (tcp_fd_ >= 0)
            fds.push_back({tcp_fd_, POLLIN, 0});
        const std::size_t first_session = fds.size();
        for (const auto &[id, session] : sessions_) {
            fds.push_back({session->fd(), POLLIN, 0});
            fd_sessions.push_back(id);
        }

        // A finite timeout bounds the stop() latency even if the
        // wakeup byte is lost to a racing drain.
        if (::poll(fds.data(), fds.size(), 100) < 0 &&
            errno != EINTR)
            break;
        if (stop_.load())
            break;

        if (fds[0].revents != 0) {
            char buf[256];
            while (::read(wake_rd_, buf, sizeof buf) > 0) {
            }
        }
        // Outbound frames from the executors (completion reports,
        // progress): flush every pass, whatever woke us.
        std::vector<Outbound> pending;
        {
            std::lock_guard<std::mutex> lock(outbound_mu_);
            pending.swap(outbound_);
        }
        for (Outbound &out : pending) {
            auto it = sessions_.find(out.session_id);
            if (it == sessions_.end())
                continue; // Subscriber disconnected mid-sweep.
            if (!it->second->send(out.type, out.payload))
                dropSession(out.session_id);
        }

        if (fds[1].revents != 0)
            acceptPending(unix_fd_);
        if (tcp_fd_ >= 0 && fds[2].revents != 0)
            acceptPending(tcp_fd_);

        for (std::size_t i = first_session; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            const std::uint64_t id = fd_sessions[i - first_session];
            auto it = sessions_.find(id);
            if (it == sessions_.end())
                continue; // Dropped by an outbound failure above.
            Session &session = *it->second;
            std::vector<runtime::FramedRecord> frames;
            bool keep = session.onReadable(&frames);
            for (const runtime::FramedRecord &rec : frames)
                if (!dispatch(session, rec)) {
                    keep = false;
                    break;
                }
            if (!keep)
                dropSession(id);
        }
    }
}

bool
Server::dispatch(Session &session, const runtime::FramedRecord &rec)
{
    if (rec.type == kFrameSweep) {
        SweepRequest request;
        if (!decodeSweepRequest(rec.payload, &request))
            return false; // Schema skew: drop the session.
        admitSweep(session, request);
        return true;
    }
    if (rec.type == kFrameInfo) {
        InfoReply info;
        info.protocol = kProtocolVersion;
        info.version = versionString();
        info.commit = buildCommit();
        info.flags = buildFlags();
        return session.send(kFrameInfoOk, encodeInfoReply(info));
    }
    if (rec.type == kFrameMetrics) {
        return session.send(
            kFrameMetricsOk,
            telemetry::Registry::instance().jsonDump());
    }
    if (rec.type == kFrameBye) {
        (void)session.send(kFrameByeOk, "");
        return false; // Graceful close.
    }
    return false; // Unknown frame type: protocol violation.
}

std::uint64_t
Server::coalescingKey(const SweepRequest &request) const
{
    // The journal/core fingerprint covers everything that shapes the
    // cells' *content*; the service key additionally folds in the
    // knobs that shape the *report* (deadlines can turn cells into
    // timeout failures, isolation changes crash verdicts), so two
    // coalesced requests are guaranteed byte-identical replies.
    const core::Explorer explorer(model::defaultTech());
    const std::uint64_t fp = core::sweepFingerprint(
        apps_, explorer, model::defaultTech(),
        sweepOptionsFor(request));
    char knobs[160];
    std::snprintf(knobs, sizeof knobs, "%016llx %s %s %d %a %a",
                  static_cast<unsigned long long>(fp),
                  request.level.c_str(), request.isolate.c_str(),
                  request.cell_retries, request.deadline_ms,
                  request.cell_deadline_ms);
    return runtime::fnv1a64(knobs);
}

void
Server::admitSweep(Session &session, const SweepRequest &request)
{
    core::EvalLevel level;
    core::IsolateMode isolate;
    if (!parseLevelName(request.level, &level) ||
        !parseIsolateName(request.isolate, &isolate)) {
        SweepReject rej;
        rej.id = request.id;
        rej.code = ErrorCode::kInvalidArgument;
        rej.reason = "unknown level '" + request.level +
                     "' or isolate '" + request.isolate + "'";
        (void)session.send(kFrameReject, encodeReject(rej));
        return;
    }

    const std::uint64_t key = coalescingKey(request);
    SweepJob::Subscriber sub;
    sub.session_id = session.id();
    sub.request_id = request.id;
    sub.want_progress = request.want_progress;

    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
        {
            std::lock_guard<std::mutex> job_lock(it->second->mu);
            it->second->subscribers.push_back(sub);
        }
        telemetry::counter("apex.service.accepted").add(1);
        telemetry::counter("apex.service.coalesced").add(1);
        SweepAck ack;
        ack.id = request.id;
        ack.coalesced = true;
        (void)session.send(kFrameAck, encodeAck(ack));
        return;
    }

    auto job = std::make_shared<SweepJob>();
    job->key = key;
    job->request = request;
    job->subscribers.push_back(sub);
    inflight_.emplace(key, job);
    if (!queue_.push(job, request.priority)) {
        inflight_.erase(key);
        telemetry::counter("apex.service.rejected").add(1);
        SweepReject rej;
        rej.id = request.id;
        rej.code = ErrorCode::kUnavailable;
        rej.reason =
            "admission queue full (depth " +
            std::to_string(options_.queue_depth) + "); retry later";
        (void)session.send(kFrameReject, encodeReject(rej));
        return;
    }
    telemetry::counter("apex.service.accepted").add(1);
    SweepAck ack;
    ack.id = request.id;
    ack.coalesced = false;
    (void)session.send(kFrameAck, encodeAck(ack));
}

void
Server::executorLoop()
{
    while (auto job = queue_.pop()) {
        if (options_.admission_hold_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    options_.admission_hold_ms));
        runJob(*job);
    }
}

void
Server::runJob(const std::shared_ptr<SweepJob> &job)
{
    const Clock::time_point t0 = Clock::now();
    telemetry::counter("apex.service.sweeps").add(1);

    const SweepRequest &request = job->request;
    core::SweepOptions opts = sweepOptionsFor(request);
    opts.jobs = options_.jobs;
    opts.cache = cache_.get();
    opts.cancel = &stop_;
    // The budget starts when execution starts: queue wait is the
    // price of admission, not of the sweep (matching the batch CLI,
    // where the deadline clock starts after flag parsing).
    const bool bounded = request.deadline_ms > 0;
    if (bounded)
        opts.deadline = Deadline::after(request.deadline_ms);
    opts.progress = [this, &job](const core::SweepProgress &p) {
        broadcastProgress(job, p);
    };

    // Variant construction observes the sweep deadline too, exactly
    // like the batch path.
    core::ExplorerOptions ex_options;
    ex_options.miner.deadline = opts.deadline;
    ex_options.merge.deadline = opts.deadline;
    const core::Explorer explorer(model::defaultTech(), ex_options);
    core::SweepOutcome outcome = core::runSweep(
        apps_, explorer, model::defaultTech(), opts);

    SweepReply reply;
    reply.deadline_bounded = bounded;
    reply.deadline_expired = bounded && opts.deadline.expired();
    reply.cancelled = stop_.load();
    reply.entries = std::move(outcome.entries);
    reply.report = std::move(outcome.report);

    // Stop accepting coalesced joiners *before* publishing: a request
    // arriving after this point starts a fresh sweep instead of
    // attaching to a completed one.
    {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(job->key);
    }
    telemetry::histogram("apex.service.request_ms")
        .observe(std::chrono::duration<double, std::milli>(
                     Clock::now() - t0)
                     .count());

    std::vector<SweepJob::Subscriber> subscribers;
    {
        std::lock_guard<std::mutex> job_lock(job->mu);
        subscribers = job->subscribers;
    }
    for (const SweepJob::Subscriber &sub : subscribers) {
        reply.id = sub.request_id;
        enqueueOutbound(sub.session_id, kFrameReport,
                        encodeSweepReply(reply));
    }
}

void
Server::broadcastProgress(const std::shared_ptr<SweepJob> &job,
                          const core::SweepProgress &progress)
{
    SweepProgressFrame frame;
    frame.done = progress.done;
    frame.total = progress.total;
    frame.app = progress.app;
    frame.variant = progress.variant;

    std::vector<SweepJob::Subscriber> subscribers;
    {
        std::lock_guard<std::mutex> job_lock(job->mu);
        subscribers = job->subscribers;
    }
    for (const SweepJob::Subscriber &sub : subscribers) {
        if (!sub.want_progress)
            continue;
        frame.id = sub.request_id;
        enqueueOutbound(sub.session_id, kFrameProgress,
                        encodeProgress(frame));
    }
}

void
Server::enqueueOutbound(std::uint64_t session_id,
                        std::string_view type, std::string payload)
{
    if (stop_.load())
        return; // The io thread is winding down; nobody to deliver.
    {
        std::lock_guard<std::mutex> lock(outbound_mu_);
        outbound_.push_back(
            {session_id, std::string(type), std::move(payload)});
    }
    const char byte = 1;
    (void)!::write(wake_wr_, &byte, 1);
}

void
Server::dropSession(std::uint64_t session_id)
{
    sessions_.erase(session_id);
}

} // namespace apex::service
