#include "service/session.hpp"

#include <unistd.h>

#include "runtime/record.hpp"
#include "service/version.hpp"

namespace apex::service {

namespace {

// Session::send runs on the single io thread, so a peer that accepts
// no bytes at all for this long must cost its session, not the
// daemon: past the bound the write fails and the server drops the
// connection.  A slow-but-reading peer resets the window with every
// byte accepted and is unaffected.
constexpr int kSendStallTimeoutMs = 5000;

} // namespace

Session::Session(int fd, std::uint64_t id)
    : fd_(fd), id_(id),
      decoder_(kServiceMagic, kServiceWireVersion)
{
}

Session::~Session()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Session::onReadable(std::vector<runtime::FramedRecord> *out)
{
    const runtime::DrainResult drained =
        runtime::drainFd(fd_, decoder_);
    if (drained == runtime::DrainResult::kError)
        return false;
    if (!dispatchDecoded(out))
        return false;
    // EOF after processing what remained: a peer that sent its last
    // frame and closed still gets that frame handled.
    return drained != runtime::DrainResult::kEof;
}

bool
Session::dispatchDecoded(std::vector<runtime::FramedRecord> *out)
{
    runtime::FramedRecord rec;
    for (;;) {
        const runtime::DecodeResult r = decoder_.next(&rec);
        if (r == runtime::DecodeResult::kNeedMore)
            return true;
        if (r == runtime::DecodeResult::kCorrupt)
            return false; // No resync on a byte stream: drop.
        if (!ready_) {
            // Handshake: the first frame must be a compatible hello.
            // The session then speaks the *client's* version — an
            // old client gets a v2 session (no trace ids, no
            // trace/statusz); anything outside the supported window
            // is refused naming both sides.
            HelloRequest hello;
            if (rec.type != kFrameHello ||
                !decodeHello(rec.payload, &hello))
                return false;
            if (hello.protocol < kMinProtocolVersion ||
                hello.protocol > kProtocolVersion) {
                (void)send(kFrameHelloErr,
                           "protocol mismatch: client speaks v" +
                               std::to_string(hello.protocol) +
                               ", server speaks v" +
                               std::to_string(kProtocolVersion) +
                               " (" + versionString() + ")");
                return false;
            }
            negotiated_protocol_ = hello.protocol;
            HelloReply reply;
            reply.protocol = negotiated_protocol_;
            reply.server_version = versionString();
            if (!send(kFrameHelloOk, encodeHelloReply(reply)))
                return false;
            ready_ = true;
            continue;
        }
        out->push_back(std::move(rec));
    }
}

bool
Session::send(std::string_view type, std::string_view payload)
{
    return runtime::writeFrame(fd_, kServiceMagic,
                               kServiceWireVersion, type, payload,
                               kSendStallTimeoutMs)
        .ok();
}

} // namespace apex::service
