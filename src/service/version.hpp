#ifndef APEX_SERVICE_VERSION_H_
#define APEX_SERVICE_VERSION_H_

#include <string>

/**
 * @file
 * Build and protocol identity of the DSE service.
 *
 * Every binary that speaks the service protocol (apexd, apexc)
 * reports the same triple — build commit, build flags, protocol
 * version — so a client/daemon skew fails with a message naming both
 * sides instead of a cryptic frame error mid-request.  The protocol
 * version is bumped on any wire-incompatible change to the payload
 * schemas in protocol.hpp; the framing layer (runtime/record.hpp)
 * has its own version, checked one layer below.
 */

namespace apex::service {

/** Request/reply schema version spoken by this build (hello frames
 * carry it; the handshake negotiates down to the client's version
 * when it falls in [kMinProtocolVersion, kProtocolVersion], and
 * refuses anything else by name).
 * v2: reject frames carry a retry_after_ms load-shedding hint.
 * v3: hello negotiates {2,3}; sweep/progress frames carry a request
 *     trace_id; `trace` and `statusz` conversations added (both
 *     degrade gracefully against a negotiated-v2 peer). */
inline constexpr int kProtocolVersion = 3;

/** Oldest protocol version the server still accepts at hello.  A v2
 * client negotiates a v2 session: no trace ids on its frames, and no
 * trace/statusz requests (the server drops them as unknown). */
inline constexpr int kMinProtocolVersion = 2;

/** Short git commit this binary was built from ("unknown" when the
 * build ran outside a checkout). */
std::string buildCommit();

/** Build configuration (CMAKE_BUILD_TYPE; "unknown" when absent). */
std::string buildFlags();

/** One-line identity: "apex <commit> (<flags>) protocol v<N>". */
std::string versionString();

} // namespace apex::service

#endif // APEX_SERVICE_VERSION_H_
