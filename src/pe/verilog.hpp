#ifndef APEX_PE_VERILOG_H_
#define APEX_PE_VERILOG_H_

#include <string>

#include "pe/spec.hpp"

/**
 * @file
 * RTL Verilog generation from a PE specification — the PEak->Magma->
 * Verilog substitute.  The emitted module is self-contained
 * synthesizable Verilog-2001: one wire per datapath node, case-based
 * operand multiplexers and opcode decode, configuration brought in as
 * named ports, and (for pipelined PEs) an output register chain of
 * PeSpec::pipeline_stages stages.
 */

namespace apex::pe {

/** @return the Verilog source of the PE module. */
std::string emitVerilog(const PeSpec &spec);

} // namespace apex::pe

#endif // APEX_PE_VERILOG_H_
