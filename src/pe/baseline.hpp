#ifndef APEX_PE_BASELINE_H_
#define APEX_PE_BASELINE_H_

#include <set>
#include <string>

#include "ir/graph.hpp"
#include "pe/spec.hpp"

/**
 * @file
 * The baseline CGRA PE of Fig. 1 (Bahr et al. DAC'20) and its
 * application-restricted variant (the paper's "PE 1").
 *
 * Structure: two 16-bit data inputs and three 1-bit inputs; two
 * 16-bit and three 1-bit constant registers; one functional block per
 * hardware class (adder/subtractor, multiplier, shifter, word logic,
 * comparator, min/max/abs, select) plus a 3-input LUT for bit
 * operations; operand multiplexers choosing between the data input
 * and a constant register per port; an output multiplexer; and a
 * small register file (baseline only).
 */

namespace apex::pe {

/** @return the full baseline PE (all ops, with register file). */
PeSpec baselinePe();

/**
 * @return a baseline-shaped PE restricted to @p ops — the paper's
 * "PE 1" (only the operations necessary for the application, no
 * register file unless requested).
 */
PeSpec baselineSubsetPe(const std::set<ir::Op> &ops, std::string name,
                        bool with_register_file = false);

/** @return the compute ops appearing in @p app. */
std::set<ir::Op> opsUsedBy(const ir::Graph &app);

} // namespace apex::pe

#endif // APEX_PE_BASELINE_H_
