#include "pe/functional.hpp"

#include <functional>

#include "ir/op.hpp"

namespace apex::pe {

using merging::DpNodeKind;

PeFunctionalModel::PeFunctionalModel(const PeSpec &spec, int width)
    : spec_(spec), width_(width),
      input_index_(spec.dp.nodes.size(), -1),
      const_index_(spec.dp.nodes.size(), -1)
{
    for (std::size_t i = 0; i < spec.word_inputs.size(); ++i)
        input_index_[spec.word_inputs[i]] = static_cast<int>(i);
    for (std::size_t i = 0; i < spec.bit_inputs.size(); ++i)
        input_index_[spec.bit_inputs[i]] = static_cast<int>(i);
    for (std::size_t i = 0; i < spec.const_regs.size(); ++i)
        const_index_[spec.const_regs[i]] = static_cast<int>(i);
}

namespace {

/** DFS visit state. */
enum class Visit : std::uint8_t { kWhite, kGray, kBlack };

} // namespace

bool
PeFunctionalModel::evaluateNode(const PeConfig &config,
                                const PeInputs &inputs, int node,
                                std::uint64_t *value) const
{
    const auto &dp = spec_.dp;
    const int n = static_cast<int>(dp.nodes.size());
    if (node < 0 || node >= n)
        return false;

    std::vector<std::uint64_t> val(n, 0);
    std::vector<Visit> state(n, Visit::kWhite);

    // LUT table lookup per node.
    auto lut_of = [&](int id) -> std::uint64_t {
        for (std::size_t i = 0; i < spec_.lut_blocks.size(); ++i)
            if (spec_.lut_blocks[i] == id)
                return i < config.lut_table.size()
                           ? config.lut_table[i]
                           : 0;
        return 0;
    };

    std::function<bool(int)> eval = [&](int id) -> bool {
        if (state[id] == Visit::kBlack)
            return true;
        if (state[id] == Visit::kGray)
            return false; // combinational cycle under this config
        state[id] = Visit::kGray;

        const merging::DpNode &nd = dp.nodes[id];
        switch (nd.kind) {
          case DpNodeKind::kInput: {
            const int idx = input_index_[id];
            const auto &vec = nd.type == ir::ValueType::kBit
                                  ? inputs.bit
                                  : inputs.word;
            if (idx < 0 || idx >= static_cast<int>(vec.size()))
                return false;
            val[id] = vec[idx];
            break;
          }
          case DpNodeKind::kConst: {
            const int idx = const_index_[id];
            if (idx < 0 ||
                idx >= static_cast<int>(config.const_val.size())) {
                return false;
            }
            val[id] = config.const_val[idx];
            break;
          }
          case DpNodeKind::kBlock: {
            const ir::Op op = config.block_op[id];
            if (op >= ir::Op::kNumOps || !nd.ops.count(op))
                return false;
            const int arity = ir::opArity(op);
            std::uint64_t operand[3] = {0, 0, 0};
            for (int p = 0; p < arity; ++p) {
                int src;
                const int mux = spec_.muxIndexOf(id, p);
                if (mux >= 0) {
                    const int sel = config.mux_sel[mux];
                    const auto &sources = spec_.muxes[mux].sources;
                    if (sel < 0 ||
                        sel >= static_cast<int>(sources.size())) {
                        return false;
                    }
                    src = sources[sel];
                } else {
                    const auto sources = dp.sourcesOf(id, p);
                    if (sources.empty())
                        return false;
                    src = sources[0];
                }
                if (!eval(src))
                    return false;
                operand[p] = val[src];
            }
            val[id] = ir::evalOp(op, operand[0], operand[1],
                                 operand[2], lut_of(id), width_);
            break;
          }
        }
        state[id] = Visit::kBlack;
        return true;
    };

    if (!eval(node))
        return false;
    *value = val[node];
    return true;
}

bool
PeFunctionalModel::evaluate(const PeConfig &config,
                            const PeInputs &inputs,
                            PeOutputs *out) const
{
    *out = PeOutputs{};
    if (!spec_.word_outputs.empty()) {
        const int sel = config.word_out_sel;
        if (sel < 0 ||
            sel >= static_cast<int>(spec_.word_outputs.size())) {
            return false;
        }
        if (!evaluateNode(config, inputs, spec_.word_outputs[sel],
                          &out->word)) {
            return false;
        }
        out->has_word = true;
    }
    if (!spec_.bit_outputs.empty()) {
        const int sel = config.bit_out_sel;
        if (sel < 0 ||
            sel >= static_cast<int>(spec_.bit_outputs.size())) {
            return false;
        }
        if (!evaluateNode(config, inputs, spec_.bit_outputs[sel],
                          &out->bit)) {
            return false;
        }
        out->has_bit = true;
    }
    return true;
}

} // namespace apex::pe
