#ifndef APEX_PE_FUNCTIONAL_H_
#define APEX_PE_FUNCTIONAL_H_

#include <cstdint>
#include <vector>

#include "pe/spec.hpp"

/**
 * @file
 * PE functional model — executes a PeSpec on concrete values, the way
 * a PEak program executes as Python.  Used as the golden model for
 * rewrite-rule validation and for CGRA simulation.
 *
 * Evaluation is demand-driven from the selected output(s): only nodes
 * reachable through the *configured* mux selections are computed, and
 * a configuration whose selected edges form a combinational loop is
 * rejected (merged datapaths may contain such loops across mutually
 * exclusive configurations).
 */

namespace apex::pe {

/** Input values for one evaluation. */
struct PeInputs {
    std::vector<std::uint64_t> word; ///< Per PeSpec::word_inputs.
    std::vector<std::uint64_t> bit;  ///< Per PeSpec::bit_inputs.
};

/** Output values of one evaluation. */
struct PeOutputs {
    std::uint64_t word = 0;
    std::uint64_t bit = 0;
    bool has_word = false;
    bool has_bit = false;
};

/** Demand-driven evaluator for a PE specification. */
class PeFunctionalModel {
  public:
    /**
     * @param spec   PE to model (must outlive the model).
     * @param width  Datapath width in bits (reduced widths support the
     *               exhaustive rewrite-rule validation sweep).
     */
    explicit PeFunctionalModel(const PeSpec &spec,
                               int width = ir::kWordWidth);

    /**
     * Evaluate the PE.
     *
     * @param config  Configuration (mux selects, opcodes, constants).
     * @param inputs  Input port values.
     * @param out     Receives the output port values.
     * @return false when the configuration selects a combinational
     *         cycle or an invalid index; true otherwise.
     */
    bool evaluate(const PeConfig &config, const PeInputs &inputs,
                  PeOutputs *out) const;

    /**
     * Evaluate and return the value of one specific datapath node
     * (used by rewrite-rule validation for intermediate taps).
     *
     * @return false on cycle/invalid config.
     */
    bool evaluateNode(const PeConfig &config, const PeInputs &inputs,
                      int node, std::uint64_t *value) const;

    int width() const { return width_; }

  private:
    const PeSpec &spec_;
    int width_;
    std::vector<int> input_index_; ///< node id -> port position.
    std::vector<int> const_index_; ///< node id -> const reg position.
};

} // namespace apex::pe

#endif // APEX_PE_FUNCTIONAL_H_
