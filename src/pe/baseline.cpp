#include "pe/baseline.hpp"

#include <map>
#include <vector>

namespace apex::pe {

using ir::Op;
using merging::Datapath;
using merging::DpEdge;
using merging::DpNode;
using merging::DpNodeKind;
using model::HwBlockClass;

namespace {

/** Full op set of the baseline PE (Fig. 1). */
std::set<Op>
baselineOps()
{
    return {Op::kAdd,  Op::kSub,  Op::kMul,  Op::kAbs,  Op::kMin,
            Op::kMax,  Op::kShl,  Op::kLshr, Op::kAshr, Op::kAnd,
            Op::kOr,   Op::kXor,  Op::kNot,  Op::kEq,   Op::kNeq,
            Op::kUlt,  Op::kUle,  Op::kUgt,  Op::kUge,  Op::kSlt,
            Op::kSle,  Op::kSgt,  Op::kSge,  Op::kSel,  Op::kLut,
            Op::kBitAnd, Op::kBitOr, Op::kBitXor, Op::kBitNot};
}

} // namespace

std::set<Op>
opsUsedBy(const ir::Graph &app)
{
    std::set<Op> ops;
    for (ir::NodeId id = 0; id < app.size(); ++id)
        if (ir::opIsCompute(app.op(id)))
            ops.insert(app.op(id));
    return ops;
}

PeSpec
baselineSubsetPe(const std::set<Op> &ops, std::string name,
                 bool with_register_file)
{
    Datapath dp;

    auto add_node = [&](DpNode n) {
        dp.nodes.push_back(std::move(n));
        return static_cast<int>(dp.nodes.size()) - 1;
    };

    // Group requested ops by hardware class.  A block implements its
    // whole class for free (the comparator hardware computes every
    // predicate; the shifter shifts both ways) — only decode grows —
    // so each instantiated class is completed to its full op set.
    // This is what lets a domain PE execute ops its training apps
    // never used (Fig. 13's unseen-application experiment).
    std::map<HwBlockClass, std::set<Op>> by_class;
    for (Op op : ops) {
        const HwBlockClass cls = model::blockClassOf(op);
        const auto class_ops = model::opsOfClass(cls);
        by_class[cls].insert(class_ops.begin(), class_ops.end());
    }

    // The 1-bit datapath (LUT + bit IO) comes along with any block
    // that produces or consumes bits, as in the Fig. 1 baseline.
    if (by_class.count(HwBlockClass::kCompare) ||
        by_class.count(HwBlockClass::kSelect)) {
        const auto lut_ops =
            model::opsOfClass(HwBlockClass::kLutBit);
        by_class[HwBlockClass::kLutBit].insert(lut_ops.begin(),
                                               lut_ops.end());
    }
    const bool needs_bits = by_class.count(HwBlockClass::kLutBit) ||
                            by_class.count(HwBlockClass::kSelect);

    // Data inputs.
    DpNode in;
    in.kind = DpNodeKind::kInput;
    in.type = ir::ValueType::kWord;
    in.name = "data0";
    const int in0 = add_node(in);
    in.name = "data1";
    const int in1 = add_node(in);

    std::vector<int> bit_ins;
    if (needs_bits) {
        for (int i = 0; i < 3; ++i) {
            DpNode bi;
            bi.kind = DpNodeKind::kInput;
            bi.type = ir::ValueType::kBit;
            bi.name = "bit" + std::to_string(i);
            bit_ins.push_back(add_node(bi));
        }
    }

    // Constant registers: two word, three bit (bit only if needed).
    DpNode cst;
    cst.kind = DpNodeKind::kConst;
    cst.cls = HwBlockClass::kConstReg;
    cst.type = ir::ValueType::kWord;
    cst.name = "const0";
    const int creg0 = add_node(cst);
    cst.name = "const1";
    const int creg1 = add_node(cst);

    std::vector<int> bit_cregs;
    if (needs_bits) {
        DpNode bc;
        bc.kind = DpNodeKind::kConst;
        bc.cls = HwBlockClass::kConstRegBit;
        bc.type = ir::ValueType::kBit;
        for (int i = 0; i < 3; ++i) {
            bc.name = "bconst" + std::to_string(i);
            bit_cregs.push_back(add_node(bc));
        }
    }

    // Word-operand wiring: operand lane 0 selects {data0, const0},
    // lane 1 selects {data1, const1} — the Fig. 1 operand-mux shape.
    auto wire_word_port = [&](int block, int port, int lane) {
        dp.addEdgeUnique(DpEdge{lane == 0 ? in0 : in1, block, port});
        dp.addEdgeUnique(
            DpEdge{lane == 0 ? creg0 : creg1, block, port});
    };

    int cmp_block = -1, lut_block = -1;
    std::vector<std::pair<int, HwBlockClass>> word_blocks;

    for (const auto &[cls, class_ops] : by_class) {
        DpNode blk;
        blk.kind = DpNodeKind::kBlock;
        blk.cls = cls;
        blk.ops = class_ops;
        blk.is_output = true;
        blk.type = (cls == HwBlockClass::kCompare ||
                    cls == HwBlockClass::kLutBit)
                       ? ir::ValueType::kBit
                       : ir::ValueType::kWord;
        blk.name = std::string(model::blockClassName(cls));
        const int id = add_node(blk);

        switch (cls) {
          case HwBlockClass::kSelect:
            // Port 0 (bit selector) wired below; data ports here.
            wire_word_port(id, 1, 0);
            wire_word_port(id, 2, 1);
            word_blocks.emplace_back(id, cls);
            break;
          case HwBlockClass::kLutBit:
            lut_block = id;
            break;
          case HwBlockClass::kCompare:
            cmp_block = id;
            wire_word_port(id, 0, 0);
            wire_word_port(id, 1, 1);
            break;
          default:
            wire_word_port(id, 0, 0);
            if (dp.nodes[id].arity() > 1)
                wire_word_port(id, 1, 1);
            word_blocks.emplace_back(id, cls);
            break;
        }
    }

    // Bit wiring: LUT ports from bit inputs / bit constants / the
    // comparator; select's condition from the same bit sources.
    if (lut_block >= 0) {
        const int arity = dp.nodes[lut_block].arity();
        for (int p = 0; p < arity; ++p) {
            dp.addEdgeUnique(DpEdge{bit_ins[p], lut_block, p});
            dp.addEdgeUnique(DpEdge{bit_cregs[p], lut_block, p});
            if (cmp_block >= 0)
                dp.addEdgeUnique(DpEdge{cmp_block, lut_block, p});
        }
    }
    for (const auto &[id, cls] : word_blocks) {
        if (cls != HwBlockClass::kSelect)
            continue;
        if (cmp_block >= 0)
            dp.addEdgeUnique(DpEdge{cmp_block, id, 0});
        if (lut_block >= 0)
            dp.addEdgeUnique(DpEdge{lut_block, id, 0});
        if (!bit_ins.empty())
            dp.addEdgeUnique(DpEdge{bit_ins[0], id, 0});
        if (!bit_cregs.empty())
            dp.addEdgeUnique(DpEdge{bit_cregs[0], id, 0});
    }

    return makePeSpec(std::move(dp), std::move(name),
                      with_register_file);
}

PeSpec
baselinePe()
{
    return baselineSubsetPe(baselineOps(), "pe_base",
                            /*with_register_file=*/true);
}

} // namespace apex::pe
