#ifndef APEX_PE_SPEC_H_
#define APEX_PE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "merging/datapath.hpp"
#include "model/tech.hpp"

/**
 * @file
 * PE specification — the PEak-DSL substitute.
 *
 * A PeSpec wraps a merged datapath with an explicit configuration
 * space: one opcode field per multi-op block, one select field per
 * multiplexer site (a block port with several feasible sources), the
 * constant-register values, and the output selects (one word output
 * port and, when bit-producing blocks exist, one bit output port).
 *
 * From a PeSpec the framework derives:
 *  - a functional model (functional.hpp) — "executable PEak",
 *  - RTL Verilog (verilog.hpp) — "PEak -> Magma -> Verilog",
 *  - rewrite rules for the application mapper (mapper/),
 *  - area / energy / timing figures under a TechModel.
 */

namespace apex::pe {

/** A multiplexer site: a block input port with several sources. */
struct MuxSite {
    int node = -1;            ///< Block node id in the datapath.
    int port = 0;             ///< Input port index.
    std::vector<int> sources; ///< Feasible source node ids (sorted).
};

/** Complete PE specification. */
struct PeSpec {
    std::string name;        ///< e.g. "pe_base", "pe_camera_4".
    merging::Datapath dp;    ///< Underlying datapath structure.

    std::vector<MuxSite> muxes;      ///< All mux sites.
    std::vector<int> multi_op_blocks; ///< Blocks needing an opcode.
    std::vector<int> const_regs;      ///< Constant-register node ids.
    std::vector<int> word_inputs;     ///< Input node ids (word).
    std::vector<int> bit_inputs;      ///< Input node ids (bit).
    std::vector<int> word_outputs;    ///< Output-capable word blocks.
    std::vector<int> bit_outputs;     ///< Output-capable bit blocks.
    std::vector<int> lut_blocks;      ///< Blocks with a LUT table.

    bool has_register_file = false; ///< Baseline PE carries an RF.

    /** Number of pipeline stages (0 = combinational); set by the
     * automated PE pipeliner. */
    int pipeline_stages = 0;

    /** @return total configuration width in bits. */
    int configBits() const;

    /** @return number of distinct ops across all blocks (decode). */
    int totalOps() const;

    /** @return PE core area (um^2): functional + muxes + config +
     * decode + register file + pipeline registers. */
    double area(const model::TechModel &tech) const;

    /** @return per-cycle overhead energy (decode + clocking), pJ. */
    double overheadEnergyPerCycle(const model::TechModel &tech) const;

    /** @return the mux site index for (node, port), or -1. */
    int muxIndexOf(int node, int port) const;
};

/** One concrete configuration of a PE. */
struct PeConfig {
    /** Selected source index per mux site (into MuxSite::sources). */
    std::vector<int> mux_sel;
    /** Configured op per datapath node (only meaningful for blocks;
     * kNumOps = block unused). */
    std::vector<ir::Op> block_op;
    /** Value per constant register (parallel to PeSpec::const_regs). */
    std::vector<std::uint64_t> const_val;
    /** Truth table per LUT block (parallel to PeSpec::lut_blocks). */
    std::vector<std::uint64_t> lut_table;
    /** Index into PeSpec::word_outputs for the word output port. */
    int word_out_sel = 0;
    /** Index into PeSpec::bit_outputs for the bit output port. */
    int bit_out_sel = 0;
};

/** Build the specification for a merged datapath. */
PeSpec makePeSpec(merging::Datapath dp, std::string name,
                  bool has_register_file = false);

/** @return a default (all-zero) configuration sized for @p spec. */
PeConfig defaultConfig(const PeSpec &spec);

/** Pretty, human-readable summary (for docs and debugging). */
std::string describe(const PeSpec &spec,
                     const model::TechModel &tech);

} // namespace apex::pe

#endif // APEX_PE_SPEC_H_
