#ifndef APEX_PE_VERILOG_TB_H_
#define APEX_PE_VERILOG_TB_H_

#include <string>

#include "pe/functional.hpp"

/**
 * @file
 * Self-checking Verilog testbench generation.
 *
 * For a PE specification and one configuration, emit a testbench that
 * drives deterministic pseudo-random input vectors into the PE module
 * (emitVerilog()) and compares the outputs against expected values
 * computed here by the PE functional model — the same golden-model
 * discipline the paper's PEak flow enables (one spec, multiple
 * interpretations).  The generated file is self-contained Verilog
 * that `$finish`es with "TB PASS" or `$fatal`s on mismatch.
 */

namespace apex::pe {

/** Testbench generation options. */
struct TestbenchOptions {
    int vectors = 64;      ///< Input vectors applied.
    unsigned seed = 0x7B;  ///< Vector generator seed.
};

/**
 * Emit a self-checking testbench for @p spec under @p config.
 *
 * @param spec     The PE (module emitted by emitVerilog()).
 * @param config   Configuration to drive (constants included).
 * @param options  Vector count / seed.
 * @return Verilog source of module `<spec.name>_tb`.
 */
std::string emitTestbench(const PeSpec &spec, const PeConfig &config,
                          const TestbenchOptions &options = {});

} // namespace apex::pe

#endif // APEX_PE_VERILOG_TB_H_
