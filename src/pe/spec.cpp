#include "pe/spec.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace apex::pe {

using merging::Datapath;
using merging::DpNode;
using merging::DpNodeKind;

namespace {

int
bitsFor(std::size_t choices)
{
    if (choices <= 1)
        return 0;
    int bits = 0;
    std::size_t v = choices - 1;
    while (v) {
        ++bits;
        v >>= 1;
    }
    return bits;
}

} // namespace

int
PeSpec::configBits() const
{
    int bits = 0;
    for (const MuxSite &m : muxes)
        bits += bitsFor(m.sources.size());
    for (int b : multi_op_blocks)
        bits += bitsFor(dp.nodes[b].ops.size());
    for (int c : const_regs) {
        bits += dp.nodes[c].type == ir::ValueType::kBit
                    ? 1
                    : ir::kWordWidth;
    }
    // LUT truth tables are configuration too.
    bits += 8 * static_cast<int>(lut_blocks.size());
    bits += bitsFor(word_outputs.size());
    bits += bitsFor(bit_outputs.size());
    return bits;
}

int
PeSpec::totalOps() const
{
    int total = 0;
    for (int b : dp.blockIds())
        total += static_cast<int>(dp.nodes[b].ops.size());
    return total;
}

double
PeSpec::area(const model::TechModel &tech) const
{
    double area = dp.functionalArea(tech);
    // Output muxes.
    if (word_outputs.size() > 1) {
        area += (word_outputs.size() - 1) * tech.mux_input_area;
    }
    if (bit_outputs.size() > 1) {
        area += (bit_outputs.size() - 1) * tech.mux_input_area_bit;
    }
    area += configBits() * tech.config_bit_area;
    area += totalOps() * tech.decode_area_per_op;
    if (has_register_file)
        area += tech.rf_area;
    if (pipeline_stages > 0) {
        // One word register per block output per cut, approximated by
        // stages * (block count / stages + 1) registers.
        const int regs =
            pipeline_stages *
            (static_cast<int>(dp.blockIds().size()) /
                 std::max(pipeline_stages, 1) +
             1);
        area += regs * tech.pipe_reg_area;
    }
    return area;
}

double
PeSpec::overheadEnergyPerCycle(const model::TechModel &tech) const
{
    double energy = tech.decode_energy +
                    tech.config_bit_energy * configBits() +
                    tech.decode_energy_per_op * totalOps();
    if (has_register_file)
        energy += tech.rf_energy * 0.25; // occasional access
    if (pipeline_stages > 0)
        energy += pipeline_stages * tech.pipe_reg_energy;
    return energy;
}

int
PeSpec::muxIndexOf(int node, int port) const
{
    for (std::size_t i = 0; i < muxes.size(); ++i)
        if (muxes[i].node == node && muxes[i].port == port)
            return static_cast<int>(i);
    return -1;
}

PeSpec
makePeSpec(Datapath dp, std::string name, bool has_register_file)
{
    PeSpec spec;
    spec.name = std::move(name);
    spec.dp = std::move(dp);
    spec.has_register_file = has_register_file;

    for (int id = 0; id < static_cast<int>(spec.dp.nodes.size());
         ++id) {
        const DpNode &n = spec.dp.nodes[id];
        switch (n.kind) {
          case DpNodeKind::kInput:
            if (n.type == ir::ValueType::kBit)
                spec.bit_inputs.push_back(id);
            else
                spec.word_inputs.push_back(id);
            break;
          case DpNodeKind::kConst:
            spec.const_regs.push_back(id);
            break;
          case DpNodeKind::kBlock: {
            if (n.ops.size() > 1)
                spec.multi_op_blocks.push_back(id);
            if (n.ops.count(ir::Op::kLut))
                spec.lut_blocks.push_back(id);
            for (int p = 0; p < n.arity(); ++p) {
                auto sources = spec.dp.sourcesOf(id, p);
                if (sources.size() > 1) {
                    spec.muxes.push_back(
                        MuxSite{id, p, std::move(sources)});
                }
            }
            if (n.is_output) {
                if (n.type == ir::ValueType::kBit)
                    spec.bit_outputs.push_back(id);
                else
                    spec.word_outputs.push_back(id);
            }
            break;
          }
        }
    }
    return spec;
}

PeConfig
defaultConfig(const PeSpec &spec)
{
    PeConfig cfg;
    cfg.mux_sel.assign(spec.muxes.size(), 0);
    cfg.block_op.assign(spec.dp.nodes.size(), ir::Op::kNumOps);
    for (int b : spec.dp.blockIds())
        cfg.block_op[b] = *spec.dp.nodes[b].ops.begin();
    cfg.const_val.assign(spec.const_regs.size(), 0);
    cfg.lut_table.assign(spec.lut_blocks.size(), 0);
    return cfg;
}

std::string
describe(const PeSpec &spec, const model::TechModel &tech)
{
    std::ostringstream os;
    os << "PE '" << spec.name << "': "
       << spec.dp.blockIds().size() << " blocks, "
       << spec.word_inputs.size() << "w+" << spec.bit_inputs.size()
       << "b inputs, " << spec.const_regs.size() << " const regs, "
       << spec.muxes.size() << " muxes, " << spec.configBits()
       << " config bits, " << spec.pipeline_stages << " pipe stages, "
       << "area " << spec.area(tech) << " um^2\n";
    for (int b : spec.dp.blockIds()) {
        os << "  block " << b << " ["
           << model::blockClassName(spec.dp.nodes[b].cls) << "]:";
        for (ir::Op op : spec.dp.nodes[b].ops)
            os << ' ' << ir::opName(op);
        if (spec.dp.nodes[b].is_output)
            os << " (output)";
        os << '\n';
    }
    return os.str();
}

} // namespace apex::pe
