#ifndef APEX_IR_INTERPRETER_H_
#define APEX_IR_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "ir/graph.hpp"

/**
 * @file
 * Reference interpreter for dataflow graphs.
 *
 * Evaluates a graph combinationally: pipeline registers, register files
 * and memory nodes forward their input unchanged (steady-state streaming
 * semantics).  This is the golden model against which mapped and routed
 * applications are checked — mapping and pipelining may only shift
 * values in time, never change them.
 */

namespace apex::ir {

/** Evaluates graphs on concrete values. */
class Interpreter {
  public:
    /**
     * @param width  Datapath width in bits (1..16); word values are
     *               masked to this width.
     */
    explicit Interpreter(int width = kWordWidth) : width_(width) {}

    /**
     * Evaluate @p g given values for its input nodes.
     *
     * @param g       A validated graph.
     * @param inputs  Value per kInput/kInputBit node id.
     * @return value of every node, indexed by node id.
     */
    std::vector<std::uint64_t>
    evalAll(const Graph &g,
            const std::map<NodeId, std::uint64_t> &inputs) const;

    /**
     * Evaluate @p g with inputs bound positionally (order of input-node
     * creation) and outputs returned positionally (order of output-node
     * creation).
     */
    std::vector<std::uint64_t>
    evalByOrder(const Graph &g,
                const std::vector<std::uint64_t> &inputs) const;

    int width() const { return width_; }

  private:
    int width_;
};

} // namespace apex::ir

#endif // APEX_IR_INTERPRETER_H_
