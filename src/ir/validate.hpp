#ifndef APEX_IR_VALIDATE_H_
#define APEX_IR_VALIDATE_H_

#include "core/status.hpp"
#include "ir/graph.hpp"

/**
 * @file
 * Typed structural validation of dataflow graphs, called at every
 * pipeline boundary (after deserialize, after merge, before mapping).
 *
 * Unlike Graph::validate() — the legacy bool/string check — this
 * returns a Status with ErrorCode::kInvalidIr, distinguishes
 * register-broken feedback (legal in streaming graphs) from
 * combinational cycles, and checks op-parameter ranges.
 */

namespace apex::ir {

/** Knobs for validate(). */
struct ValidateOptions {
    /**
     * Require operands to be defined before their consumers (the
     * serialized apexir form guarantees this; programmatic graphs
     * built with setOperand() may legally violate it).
     */
    bool require_def_order = false;
};

/**
 * Check structural invariants of @p g:
 *  - every operand refers to an existing node (no dangling edges);
 *  - operand counts match opArity() and types match opOperandType();
 *  - parameters are in range (const_bit <= 1, 3-LUT table <= 0xff);
 *  - no cycle runs through compute/structural nodes without crossing
 *    a register (kReg) — register feedback loops are permitted;
 *  - optionally, definition order (see ValidateOptions).
 *
 * @return ok, or kInvalidIr naming the first violation.
 */
Status validate(const Graph &g, const ValidateOptions &options = {});

} // namespace apex::ir

#endif // APEX_IR_VALIDATE_H_
