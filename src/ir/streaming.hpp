#ifndef APEX_IR_STREAMING_H_
#define APEX_IR_STREAMING_H_

#include <cstdint>
#include <vector>

#include "ir/graph.hpp"

/**
 * @file
 * Streaming reference interpreter.
 *
 * While ir::Interpreter treats registers and memories as transparent
 * (steady-state semantics), this interpreter gives them their real
 * cycle-accurate behaviour: kReg and kMem delay their input by one
 * cycle, kRegFile by its depth.  It is the golden model for the
 * CGRA's cycle-level simulation: a correctly mapped, pipelined,
 * placed and routed application must produce exactly this
 * interpreter's output streams, shifted by the pipeline fill latency.
 */

namespace apex::ir {

/** Cycle-accurate streaming evaluation of a dataflow graph. */
class StreamingInterpreter {
  public:
    explicit StreamingInterpreter(int width = kWordWidth)
        : width_(width) {}

    /**
     * Stream @p cycles samples through @p g.
     *
     * @param g              Validated graph.
     * @param input_streams  One stream per input node (application
     *                       input order); shorter streams read as 0.
     * @param cycles         Cycles to simulate.
     * @return one stream per output node (application output order).
     */
    std::vector<std::vector<std::uint64_t>>
    run(const Graph &g,
        const std::vector<std::vector<std::uint64_t>> &input_streams,
        int cycles) const;

  private:
    int width_;
};

} // namespace apex::ir

#endif // APEX_IR_STREAMING_H_
