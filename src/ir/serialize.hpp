#ifndef APEX_IR_SERIALIZE_H_
#define APEX_IR_SERIALIZE_H_

#include <optional>
#include <string>

#include "core/status.hpp"
#include "ir/graph.hpp"

/**
 * @file
 * Text serialization of dataflow graphs.
 *
 * A stable, diff-friendly line format (one node per line) so mined
 * patterns, application graphs and PE datapath sources can be stored,
 * versioned and exchanged:
 *
 * @code
 *   apexir 1
 *   n0 = input "x"
 *   n1 = const 7 "w"
 *   n2 = mul n0 n1
 *   n3 = output n2 "y"
 * @endcode
 *
 * Node ids must be dense and in definition order; names are optional
 * quoted strings (supporting \" and \\ escapes); parameters follow
 * const/const_bit/lut/regfile mnemonics as decimal integers.
 */

namespace apex::ir {

/** Render @p g in the apexir text format. */
std::string serialize(const Graph &g);

/**
 * Parse an apexir text document (primary, hostile-input-hardened
 * API).
 *
 * Rejects, with line-tagged kParseError statuses: missing header,
 * non-dense or duplicate node ids, malformed / integer-overflowing
 * ids and parameters, forward operand references, unterminated quoted
 * names, and trailing garbage.  The parsed graph is additionally
 * checked with ir::validate() (definition order required).
 *
 * @param text  Document produced by serialize() (or hand-written).
 * @return the graph, or a kParseError / kInvalidIr status.
 */
Result<Graph> parseGraph(const std::string &text);

/**
 * Legacy wrapper around parseGraph().
 *
 * @param text   Document produced by serialize() (or hand-written).
 * @param error  Optional out-parameter with a line-tagged message.
 * @return the graph, or nullopt on malformed input.
 */
std::optional<Graph> deserialize(const std::string &text,
                                 std::string *error = nullptr);

} // namespace apex::ir

#endif // APEX_IR_SERIALIZE_H_
