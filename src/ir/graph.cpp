#include "ir/graph.hpp"

#include <algorithm>
#include <sstream>

#include "core/status.hpp"

namespace apex::ir {

NodeId
Graph::addNode(Op op, std::vector<NodeId> operands, std::uint64_t param,
               std::string name)
{
    Node n;
    n.op = op;
    n.operands = std::move(operands);
    n.param = param;
    n.name = std::move(name);
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

void
Graph::setOperand(NodeId node, int port, NodeId src)
{
    if (node >= nodes_.size())
        throw IrError(ErrorCode::kInvalidIr,
                      "setOperand: node id " + std::to_string(node) +
                          " is out of range");
    auto &ops = nodes_[node].operands;
    if (static_cast<int>(ops.size()) <= port)
        ops.resize(port + 1, kNoNode);
    ops[port] = src;
}

bool
Graph::validate(std::string *error) const
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node &n = nodes_[id];
        const int arity = opArity(n.op);
        if (arity >= 0 &&
            static_cast<int>(n.operands.size()) != arity) {
            std::ostringstream os;
            os << "node " << id << " (" << opName(n.op) << ") has "
               << n.operands.size() << " operands, expected " << arity;
            return fail(os.str());
        }
        for (int p = 0; p < static_cast<int>(n.operands.size()); ++p) {
            const NodeId src = n.operands[p];
            if (src == kNoNode || src >= nodes_.size()) {
                std::ostringstream os;
                os << "node " << id << " port " << p
                   << " has invalid operand";
                return fail(os.str());
            }
            const ValueType want = opOperandType(n.op, p);
            const ValueType got = opResultType(nodes_[src].op);
            if (want != got) {
                std::ostringstream os;
                os << "node " << id << " (" << opName(n.op) << ") port "
                   << p << ": type mismatch from node " << src << " ("
                   << opName(nodes_[src].op) << ")";
                return fail(os.str());
            }
        }
    }

    // Acyclicity via Kahn's algorithm.
    if (topoOrder().size() != nodes_.size())
        return fail("graph contains a cycle");
    return true;
}

std::vector<NodeId>
Graph::topoOrder() const
{
    // indeg of a node = number of its operands (consumer-side edges).
    std::vector<int> indeg(nodes_.size(), 0);
    for (NodeId id = 0; id < nodes_.size(); ++id)
        indeg[id] = static_cast<int>(nodes_[id].operands.size());

    // Consumers-of lists.
    std::vector<std::vector<NodeId>> consumers(nodes_.size());
    for (NodeId id = 0; id < nodes_.size(); ++id)
        for (NodeId src : nodes_[id].operands)
            if (src < nodes_.size())
                consumers[src].push_back(id);

    std::vector<NodeId> ready;
    for (NodeId id = 0; id < nodes_.size(); ++id)
        if (indeg[id] == 0)
            ready.push_back(id);

    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    while (!ready.empty()) {
        const NodeId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (NodeId c : consumers[id])
            if (--indeg[c] == 0)
                ready.push_back(c);
    }
    return order;
}

std::vector<Edge>
Graph::edges() const
{
    std::vector<Edge> result;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node &n = nodes_[id];
        for (int p = 0; p < static_cast<int>(n.operands.size()); ++p)
            result.push_back(Edge{n.operands[p], id, p});
    }
    return result;
}

std::vector<std::vector<Edge>>
Graph::fanouts() const
{
    std::vector<std::vector<Edge>> result(nodes_.size());
    for (const Edge &e : edges())
        if (e.src < nodes_.size())
            result[e.src].push_back(e);
    return result;
}

std::map<Op, int>
Graph::opHistogram() const
{
    std::map<Op, int> hist;
    for (const Node &n : nodes_)
        ++hist[n.op];
    return hist;
}

std::vector<NodeId>
Graph::computeNodes() const
{
    std::vector<NodeId> result;
    for (NodeId id = 0; id < nodes_.size(); ++id)
        if (opIsCompute(nodes_[id].op))
            result.push_back(id);
    return result;
}

std::vector<NodeId>
Graph::nodesWithOp(Op op) const
{
    std::vector<NodeId> result;
    for (NodeId id = 0; id < nodes_.size(); ++id)
        if (nodes_[id].op == op)
            result.push_back(id);
    return result;
}

Graph
Graph::inducedSubgraph(const std::vector<NodeId> &keep,
                       std::map<NodeId, NodeId> *old_to_new) const
{
    Graph sub;
    std::map<NodeId, NodeId> remap;       // kept old id -> new id
    std::map<NodeId, NodeId> ext_inputs;  // external old id -> new input

    // Create kept nodes first, in topological order restricted to keep,
    // so operand ids always exist when we wire them.
    std::vector<NodeId> kept_sorted;
    {
        std::vector<bool> in_keep(nodes_.size(), false);
        for (NodeId id : keep)
            in_keep[id] = true;
        for (NodeId id : topoOrder())
            if (in_keep[id])
                kept_sorted.push_back(id);
    }

    for (NodeId old_id : kept_sorted) {
        const Node &n = nodes_[old_id];
        std::vector<NodeId> new_operands;
        new_operands.reserve(n.operands.size());
        for (int p = 0; p < static_cast<int>(n.operands.size()); ++p) {
            const NodeId src = n.operands[p];
            auto it = remap.find(src);
            if (it != remap.end()) {
                new_operands.push_back(it->second);
                continue;
            }
            auto ext = ext_inputs.find(src);
            if (ext == ext_inputs.end()) {
                const Op in_op =
                    opResultType(nodes_[src].op) == ValueType::kBit
                        ? Op::kInputBit
                        : Op::kInput;
                const NodeId in_id = sub.addNode(in_op, {}, 0,
                                                 nodes_[src].name);
                ext = ext_inputs.emplace(src, in_id).first;
            }
            new_operands.push_back(ext->second);
        }
        const NodeId new_id = sub.addNode(n.op, std::move(new_operands),
                                          n.param, n.name);
        remap[old_id] = new_id;
    }

    if (old_to_new)
        *old_to_new = std::move(remap);
    return sub;
}

} // namespace apex::ir
