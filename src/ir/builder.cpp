#include "ir/builder.hpp"

#include <utility>

#include "core/status.hpp"

namespace apex::ir {

namespace {

/** Typed replacement for the former asserts: a default-constructed
 * Value reaching a builder op is a caller bug that must not survive
 * release builds. */
void
requireValid(const Value &v, const char *where)
{
    if (!v.valid())
        throw IrError(ErrorCode::kInvalidIr,
                      std::string("GraphBuilder::") + where +
                          ": operand Value is invalid "
                          "(default-constructed or moved-from)");
}

} // namespace

Value
GraphBuilder::input(std::string name)
{
    return {this, graph_.addNode(Op::kInput, {}, 0, std::move(name))};
}

Value
GraphBuilder::inputBit(std::string name)
{
    return {this, graph_.addNode(Op::kInputBit, {}, 0, std::move(name))};
}

Value
GraphBuilder::constant(std::uint64_t value, std::string name)
{
    return {this,
            graph_.addNode(Op::kConst, {}, value, std::move(name))};
}

Value
GraphBuilder::constantBit(bool value, std::string name)
{
    return {this, graph_.addNode(Op::kConstBit, {}, value ? 1 : 0,
                                 std::move(name))};
}

Value
GraphBuilder::output(Value v, std::string name)
{
    requireValid(v, "output");
    return {this,
            graph_.addNode(Op::kOutput, {v.id()}, 0, std::move(name))};
}

Value
GraphBuilder::outputBit(Value v, std::string name)
{
    requireValid(v, "outputBit");
    return {this,
            graph_.addNode(Op::kOutputBit, {v.id()}, 0, std::move(name))};
}

Value
GraphBuilder::mem(Value v, std::string name)
{
    requireValid(v, "mem");
    return {this,
            graph_.addNode(Op::kMem, {v.id()}, 0, std::move(name))};
}

Value
GraphBuilder::reg(Value v)
{
    requireValid(v, "reg");
    return {this, graph_.addNode(Op::kReg, {v.id()})};
}

Value
GraphBuilder::select(Value sel, Value a, Value b)
{
    requireValid(sel, "select");
    requireValid(a, "select");
    requireValid(b, "select");
    return {this,
            graph_.addNode(Op::kSel, {sel.id(), a.id(), b.id()})};
}

Value
GraphBuilder::lut(std::uint64_t table, Value a, Value b, Value c)
{
    requireValid(a, "lut");
    requireValid(b, "lut");
    requireValid(c, "lut");
    return {this,
            graph_.addNode(Op::kLut, {a.id(), b.id(), c.id()}, table)};
}

Value
GraphBuilder::macTree(const std::vector<Value> &ins,
                      const std::vector<Value> &ws, Value bias)
{
    if (ins.empty() || ins.size() != ws.size())
        throw IrError(ErrorCode::kInvalidArgument,
                      "GraphBuilder::macTree: inputs and weights must "
                      "be non-empty and the same length");
    // Balanced reduction tree over the products, the shape schedulers
    // emit for wide reductions: it keeps every operand path within
    // one add-level of the others, which is what keeps branch-delay-
    // matching register pressure manageable on pipelined PEs
    // (Sec. 4.3).  mul->add and add->add remain the dominant mined
    // patterns, as in the Fig. 3 example.
    std::vector<Value> level;
    level.reserve(ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i)
        level.push_back(mul(ins[i], ws[i]));
    while (level.size() > 1) {
        std::vector<Value> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(add(level[i], level[i + 1]));
        if (level.size() % 2 == 1)
            next.push_back(level.back());
        level = std::move(next);
    }
    Value acc = level[0];
    if (bias.valid())
        acc = add(acc, bias);
    return acc;
}

Value
GraphBuilder::clamp(Value v, Value lo, Value hi)
{
    return min(max(v, lo), hi);
}

Value
GraphBuilder::relu(Value v)
{
    return max(v, constant(0));
}

Graph
GraphBuilder::take()
{
    return std::exchange(graph_, Graph{});
}

Value
GraphBuilder::unary(Op op, Value a)
{
    requireValid(a, "unary");
    return {this, graph_.addNode(op, {a.id()})};
}

Value
GraphBuilder::binary(Op op, Value a, Value b)
{
    requireValid(a, "binary");
    requireValid(b, "binary");
    return {this, graph_.addNode(op, {a.id(), b.id()})};
}

} // namespace apex::ir
