#ifndef APEX_IR_BUILDER_H_
#define APEX_IR_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.hpp"

/**
 * @file
 * Expression-style builder for dataflow graphs.
 *
 * This is the repository's Halide-frontend substitute: application
 * kernels are written against GraphBuilder and produce the same kind of
 * lowered dataflow graph the APEX paper obtains from Halide -> CoreIR.
 */

namespace apex::ir {

class GraphBuilder;

/** Lightweight handle to a node under construction. */
class Value {
  public:
    Value() = default;
    Value(GraphBuilder *b, NodeId id) : builder_(b), id_(id) {}

    NodeId id() const { return id_; }
    bool valid() const { return builder_ != nullptr; }
    GraphBuilder *builder() const { return builder_; }

  private:
    GraphBuilder *builder_ = nullptr;
    NodeId id_ = kNoNode;
};

/**
 * Convenience wrapper that builds a Graph with expression syntax.
 *
 * Example:
 * @code
 *   GraphBuilder b;
 *   Value x = b.input("x"), w = b.constant(3);
 *   b.output(b.add(b.mul(x, w), b.constant(1)), "y");
 *   Graph g = b.take();
 * @endcode
 */
class GraphBuilder {
  public:
    Value input(std::string name = {});
    Value inputBit(std::string name = {});
    Value constant(std::uint64_t value, std::string name = {});
    Value constantBit(bool value, std::string name = {});
    Value output(Value v, std::string name = {});
    Value outputBit(Value v, std::string name = {});

    /** Memory tile node (line buffer); forwards its input stream. */
    Value mem(Value v, std::string name = {});
    /** Single pipeline register. */
    Value reg(Value v);

    Value add(Value a, Value b) { return binary(Op::kAdd, a, b); }
    Value sub(Value a, Value b) { return binary(Op::kSub, a, b); }
    Value mul(Value a, Value b) { return binary(Op::kMul, a, b); }
    Value min(Value a, Value b) { return binary(Op::kMin, a, b); }
    Value max(Value a, Value b) { return binary(Op::kMax, a, b); }
    Value shl(Value a, Value b) { return binary(Op::kShl, a, b); }
    Value lshr(Value a, Value b) { return binary(Op::kLshr, a, b); }
    Value ashr(Value a, Value b) { return binary(Op::kAshr, a, b); }
    Value bitwiseAnd(Value a, Value b) { return binary(Op::kAnd, a, b); }
    Value bitwiseOr(Value a, Value b) { return binary(Op::kOr, a, b); }
    Value bitwiseXor(Value a, Value b) { return binary(Op::kXor, a, b); }
    Value bitwiseNot(Value a) { return unary(Op::kNot, a); }
    Value abs(Value a) { return unary(Op::kAbs, a); }

    Value eq(Value a, Value b) { return binary(Op::kEq, a, b); }
    Value neq(Value a, Value b) { return binary(Op::kNeq, a, b); }
    Value ult(Value a, Value b) { return binary(Op::kUlt, a, b); }
    Value ugt(Value a, Value b) { return binary(Op::kUgt, a, b); }
    Value slt(Value a, Value b) { return binary(Op::kSlt, a, b); }
    Value sgt(Value a, Value b) { return binary(Op::kSgt, a, b); }
    Value sge(Value a, Value b) { return binary(Op::kSge, a, b); }
    Value sle(Value a, Value b) { return binary(Op::kSle, a, b); }

    /** out = sel ? a : b. */
    Value select(Value sel, Value a, Value b);
    /** 3-input 1-bit LUT with the given truth table. */
    Value lut(std::uint64_t table, Value a, Value b, Value c);
    Value bitAnd(Value a, Value b) { return binary(Op::kBitAnd, a, b); }
    Value bitOr(Value a, Value b) { return binary(Op::kBitOr, a, b); }
    Value bitXor(Value a, Value b) { return binary(Op::kBitXor, a, b); }
    Value bitNot(Value a) { return unary(Op::kBitNot, a); }

    /** Multiply-accumulate tree: sum(in[i] * w[i]) (+ bias if valid). */
    Value macTree(const std::vector<Value> &ins,
                  const std::vector<Value> &ws, Value bias = {});

    /** Clamp v into [lo, hi] with signed min/max. */
    Value clamp(Value v, Value lo, Value hi);

    /** ReLU: max(v, 0). */
    Value relu(Value v);

    /** @return the finished graph (builder becomes empty). */
    Graph take();

    /** Access to the graph under construction (e.g. for validation). */
    const Graph &graph() const { return graph_; }

  private:
    Value unary(Op op, Value a);
    Value binary(Op op, Value a, Value b);

    Graph graph_;
};

} // namespace apex::ir

#endif // APEX_IR_BUILDER_H_
