#ifndef APEX_IR_SIGNATURE_H_
#define APEX_IR_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "ir/graph.hpp"

/**
 * @file
 * Canonical codes for small dataflow graphs.
 *
 * The subgraph miner grows patterns along many redundant paths; to
 * deduplicate, every pattern is reduced to a canonical string that is
 * identical for isomorphic patterns and different for non-isomorphic
 * ones.  Canonicalization uses Weisfeiler-Lehman color refinement to
 * restrict the search, followed by exact enumeration of color-respecting
 * permutations (patterns are small, typically <= 8 nodes).
 *
 * Labels: the op mnemonic; kLut additionally carries its truth table.
 * Constant *values* are deliberately excluded — a pattern multiplying by
 * any weight is one pattern.  Edge port indices are part of the code so
 * non-commutative operand order is preserved.
 */

namespace apex::ir {

/**
 * @return a canonical code: equal for isomorphic graphs (same labels and
 * port-preserving edge structure), distinct otherwise.
 */
std::string canonicalCode(const Graph &g);

/** @return a 64-bit hash of canonicalCode(g). */
std::uint64_t structuralHash(const Graph &g);

/** @return true when @p a and @p b are isomorphic as labeled DAGs. */
bool isomorphic(const Graph &a, const Graph &b);

} // namespace apex::ir

#endif // APEX_IR_SIGNATURE_H_
