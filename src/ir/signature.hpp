#ifndef APEX_IR_SIGNATURE_H_
#define APEX_IR_SIGNATURE_H_

#include <cstdint>
#include <string>

#include "core/deadline.hpp"
#include "core/status.hpp"
#include "ir/graph.hpp"

/**
 * @file
 * Canonical codes for small dataflow graphs.
 *
 * The subgraph miner grows patterns along many redundant paths; to
 * deduplicate, every pattern is reduced to a canonical string that is
 * identical for isomorphic patterns and different for non-isomorphic
 * ones.  Canonicalization uses Weisfeiler-Lehman color refinement to
 * restrict the search, followed by exact enumeration of color-respecting
 * permutations (patterns are small, typically <= 8 nodes).
 *
 * Labels: the op mnemonic; kLut additionally carries its truth table.
 * Constant *values* are deliberately excluded — a pattern multiplying by
 * any weight is one pattern.  Edge port indices are part of the code so
 * non-commutative operand order is preserved.
 */

namespace apex::ir {

/**
 * @return a canonical code: equal for isomorphic graphs (same labels and
 * port-preserving edge structure), distinct otherwise.
 */
std::string canonicalCode(const Graph &g);

/**
 * Deadline-aware canonicalCode().  The permutation enumeration is
 * worst-case factorial in the largest WL color class, so miners run
 * it under a wall-clock bound: the code (identical to
 * canonicalCode(g)) when the search finishes in time, or a kTimeout
 * Status once @p deadline expires mid-search.  A partial code is
 * never returned — a non-minimal code would silently break
 * deduplication.
 */
Result<std::string> tryCanonicalCode(const Graph &g,
                                     const Deadline &deadline);

/** @return a 64-bit hash of canonicalCode(g). */
std::uint64_t structuralHash(const Graph &g);

/** @return true when @p a and @p b are isomorphic as labeled DAGs. */
bool isomorphic(const Graph &a, const Graph &b);

/**
 * Incremental FNV-1a hasher for building content-addressed cache
 * keys out of graphs and stage parameters (runtime/cache).
 */
class Fnv64 {
  public:
    Fnv64 &mix(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 1099511628211ull;
        }
        return *this;
    }
    Fnv64 &mix(std::string_view s) {
        for (const char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= 1099511628211ull;
        }
        mix(static_cast<std::uint64_t>(s.size())); // length-delimited
        return *this;
    }
    /** Hash the exact bit pattern (distinguishes -0.0, NaN payloads). */
    Fnv64 &mixDouble(double v);

    std::uint64_t digest() const { return h_; }

  private:
    std::uint64_t h_ = 14695981039346656037ull;
};

/**
 * @return a linear-time content fingerprint of @p g: ops, params and
 * operand wiring in node order (debug names excluded — they do not
 * affect any evaluation result).  Unlike canonicalCode() this is NOT
 * canonical under isomorphism — two differently-ordered but
 * isomorphic graphs hash differently — which is exactly the right
 * contract for memoization keys: equal fingerprint => recomputation
 * is guaranteed redundant, and the miss on a reordered graph only
 * costs time.  canonicalCode() stays the identity for pattern
 * deduplication, where isomorphism-invariance is required.
 */
std::uint64_t fingerprint(const Graph &g);

} // namespace apex::ir

#endif // APEX_IR_SIGNATURE_H_
