#include "ir/dot.hpp"

#include <sstream>

namespace apex::ir {

std::string
toDot(const Graph &g, const std::string &title)
{
    std::ostringstream os;
    os << "digraph \"" << title << "\" {\n";
    os << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
    for (NodeId id = 0; id < g.size(); ++id) {
        const Node &n = g.node(id);
        os << "  n" << id << " [label=\"" << opName(n.op);
        if (n.op == Op::kConst || n.op == Op::kConstBit ||
            n.op == Op::kLut) {
            os << " " << n.param;
        }
        if (!n.name.empty())
            os << "\\n" << n.name;
        os << "\"];\n";
    }
    for (const Edge &e : g.edges()) {
        os << "  n" << e.src << " -> n" << e.dst << " [label=\""
           << e.port << "\"];\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace apex::ir
