#include "ir/interpreter.hpp"

#include <cassert>

namespace apex::ir {

std::vector<std::uint64_t>
Interpreter::evalAll(const Graph &g,
                     const std::map<NodeId, std::uint64_t> &inputs) const
{
    const std::uint64_t mask = (width_ >= 64)
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << width_) - 1;

    std::vector<std::uint64_t> value(g.size(), 0);
    for (NodeId id : g.topoOrder()) {
        const Node &n = g.node(id);
        switch (n.op) {
          case Op::kInput: {
            auto it = inputs.find(id);
            assert(it != inputs.end() && "missing input value");
            value[id] = it->second & mask;
            break;
          }
          case Op::kInputBit: {
            auto it = inputs.find(id);
            assert(it != inputs.end() && "missing input value");
            value[id] = it->second & 1;
            break;
          }
          case Op::kConst:
            value[id] = n.param & mask;
            break;
          case Op::kConstBit:
            value[id] = n.param & 1;
            break;
          case Op::kOutput:
          case Op::kOutputBit:
          case Op::kReg:
          case Op::kRegFile:
          case Op::kMem:
            value[id] = value[n.operands[0]];
            break;
          default: {
            assert(opIsCompute(n.op));
            const std::uint64_t a =
                !n.operands.empty() ? value[n.operands[0]] : 0;
            const std::uint64_t b =
                n.operands.size() > 1 ? value[n.operands[1]] : 0;
            const std::uint64_t c =
                n.operands.size() > 2 ? value[n.operands[2]] : 0;
            value[id] = evalOp(n.op, a, b, c, n.param, width_);
            break;
          }
        }
    }
    return value;
}

std::vector<std::uint64_t>
Interpreter::evalByOrder(const Graph &g,
                         const std::vector<std::uint64_t> &inputs) const
{
    std::map<NodeId, std::uint64_t> in_map;
    std::size_t next = 0;
    for (NodeId id = 0; id < g.size(); ++id) {
        const Op op = g.op(id);
        if (op == Op::kInput || op == Op::kInputBit) {
            assert(next < inputs.size() && "too few input values");
            in_map[id] = inputs[next++];
        }
    }
    const std::vector<std::uint64_t> all = evalAll(g, in_map);

    std::vector<std::uint64_t> outs;
    for (NodeId id = 0; id < g.size(); ++id) {
        const Op op = g.op(id);
        if (op == Op::kOutput || op == Op::kOutputBit)
            outs.push_back(all[id]);
    }
    return outs;
}

} // namespace apex::ir
