#include "ir/signature.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

namespace apex::ir {

namespace {

/** Node label used for canonicalization (op + LUT table). */
std::string
nodeLabel(const Node &n)
{
    std::string label(opName(n.op));
    if (n.op == Op::kLut) {
        label += '#';
        label += std::to_string(n.param);
    }
    return label;
}

/**
 * Weisfeiler-Lehman color refinement over the directed, port-labeled
 * graph.  Returns a color id per node; isomorphic nodes get equal
 * colors (the converse may not hold, hence the exact phase below).
 *
 * Colors are compressed to dense ids after every round (sorted by
 * signature, so the ids themselves are isomorphism-invariant), and
 * refinement stops as soon as the partition stops splitting.  Keeping
 * the concatenated neighbourhood descriptions as strings instead
 * makes the color length grow exponentially with the round number,
 * which once dominated the entire mining phase.
 */
std::vector<int>
wlColors(const Graph &g)
{
    const std::size_t n = g.size();
    std::vector<int> color(n);
    std::size_t classes = 0;
    {
        std::map<std::string, int> ids;
        for (NodeId id = 0; id < n; ++id)
            ids.emplace(nodeLabel(g.node(id)), 0);
        int k = 0;
        for (auto &[label, cid] : ids)
            cid = k++;
        for (NodeId id = 0; id < n; ++id)
            color[id] = ids[nodeLabel(g.node(id))];
        classes = ids.size();
    }

    const auto fanout = g.fanouts();
    // (own color, operand colors by port, sorted fanout color@port)
    using Sig = std::tuple<int, std::vector<int>,
                           std::vector<std::pair<int, int>>>;
    for (std::size_t iter = 0; iter < n; ++iter) {
        std::vector<Sig> sigs(n);
        std::map<Sig, int> ids;
        for (NodeId id = 0; id < n; ++id) {
            const Node &nd = g.node(id);
            std::vector<int> ops;
            ops.reserve(nd.operands.size());
            for (const NodeId src : nd.operands)
                ops.push_back(color[src]);
            std::vector<std::pair<int, int>> outs;
            outs.reserve(fanout[id].size());
            for (const Edge &e : fanout[id])
                outs.emplace_back(color[e.dst], e.port);
            std::sort(outs.begin(), outs.end());
            sigs[id] = Sig(color[id], std::move(ops),
                           std::move(outs));
            ids.emplace(sigs[id], 0);
        }
        int k = 0;
        for (auto &[sig, cid] : ids)
            cid = k++;
        // Refinement only ever splits classes, so an unchanged class
        // count means the partition is stable.
        const bool stable = ids.size() == classes;
        for (NodeId id = 0; id < n; ++id)
            color[id] = ids[sigs[id]];
        classes = ids.size();
        if (stable)
            break;
    }
    return color;
}

/**
 * Shared engine of canonicalCode()/tryCanonicalCode().  Returns the
 * canonical code, or empty when @p deadline expired mid-search (with
 * @p timed_out set) — never a partial/non-minimal code.
 */
std::string
canonicalCodeBounded(const Graph &g, const Deadline &deadline,
                     bool *timed_out)
{
    /** Poll the deadline once per this many rec() nodes. */
    constexpr std::uint64_t kDeadlineMask = 0xFFF;

    const std::size_t n = g.size();
    if (n == 0)
        return "{}";

    const std::vector<int> colors = wlColors(g);

    // Candidate positions grouped by color: nodes must be placed in
    // non-decreasing color order; within a color class all orders are
    // tried and the lexicographically smallest code wins.
    std::vector<NodeId> order(n);
    for (NodeId id = 0; id < n; ++id)
        order[id] = id;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return colors[a] < colors[b];
    });

    // Position colors: position p may only hold nodes of this color.
    std::vector<int> pos_color(n);
    for (std::size_t p = 0; p < n; ++p)
        pos_color[p] = colors[order[p]];

    // This enumeration is the hottest loop of mining, and symmetric
    // patterns make it factorial in the largest color class.  The
    // search below produces the exact same minimum string as brute
    // force over all color-respecting permutations, but emits the
    // encoding incrementally and branches in *string order*: whenever
    // emission stalls (the next characters depend on an unassigned
    // position or node), it branches on exactly that assignment.
    // Every decision therefore extends the emitted prefix at once,
    // and a branch whose prefix is already lexicographically greater
    // than the best-known code is abandoned — every completion of it
    // would be greater too.  Once a prefix is strictly smaller than
    // the best, comparisons stop (`lt`) but enumeration continues to
    // find the minimum within that subtree.  Buffers are reused; no
    // allocation in steady state (string streams here would also
    // serialize the parallel miner on the allocator).
    std::vector<std::string> labels(n);
    for (NodeId id = 0; id < n; ++id)
        labels[id] = nodeLabel(g.node(id));

    std::string best;
    std::string prefix;
    std::vector<int> perm(n, -1);     // node -> position
    std::vector<NodeId> inv(n, kNoNode); // position -> node

    // Emission cursor: position being emitted and the next operand to
    // write (-1: the "label<" header is still unemitted).
    std::size_t epos = 0;
    int eop = -1;
    bool lt = false; // prefix already strictly below best

    enum class Need { kDone, kPosition, kNode };
    struct Stall {
        Need need;
        std::size_t pos; // kPosition: position lacking a node
        NodeId node;     // kNode: node lacking a position
    };

    // Extend `prefix` as far as the current assignment determines it.
    const auto advance = [&]() -> Stall {
        char buf[16];
        while (epos < n) {
            if (inv[epos] == kNoNode)
                return {Need::kPosition, epos, kNoNode};
            const Node &nd = g.node(inv[epos]);
            if (eop < 0) {
                prefix.append(labels[inv[epos]]);
                prefix.push_back('<');
                eop = 0;
            }
            while (eop < static_cast<int>(nd.operands.size())) {
                const NodeId src = nd.operands[eop];
                if (perm[src] == -1)
                    return {Need::kNode, 0, src};
                const int len = std::snprintf(buf, sizeof buf, "%d",
                                              perm[src]);
                prefix.append(buf, static_cast<std::size_t>(len));
                prefix.push_back(',');
                ++eop;
            }
            prefix.push_back('>');
            ++epos;
            eop = -1;
        }
        return {Need::kDone, 0, kNoNode};
    };

    std::uint64_t rec_calls = 0;
    bool expired = false;

    std::function<void()> rec = [&]() {
        if (expired)
            return;
        if ((++rec_calls & kDeadlineMask) == 0 &&
            deadline.expired()) {
            expired = true; // unwind the whole recursion
            return;
        }
        const std::size_t save_len = prefix.size();
        const std::size_t save_epos = epos;
        const int save_eop = eop;
        const bool save_lt = lt;

        const Stall stall = advance();

        bool prune = false;
        if (!lt && !best.empty()) {
            for (std::size_t i = save_len; i < prefix.size(); ++i) {
                if (i >= best.size() || prefix[i] > best[i]) {
                    prune = true;
                    break;
                }
                if (prefix[i] < best[i]) {
                    lt = true;
                    break;
                }
            }
        }

        if (!prune) {
            if (stall.need == Need::kDone) {
                if (best.empty() || prefix < best)
                    best = prefix;
            } else if (stall.need == Need::kPosition) {
                // Any still-unplaced node of this position's color.
                const int want = pos_color[stall.pos];
                for (NodeId id = 0; id < n; ++id) {
                    if (perm[id] != -1 || colors[id] != want)
                        continue;
                    perm[id] = static_cast<int>(stall.pos);
                    inv[stall.pos] = id;
                    rec();
                    inv[stall.pos] = kNoNode;
                    perm[id] = -1;
                }
            } else {
                // Any still-free position of this node's color.
                const int want = colors[stall.node];
                for (std::size_t p = 0; p < n; ++p) {
                    if (pos_color[p] != want || inv[p] != kNoNode)
                        continue;
                    perm[stall.node] = static_cast<int>(p);
                    inv[p] = stall.node;
                    rec();
                    inv[p] = kNoNode;
                    perm[stall.node] = -1;
                }
            }
        }

        prefix.resize(save_len);
        epos = save_epos;
        eop = save_eop;
        lt = save_lt;
    };
    rec();
    if (expired) {
        *timed_out = true;
        return {};
    }
    return best;
}

} // namespace

std::string
canonicalCode(const Graph &g)
{
    bool timed_out = false;
    return canonicalCodeBounded(g, Deadline::infinite(), &timed_out);
}

Result<std::string>
tryCanonicalCode(const Graph &g, const Deadline &deadline)
{
    bool timed_out = false;
    std::string code = canonicalCodeBounded(g, deadline, &timed_out);
    if (timed_out)
        return Status(ErrorCode::kTimeout,
                      "deadline expired before canonicalizing a "
                      "pattern");
    return code;
}

std::uint64_t
structuralHash(const Graph &g)
{
    return std::hash<std::string>{}(canonicalCode(g));
}

bool
isomorphic(const Graph &a, const Graph &b)
{
    if (a.size() != b.size())
        return false;
    return canonicalCode(a) == canonicalCode(b);
}

Fnv64 &
Fnv64::mixDouble(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return mix(bits);
}

std::uint64_t
fingerprint(const Graph &g)
{
    Fnv64 f;
    f.mix(static_cast<std::uint64_t>(g.size()));
    for (NodeId id = 0; id < g.size(); ++id) {
        const Node &n = g.node(id);
        f.mix(static_cast<std::uint64_t>(n.op));
        f.mix(n.param);
        f.mix(static_cast<std::uint64_t>(n.operands.size()));
        for (const NodeId src : n.operands)
            f.mix(static_cast<std::uint64_t>(src));
    }
    return f.digest();
}

} // namespace apex::ir
