#include "ir/signature.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

namespace apex::ir {

namespace {

/** Node label used for canonicalization (op + LUT table). */
std::string
nodeLabel(const Node &n)
{
    std::string label(opName(n.op));
    if (n.op == Op::kLut) {
        label += '#';
        label += std::to_string(n.param);
    }
    return label;
}

/**
 * Weisfeiler-Lehman color refinement over the directed, port-labeled
 * graph.  Returns a color id per node; isomorphic nodes get equal
 * colors (the converse may not hold, hence the exact phase below).
 */
std::vector<int>
wlColors(const Graph &g)
{
    const std::size_t n = g.size();
    std::vector<std::string> color(n);
    for (NodeId id = 0; id < n; ++id)
        color[id] = nodeLabel(g.node(id));

    const auto fanout = g.fanouts();
    for (std::size_t iter = 0; iter < n; ++iter) {
        std::vector<std::string> next(n);
        for (NodeId id = 0; id < n; ++id) {
            std::ostringstream os;
            os << color[id] << '(';
            const Node &nd = g.node(id);
            for (std::size_t p = 0; p < nd.operands.size(); ++p)
                os << p << ':' << color[nd.operands[p]] << ',';
            os << ")[";
            std::vector<std::string> outs;
            for (const Edge &e : fanout[id]) {
                std::ostringstream eo;
                eo << color[e.dst] << '@' << e.port;
                outs.push_back(eo.str());
            }
            std::sort(outs.begin(), outs.end());
            for (const auto &s : outs)
                os << s << ',';
            os << ']';
            next[id] = os.str();
        }
        if (next == color)
            break;
        color = std::move(next);
    }

    // Compress strings to dense ids, ordered lexicographically so the
    // ids themselves are canonical.
    std::map<std::string, int> ids;
    for (const auto &c : color)
        ids.emplace(c, 0);
    int k = 0;
    for (auto &[str, id] : ids)
        id = k++;
    std::vector<int> result(n);
    for (NodeId id = 0; id < n; ++id)
        result[id] = ids[color[id]];
    return result;
}

/** Encode the graph under a permutation perm (perm[old] = new). */
std::string
encode(const Graph &g, const std::vector<int> &perm)
{
    const std::size_t n = g.size();
    std::vector<NodeId> inv(n);
    for (NodeId id = 0; id < n; ++id)
        inv[perm[id]] = id;

    std::ostringstream os;
    for (std::size_t pos = 0; pos < n; ++pos) {
        const Node &nd = g.node(inv[pos]);
        os << nodeLabel(nd) << '<';
        for (std::size_t p = 0; p < nd.operands.size(); ++p)
            os << perm[nd.operands[p]] << ',';
        os << '>';
    }
    return os.str();
}

} // namespace

std::string
canonicalCode(const Graph &g)
{
    const std::size_t n = g.size();
    if (n == 0)
        return "{}";

    const std::vector<int> colors = wlColors(g);

    // Candidate positions grouped by color: nodes must be placed in
    // non-decreasing color order; within a color class all orders are
    // tried and the lexicographically smallest code wins.
    std::vector<NodeId> order(n);
    for (NodeId id = 0; id < n; ++id)
        order[id] = id;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return colors[a] < colors[b];
    });

    std::string best;
    std::vector<int> perm(n, -1);

    std::function<void(std::size_t)> rec = [&](std::size_t pos) {
        if (pos == n) {
            std::string code = encode(g, perm);
            if (best.empty() || code < best)
                best = std::move(code);
            return;
        }
        // All nodes with the same color as order[pos] that are still
        // unplaced are candidates for this position.
        const int want = colors[order[pos]];
        for (NodeId id = 0; id < n; ++id) {
            if (perm[id] != -1 || colors[id] != want)
                continue;
            perm[id] = static_cast<int>(pos);
            rec(pos + 1);
            perm[id] = -1;
        }
    };
    rec(0);
    return best;
}

std::uint64_t
structuralHash(const Graph &g)
{
    return std::hash<std::string>{}(canonicalCode(g));
}

bool
isomorphic(const Graph &a, const Graph &b)
{
    if (a.size() != b.size())
        return false;
    return canonicalCode(a) == canonicalCode(b);
}

} // namespace apex::ir
