#ifndef APEX_IR_DOT_H_
#define APEX_IR_DOT_H_

#include <string>

#include "ir/graph.hpp"

/**
 * @file
 * Graphviz DOT export for dataflow graphs (debugging / documentation).
 */

namespace apex::ir {

/**
 * Render @p g as a Graphviz digraph.
 *
 * @param g      Graph to render.
 * @param title  Graph name used in the DOT header.
 * @return DOT source text.
 */
std::string toDot(const Graph &g, const std::string &title = "apex");

} // namespace apex::ir

#endif // APEX_IR_DOT_H_
