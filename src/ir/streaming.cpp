#include "ir/streaming.hpp"

#include <cassert>
#include <deque>

namespace apex::ir {

std::vector<std::vector<std::uint64_t>>
StreamingInterpreter::run(
    const Graph &g,
    const std::vector<std::vector<std::uint64_t>> &input_streams,
    int cycles) const
{
    const auto order = g.topoOrder();

    // Delay state: one FIFO per stateful node.
    std::vector<std::deque<std::uint64_t>> state(g.size());
    std::vector<int> delay(g.size(), 0);
    std::vector<int> input_index(g.size(), -1);
    std::vector<NodeId> outputs;
    int next_input = 0;
    for (NodeId id = 0; id < g.size(); ++id) {
        switch (g.op(id)) {
          case Op::kReg:
          case Op::kMem:
            delay[id] = 1;
            break;
          case Op::kRegFile:
            delay[id] = static_cast<int>(g.node(id).param);
            break;
          case Op::kInput:
          case Op::kInputBit:
            input_index[id] = next_input++;
            break;
          case Op::kOutput:
          case Op::kOutputBit:
            outputs.push_back(id);
            break;
          default:
            break;
        }
        state[id].assign(delay[id], 0);
    }

    std::vector<std::vector<std::uint64_t>> result(outputs.size());
    std::vector<std::uint64_t> value(g.size(), 0);

    for (int t = 0; t < cycles; ++t) {
        // Stateful nodes expose last cycle's head first.
        for (NodeId id = 0; id < g.size(); ++id)
            if (delay[id] > 0)
                value[id] = state[id].front();

        for (NodeId id : order) {
            const Node &n = g.node(id);
            if (delay[id] > 0)
                continue; // exposed above
            switch (n.op) {
              case Op::kInput:
              case Op::kInputBit: {
                const int idx = input_index[id];
                const auto *stream =
                    idx < static_cast<int>(input_streams.size())
                        ? &input_streams[idx]
                        : nullptr;
                value[id] =
                    (stream &&
                     t < static_cast<int>(stream->size()))
                        ? (*stream)[t]
                        : 0;
                break;
              }
              case Op::kConst:
              case Op::kConstBit:
                value[id] = n.param;
                break;
              case Op::kOutput:
              case Op::kOutputBit:
                value[id] = value[n.operands[0]];
                break;
              default: {
                assert(opIsCompute(n.op));
                const std::uint64_t a =
                    !n.operands.empty() ? value[n.operands[0]] : 0;
                const std::uint64_t b = n.operands.size() > 1
                                            ? value[n.operands[1]]
                                            : 0;
                const std::uint64_t c = n.operands.size() > 2
                                            ? value[n.operands[2]]
                                            : 0;
                value[id] =
                    evalOp(n.op, a, b, c, n.param, width_);
                break;
              }
            }
        }

        // Stateful nodes consume this cycle's input.
        for (NodeId id = 0; id < g.size(); ++id) {
            if (delay[id] == 0)
                continue;
            state[id].pop_front();
            state[id].push_back(value[g.node(id).operands[0]]);
        }

        for (std::size_t o = 0; o < outputs.size(); ++o)
            result[o].push_back(value[outputs[o]]);
    }
    return result;
}

} // namespace apex::ir
