#include "ir/op.hpp"

#include <array>
#include <sstream>

#include "core/status.hpp"

namespace apex::ir {

namespace {

constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    // name        arity result              commut compute structural
    {"input",      0, ValueType::kWord, false, false, true},
    {"input_bit",  0, ValueType::kBit,  false, false, true},
    {"output",     1, ValueType::kWord, false, false, true},
    {"output_bit", 1, ValueType::kBit,  false, false, true},
    {"const",      0, ValueType::kWord, false, false, true},
    {"const_bit",  0, ValueType::kBit,  false, false, true},
    {"reg",        1, ValueType::kWord, false, false, true},
    {"regfile",    1, ValueType::kWord, false, false, true},
    {"mem",        1, ValueType::kWord, false, false, true},

    {"add",        2, ValueType::kWord, true,  true, false},
    {"sub",        2, ValueType::kWord, false, true, false},
    {"mul",        2, ValueType::kWord, true,  true, false},
    {"abs",        1, ValueType::kWord, false, true, false},
    {"min",        2, ValueType::kWord, true,  true, false},
    {"max",        2, ValueType::kWord, true,  true, false},
    {"shl",        2, ValueType::kWord, false, true, false},
    {"lshr",       2, ValueType::kWord, false, true, false},
    {"ashr",       2, ValueType::kWord, false, true, false},

    {"and",        2, ValueType::kWord, true,  true, false},
    {"or",         2, ValueType::kWord, true,  true, false},
    {"xor",        2, ValueType::kWord, true,  true, false},
    {"not",        1, ValueType::kWord, false, true, false},

    {"eq",         2, ValueType::kBit,  true,  true, false},
    {"neq",        2, ValueType::kBit,  true,  true, false},
    {"ult",        2, ValueType::kBit,  false, true, false},
    {"ule",        2, ValueType::kBit,  false, true, false},
    {"ugt",        2, ValueType::kBit,  false, true, false},
    {"uge",        2, ValueType::kBit,  false, true, false},
    {"slt",        2, ValueType::kBit,  false, true, false},
    {"sle",        2, ValueType::kBit,  false, true, false},
    {"sgt",        2, ValueType::kBit,  false, true, false},
    {"sge",        2, ValueType::kBit,  false, true, false},

    {"sel",        3, ValueType::kWord, false, true, false},
    {"lut",        3, ValueType::kBit,  false, true, false},
    {"bit_and",    2, ValueType::kBit,  true,  true, false},
    {"bit_or",     2, ValueType::kBit,  true,  true, false},
    {"bit_xor",    2, ValueType::kBit,  true,  true, false},
    {"bit_not",    1, ValueType::kBit,  false, true, false},
}};

/** Sign-extend the low @p width bits of @p v to a signed 64-bit value. */
std::int64_t
signExtend(std::uint64_t v, int width)
{
    const std::uint64_t sign_bit = std::uint64_t{1} << (width - 1);
    const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
    v &= mask;
    return (v & sign_bit) ? static_cast<std::int64_t>(v | ~mask)
                          : static_cast<std::int64_t>(v);
}

} // namespace

const OpInfo &
opInfo(Op op)
{
    const int i = static_cast<int>(op);
    if (i < 0 || i >= kNumOps)
        throw IrError(ErrorCode::kInvalidIr,
                      "opInfo: op value " + std::to_string(i) +
                          " is out of range");
    return kOpTable[i];
}

std::string_view
opName(Op op)
{
    return opInfo(op).name;
}

Op
opFromName(std::string_view name)
{
    for (int i = 0; i < kNumOps; ++i) {
        if (kOpTable[i].name == name)
            return static_cast<Op>(i);
    }
    throw IrError(ErrorCode::kInvalidArgument,
                  "opFromName: unknown op name '" + std::string(name) +
                      "'");
}

int
opArity(Op op)
{
    return opInfo(op).arity;
}

bool
opIsCompute(Op op)
{
    return opInfo(op).isCompute;
}

ValueType
opResultType(Op op)
{
    return opInfo(op).result;
}

ValueType
opOperandType(Op op, int port)
{
    switch (op) {
      case Op::kSel:
        return port == 0 ? ValueType::kBit : ValueType::kWord;
      case Op::kLut:
      case Op::kBitAnd:
      case Op::kBitOr:
      case Op::kBitXor:
      case Op::kBitNot:
      case Op::kOutputBit:
        return ValueType::kBit;
      default:
        return ValueType::kWord;
    }
}

bool
opIsCommutative(Op op)
{
    return opInfo(op).commutative;
}

std::uint64_t
evalOp(Op op, std::uint64_t a, std::uint64_t b, std::uint64_t c,
       std::uint64_t param, int width)
{
    if (width < 1 || width > 64)
        throw IrError(ErrorCode::kInvalidArgument,
                      "evalOp: width " + std::to_string(width) +
                          " is outside [1, 64]");
    const std::uint64_t mask = (width == 64)
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << width) - 1;
    a &= mask;
    b &= mask;
    const int shamt = static_cast<int>(b & (width - 1));
    const std::int64_t sa = signExtend(a, width);
    const std::int64_t sb = signExtend(b, width);

    switch (op) {
      case Op::kAdd:  return (a + b) & mask;
      case Op::kSub:  return (a - b) & mask;
      case Op::kMul:  return (a * b) & mask;
      case Op::kAbs:  return static_cast<std::uint64_t>(sa < 0 ? -sa : sa)
                             & mask;
      case Op::kMin:  return static_cast<std::uint64_t>(sa < sb ? sa : sb)
                             & mask;
      case Op::kMax:  return static_cast<std::uint64_t>(sa > sb ? sa : sb)
                             & mask;
      case Op::kShl:  return (a << shamt) & mask;
      case Op::kLshr: return (a >> shamt) & mask;
      case Op::kAshr: return static_cast<std::uint64_t>(sa >> shamt) & mask;
      case Op::kAnd:  return a & b;
      case Op::kOr:   return a | b;
      case Op::kXor:  return a ^ b;
      case Op::kNot:  return ~a & mask;
      case Op::kEq:   return a == b;
      case Op::kNeq:  return a != b;
      case Op::kUlt:  return a < b;
      case Op::kUle:  return a <= b;
      case Op::kUgt:  return a > b;
      case Op::kUge:  return a >= b;
      case Op::kSlt:  return sa < sb;
      case Op::kSle:  return sa <= sb;
      case Op::kSgt:  return sa > sb;
      case Op::kSge:  return sa >= sb;
      case Op::kSel:  return (a & 1) ? (b & mask) : (c & mask);
      case Op::kLut: {
        const int idx = static_cast<int>(((a & 1) << 2) | ((b & 1) << 1) |
                                         (c & 1));
        return (param >> idx) & 1;
      }
      case Op::kBitAnd: return (a & b) & 1;
      case Op::kBitOr:  return (a | b) & 1;
      case Op::kBitXor: return (a ^ b) & 1;
      case Op::kBitNot: return (~a) & 1;
      default: {
        std::ostringstream os;
        os << "evalOp: op '" << opName(op) << "' is not a compute op";
        throw IrError(ErrorCode::kInvalidIr, os.str());
      }
    }
}

} // namespace apex::ir
