#ifndef APEX_IR_GRAPH_H_
#define APEX_IR_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/op.hpp"

/**
 * @file
 * Labeled dataflow graph: the application IR that APEX analyses.
 *
 * A Graph is a DAG of Nodes.  Each node carries an Op label, an ordered
 * list of operand edges (producer node id + destination port), an
 * optional integer parameter (constant value, LUT truth table, FIFO
 * depth) and a debug name.  Edges are stored on the consumer side;
 * fan-out lists can be derived on demand.
 */

namespace apex::ir {

/** Index of a node within its Graph. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kNoNode = 0xffffffffu;

/** One node of the dataflow graph. */
struct Node {
    Op op = Op::kConst;        ///< Operation label.
    std::vector<NodeId> operands; ///< Producer of each input port.
    std::uint64_t param = 0;   ///< Const value / LUT table / FIFO depth.
    std::string name;          ///< Debug name (may be empty).
};

/** A directed edge, identified by its consumer node and input port. */
struct Edge {
    NodeId src = kNoNode; ///< Producer node.
    NodeId dst = kNoNode; ///< Consumer node.
    int port = 0;         ///< Input port index on the consumer.

    bool operator==(const Edge &) const = default;
};

/**
 * A dataflow DAG of labeled operations.
 *
 * Invariants (checked by validate()):
 *  - every operand id refers to an existing node;
 *  - operand counts match opArity();
 *  - the graph is acyclic;
 *  - operand value types match opOperandType().
 */
class Graph {
  public:
    /** Append a node; operands may be filled later via setOperand(). */
    NodeId addNode(Op op, std::vector<NodeId> operands = {},
                   std::uint64_t param = 0, std::string name = {});

    /** Rebind input @p port of @p node to producer @p src. */
    void setOperand(NodeId node, int port, NodeId src);

    /** @return number of nodes. */
    std::size_t size() const { return nodes_.size(); }

    /** @return true when the graph has no nodes. */
    bool empty() const { return nodes_.empty(); }

    const Node &node(NodeId id) const { return nodes_[id]; }
    Node &node(NodeId id) { return nodes_[id]; }

    Op op(NodeId id) const { return nodes_[id].op; }

    /**
     * Check all structural invariants.
     *
     * @param error  Optional out-parameter describing the first violation.
     * @return true when the graph is well formed.
     */
    bool validate(std::string *error = nullptr) const;

    /** @return node ids in a topological order (operands first). */
    std::vector<NodeId> topoOrder() const;

    /** @return all edges (consumer-side enumeration). */
    std::vector<Edge> edges() const;

    /** @return per-node fan-out lists (consumers of each node). */
    std::vector<std::vector<Edge>> fanouts() const;

    /** @return histogram over op labels. */
    std::map<Op, int> opHistogram() const;

    /** @return ids of nodes whose op satisfies opIsCompute(). */
    std::vector<NodeId> computeNodes() const;

    /** @return ids of nodes with the given op. */
    std::vector<NodeId> nodesWithOp(Op op) const;

    /**
     * Extract the induced subgraph over @p keep (ids into this graph).
     *
     * Operands outside @p keep become fresh kInput/kInputBit nodes of the
     * matching value type; distinct external producers map to distinct
     * inputs.  @p old_to_new, when non-null, receives the id mapping for
     * the kept nodes.
     */
    Graph inducedSubgraph(const std::vector<NodeId> &keep,
                          std::map<NodeId, NodeId> *old_to_new
                              = nullptr) const;

  private:
    std::vector<Node> nodes_;
};

} // namespace apex::ir

#endif // APEX_IR_GRAPH_H_
