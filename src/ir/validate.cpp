#include "ir/validate.hpp"

#include <sstream>
#include <vector>

#include "core/fault.hpp"

namespace apex::ir {

namespace {

Status
invalid(NodeId id, Op op, const std::string &what)
{
    std::ostringstream os;
    os << "node " << id << " (" << opName(op) << "): " << what;
    return Status(ErrorCode::kInvalidIr, os.str());
}

/**
 * Detect a cycle that never crosses a register.  Edges leaving a kReg
 * node are dropped: a register breaks the combinational path, so a
 * loop through one is sequential feedback, not an error.
 */
bool
hasCombinationalCycle(const Graph &g, NodeId *offender)
{
    enum class Mark { kWhite, kGrey, kBlack };
    std::vector<Mark> mark(g.size(), Mark::kWhite);
    // Iterative DFS over consumer-side operand edges.
    std::vector<std::pair<NodeId, std::size_t>> stack;
    for (NodeId root = 0; root < g.size(); ++root) {
        if (mark[root] != Mark::kWhite)
            continue;
        stack.emplace_back(root, 0);
        mark[root] = Mark::kGrey;
        while (!stack.empty()) {
            const NodeId id = stack.back().first;
            const auto &operands = g.node(id).operands;
            bool descended = false;
            while (stack.back().second < operands.size()) {
                const NodeId src = operands[stack.back().second++];
                if (src >= g.size())
                    continue; // dangling: reported elsewhere
                if (g.op(src) == Op::kReg)
                    continue; // register breaks the path
                if (mark[src] == Mark::kGrey) {
                    if (offender)
                        *offender = src;
                    return true;
                }
                if (mark[src] == Mark::kWhite) {
                    mark[src] = Mark::kGrey;
                    stack.emplace_back(src, 0);
                    descended = true;
                    break;
                }
            }
            if (!descended) {
                mark[id] = Mark::kBlack;
                stack.pop_back();
            }
        }
    }
    return false;
}

} // namespace

Status
validate(const Graph &g, const ValidateOptions &options)
{
    APEX_RETURN_IF_ERROR(checkFault(FaultStage::kValidate));

    for (NodeId id = 0; id < g.size(); ++id) {
        const Node &n = g.node(id);
        const int arity = opArity(n.op);
        if (arity >= 0 &&
            static_cast<int>(n.operands.size()) != arity) {
            std::ostringstream os;
            os << "has " << n.operands.size()
               << " operands, expected " << arity;
            return invalid(id, n.op, os.str());
        }
        for (int p = 0; p < static_cast<int>(n.operands.size()); ++p) {
            const NodeId src = n.operands[p];
            if (src == kNoNode || src >= g.size()) {
                std::ostringstream os;
                os << "dangling operand on port " << p;
                return invalid(id, n.op, os.str());
            }
            if (options.require_def_order && src >= id) {
                std::ostringstream os;
                os << "operand n" << src << " on port " << p
                   << " is not defined before use";
                return invalid(id, n.op, os.str());
            }
            const ValueType want = opOperandType(n.op, p);
            const ValueType got = opResultType(g.op(src));
            if (want != got) {
                std::ostringstream os;
                os << "port " << p << " type mismatch from node "
                   << src << " (" << opName(g.op(src)) << ")";
                return invalid(id, n.op, os.str());
            }
        }
        if (n.op == Op::kConstBit && n.param > 1)
            return invalid(id, n.op, "const_bit parameter must be 0/1");
        if (n.op == Op::kLut && n.param > 0xff)
            return invalid(id, n.op,
                           "3-LUT truth table exceeds 8 bits");
    }

    NodeId offender = kNoNode;
    if (hasCombinationalCycle(g, &offender)) {
        std::ostringstream os;
        os << "combinational cycle through node " << offender << " ("
           << opName(g.op(offender)) << ")";
        return Status(ErrorCode::kInvalidIr, os.str());
    }
    return Status::okStatus();
}

} // namespace apex::ir
