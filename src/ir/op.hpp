#ifndef APEX_IR_OP_H_
#define APEX_IR_OP_H_

#include <cstdint>
#include <string>
#include <string_view>

/**
 * @file
 * Operation vocabulary of the APEX dataflow IR.
 *
 * This is the CoreIR-substitute op set: the word-level (16-bit) integer
 * operations supported by the baseline CGRA PE from Bahr et al. (Fig. 1
 * of the APEX paper), plus structural ops (inputs, outputs, constants,
 * pipeline registers, register files and memory tiles) that appear in
 * lowered application dataflow graphs.
 */

namespace apex::ir {

/** Word width of the CGRA datapath, in bits. */
inline constexpr int kWordWidth = 16;

/** All operations a dataflow-graph node can carry. */
enum class Op : std::uint8_t {
    // Structural / IO ops.
    kInput,     ///< Streaming application input (word).
    kInputBit,  ///< Streaming application input (1 bit).
    kOutput,    ///< Streaming application output (word).
    kOutputBit, ///< Streaming application output (1 bit).
    kConst,     ///< Word constant (e.g. a convolution weight).
    kConstBit,  ///< One-bit constant.
    kReg,       ///< Single pipeline register (1-cycle delay).
    kRegFile,   ///< Register file acting as a FIFO of depth `param`.
    kMem,       ///< Memory tile (line buffer / double-buffered SRAM).

    // Word-level arithmetic (two operands unless noted).
    kAdd,
    kSub,
    kMul,
    kAbs,  ///< One operand: |a| with two's-complement semantics.
    kMin,  ///< Signed minimum.
    kMax,  ///< Signed maximum.
    kShl,  ///< Left shift, out = a << (b & 15).
    kLshr, ///< Logical right shift.
    kAshr, ///< Arithmetic right shift.

    // Word-level bitwise logic.
    kAnd,
    kOr,
    kXor,
    kNot, ///< One operand.

    // Comparisons: word x word -> bit.
    kEq,
    kNeq,
    kUlt,
    kUle,
    kUgt,
    kUge,
    kSlt,
    kSle,
    kSgt,
    kSge,

    // Selection and 1-bit logic.
    kSel,    ///< out = sel ? a : b.  Operands: (sel:bit, a:word, b:word).
    kLut,    ///< 3-input 1-bit LUT; truth table in `param` (8 bits).
    kBitAnd, ///< 1-bit AND.
    kBitOr,  ///< 1-bit OR.
    kBitXor, ///< 1-bit XOR.
    kBitNot, ///< 1-bit NOT (one operand).

    kNumOps, ///< Sentinel; not a real op.
};

/** Number of distinct ops (excluding the sentinel). */
inline constexpr int kNumOps = static_cast<int>(Op::kNumOps);

/** Result type of an op: 16-bit word or single bit. */
enum class ValueType : std::uint8_t { kWord, kBit };

/** Static metadata for one op. */
struct OpInfo {
    std::string_view name; ///< Lowercase mnemonic, e.g. "add".
    int arity;             ///< Number of data operands (-1: variadic).
    ValueType result;      ///< Result value type.
    bool commutative;      ///< Operand order irrelevant.
    bool isCompute;        ///< Maps onto a PE functional unit.
    bool isStructural;     ///< IO / const / reg / mem plumbing.
};

/** @return the static metadata record for @p op. */
const OpInfo &opInfo(Op op);

/** @return the lowercase mnemonic for @p op (e.g. "add"). */
std::string_view opName(Op op);

/** Parse a mnemonic produced by opName(); aborts on unknown names. */
Op opFromName(std::string_view name);

/** @return number of data operands of @p op (kLut -> 3, kSel -> 3...). */
int opArity(Op op);

/** @return true if @p op executes on a PE functional unit. */
bool opIsCompute(Op op);

/** @return the result type (word or bit) of @p op. */
ValueType opResultType(Op op);

/** @return the value type expected on operand @p port of @p op. */
ValueType opOperandType(Op op, int port);

/** @return true if swapping the two operands leaves the result unchanged. */
bool opIsCommutative(Op op);

/**
 * Evaluate a compute op on concrete operands.
 *
 * Word operands/results occupy the low @p width bits; bit operands are
 * 0/1.  @p width defaults to the datapath width but can be reduced so
 * rewrite-rule validation can exhaustively sweep small widths.
 *
 * @param op     Operation to evaluate (must satisfy opIsCompute()).
 * @param a      First operand.
 * @param b      Second operand (ignored for unary ops).
 * @param c      Third operand (kSel selector is operand 0; kLut uses all).
 * @param param  Node parameter (LUT truth table).
 * @param width  Datapath width in bits, 1..16.
 * @return the result, masked to the result type's width.
 */
std::uint64_t evalOp(Op op, std::uint64_t a, std::uint64_t b,
                     std::uint64_t c, std::uint64_t param,
                     int width = kWordWidth);

} // namespace apex::ir

#endif // APEX_IR_OP_H_
