#include "ir/serialize.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace apex::ir {

namespace {

bool
opHasParam(Op op)
{
    return op == Op::kConst || op == Op::kConstBit ||
           op == Op::kLut || op == Op::kRegFile;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** Tokenizer for one line: ids, mnemonics, integers, quoted strings. */
struct LineLexer {
    const std::string &line;
    std::size_t pos = 0;

    explicit LineLexer(const std::string &l) : line(l) {}

    void
    skipSpace()
    {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t')) {
            ++pos;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= line.size();
    }

    /** Next bare token (up to whitespace); empty at end. */
    std::string
    word()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < line.size() && line[pos] != ' ' &&
               line[pos] != '\t') {
            ++pos;
        }
        return line.substr(start, pos - start);
    }

    /** Quoted string if present. */
    std::optional<std::string>
    quoted()
    {
        skipSpace();
        if (pos >= line.size() || line[pos] != '"')
            return std::nullopt;
        ++pos;
        std::string out;
        while (pos < line.size() && line[pos] != '"') {
            if (line[pos] == '\\' && pos + 1 < line.size())
                ++pos;
            out += line[pos++];
        }
        if (pos < line.size())
            ++pos; // closing quote
        return out;
    }
};

} // namespace

std::string
serialize(const Graph &g)
{
    std::ostringstream os;
    os << "apexir 1\n";
    for (NodeId id = 0; id < g.size(); ++id) {
        const Node &n = g.node(id);
        os << 'n' << id << " = " << opName(n.op);
        if (opHasParam(n.op))
            os << ' ' << n.param;
        for (NodeId src : n.operands)
            os << " n" << src;
        if (!n.name.empty())
            os << ' ' << quote(n.name);
        os << '\n';
    }
    return os.str();
}

std::optional<Graph>
deserialize(const std::string &text, std::string *error)
{
    auto fail = [&](int line_no, const std::string &msg)
        -> std::optional<Graph> {
        if (error) {
            std::ostringstream os;
            os << "line " << line_no << ": " << msg;
            *error = os.str();
        }
        return std::nullopt;
    };

    std::istringstream is(text);
    std::string line;
    int line_no = 0;

    // Header.
    if (!std::getline(is, line))
        return fail(0, "empty document");
    ++line_no;
    if (line.rfind("apexir", 0) != 0)
        return fail(line_no, "missing 'apexir' header");

    Graph g;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;

        LineLexer lex(line);
        const std::string lhs = lex.word();
        if (lhs.empty())
            continue;
        if (lhs[0] != 'n')
            return fail(line_no, "expected node id");
        const NodeId id =
            static_cast<NodeId>(std::strtoul(lhs.c_str() + 1,
                                             nullptr, 10));
        if (id != g.size())
            return fail(line_no, "node ids must be dense/in order");
        if (lex.word() != "=")
            return fail(line_no, "expected '='");

        const std::string mnemonic = lex.word();
        if (mnemonic.empty())
            return fail(line_no, "missing op mnemonic");
        Op op;
        {
            bool found = false;
            for (int i = 0; i < kNumOps; ++i) {
                if (opName(static_cast<Op>(i)) == mnemonic) {
                    op = static_cast<Op>(i);
                    found = true;
                    break;
                }
            }
            if (!found)
                return fail(line_no, "unknown op '" + mnemonic + "'");
        }

        std::uint64_t param = 0;
        if (opHasParam(op)) {
            const std::string p = lex.word();
            if (p.empty() || (!isdigit(p[0]) && p[0] != '-'))
                return fail(line_no, "missing parameter");
            param = std::strtoull(p.c_str(), nullptr, 10);
        }

        std::vector<NodeId> operands;
        std::string name;
        while (!lex.atEnd()) {
            if (auto q = lex.quoted()) {
                name = *q;
                break;
            }
            const std::string tok = lex.word();
            if (tok.empty())
                break;
            if (tok[0] != 'n')
                return fail(line_no, "expected operand id");
            const NodeId src = static_cast<NodeId>(
                std::strtoul(tok.c_str() + 1, nullptr, 10));
            if (src >= g.size())
                return fail(line_no, "forward operand reference");
            operands.push_back(src);
        }

        g.addNode(op, std::move(operands), param, std::move(name));
    }

    std::string verr;
    if (!g.validate(&verr))
        return fail(line_no, "invalid graph: " + verr);
    return g;
}

} // namespace apex::ir
