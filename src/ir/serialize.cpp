#include "ir/serialize.hpp"

#include <cctype>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "core/fault.hpp"
#include "ir/validate.hpp"

namespace apex::ir {

namespace {

bool
opHasParam(Op op)
{
    return op == Op::kConst || op == Op::kConstBit ||
           op == Op::kLut || op == Op::kRegFile;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * Overflow-checked decimal parse of an all-digit token.  Returns
 * nullopt for empty tokens, non-digit characters (including signs)
 * and values that do not fit 64 bits.
 */
std::optional<std::uint64_t>
parseUint(std::string_view token)
{
    if (token.empty())
        return std::nullopt;
    std::uint64_t value = 0;
    for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value >
            (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return std::nullopt;
        value = value * 10 + digit;
    }
    return value;
}

/** Tokenizer for one line: ids, mnemonics, integers, quoted strings. */
struct LineLexer {
    const std::string &line;
    std::size_t pos = 0;
    bool unterminated = false; ///< Set by quoted() on a missing '"'.

    explicit LineLexer(const std::string &l) : line(l) {}

    void
    skipSpace()
    {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t')) {
            ++pos;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= line.size();
    }

    /** Next bare token (up to whitespace); empty at end. */
    std::string
    word()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < line.size() && line[pos] != ' ' &&
               line[pos] != '\t') {
            ++pos;
        }
        return line.substr(start, pos - start);
    }

    /** Quoted string if present; sets unterminated on a missing
     * closing quote (including a trailing backslash escape). */
    std::optional<std::string>
    quoted()
    {
        skipSpace();
        if (pos >= line.size() || line[pos] != '"')
            return std::nullopt;
        ++pos;
        std::string out;
        while (pos < line.size() && line[pos] != '"') {
            if (line[pos] == '\\') {
                if (pos + 1 >= line.size()) {
                    unterminated = true;
                    return std::nullopt;
                }
                ++pos;
            }
            out += line[pos++];
        }
        if (pos >= line.size()) {
            unterminated = true;
            return std::nullopt;
        }
        ++pos; // closing quote
        return out;
    }
};

} // namespace

std::string
serialize(const Graph &g)
{
    std::ostringstream os;
    os << "apexir 1\n";
    for (NodeId id = 0; id < g.size(); ++id) {
        const Node &n = g.node(id);
        os << 'n' << id << " = " << opName(n.op);
        if (opHasParam(n.op))
            os << ' ' << n.param;
        for (NodeId src : n.operands)
            os << " n" << src;
        if (!n.name.empty())
            os << ' ' << quote(n.name);
        os << '\n';
    }
    return os.str();
}

Result<Graph>
parseGraph(const std::string &text)
{
    APEX_RETURN_IF_ERROR(checkFault(FaultStage::kDeserialize));

    auto fail = [](int line_no, const std::string &msg) {
        std::ostringstream os;
        os << "line " << line_no << ": " << msg;
        return Status(ErrorCode::kParseError, os.str());
    };

    std::istringstream is(text);
    std::string line;
    int line_no = 0;

    // Header.
    if (!std::getline(is, line))
        return fail(0, "empty document");
    ++line_no;
    if (line.rfind("apexir", 0) != 0)
        return fail(line_no, "missing 'apexir' header");

    Graph g;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;

        LineLexer lex(line);
        const std::string lhs = lex.word();
        if (lhs.empty())
            continue;
        if (lhs[0] != 'n')
            return fail(line_no, "expected node id");
        const auto id = parseUint(std::string_view(lhs).substr(1));
        if (!id || *id >= kNoNode)
            return fail(line_no,
                        "malformed node id '" + lhs + "'");
        if (*id != g.size())
            return fail(line_no, "node ids must be dense/in order");
        if (lex.word() != "=")
            return fail(line_no, "expected '='");

        const std::string mnemonic = lex.word();
        if (mnemonic.empty())
            return fail(line_no, "missing op mnemonic");
        Op op;
        {
            bool found = false;
            for (int i = 0; i < kNumOps; ++i) {
                if (opName(static_cast<Op>(i)) == mnemonic) {
                    op = static_cast<Op>(i);
                    found = true;
                    break;
                }
            }
            if (!found)
                return fail(line_no, "unknown op '" + mnemonic + "'");
        }

        std::uint64_t param = 0;
        if (opHasParam(op)) {
            const std::string p = lex.word();
            if (p.empty())
                return fail(line_no, "missing parameter");
            const auto value = parseUint(p);
            if (!value)
                return fail(line_no,
                            "parameter '" + p +
                                "' is not an unsigned 64-bit integer");
            param = *value;
        }

        std::vector<NodeId> operands;
        std::string name;
        bool have_name = false;
        while (!lex.atEnd()) {
            if (auto q = lex.quoted()) {
                name = *q;
                have_name = true;
                break;
            }
            if (lex.unterminated)
                return fail(line_no, "unterminated quoted name");
            const std::string tok = lex.word();
            if (tok.empty())
                break;
            if (tok[0] != 'n')
                return fail(line_no, "expected operand id");
            const auto src = parseUint(std::string_view(tok).substr(1));
            if (!src || *src >= kNoNode)
                return fail(line_no,
                            "malformed operand id '" + tok + "'");
            if (*src >= g.size())
                return fail(line_no, "forward operand reference");
            operands.push_back(static_cast<NodeId>(*src));
        }
        if (have_name && !lex.atEnd())
            return fail(line_no, "trailing tokens after name");

        g.addNode(op, std::move(operands), param, std::move(name));
    }

    ValidateOptions vopt;
    vopt.require_def_order = true;
    if (const Status s = validate(g, vopt); !s.ok())
        return fail(line_no, "invalid graph: " + s.message());
    return g;
}

std::optional<Graph>
deserialize(const std::string &text, std::string *error)
{
    Result<Graph> result = parseGraph(text);
    if (result.ok())
        return std::move(result).value();
    if (error)
        *error = result.status().message();
    return std::nullopt;
}

} // namespace apex::ir
