#ifndef APEX_MERGING_CLIQUE_H_
#define APEX_MERGING_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "core/deadline.hpp"

/**
 * @file
 * Maximum-weight clique solver used by datapath merging (Sec. 3.3):
 * the compatible-merge selection is exactly a maximum-weight clique of
 * the compatibility graph.
 *
 * The solver is an exact branch-and-bound (greedy-seeded, with the
 * remaining-weight upper bound) under a node budget and an optional
 * wall-clock deadline; if either runs out on a pathological instance
 * it returns the best clique found so far, which is always at least
 * as good as greedy.
 */

namespace apex::merging {

/** Weighted undirected graph for the clique search. */
struct CliqueProblem {
    int n = 0;                           ///< Vertex count.
    std::vector<double> weight;          ///< Vertex weights (>= 0).
    std::vector<std::vector<bool>> adj;  ///< Symmetric adjacency.
};

/** Result of the clique search. */
struct CliqueResult {
    std::vector<int> vertices; ///< Chosen clique, ascending order.
    double weight = 0.0;       ///< Sum of vertex weights.
    bool optimal = true;       ///< False if a budget/deadline ran out.
    bool timed_out = false;    ///< The deadline (not the node budget)
                               ///< cut the search short.
};

/**
 * Find a maximum-weight clique.
 *
 * @param problem      The weighted graph.
 * @param node_budget  Branch-and-bound node limit (default 2e6).
 * @param deadline     Wall-clock bound, polled every few thousand
 *                     nodes; expiry stops the search at best-so-far.
 */
CliqueResult maxWeightClique(const CliqueProblem &problem,
                             std::int64_t node_budget = 2'000'000,
                             const Deadline &deadline = {});

} // namespace apex::merging

#endif // APEX_MERGING_CLIQUE_H_
