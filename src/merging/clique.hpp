#ifndef APEX_MERGING_CLIQUE_H_
#define APEX_MERGING_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "core/deadline.hpp"

/**
 * @file
 * Maximum-weight clique solver used by datapath merging (Sec. 3.3):
 * the compatible-merge selection is exactly a maximum-weight clique of
 * the compatibility graph.
 *
 * The solver is an exact BBMC-style branch and bound: vertices are
 * ordered (weight desc, index asc), candidate sets live in dense
 * bitsets intersected word-at-a-time, and the upper bound is a greedy
 * colouring of the candidate set — independent-set colour classes can
 * contribute at most their heaviest member each, which prunes orders
 * of magnitude more nodes than a plain remaining-weight sum.  It runs
 * under a node budget and an optional wall-clock deadline; if either
 * runs out on a pathological instance it returns the best clique
 * found so far, which is always at least as good as greedy.
 *
 * Determinism contract: branching follows the fixed (weight desc,
 * index asc) vertex order, the incumbent is replaced only on a strict
 * weight improvement, and the bound is admissible — so the returned
 * clique is a pure function of the input, byte-identical across
 * bound strengths, runs and lanes.  `maxWeightCliqueReference`
 * retains the same search on naive vector-of-vector structures (with
 * a selectable bound) for differential testing and node-count
 * comparisons; see tests/kernels_test.cpp.
 */

namespace apex::merging {

/** Weighted undirected graph for the clique search. */
struct CliqueProblem {
    int n = 0;                           ///< Vertex count.
    std::vector<double> weight;          ///< Vertex weights (>= 0).
    std::vector<std::vector<bool>> adj;  ///< Symmetric adjacency.
};

/** Result of the clique search. */
struct CliqueResult {
    std::vector<int> vertices; ///< Chosen clique, ascending order.
    double weight = 0.0;       ///< Sum of vertex weights.
    bool optimal = true;       ///< False if a budget/deadline ran out.
    bool timed_out = false;    ///< The deadline (not the node budget)
                               ///< cut the search short.
    std::int64_t nodes = 0;    ///< Branch-and-bound nodes expanded.
};

/**
 * Find a maximum-weight clique.
 *
 * @param problem      The weighted graph.
 * @param node_budget  Branch-and-bound node limit (default 2e6).
 * @param deadline     Wall-clock bound, polled every few thousand
 *                     nodes; expiry stops the search at best-so-far.
 */
CliqueResult maxWeightClique(const CliqueProblem &problem,
                             std::int64_t node_budget = 2'000'000,
                             const Deadline &deadline = {});

/** Upper bound used by the reference solver. */
enum class CliqueBound {
    kWeightSum, ///< Sum of remaining candidate weights (historic).
    kColoring,  ///< Greedy-colouring bound (matches maxWeightClique).
};

/**
 * Reference solver on naive data structures (vector candidate lists,
 * per-node allocations), retained for differential tests and the
 * kernel benchmarks.  With CliqueBound::kColoring it must return
 * byte-identical results to maxWeightClique on every path, including
 * budget and deadline truncation; with kWeightSum it reproduces the
 * historic weak bound (same answers at ample budget, many more nodes).
 * No telemetry is recorded.
 */
CliqueResult
maxWeightCliqueReference(const CliqueProblem &problem,
                         std::int64_t node_budget = 2'000'000,
                         const Deadline &deadline = {},
                         CliqueBound bound = CliqueBound::kColoring);

} // namespace apex::merging

#endif // APEX_MERGING_CLIQUE_H_
