#include "merging/clique.hpp"

#include <algorithm>
#include <numeric>

#include "runtime/telemetry.hpp"

namespace apex::merging {

namespace {

/** Greedy clique: repeatedly add the heaviest compatible vertex. */
CliqueResult
greedyClique(const CliqueProblem &pb)
{
    std::vector<int> order(pb.n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return pb.weight[a] > pb.weight[b];
    });

    CliqueResult result;
    for (int v : order) {
        bool ok = true;
        for (int u : result.vertices)
            if (!pb.adj[v][u]) {
                ok = false;
                break;
            }
        if (ok) {
            result.vertices.push_back(v);
            result.weight += pb.weight[v];
        }
    }
    std::sort(result.vertices.begin(), result.vertices.end());
    return result;
}

struct Search {
    /** Poll the deadline once per this many expand() nodes: cheap
     * enough to be invisible, frequent enough that a stuck search
     * notices expiry within milliseconds. */
    static constexpr std::int64_t kDeadlineStride = 8192;

    const CliqueProblem &pb;
    std::int64_t budget;
    const Deadline &deadline;
    std::int64_t nodes = 0;
    std::vector<int> best;
    double best_weight = 0.0;
    bool optimal = true;
    bool timed_out = false;

    Search(const CliqueProblem &p, std::int64_t b, const Deadline &d)
        : pb(p), budget(b), deadline(d) {}

    void
    expand(std::vector<int> &current, double current_weight,
           std::vector<int> &candidates)
    {
        if (--budget <= 0) {
            optimal = false;
            return;
        }
        if (++nodes % kDeadlineStride == 0 && deadline.expired()) {
            optimal = false;
            timed_out = true;
            budget = 0; // unwind the whole recursion
            return;
        }
        if (candidates.empty()) {
            if (current_weight > best_weight) {
                best_weight = current_weight;
                best = current;
            }
            return;
        }
        double rest = 0.0;
        for (int v : candidates)
            rest += pb.weight[v];

        // Candidates are kept sorted by descending weight.
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (current_weight + rest <= best_weight)
                return; // bound: even taking everything cannot win
            const int v = candidates[i];
            rest -= pb.weight[v];

            std::vector<int> next;
            next.reserve(candidates.size() - i);
            for (std::size_t j = i + 1; j < candidates.size(); ++j)
                if (pb.adj[v][candidates[j]])
                    next.push_back(candidates[j]);

            current.push_back(v);
            const double w = current_weight + pb.weight[v];
            if (next.empty()) {
                if (w > best_weight) {
                    best_weight = w;
                    best = current;
                }
            } else {
                expand(current, w, next);
            }
            current.pop_back();
            if (budget <= 0)
                return;
        }
    }
};

} // namespace

CliqueResult
maxWeightClique(const CliqueProblem &pb, std::int64_t node_budget,
                const Deadline &deadline)
{
    if (pb.n == 0)
        return {};
    APEX_SPAN("clique", {{"n", pb.n}});
    telemetry::StageTimer timer(
        telemetry::histogram("apex.clique.ms"));
    telemetry::counter("apex.clique.searches").add(1);

    CliqueResult seed = greedyClique(pb);
    if (deadline.expired()) {
        // No time for branch-and-bound: greedy is the degraded path.
        seed.optimal = false;
        seed.timed_out = true;
        telemetry::counter("apex.clique.non_optimal").add(1);
        telemetry::counter("apex.clique.timeouts").add(1);
        return seed;
    }

    Search search(pb, node_budget, deadline);
    search.best = seed.vertices;
    search.best_weight = seed.weight;

    std::vector<int> candidates(pb.n);
    std::iota(candidates.begin(), candidates.end(), 0);
    std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
        return pb.weight[a] > pb.weight[b];
    });
    std::vector<int> current;
    search.expand(current, 0.0, candidates);

    CliqueResult result;
    result.vertices = std::move(search.best);
    std::sort(result.vertices.begin(), result.vertices.end());
    result.weight = search.best_weight;
    result.optimal = search.optimal;
    result.timed_out = search.timed_out;
    telemetry::counter("apex.clique.nodes").add(search.nodes);
    if (!result.optimal)
        telemetry::counter("apex.clique.non_optimal").add(1);
    if (result.timed_out)
        telemetry::counter("apex.clique.timeouts").add(1);
    return result;
}

} // namespace apex::merging
