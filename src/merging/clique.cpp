#include "merging/clique.hpp"

#include <algorithm>
#include <numeric>

#include "core/bitset.hpp"
#include "merging/clique_detail.hpp"
#include "runtime/telemetry.hpp"

namespace apex::merging {

namespace detail {

std::vector<int>
branchOrder(const CliqueProblem &pb)
{
    std::vector<int> order(pb.n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (pb.weight[a] != pb.weight[b])
            return pb.weight[a] > pb.weight[b];
        return a < b;
    });
    return order;
}

CliqueResult
greedyClique(const CliqueProblem &pb)
{
    CliqueResult result;
    for (int v : branchOrder(pb)) {
        bool ok = true;
        for (int u : result.vertices)
            if (!pb.adj[v][u]) {
                ok = false;
                break;
            }
        if (ok) {
            result.vertices.push_back(v);
            result.weight += pb.weight[v];
        }
    }
    std::sort(result.vertices.begin(), result.vertices.end());
    return result;
}

} // namespace detail

namespace {

/**
 * BBMC-style search in *position* space: vertex `order[p]` lives at
 * position p, so ascending bit iteration over a candidate bitset IS
 * the (weight desc, index asc) branching order.  Candidate sets are
 * one bitset row per recursion depth in a preallocated pool; the
 * colouring scratch is shared across depths because each node's bound
 * is fully computed before it recurses.
 */
struct BitSearch {
    /** Poll the deadline once per this many expand() nodes: cheap
     * enough to be invisible, frequent enough that a stuck search
     * notices expiry within milliseconds. */
    static constexpr std::int64_t kDeadlineStride = 8192;

    const CliqueProblem &pb;
    std::int64_t budget;
    const Deadline &deadline;
    std::int64_t nodes = 0;
    std::vector<int> best; ///< Original vertex ids.
    double best_weight = 0.0;
    bool optimal = true;
    bool timed_out = false;

    int n;
    std::vector<int> vert;   ///< position -> original vertex id.
    std::vector<double> wt;  ///< position -> weight.
    core::BitsetMatrix adj;  ///< adjacency rows in position space.
    core::BitsetMatrix pool; ///< candidate row per recursion depth.

    // Colouring scratch, valid only between a node's entry and its
    // first recursion (each expand() finishes its bound before
    // descending, so children may overwrite it freely).
    core::BitsetMatrix colour_classes;
    std::vector<int> colour_of; ///< per candidate list slot.
    std::vector<double> colour_max;

    // Per-depth candidate lists and suffix bounds, reused across
    // visits to the same depth (no per-node allocation after warmup).
    std::vector<std::vector<int>> cands_at;
    std::vector<std::vector<double>> bound_at;

    std::vector<int> current; ///< DFS stack of original vertex ids.

    BitSearch(const CliqueProblem &p, std::int64_t b,
              const Deadline &d)
        : pb(p), budget(b), deadline(d), n(p.n),
          vert(detail::branchOrder(p)), wt(p.n),
          adj(static_cast<std::size_t>(p.n),
              static_cast<std::size_t>(p.n)),
          pool(static_cast<std::size_t>(p.n) + 1,
               static_cast<std::size_t>(p.n)),
          colour_classes(static_cast<std::size_t>(p.n),
                         static_cast<std::size_t>(p.n))
    {
        std::vector<int> pos(n);
        for (int p2 = 0; p2 < n; ++p2)
            pos[vert[p2]] = p2;
        for (int p2 = 0; p2 < n; ++p2) {
            wt[p2] = pb.weight[vert[p2]];
            const auto &row = pb.adj[vert[p2]];
            for (int u = 0; u < n; ++u)
                if (row[u])
                    adj.set(p2, pos[u]);
        }
        cands_at.resize(static_cast<std::size_t>(n) + 1);
        bound_at.resize(static_cast<std::size_t>(n) + 1);
        colour_of.resize(n);
        colour_max.resize(n);
    }

    /**
     * Greedy colouring of the depth's candidate set plus suffix
     * bounds: bound[i] = sum over colour classes of the heaviest
     * class member within cands[i..].  Computed back-to-front so each
     * candidate contributes only what it raises its class maximum by.
     */
    void
    colourBounds(std::size_t depth)
    {
        const std::vector<int> &cands = cands_at[depth];
        const int k = static_cast<int>(cands.size());
        int n_colours = 0;
        for (int i = 0; i < k; ++i) {
            const int p = cands[i];
            int c = 0;
            while (c < n_colours) {
                // Class c stays an independent set only if p has no
                // neighbour already in it.
                const std::uint64_t *cls = colour_classes.row(c);
                const std::uint64_t *nb = adj.row(p);
                bool clash = false;
                for (std::size_t w = 0; w < adj.rowWords(); ++w)
                    if (cls[w] & nb[w]) {
                        clash = true;
                        break;
                    }
                if (!clash)
                    break;
                ++c;
            }
            if (c == n_colours) {
                colour_classes.clearRow(c);
                ++n_colours;
            }
            colour_classes.set(c, p);
            colour_of[i] = c;
        }
        for (int c = 0; c < n_colours; ++c)
            colour_max[c] = 0.0;
        std::vector<double> &bound = bound_at[depth];
        bound.resize(k);
        double total = 0.0;
        for (int i = k - 1; i >= 0; --i) {
            const int c = colour_of[i];
            const double w = wt[cands[i]];
            if (w > colour_max[c]) {
                total += w - colour_max[c];
                colour_max[c] = w;
            }
            bound[i] = total;
        }
    }

    void
    expand(std::size_t depth, double current_weight)
    {
        if (--budget <= 0) {
            optimal = false;
            return;
        }
        if (++nodes % kDeadlineStride == 0 && deadline.expired()) {
            optimal = false;
            timed_out = true;
            budget = 0; // unwind the whole recursion
            return;
        }
        std::vector<int> &cands = cands_at[depth];
        cands.clear();
        pool.forEachInRow(depth, [&](int p) { cands.push_back(p); });
        if (cands.empty()) {
            if (current_weight > best_weight) {
                best_weight = current_weight;
                best = current;
            }
            return;
        }
        colourBounds(depth);
        const std::vector<double> &bound = bound_at[depth];

        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (current_weight + bound[i] <= best_weight)
                return; // bound: even the best colouring cannot win
            const int p = cands[i];
            // Drop p from the row so the child set only holds later
            // candidates; the list built above is unaffected.
            pool.row(depth)[p >> 6] &= ~(1ull << (p & 63));
            std::uint64_t *child = pool.row(depth + 1);
            const std::uint64_t *rem = pool.row(depth);
            const std::uint64_t *nb = adj.row(p);
            bool child_any = false;
            for (std::size_t w = 0; w < pool.rowWords(); ++w) {
                child[w] = rem[w] & nb[w];
                child_any |= child[w] != 0;
            }

            current.push_back(vert[p]);
            const double w = current_weight + wt[p];
            if (!child_any) {
                if (w > best_weight) {
                    best_weight = w;
                    best = current;
                }
            } else {
                expand(depth + 1, w);
            }
            current.pop_back();
            if (budget <= 0)
                return;
        }
    }
};

} // namespace

CliqueResult
maxWeightClique(const CliqueProblem &pb, std::int64_t node_budget,
                const Deadline &deadline)
{
    if (pb.n == 0)
        return {};
    APEX_SPAN("clique", {{"n", pb.n}});
    telemetry::StageTimer timer(
        telemetry::histogram("apex.clique.ms"));
    telemetry::counter("apex.clique.searches").add(1);

    CliqueResult seed = detail::greedyClique(pb);
    if (deadline.expired()) {
        // No time for branch-and-bound: greedy is the degraded path.
        seed.optimal = false;
        seed.timed_out = true;
        telemetry::counter("apex.clique.non_optimal").add(1);
        telemetry::counter("apex.clique.timeouts").add(1);
        return seed;
    }

    BitSearch search(pb, node_budget, deadline);
    search.best = seed.vertices;
    search.best_weight = seed.weight;

    for (int p = 0; p < pb.n; ++p)
        search.pool.set(0, p);
    search.expand(0, 0.0);

    CliqueResult result;
    result.vertices = std::move(search.best);
    std::sort(result.vertices.begin(), result.vertices.end());
    result.weight = search.best_weight;
    result.optimal = search.optimal;
    result.timed_out = search.timed_out;
    result.nodes = search.nodes;
    telemetry::counter("apex.clique.nodes").add(search.nodes);
    if (!result.optimal)
        telemetry::counter("apex.clique.non_optimal").add(1);
    if (result.timed_out)
        telemetry::counter("apex.clique.timeouts").add(1);
    return result;
}

} // namespace apex::merging
