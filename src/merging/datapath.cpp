#include "merging/datapath.hpp"

#include <algorithm>
#include <sstream>

namespace apex::merging {

using ir::Op;

int
DpNode::arity() const
{
    if (kind != DpNodeKind::kBlock || ops.empty())
        return 0;
    int max_arity = 0;
    for (Op op : ops)
        max_arity = std::max(max_arity, ir::opArity(op));
    return max_arity;
}

std::vector<int>
Datapath::inputIds() const
{
    std::vector<int> result;
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i)
        if (nodes[i].kind == DpNodeKind::kInput)
            result.push_back(i);
    return result;
}

std::vector<int>
Datapath::constIds() const
{
    std::vector<int> result;
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i)
        if (nodes[i].kind == DpNodeKind::kConst)
            result.push_back(i);
    return result;
}

std::vector<int>
Datapath::blockIds() const
{
    std::vector<int> result;
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i)
        if (nodes[i].kind == DpNodeKind::kBlock)
            result.push_back(i);
    return result;
}

std::vector<int>
Datapath::outputIds() const
{
    std::vector<int> result;
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i)
        if (nodes[i].is_output)
            result.push_back(i);
    return result;
}

std::vector<int>
Datapath::sourcesOf(int dst, int port) const
{
    std::vector<int> result;
    for (const DpEdge &e : edges)
        if (e.dst == dst && e.port == port)
            result.push_back(e.src);
    std::sort(result.begin(), result.end());
    result.erase(std::unique(result.begin(), result.end()),
                 result.end());
    return result;
}

void
Datapath::addEdgeUnique(const DpEdge &e)
{
    if (std::find(edges.begin(), edges.end(), e) == edges.end())
        edges.push_back(e);
}

bool
Datapath::validate(std::string *error) const
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    const int n = static_cast<int>(nodes.size());
    for (const DpEdge &e : edges) {
        if (e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n)
            return fail("edge endpoint out of range");
        if (nodes[e.dst].kind != DpNodeKind::kBlock)
            return fail("edge into a non-block node");
        if (e.port < 0 || e.port >= nodes[e.dst].arity()) {
            std::ostringstream os;
            os << "edge port " << e.port << " out of range on node "
               << e.dst;
            return fail(os.str());
        }
    }
    for (int i = 0; i < n; ++i) {
        if (nodes[i].kind != DpNodeKind::kBlock)
            continue;
        if (nodes[i].ops.empty())
            return fail("block without ops");
        for (int p = 0; p < nodes[i].arity(); ++p)
            if (sourcesOf(i, p).empty()) {
                std::ostringstream os;
                os << "block node " << i << " port " << p
                   << " has no source";
                return fail(os.str());
            }
    }
    return true;
}

double
Datapath::functionalArea(const model::TechModel &tech) const
{
    double area = 0.0;
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
        const DpNode &nd = nodes[i];
        if (nd.kind == DpNodeKind::kInput)
            continue;
        area += model::blockCost(tech, nd.cls).area;
        if (nd.kind != DpNodeKind::kBlock)
            continue;
        for (int p = 0; p < nd.arity(); ++p) {
            const int fan_in =
                static_cast<int>(sourcesOf(i, p).size());
            if (fan_in > 1) {
                const bool bit =
                    ir::opOperandType(*nd.ops.begin(), p) ==
                    ir::ValueType::kBit;
                area += (fan_in - 1) * (bit ? tech.mux_input_area_bit
                                            : tech.mux_input_area);
            }
        }
    }
    return area;
}

Datapath
datapathFromPattern(const ir::Graph &pattern, std::vector<int> *node_map)
{
    Datapath dp;
    std::vector<int> map(pattern.size(), -1);

    // Sink detection: compute nodes with no compute/const consumers.
    std::vector<bool> has_consumer(pattern.size(), false);
    for (const ir::Edge &e : pattern.edges())
        has_consumer[e.src] = true;

    for (ir::NodeId id : pattern.topoOrder()) {
        const ir::Node &n = pattern.node(id);
        DpNode dn;
        dn.name = n.name;
        dn.type = ir::opResultType(n.op);
        switch (n.op) {
          case Op::kInput:
          case Op::kInputBit:
            dn.kind = DpNodeKind::kInput;
            break;
          case Op::kConst:
            dn.kind = DpNodeKind::kConst;
            dn.cls = model::HwBlockClass::kConstReg;
            break;
          case Op::kConstBit:
            dn.kind = DpNodeKind::kConst;
            dn.cls = model::HwBlockClass::kConstRegBit;
            break;
          default: {
            dn.kind = DpNodeKind::kBlock;
            dn.cls = model::blockClassOf(n.op);
            dn.ops = {n.op};
            dn.is_output = !has_consumer[id];
            break;
          }
        }
        map[id] = static_cast<int>(dp.nodes.size());
        dp.nodes.push_back(std::move(dn));

        for (int p = 0; p < static_cast<int>(n.operands.size()); ++p) {
            dp.addEdgeUnique(
                DpEdge{map[n.operands[p]], map[id], p});
        }
    }

    if (node_map)
        *node_map = std::move(map);
    return dp;
}

} // namespace apex::merging
