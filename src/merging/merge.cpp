#include "merging/merge.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "core/fault.hpp"
#include "ir/validate.hpp"
#include "merging/clique.hpp"
#include "runtime/telemetry.hpp"

/*
 * Determinism contract (parallel DSE runtime): merging runs inside
 * concurrently evaluated sweep cells and its merged datapaths are
 * memoized by the content-addressed cache, so identical inputs must
 * merge identically on every lane and every run.  Opportunity
 * enumeration walks nodes in id order, clique search and weight
 * tie-breaks use explicit indices, and only ordered containers are
 * used — unordered_* iteration order, pointer comparisons and other
 * address-dependent choices are banned here.
 */
namespace apex::merging {

namespace {

/** One merge opportunity: 1 node pair (node merge) or 2 (edge merge). */
struct Opportunity {
    std::vector<std::pair<int, int>> pairs; ///< (A node, B node).
    double weight = 0.0;
};

/** Can nodes a (from A) and b (from B) share hardware? */
bool
nodesMergeable(const DpNode &a, const DpNode &b)
{
    if (a.kind != b.kind)
        return false;
    if (a.kind == DpNodeKind::kInput)
        return a.type == b.type;
    return a.cls == b.cls; // consts and blocks: same class
}

double
nodeMergeWeight(const DpNode &a, const model::TechModel &tech,
                const MergeOptions &opt)
{
    if (a.kind == DpNodeKind::kInput) {
        return a.type == ir::ValueType::kBit
                   ? opt.input_merge_weight_bit
                   : opt.input_merge_weight;
    }
    return model::blockCost(tech, a.cls).area;
}

/** Are two opportunities' pairings mutually injective? */
bool
compatible(const Opportunity &u, const Opportunity &v)
{
    for (const auto &[a1, b1] : u.pairs)
        for (const auto &[a2, b2] : v.pairs) {
            if ((a1 == a2) != (b1 == b2))
                return false;
        }
    return true;
}

} // namespace

MergeResult
mergeDatapaths(const Datapath &a, const Datapath &b,
               const model::TechModel &tech, const MergeOptions &opt)
{
    APEX_SPAN("merge");
    telemetry::StageTimer timer(
        telemetry::histogram("apex.merge.ms"));
    // 1. Enumerate node merge opportunities.
    std::vector<Opportunity> opportunities;
    for (int i = 0; i < static_cast<int>(a.nodes.size()); ++i) {
        for (int j = 0; j < static_cast<int>(b.nodes.size()); ++j) {
            if (!nodesMergeable(a.nodes[i], b.nodes[j]))
                continue;
            Opportunity op;
            op.pairs = {{i, j}};
            op.weight = nodeMergeWeight(a.nodes[i], tech, opt);
            opportunities.push_back(std::move(op));
        }
    }

    // 2. Edge merge opportunities: mergeable endpoints, same dest port.
    for (const DpEdge &ea : a.edges) {
        for (const DpEdge &eb : b.edges) {
            if (ea.port != eb.port)
                continue;
            if (!nodesMergeable(a.nodes[ea.src], b.nodes[eb.src]) ||
                !nodesMergeable(a.nodes[ea.dst], b.nodes[eb.dst])) {
                continue;
            }
            Opportunity op;
            op.pairs = {{ea.src, eb.src}, {ea.dst, eb.dst}};
            const bool bit =
                a.nodes[ea.src].type == ir::ValueType::kBit;
            op.weight = bit ? tech.mux_input_area_bit
                            : tech.mux_input_area;
            opportunities.push_back(std::move(op));
        }
    }

    // 3. Compatibility graph + maximum-weight clique.
    CliqueProblem pb;
    pb.n = static_cast<int>(opportunities.size());
    pb.weight.resize(pb.n);
    pb.adj.assign(pb.n, std::vector<bool>(pb.n, false));
    for (int i = 0; i < pb.n; ++i) {
        pb.weight[i] = opportunities[i].weight;
        for (int j = i + 1; j < pb.n; ++j) {
            if (compatible(opportunities[i], opportunities[j])) {
                pb.adj[i][j] = pb.adj[j][i] = true;
            }
        }
    }
    const CliqueResult clique =
        maxWeightClique(pb, opt.clique_budget, opt.deadline);

    // 4. Selected pairings.
    std::vector<int> b_match(b.nodes.size(), -1); // B node -> A node
    for (int v : clique.vertices) {
        for (const auto &[ai, bj] : opportunities[v].pairs) {
            assert(b_match[bj] == -1 || b_match[bj] == ai);
            b_match[bj] = ai;
        }
    }

    // 5. Reconstruction.
    MergeResult result;
    result.saved_area = clique.weight;
    result.clique_optimal = clique.optimal;
    result.clique_timed_out = clique.timed_out;
    result.a_to_merged.resize(a.nodes.size());
    result.b_to_merged.assign(b.nodes.size(), -1);

    for (int i = 0; i < static_cast<int>(a.nodes.size()); ++i) {
        result.a_to_merged[i] =
            static_cast<int>(result.merged.nodes.size());
        result.merged.nodes.push_back(a.nodes[i]);
    }
    for (int j = 0; j < static_cast<int>(b.nodes.size()); ++j) {
        if (b_match[j] >= 0) {
            const int m = result.a_to_merged[b_match[j]];
            result.b_to_merged[j] = m;
            DpNode &merged_node = result.merged.nodes[m];
            merged_node.ops.insert(b.nodes[j].ops.begin(),
                                   b.nodes[j].ops.end());
            merged_node.is_output |= b.nodes[j].is_output;
            if (merged_node.name.empty())
                merged_node.name = b.nodes[j].name;
        } else {
            result.b_to_merged[j] =
                static_cast<int>(result.merged.nodes.size());
            result.merged.nodes.push_back(b.nodes[j]);
        }
    }

    for (const DpEdge &e : a.edges) {
        result.merged.addEdgeUnique(DpEdge{result.a_to_merged[e.src],
                                           result.a_to_merged[e.dst],
                                           e.port});
    }
    for (const DpEdge &e : b.edges) {
        result.merged.addEdgeUnique(DpEdge{result.b_to_merged[e.src],
                                           result.b_to_merged[e.dst],
                                           e.port});
    }
    return result;
}

namespace {

/** Validate @p pattern; on failure record the skip in @p result
 * (empty map entry keeps pattern_maps index-aligned) and remember the
 * reason in @p last_invalid. */
bool
patternUsable(const ir::Graph &pattern, std::size_t k,
              MultiMergeResult &result, Status &last_invalid)
{
    Status s = ir::validate(pattern);
    if (s.ok())
        return true;
    result.skipped_patterns.push_back(static_cast<int>(k));
    result.pattern_maps.emplace_back();
    last_invalid = std::move(s).withContext("merging pattern " +
                                            std::to_string(k));
    return false;
}

/** Roll one pairwise merge's clique outcome into the fold totals. */
void
noteCliqueOutcome(const MergeResult &mr, MultiMergeResult &result)
{
    if (!mr.clique_optimal)
        ++result.non_optimal_cliques;
    if (mr.clique_timed_out)
        ++result.clique_timeouts;
}

/** Deadline expired mid-fold: record patterns [k, n) as skipped
 * (index-aligned empty maps) and keep the datapath merged so far. */
void
skipRemaining(std::size_t k, std::size_t n, MultiMergeResult &result)
{
    result.deadline_expired = true;
    for (std::size_t r = k; r < n; ++r) {
        result.skipped_patterns.push_back(static_cast<int>(r));
        result.pattern_maps.emplace_back();
    }
}

} // namespace

MultiMergeResult
mergePatterns(const std::vector<ir::Graph> &patterns,
              const model::TechModel &tech, const MergeOptions &opt)
{
    MultiMergeResult result;
    if (Status fault = checkFault(FaultStage::kMerge); !fault.ok()) {
        result.status = std::move(fault);
        return result;
    }
    if (patterns.empty())
        return result;

    Status last_invalid = Status::okStatus();
    bool have_seed = false;
    for (std::size_t k = 0; k < patterns.size(); ++k) {
        // The first pattern just seeds the fold (cheap); every later
        // one costs a clique search, so respect the deadline between
        // them and keep what is merged so far.
        if (have_seed && opt.deadline.expired()) {
            skipRemaining(k, patterns.size(), result);
            break;
        }
        if (!patternUsable(patterns[k], k, result, last_invalid))
            continue;
        std::vector<int> mapk;
        Datapath next = datapathFromPattern(patterns[k], &mapk);
        if (!have_seed) {
            result.merged = std::move(next);
            result.pattern_maps.push_back(std::move(mapk));
            have_seed = true;
            continue;
        }
        MergeResult mr =
            mergeDatapaths(result.merged, next, tech, opt);
        noteCliqueOutcome(mr, result);
        result.saved_area += mr.saved_area;

        // Relocate previous pattern maps through a_to_merged.
        for (auto &pm : result.pattern_maps)
            for (int &id : pm)
                if (id >= 0)
                    id = mr.a_to_merged[id];
        // New pattern map composes with b_to_merged.
        for (int &id : mapk)
            if (id >= 0)
                id = mr.b_to_merged[id];
        result.pattern_maps.push_back(std::move(mapk));
        result.merged = std::move(mr.merged);
    }
    if (!have_seed)
        result.status = Status(ErrorCode::kMergeInfeasible,
                               "every pattern failed validation: " +
                                   last_invalid.toString());
    return result;
}

MultiMergeResult
mergeIntoDatapath(const Datapath &seed,
                  const std::vector<ir::Graph> &patterns,
                  const model::TechModel &tech,
                  std::vector<int> *seed_map, const MergeOptions &opt)
{
    MultiMergeResult result;
    result.merged = seed;
    if (Status fault = checkFault(FaultStage::kMerge); !fault.ok()) {
        // Seed datapath is returned unchanged so the caller can still
        // fall back to the unmerged PE.
        result.status = std::move(fault);
        if (seed_map) {
            seed_map->resize(seed.nodes.size());
            for (std::size_t i = 0; i < seed.nodes.size(); ++i)
                (*seed_map)[i] = static_cast<int>(i);
        }
        return result;
    }

    std::vector<int> seed_relocation(seed.nodes.size());
    for (std::size_t i = 0; i < seed.nodes.size(); ++i)
        seed_relocation[i] = static_cast<int>(i);

    Status last_invalid = Status::okStatus();
    bool merged_any = false;
    for (std::size_t k = 0; k < patterns.size(); ++k) {
        // The seed datapath is always a usable fallback, so deadline
        // expiry here degrades to "stop growing" rather than failing.
        if (opt.deadline.expired()) {
            skipRemaining(k, patterns.size(), result);
            break;
        }
        if (!patternUsable(patterns[k], k, result, last_invalid))
            continue;
        std::vector<int> mapk;
        const Datapath next = datapathFromPattern(patterns[k], &mapk);
        MergeResult mr =
            mergeDatapaths(result.merged, next, tech, opt);
        noteCliqueOutcome(mr, result);
        merged_any = true;
        result.saved_area += mr.saved_area;

        for (int &id : seed_relocation)
            id = mr.a_to_merged[id];
        for (auto &pm : result.pattern_maps)
            for (int &id : pm)
                if (id >= 0)
                    id = mr.a_to_merged[id];
        for (int &id : mapk)
            if (id >= 0)
                id = mr.b_to_merged[id];
        result.pattern_maps.push_back(std::move(mapk));
        result.merged = std::move(mr.merged);
    }
    if (!patterns.empty() && !merged_any && !result.deadline_expired)
        result.status = Status(ErrorCode::kMergeInfeasible,
                               "every pattern failed validation: " +
                                   last_invalid.toString());
    if (seed_map)
        *seed_map = std::move(seed_relocation);
    return result;
}

} // namespace apex::merging
