#ifndef APEX_MERGING_MERGE_H_
#define APEX_MERGING_MERGE_H_

#include <cstdint>
#include <vector>

#include "core/deadline.hpp"
#include "core/status.hpp"
#include "merging/datapath.hpp"
#include "model/tech.hpp"

/**
 * @file
 * Datapath graph merging (Sec. 3.3, after Moreano et al.).
 *
 * Given two datapaths, enumerate every *merge opportunity*:
 *  - node/node: same resource kind and hardware block class (or two
 *    inputs of the same value type, or two constant registers);
 *  - edge/edge: endpoints mergeable and same destination port (the
 *    port condition keeps non-commutative operand order intact).
 *
 * Opportunities become vertices of a *compatibility graph* weighted by
 * the area each merge saves (block area for node merges, one
 * multiplexer input for edge merges).  Two vertices are compatible
 * when their implied node pairings are mutually injective.  The
 * maximum-weight clique of that graph is the cheapest merge; the
 * merged datapath is reconstructed from it, with multiplexers
 * appearing wherever a port ends up with several sources.
 */

namespace apex::merging {

/** Knobs for the merge. */
struct MergeOptions {
    /** Branch-and-bound node budget for the clique search. */
    std::int64_t clique_budget = 2'000'000;
    /** Area credit for merging two word input ports (models the
     * connection-box saving of one fewer PE input). */
    double input_merge_weight = 20.0;
    /** Same, for 1-bit inputs. */
    double input_merge_weight_bit = 2.0;
    /** Wall-clock bound for the whole merge.  Each clique search runs
     * under it, and a multi-pattern fold stops early (keeping the
     * datapath merged so far) once it expires. */
    Deadline deadline;
};

/** Outcome of merging datapaths A and B. */
struct MergeResult {
    Datapath merged;
    std::vector<int> a_to_merged; ///< A node id -> merged node id.
    std::vector<int> b_to_merged; ///< B node id -> merged node id.
    double saved_area = 0.0;      ///< Clique weight (um^2 saved).
    bool clique_optimal = true;   ///< Clique search ran to optimality.
    bool clique_timed_out = false; ///< Deadline cut the clique search.
};

/** Merge two datapaths with minimal area overhead. */
MergeResult mergeDatapaths(const Datapath &a, const Datapath &b,
                           const model::TechModel &tech,
                           const MergeOptions &options = {});

/** Outcome of folding several patterns into one datapath. */
struct MultiMergeResult {
    Datapath merged;
    /** pattern_maps[i][pattern node id] == merged datapath node id.
     * Skipped (invalid) patterns keep an empty entry so indices stay
     * aligned with the input pattern list. */
    std::vector<std::vector<int>> pattern_maps;
    double saved_area = 0.0;
    /** Indices of patterns rejected by ir::validate and left out of
     * the merged datapath.  A partial merge is still usable; the
     * skips are surfaced so callers can report them. */
    std::vector<int> skipped_patterns;
    /** Clique searches that stopped before optimality (node budget or
     * deadline): the merge is valid but may waste area.  Surfaced so
     * sweeps can flag silently-suboptimal PEs. */
    int non_optimal_cliques = 0;
    /** Of those, searches cut short by the deadline specifically. */
    int clique_timeouts = 0;
    /** The merge deadline expired mid-fold: remaining patterns were
     * recorded in skipped_patterns and the datapath merged so far was
     * kept (graceful degradation, not failure). */
    bool deadline_expired = false;
    /** kMergeInfeasible when nothing could be merged (every pattern
     * invalid, or an injected fault); ok on success, including
     * partial success with some patterns skipped. */
    Status status;
};

/**
 * Fold @p patterns (mined subgraphs, placeholder-input form) into a
 * single merged datapath, left to right.
 */
MultiMergeResult mergePatterns(const std::vector<ir::Graph> &patterns,
                               const model::TechModel &tech,
                               const MergeOptions &options = {});

/**
 * Fold @p patterns into an existing @p seed datapath (e.g. an
 * ALU-style PE), returning the grown datapath; seed_map receives the
 * relocation of the seed's node ids.
 */
MultiMergeResult mergeIntoDatapath(const Datapath &seed,
                                   const std::vector<ir::Graph>
                                       &patterns,
                                   const model::TechModel &tech,
                                   std::vector<int> *seed_map = nullptr,
                                   const MergeOptions &options = {});

} // namespace apex::merging

#endif // APEX_MERGING_MERGE_H_
