#include <algorithm>
#include <cstddef>
#include <vector>

#include "merging/clique.hpp"
#include "merging/clique_detail.hpp"

/**
 * @file
 * Retained reference max-weight-clique solver: the historic
 * vector-of-vector search, kept as the differential-testing oracle
 * for the bitset BBMC rewrite and as the node-count baseline for the
 * kernel benchmarks.
 *
 * The search structure (budget accounting, deadline stride, leaf
 * shortcut, strict-improvement incumbent, branch order) mirrors
 * maxWeightClique() statement for statement; only the data
 * structures (candidate vectors with per-node allocation) and the
 * selectable bound differ.  With CliqueBound::kColoring every path —
 * including budget/deadline truncation — must return byte-identical
 * results to the bitset solver; kWeightSum reproduces the historic
 * weak remaining-weight bound.
 */

namespace apex::merging {

namespace {

struct ReferenceSearch {
    static constexpr std::int64_t kDeadlineStride = 8192;

    const CliqueProblem &pb;
    std::int64_t budget;
    const Deadline &deadline;
    CliqueBound bound_kind;
    std::int64_t nodes = 0;
    std::vector<int> best;
    double best_weight = 0.0;
    bool optimal = true;
    bool timed_out = false;

    ReferenceSearch(const CliqueProblem &p, std::int64_t b,
                    const Deadline &d, CliqueBound kind)
        : pb(p), budget(b), deadline(d), bound_kind(kind) {}

    /** Suffix bounds over @p candidates: either the plain remaining-
     * weight sum or the greedy-colouring bound.  The colouring rule —
     * candidates in list order, smallest non-clashing class, suffix
     * totals accumulated back-to-front — must match BitSearch
     * exactly, including the floating-point evaluation order. */
    std::vector<double>
    suffixBounds(const std::vector<int> &candidates) const
    {
        const std::size_t k = candidates.size();
        std::vector<double> bound(k);
        if (bound_kind == CliqueBound::kWeightSum) {
            double rest = 0.0;
            for (std::size_t i = k; i-- > 0;) {
                rest += pb.weight[candidates[i]];
                bound[i] = rest;
            }
            return bound;
        }
        std::vector<std::vector<int>> classes;
        std::vector<int> colour_of(k);
        for (std::size_t i = 0; i < k; ++i) {
            const int v = candidates[i];
            std::size_t c = 0;
            for (; c < classes.size(); ++c) {
                bool clash = false;
                for (int u : classes[c])
                    if (pb.adj[v][u]) {
                        clash = true;
                        break;
                    }
                if (!clash)
                    break;
            }
            if (c == classes.size())
                classes.emplace_back();
            classes[c].push_back(v);
            colour_of[i] = static_cast<int>(c);
        }
        std::vector<double> colour_max(classes.size(), 0.0);
        double total = 0.0;
        for (std::size_t i = k; i-- > 0;) {
            const int c = colour_of[i];
            const double w = pb.weight[candidates[i]];
            if (w > colour_max[c]) {
                total += w - colour_max[c];
                colour_max[c] = w;
            }
            bound[i] = total;
        }
        return bound;
    }

    void
    expand(std::vector<int> &current, double current_weight,
           std::vector<int> &candidates)
    {
        if (--budget <= 0) {
            optimal = false;
            return;
        }
        if (++nodes % kDeadlineStride == 0 && deadline.expired()) {
            optimal = false;
            timed_out = true;
            budget = 0; // unwind the whole recursion
            return;
        }
        if (candidates.empty()) {
            if (current_weight > best_weight) {
                best_weight = current_weight;
                best = current;
            }
            return;
        }
        const std::vector<double> bound = suffixBounds(candidates);

        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (current_weight + bound[i] <= best_weight)
                return; // bound: the suffix cannot beat the incumbent
            const int v = candidates[i];

            std::vector<int> next;
            next.reserve(candidates.size() - i);
            for (std::size_t j = i + 1; j < candidates.size(); ++j)
                if (pb.adj[v][candidates[j]])
                    next.push_back(candidates[j]);

            current.push_back(v);
            const double w = current_weight + pb.weight[v];
            if (next.empty()) {
                if (w > best_weight) {
                    best_weight = w;
                    best = current;
                }
            } else {
                expand(current, w, next);
            }
            current.pop_back();
            if (budget <= 0)
                return;
        }
    }
};

} // namespace

CliqueResult
maxWeightCliqueReference(const CliqueProblem &pb,
                         std::int64_t node_budget,
                         const Deadline &deadline, CliqueBound bound)
{
    if (pb.n == 0)
        return {};

    CliqueResult seed = detail::greedyClique(pb);
    if (deadline.expired()) {
        seed.optimal = false;
        seed.timed_out = true;
        return seed;
    }

    ReferenceSearch search(pb, node_budget, deadline, bound);
    search.best = seed.vertices;
    search.best_weight = seed.weight;

    std::vector<int> candidates = detail::branchOrder(pb);
    std::vector<int> current;
    search.expand(current, 0.0, candidates);

    CliqueResult result;
    result.vertices = std::move(search.best);
    std::sort(result.vertices.begin(), result.vertices.end());
    result.weight = search.best_weight;
    result.optimal = search.optimal;
    result.timed_out = search.timed_out;
    result.nodes = search.nodes;
    return result;
}

} // namespace apex::merging
