#ifndef APEX_MERGING_CLIQUE_DETAIL_H_
#define APEX_MERGING_CLIQUE_DETAIL_H_

#include <vector>

#include "merging/clique.hpp"

/**
 * @file
 * Internals shared by the bitset clique solver and its retained
 * reference implementation.  Both must branch in the same order and
 * start from the same greedy incumbent or the byte-identical
 * differential contract (tests/kernels_test.cpp) breaks — so the
 * order and the seed live here exactly once.
 */

namespace apex::merging::detail {

/** Branching order: weight descending, index ascending on ties. */
std::vector<int> branchOrder(const CliqueProblem &pb);

/** Greedy clique: repeatedly add the heaviest compatible vertex
 * (in branchOrder); seeds the incumbent and serves as the degraded
 * path when the deadline is already expired. */
CliqueResult greedyClique(const CliqueProblem &pb);

} // namespace apex::merging::detail

#endif // APEX_MERGING_CLIQUE_DETAIL_H_
