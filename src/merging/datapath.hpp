#ifndef APEX_MERGING_DATAPATH_H_
#define APEX_MERGING_DATAPATH_H_

#include <set>
#include <string>
#include <vector>

#include "ir/graph.hpp"
#include "model/hw_block.hpp"
#include "model/tech.hpp"

/**
 * @file
 * PE datapath graphs — the structures that subgraph merging operates
 * on (Sec. 3.3) and from which PE specifications are generated.
 *
 * A Datapath is a graph of hardware resources: external input ports,
 * constant registers, and functional-unit blocks.  Each block has a
 * hardware class (model::HwBlockClass) and the set of ops it must be
 * able to execute (grown by merging).  An input port of a block may
 * have several feasible sources — that is a multiplexer, inserted
 * when merging maps different producers onto the same port.
 */

namespace apex::merging {

/** Kind of datapath node. */
enum class DpNodeKind { kInput, kConst, kBlock };

/** One resource in a PE datapath. */
struct DpNode {
    DpNodeKind kind = DpNodeKind::kBlock;
    /** Block class (kBlock/kConst nodes; kConstReg(Bit) for consts). */
    model::HwBlockClass cls = model::HwBlockClass::kAddSub;
    /** Ops this block must support (kBlock only). */
    std::set<ir::Op> ops;
    /** Result value type of the node. */
    ir::ValueType type = ir::ValueType::kWord;
    /** True when some source subgraph exposes this node as a result. */
    bool is_output = false;
    /** Debug name. */
    std::string name;

    /** @return number of data input ports (kBlock only, else 0). */
    int arity() const;
};

/** One feasible connection src -> (dst, port). */
struct DpEdge {
    int src = -1;
    int dst = -1;
    int port = 0;

    auto operator<=>(const DpEdge &) const = default;
};

/** A PE datapath graph. */
struct Datapath {
    std::vector<DpNode> nodes;
    std::vector<DpEdge> edges;

    /** @return ids of external input nodes (in creation order). */
    std::vector<int> inputIds() const;
    /** @return ids of constant-register nodes. */
    std::vector<int> constIds() const;
    /** @return ids of functional-block nodes. */
    std::vector<int> blockIds() const;
    /** @return ids of nodes flagged as outputs. */
    std::vector<int> outputIds() const;

    /** @return the sources feeding (dst, port), sorted. */
    std::vector<int> sourcesOf(int dst, int port) const;

    /** Add @p e unless an identical edge exists. */
    void addEdgeUnique(const DpEdge &e);

    /** @return true if node/edge indices and ports are in range and
     * every block port has at least one source. */
    bool validate(std::string *error = nullptr) const;

    /** Total functional area of the datapath under @p tech: blocks +
     * constant registers + multiplexer inputs (no config/decode —
     * those are PE-level and added by pe::PeSpec). */
    double functionalArea(const model::TechModel &tech) const;
};

/**
 * Lower a mined pattern (ir::Graph with placeholder inputs) to a
 * datapath: placeholders become input ports, constants become constant
 * registers, compute nodes become single-op blocks.  Sink compute
 * nodes are flagged as outputs.
 *
 * @param pattern      The pattern graph.
 * @param node_map     Optional out: pattern node id -> datapath node id.
 */
Datapath datapathFromPattern(const ir::Graph &pattern,
                             std::vector<int> *node_map = nullptr);

} // namespace apex::merging

#endif // APEX_MERGING_DATAPATH_H_
