#include "mining/miner.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <cstdint>
#include <tuple>

#include "ir/signature.hpp"
#include "mining/isomorphism.hpp"
#include "runtime/telemetry.hpp"

/*
 * The historic pattern-growth miner, kept verbatim as the
 * differential oracle for the DFS-code engine (miner.cpp) — the same
 * playbook as the *_reference.cpp kernels: every candidate extension
 * is materialized, deduplicated via the full ir::canonicalCode B&B
 * search, and its occurrences recomputed from scratch with the
 * isomorphism matcher.  The only deviations from the original are
 * (a) the per-pattern embedding cap reads MinerOptions::max_embeddings
 * instead of a private constant, and (b) the MineStats out-parameter,
 * so benches and the frontier-truncation diagnostic can compare both
 * engines on equal terms.
 */
namespace apex::mining {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::Op;

namespace {

/** Label key for a minable node: op + LUT truth table. */
using Label = std::pair<Op, std::uint64_t>;

Label
labelOf(const Node &n)
{
    return {n.op, n.op == Op::kLut ? n.param : 0};
}

bool
isMinable(const Graph &g, NodeId id, const MinerOptions &opt)
{
    const Op op = g.op(id);
    if (ir::opIsCompute(op))
        return true;
    return opt.mine_constants && op == Op::kConst;
}

/** Append a fresh placeholder of the type expected at (op, port). */
NodeId
addPlaceholder(Graph &g, Op consumer, int port)
{
    const Op in_op =
        ir::opOperandType(consumer, port) == ir::ValueType::kBit
            ? Op::kInputBit
            : Op::kInput;
    return g.addNode(in_op);
}

/** Build the one-core-node pattern for a label. */
Graph
seedPattern(Label label)
{
    Graph g;
    const int arity = ir::opArity(label.first);
    std::vector<NodeId> operands;
    for (int p = 0; p < arity; ++p)
        operands.push_back(addPlaceholder(g, label.first, p));
    g.addNode(label.first, std::move(operands), label.second);
    return g;
}

/** Remove placeholders without consumers; remap everything else. */
Graph
compactPattern(const Graph &g)
{
    std::vector<int> consumers(g.size(), 0);
    for (const ir::Edge &e : g.edges())
        ++consumers[e.src];

    std::vector<NodeId> keep;
    for (NodeId id = 0; id < g.size(); ++id) {
        const bool placeholder =
            g.op(id) == Op::kInput || g.op(id) == Op::kInputBit;
        if (!placeholder || consumers[id] > 0)
            keep.push_back(id);
    }
    return g.inducedSubgraph(keep);
}

/** A candidate one-edge extension of a pattern. */
struct Extension {
    enum Kind { kNewUp, kNewDown, kClose } kind;
    NodeId a;   ///< kNewUp/kClose: consumer node; kNewDown: producer.
    int port;   ///< Consumer input port involved.
    NodeId b;   ///< kClose: producer core node (else unused).
    Op op;      ///< kNew*: label of the added node.
    std::uint64_t param; ///< kNew*: LUT table of the added node.

    auto key() const { return std::tie(kind, a, port, b, op, param); }
    bool operator<(const Extension &o) const { return key() < o.key(); }
};

/** Internal pattern record: public data + raw embeddings. */
struct WorkPattern {
    MinedPattern mined;
    std::vector<Embedding> embeddings;
    std::vector<NodeId> core_ids; ///< Non-placeholder pattern ids.
};

/**
 * Recompute embeddings/occurrences of a materialized pattern.
 * @p code must be the pattern's canonical code; every caller has
 * already computed it for dedup, so recomputing it here would double
 * the miner's hottest cost.
 */
bool
evaluatePattern(const Graph &app, Graph pattern, std::string code,
                const MinerOptions &opt, WorkPattern *out)
{
    WorkPattern wp;
    wp.mined.pattern = std::move(pattern);
    wp.mined.code = std::move(code);
    for (NodeId id = 0; id < wp.mined.pattern.size(); ++id)
        if (!isPlaceholder(wp.mined.pattern, id))
            wp.core_ids.push_back(id);
    wp.mined.core_size = static_cast<int>(wp.core_ids.size());

    wp.embeddings =
        findEmbeddings(wp.mined.pattern, app, opt.max_embeddings);

    std::set<std::vector<NodeId>> occ_sets;
    std::map<NodeId, std::set<NodeId>> image; // core node -> targets
    for (const Embedding &e : wp.embeddings) {
        std::vector<NodeId> s;
        s.reserve(wp.core_ids.size());
        for (NodeId cid : wp.core_ids) {
            s.push_back(e.map[cid]);
            image[cid].insert(e.map[cid]);
        }
        std::sort(s.begin(), s.end());
        occ_sets.insert(std::move(s));
    }
    wp.mined.occurrences.assign(occ_sets.begin(), occ_sets.end());

    // GRAMI minimum-node-image support.
    wp.mined.mni_support =
        wp.embeddings.empty() ? 0 : INT32_MAX;
    for (NodeId cid : wp.core_ids) {
        wp.mined.mni_support =
            std::min(wp.mined.mni_support,
                     static_cast<int>(image[cid].size()));
    }

    wp.mined.frequency =
        opt.metric == SupportMetric::kMni
            ? wp.mined.mni_support
            : static_cast<int>(wp.mined.occurrences.size());

    if (wp.mined.frequency < opt.min_support)
        return false;
    *out = std::move(wp);
    return true;
}

/** Enumerate the extensions of @p wp that occur in @p app. */
std::set<Extension>
collectExtensions(const Graph &app, const WorkPattern &wp,
                  const MinerOptions &opt)
{
    std::set<Extension> result;
    const Graph &pat = wp.mined.pattern;
    const auto app_fanout = app.fanouts();

    for (const Embedding &emb : wp.embeddings) {
        // Reverse map: target node -> core pattern node.
        std::map<NodeId, NodeId> rev;
        for (NodeId cid : wp.core_ids)
            rev[emb.map[cid]] = cid;

        for (NodeId cid : wp.core_ids) {
            const NodeId t = emb.map[cid];
            const Node &pn = pat.node(cid);
            const Node &tn = app.node(t);

            // Upward: free operand ports of cid.
            for (std::size_t p = 0; p < pn.operands.size(); ++p) {
                if (!isPlaceholder(pat, pn.operands[p]))
                    continue;
                const NodeId s = tn.operands[p];
                if (!isMinable(app, s, opt))
                    continue;
                auto it = rev.find(s);
                if (it != rev.end()) {
                    result.insert(Extension{Extension::kClose, cid,
                                            static_cast<int>(p),
                                            it->second, Op::kConst, 0});
                } else {
                    const Label lab = labelOf(app.node(s));
                    result.insert(Extension{Extension::kNewUp, cid,
                                            static_cast<int>(p),
                                            ir::kNoNode, lab.first,
                                            lab.second});
                }
            }

            // Downward: app consumers of t.
            for (const ir::Edge &e : app_fanout[t]) {
                if (!isMinable(app, e.dst, opt))
                    continue;
                auto it = rev.find(e.dst);
                if (it != rev.end()) {
                    // Edge into an existing core node: a closing
                    // extension on that node's port, unless already
                    // part of the pattern.
                    const Node &pdn = pat.node(it->second);
                    if (e.port <
                            static_cast<int>(pdn.operands.size()) &&
                        isPlaceholder(pat, pdn.operands[e.port])) {
                        result.insert(Extension{Extension::kClose,
                                                it->second, e.port,
                                                cid, Op::kConst, 0});
                    }
                } else {
                    const Label lab = labelOf(app.node(e.dst));
                    result.insert(Extension{Extension::kNewDown, cid,
                                            e.port, ir::kNoNode,
                                            lab.first, lab.second});
                }
            }
        }
    }
    return result;
}

/** Apply one extension to a pattern; returns the compacted graph. */
Graph
applyExtension(const Graph &pattern, const Extension &ext)
{
    Graph g = pattern; // copy
    switch (ext.kind) {
      case Extension::kClose:
        g.setOperand(ext.a, ext.port, ext.b);
        break;
      case Extension::kNewUp: {
        const int arity = ir::opArity(ext.op);
        std::vector<NodeId> operands;
        for (int p = 0; p < arity; ++p)
            operands.push_back(addPlaceholder(g, ext.op, p));
        const NodeId n =
            g.addNode(ext.op, std::move(operands), ext.param);
        g.setOperand(ext.a, ext.port, n);
        break;
      }
      case Extension::kNewDown: {
        const int arity = ir::opArity(ext.op);
        std::vector<NodeId> operands;
        for (int p = 0; p < arity; ++p) {
            if (p == ext.port)
                operands.push_back(ext.a);
            else
                operands.push_back(addPlaceholder(g, ext.op, p));
        }
        g.addNode(ext.op, std::move(operands), ext.param);
        break;
      }
    }
    return compactPattern(g);
}

} // namespace

std::vector<MinedPattern>
minePatternsReference(const Graph &app, const MinerOptions &options,
                      MineStats *stats)
{
    APEX_SPAN("mine");
    telemetry::StageTimer timer(
        telemetry::histogram("apex.mine.ms"));
    MineStats local;
    MineStats &st = stats != nullptr ? *stats : local;
    st = MineStats{};
    std::vector<MinedPattern> results;
    std::set<std::string> seen;

    // Level 1: single-node patterns per frequent label.
    std::map<Label, int> label_count;
    for (NodeId id = 0; id < app.size(); ++id)
        if (isMinable(app, id, options))
            ++label_count[labelOf(app.node(id))];

    std::vector<WorkPattern> frontier;
    for (const auto &[label, count] : label_count) {
        if (count < options.min_support)
            continue;
        WorkPattern wp;
        Graph sp = seedPattern(label);
        std::string sp_code = ir::canonicalCode(sp);
        ++st.matcher_calls;
        if (evaluatePattern(app, std::move(sp), std::move(sp_code),
                            options, &wp)) {
            seen.insert(wp.mined.code);
            results.push_back(wp.mined);
            frontier.push_back(std::move(wp));
        }
    }

    // Pattern growth.
    runtime::ThreadPool *pool = options.pool;
    const bool parallel =
        pool != nullptr && pool->parallelism() > 1;
    int level = 1;
    while (!frontier.empty() &&
           level < options.max_pattern_nodes) {
        if (Status s = options.deadline.check(
                "mining level " + std::to_string(level + 1));
            !s.ok()) {
            throw ApexError(std::move(s));
        }
        APEX_SPAN("mine.level", {{"level", level + 1}});
        telemetry::counter("apex.mine.levels").add(1);
        ++st.levels;
        std::vector<WorkPattern> next;

        if (!parallel) {
            // Incremental sequential walk: stops growing as soon as
            // the per-level cap is reached.
            for (const WorkPattern &wp : frontier) {
                for (const Extension &ext :
                     collectExtensions(app, wp, options)) {
                    if (ext.kind != Extension::kClose &&
                        wp.mined.core_size >=
                            options.max_pattern_nodes) {
                        continue;
                    }
                    ++st.candidates;
                    Graph grown =
                        applyExtension(wp.mined.pattern, ext);
                    std::string code = ir::canonicalCode(grown);
                    if (!seen.insert(code).second) {
                        ++st.duplicates;
                        continue;
                    }
                    WorkPattern child;
                    ++st.matcher_calls;
                    if (!evaluatePattern(app, std::move(grown),
                                         std::move(code), options,
                                         &child)) {
                        continue;
                    }
                    results.push_back(child.mined);
                    next.push_back(std::move(child));
                    if (static_cast<int>(next.size()) >=
                        options.max_patterns_per_level) {
                        break;
                    }
                }
                if (static_cast<int>(next.size()) >=
                    options.max_patterns_per_level) {
                    break;
                }
            }
        } else {
            // Speculative parallel expansion with a deterministic
            // sequential merge.  Phase 1 grows and canonicalizes
            // every candidate of every frontier pattern; phase 2
            // picks the unique codes not yet seen (in the merge
            // order below); phase 3 evaluates those concurrently;
            // phase 4 replays the sequential frontier x extension
            // order against `seen` and the per-level cap, so the
            // result list is byte-identical to the sequential walk.
            // Past-the-cap candidates are wasted work, never wrong
            // answers.
            std::vector<std::set<Extension>> ext_sets(
                frontier.size());
            runtime::parallelFor(
                pool, static_cast<int>(frontier.size()),
                [&](int i) {
                    ext_sets[i] = collectExtensions(
                        app, frontier[i], options);
                });

            // Flatten to one work item per candidate: growth and
            // canonicalization are the per-candidate hot spots, so
            // per-frontier-pattern granularity would leave one big
            // pattern's expansion on a single lane.
            struct Seed {
                int owner;
                const Extension *ext;
            };
            std::vector<Seed> seeds;
            for (std::size_t i = 0; i < frontier.size(); ++i) {
                for (const Extension &ext : ext_sets[i]) {
                    if (ext.kind != Extension::kClose &&
                        frontier[i].mined.core_size >=
                            options.max_pattern_nodes) {
                        continue;
                    }
                    seeds.push_back(
                        {static_cast<int>(i), &ext});
                }
            }

            struct Candidate {
                Graph grown;
                std::string code;
            };
            std::vector<Candidate> cands(seeds.size());
            runtime::parallelFor(
                pool, static_cast<int>(seeds.size()), [&](int k) {
                    Graph grown = applyExtension(
                        frontier[seeds[k].owner].mined.pattern,
                        *seeds[k].ext);
                    cands[k].code = ir::canonicalCode(grown);
                    cands[k].grown = std::move(grown);
                });
            st.candidates += static_cast<long long>(cands.size());

            std::map<std::string, std::size_t> pending;
            std::vector<const Candidate *> uniq;
            for (const Candidate &c : cands) {
                if (seen.count(c.code) != 0)
                    continue;
                if (pending.emplace(c.code, uniq.size()).second)
                    uniq.push_back(&c);
            }

            std::vector<WorkPattern> evaluated(uniq.size());
            std::vector<char> kept(uniq.size(), 0);
            runtime::parallelFor(
                pool, static_cast<int>(uniq.size()), [&](int k) {
                    kept[k] = evaluatePattern(app, uniq[k]->grown,
                                              uniq[k]->code,
                                              options,
                                              &evaluated[k])
                                  ? 1
                                  : 0;
                });
            st.matcher_calls += static_cast<long long>(uniq.size());

            for (const Candidate &c : cands) {
                if (!seen.insert(c.code).second) {
                    ++st.duplicates;
                    continue;
                }
                const std::size_t k = pending.find(c.code)->second;
                if (kept[k] == 0)
                    continue;
                results.push_back(evaluated[k].mined);
                next.push_back(std::move(evaluated[k]));
                if (static_cast<int>(next.size()) >=
                    options.max_patterns_per_level) {
                    break;
                }
            }
        }

        if (static_cast<int>(next.size()) >=
            options.max_patterns_per_level) {
            st.capped_levels.push_back(level + 1);
            telemetry::counter("apex.mine.frontier_truncated").add(1);
        }
        frontier = std::move(next);
        ++level;
    }
    st.patterns = static_cast<long long>(results.size());
    telemetry::counter("apex.mine.patterns")
        .add(static_cast<long long>(results.size()));
    return results;
}

} // namespace apex::mining
