#include <algorithm>

#include "mining/isomorphism.hpp"

/**
 * @file
 * Retained reference subgraph-isomorphism search: the historic
 * backtracking matcher whose unconstrained pattern nodes scan the
 * whole target graph, kept verbatim as the differential-testing
 * oracle for the label-indexed matcher in isomorphism.cpp.  It must
 * return byte-identical embedding lists (order included, truncation
 * via `limit` included).
 */

namespace apex::mining {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;

namespace {

/** Matching state shared across the backtracking recursion. */
struct RefMatchState {
    const Graph &pattern;
    const Graph &target;
    std::size_t limit;
    std::vector<Embedding> results;

    std::vector<NodeId> map;        // pattern id -> target id or kNoNode
    std::vector<bool> target_used;  // target ids used by core nodes
    std::vector<NodeId> core_order; // non-placeholder pattern ids
    std::vector<std::vector<Edge>> target_fanout;
    std::vector<std::vector<Edge>> pattern_fanout;

    RefMatchState(const Graph &p, const Graph &t, std::size_t lim)
        : pattern(p), target(t), limit(lim),
          map(p.size(), ir::kNoNode), target_used(t.size(), false),
          target_fanout(t.fanouts()), pattern_fanout(p.fanouts()) {}
};

/** Check every pattern constraint touching @p pid once it is mapped to
 * @p tid; also bind placeholders feeding @p pid. */
bool
consistent(RefMatchState &st, NodeId pid, NodeId tid)
{
    const Node &pn = st.pattern.node(pid);
    const Node &tn = st.target.node(tid);
    if (!labelsMatch(pn, tn))
        return false;
    if (pn.operands.size() != tn.operands.size())
        return false;

    // Operand edges of pid.  Shared placeholders must bind
    // consistently, including two ports of this same node.
    std::vector<std::pair<NodeId, NodeId>> local_binds;
    for (std::size_t p = 0; p < pn.operands.size(); ++p) {
        const NodeId psrc = pn.operands[p];
        const NodeId tsrc = tn.operands[p];
        if (isPlaceholder(st.pattern, psrc)) {
            NodeId expected = st.map[psrc];
            for (const auto &[ph, bound] : local_binds)
                if (ph == psrc)
                    expected = bound;
            if (expected != ir::kNoNode && expected != tsrc)
                return false;
            local_binds.emplace_back(psrc, tsrc);
            continue;
        }
        if (st.map[psrc] != ir::kNoNode && st.map[psrc] != tsrc)
            return false;
    }

    // Fanout edges of pid into already-mapped pattern nodes.
    for (const Edge &e : st.pattern_fanout[pid]) {
        if (isPlaceholder(st.pattern, e.dst))
            continue;
        const NodeId tdst = st.map[e.dst];
        if (tdst == ir::kNoNode)
            continue;
        const Node &tdn = st.target.node(tdst);
        if (e.port >= static_cast<int>(tdn.operands.size()) ||
            tdn.operands[e.port] != tid) {
            return false;
        }
    }
    return true;
}

/** Bind the placeholders feeding @p pid; returns the bindings made so
 * they can be undone on backtrack. */
std::vector<NodeId>
bindPlaceholders(RefMatchState &st, NodeId pid, NodeId tid)
{
    std::vector<NodeId> bound;
    const Node &pn = st.pattern.node(pid);
    const Node &tn = st.target.node(tid);
    for (std::size_t p = 0; p < pn.operands.size(); ++p) {
        const NodeId psrc = pn.operands[p];
        if (isPlaceholder(st.pattern, psrc) &&
            st.map[psrc] == ir::kNoNode) {
            st.map[psrc] = tn.operands[p];
            bound.push_back(psrc);
        }
    }
    return bound;
}

void
recurse(RefMatchState &st, std::size_t depth)
{
    if (st.limit && st.results.size() >= st.limit)
        return;
    if (depth == st.core_order.size()) {
        Embedding e;
        e.map = st.map;
        st.results.push_back(std::move(e));
        return;
    }

    const NodeId pid = st.core_order[depth];

    // Candidate targets: derive from an already-mapped neighbour when
    // possible; otherwise scan all target nodes.
    std::vector<NodeId> candidates;
    bool derived = false;

    const Node &pn = st.pattern.node(pid);
    // Mapped producer constraint: pid consumes a mapped core node.
    for (std::size_t p = 0; p < pn.operands.size() && !derived; ++p) {
        const NodeId psrc = pn.operands[p];
        if (isPlaceholder(st.pattern, psrc) ||
            st.map[psrc] == ir::kNoNode) {
            continue;
        }
        // pid must be a consumer of map(psrc) at port p.
        for (const Edge &e : st.target_fanout[st.map[psrc]])
            if (e.port == static_cast<int>(p))
                candidates.push_back(e.dst);
        derived = true;
    }
    // Mapped consumer constraint: a mapped core node consumes pid.
    if (!derived) {
        for (const Edge &e : st.pattern_fanout[pid]) {
            if (isPlaceholder(st.pattern, e.dst) ||
                st.map[e.dst] == ir::kNoNode) {
                continue;
            }
            const Node &tdn = st.target.node(st.map[e.dst]);
            if (e.port < static_cast<int>(tdn.operands.size()))
                candidates.push_back(tdn.operands[e.port]);
            derived = true;
            break;
        }
    }
    if (!derived) {
        for (NodeId t = 0; t < st.target.size(); ++t)
            candidates.push_back(t);
    }

    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    for (NodeId tid : candidates) {
        if (tid >= st.target.size() || st.target_used[tid])
            continue;
        if (!consistent(st, pid, tid))
            continue;
        st.map[pid] = tid;
        st.target_used[tid] = true;
        std::vector<NodeId> bound = bindPlaceholders(st, pid, tid);
        recurse(st, depth + 1);
        for (NodeId b : bound)
            st.map[b] = ir::kNoNode;
        st.target_used[tid] = false;
        st.map[pid] = ir::kNoNode;
    }
}

} // namespace

std::vector<Embedding>
findEmbeddingsReference(const Graph &pattern, const Graph &target,
                        std::size_t limit)
{
    RefMatchState st(pattern, target, limit);

    // Core nodes in a connectivity-friendly order: topological order of
    // the pattern keeps each node adjacent to a previously ordered one
    // for connected patterns.
    for (NodeId id : pattern.topoOrder())
        if (!isPlaceholder(pattern, id))
            st.core_order.push_back(id);

    if (st.core_order.empty())
        return {};
    recurse(st, 0);
    return std::move(st.results);
}

} // namespace apex::mining
