#ifndef APEX_MINING_MIS_H_
#define APEX_MINING_MIS_H_

#include <vector>

#include "ir/graph.hpp"

/**
 * @file
 * Maximal independent set analysis of pattern occurrences (Sec. 3.2).
 *
 * Each occurrence of a pattern becomes a node of an *overlap graph*;
 * two occurrences are connected when their node sets intersect.  An
 * independent set of that graph is a family of occurrences that can
 * all be accelerated by fully-utilized PEs simultaneously; its size is
 * the paper's ranking signal for pattern interestingness.
 *
 * The solver is exact (branch and bound with a greedy bound) for
 * overlap graphs up to a size threshold and falls back to the
 * min-degree greedy heuristic above it — both return a *maximal*
 * independent set, matching the paper's terminology.
 *
 * Implementation: the overlap graph is built with an inverted index
 * (target node -> occurrence ids; pairwise work is quadratic only
 * within each bucket instead of across all occurrence pairs), greedy
 * seeding keeps a bucket-by-degree structure so each pick is near
 * O(1) instead of an O(n) scan, and the exact branch and bound runs
 * on dense bitset alive-sets with cached live degrees.  All of it is
 * deterministic with ascending-index tie-breaking; the historic
 * implementations are retained as `*Reference` for differential
 * testing (tests/kernels_test.cpp) and must stay byte-identical.
 */

namespace apex::mining {

/** Result of the independent-set computation. */
struct MisResult {
    /** Indices (into the occurrence list) of the chosen occurrences. */
    std::vector<int> chosen;
    /** Size of the set (== chosen.size()). */
    int size = 0;
};

/**
 * Compute a maximal independent set over occurrence overlap.
 *
 * @param occurrences    Sorted node-id sets, one per occurrence.
 * @param exact_limit    Use the exact solver when the occurrence count
 *                       is at most this (default 28).
 */
MisResult
maximalIndependentSet(const std::vector<std::vector<ir::NodeId>>
                          &occurrences,
                      int exact_limit = 28);

/**
 * Build the overlap adjacency used by maximalIndependentSet().
 * adjacency[i] lists the occurrence indices whose node sets intersect
 * occurrence i's, ascending.
 */
std::vector<std::vector<int>>
overlapGraph(const std::vector<std::vector<ir::NodeId>> &occurrences);

/** Historic all-pairs overlap construction (O(n^2) sorted-set
 * intersections), retained as the differential-test oracle. */
std::vector<std::vector<int>>
overlapGraphReference(
    const std::vector<std::vector<ir::NodeId>> &occurrences);

/** Historic solver (O(n) greedy scans, per-recursion degree
 * recomputation), retained as the differential-test oracle.  Must
 * return byte-identical results to maximalIndependentSet(). */
MisResult
maximalIndependentSetReference(
    const std::vector<std::vector<ir::NodeId>> &occurrences,
    int exact_limit = 28);

} // namespace apex::mining

#endif // APEX_MINING_MIS_H_
