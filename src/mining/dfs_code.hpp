#ifndef APEX_MINING_DFS_CODE_H_
#define APEX_MINING_DFS_CODE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/graph.hpp"

/**
 * @file
 * Minimum DFS codes over pattern cores — the miner's cheap canonical
 * identity (Pangolin/gSpan style), replacing the full-graph
 * `ir::canonicalCode` WL-refinement B&B on the per-candidate hot path.
 *
 * A pattern's *core* is its non-placeholder nodes; placeholders are
 * determined by the core (one fresh input per unfilled operand port),
 * so two miner patterns are isomorphic iff their cores are.  A DFS
 * code of a core is the token stream of one depth-first connected
 * expansion: vertices are emitted in discovery order, each with its
 * label and the edges (as (earlier-vertex, direction, port) triples,
 * ascending) that attach it to the already-discovered part.  The
 * stream encodes every vertex label and every edge exactly once, so
 * it reconstructs the core up to isomorphism; the lexicographic
 * minimum over all expansions is therefore a canonical form, and two
 * cores are isomorphic iff their minimum codes are equal.
 *
 * minCode() finds the minimum by branch-and-bound: expansions are
 * explored smallest-token-first and a branch is abandoned the moment
 * its emitted prefix exceeds the incumbent, so for the label-rich
 * cores mining produces the search degenerates to a single
 * O(code-length) walk plus O(1) aborted probes.  isCanonical() is the
 * same search seeded with the candidate code as the incumbent and
 * aborts on the first strictly smaller completion.
 */

namespace apex::mining::dfs {

/** One DFS code: a flat token stream (cheap to compare/hash/order). */
using Code = std::vector<std::uint64_t>;

/** A pattern core lifted out of its Graph: labels + adjacency. */
struct CoreView {
    struct Half {
        int other; ///< Core index of the neighbour.
        int dir;   ///< 0: this vertex consumes `other`; 1: converse.
        int port;  ///< Consumer-side input port of the edge.
    };
    /** Label per core vertex: op + LUT truth table (const values are
     * not identity, mirroring labelsMatch()/canonicalCode()). */
    std::vector<std::pair<ir::Op, std::uint64_t>> labels;
    std::vector<std::vector<Half>> adj; ///< Both half-edges per edge.

    std::size_t size() const { return labels.size(); }
};

/** Extract the core (non-placeholder) view of a miner pattern. */
CoreView coreView(const ir::Graph &pattern);

/** Minimum DFS code of @p core (empty for an empty core). */
Code minCode(const CoreView &core);

/** True iff @p code is @p core's minimum DFS code.  Equivalent to
 * `code == minCode(core)` but aborts on the first smaller expansion
 * found, which is the O(code-length) fast path for rejects. */
bool isCanonical(const CoreView &core, const Code &code);

} // namespace apex::mining::dfs

#endif // APEX_MINING_DFS_CODE_H_
