#include "mining/mis.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "core/bitset.hpp"
#include "runtime/telemetry.hpp"

/*
 * Optimized MIS kernels.  Every function must return byte-identical
 * results to its counterpart in mis_reference.cpp (the differential
 * suite in tests/kernels_test.cpp enforces this): the overlap rows
 * come out ascending, greedy picks the (min live degree, min index)
 * vertex, and the exact search pivots on the (max live degree, min
 * index) vertex with strict-improvement incumbents — all identical
 * decision rules, only the data structures changed.
 */
namespace apex::mining {

std::vector<std::vector<int>>
overlapGraph(const std::vector<std::vector<ir::NodeId>> &occurrences)
{
    const int n = static_cast<int>(occurrences.size());
    std::vector<std::vector<int>> adj(n);

    // Inverted index: (target node, occurrence) incidence pairs.
    // Occurrences sharing no node never meet, so the pairwise work is
    // quadratic only within each node's bucket instead of across all
    // occurrence pairs.
    std::vector<std::pair<ir::NodeId, int>> incidence;
    std::size_t total = 0;
    for (const auto &occ : occurrences)
        total += occ.size();
    incidence.reserve(total);
    for (int i = 0; i < n; ++i)
        for (ir::NodeId node : occurrences[i])
            incidence.emplace_back(node, i);
    std::sort(incidence.begin(), incidence.end());

    std::vector<std::pair<int, int>> edges;
    for (std::size_t lo = 0; lo < incidence.size();) {
        std::size_t hi = lo;
        while (hi < incidence.size() &&
               incidence[hi].first == incidence[lo].first)
            ++hi;
        for (std::size_t a = lo; a < hi; ++a)
            for (std::size_t b = a + 1; b < hi; ++b)
                if (incidence[a].second != incidence[b].second)
                    edges.emplace_back(incidence[a].second,
                                       incidence[b].second);
        lo = hi;
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    // Lexicographic edge order fills every row ascending: (i, r)
    // edges with i < r all precede (r, j) edges, exactly the order
    // the historic all-pairs loop produced.
    for (const auto &[i, j] : edges) {
        adj[i].push_back(j);
        adj[j].push_back(i);
    }
    return adj;
}

namespace {

/**
 * Min-degree greedy with a bucket-by-degree structure: buckets[d] is
 * a lazy min-heap of vertices whose degree was d when pushed.  Each
 * degree decrement pushes a fresh copy, so a live vertex always has a
 * valid entry at its true degree and stale copies are skipped on pop.
 * Each pick is near O(1) amortized instead of an O(n) scan; the
 * picked vertex — (min live degree, min index) — is identical to the
 * reference scan's.
 */
MisResult
greedyMis(const std::vector<std::vector<int>> &adj)
{
    const int n = static_cast<int>(adj.size());
    MisResult result;
    if (n == 0)
        return result;

    std::vector<bool> alive(n, true);
    std::vector<int> degree(n);
    int maxd = 0;
    for (int i = 0; i < n; ++i) {
        degree[i] = static_cast<int>(adj[i].size());
        maxd = std::max(maxd, degree[i]);
    }
    using MinHeap = std::priority_queue<int, std::vector<int>,
                                        std::greater<int>>;
    std::vector<MinHeap> buckets(maxd + 1);
    for (int i = 0; i < n; ++i)
        buckets[degree[i]].push(i);

    int remaining = n;
    int cur = 0;
    while (remaining > 0) {
        int best = -1;
        while (best == -1) {
            if (buckets[cur].empty()) {
                ++cur;
                continue;
            }
            const int top = buckets[cur].top();
            if (!alive[top] || degree[top] != cur) {
                buckets[cur].pop(); // stale copy
                continue;
            }
            best = top;
        }
        result.chosen.push_back(best);
        // Remove best and its neighbourhood.
        std::vector<int> removed = {best};
        for (int nb : adj[best])
            if (alive[nb])
                removed.push_back(nb);
        for (int r : removed) {
            alive[r] = false;
            --remaining;
            for (int nb : adj[r])
                if (alive[nb]) {
                    buckets[--degree[nb]].push(nb);
                    cur = std::min(cur, degree[nb]);
                }
        }
    }
    std::sort(result.chosen.begin(), result.chosen.end());
    result.size = static_cast<int>(result.chosen.size());
    return result;
}

/**
 * Exact maximum independent set on dense bitset alive-sets.  Pivot =
 * (max live degree, min index), include/exclude branching, live-count
 * bound — the reference recursion's decision rules exactly, but the
 * live degrees are cached and updated on remove/restore instead of
 * being recomputed per recursion node, and neighbourhoods are bitset
 * rows instead of adjacency-list walks.
 */
struct ExactMis {
    int n;
    core::BitsetMatrix adj;  ///< Row v = neighbours of v.
    core::DenseBitset alive;
    std::vector<int> degree; ///< Live degree of each live vertex.
    std::vector<int> current;
    std::vector<int> best;
    std::vector<int> removed_stack; ///< Shared DFS removal stack.

    explicit ExactMis(const std::vector<std::vector<int>> &lists)
        : n(static_cast<int>(lists.size())),
          adj(static_cast<std::size_t>(n),
              static_cast<std::size_t>(n)),
          alive(static_cast<std::size_t>(n)), degree(n)
    {
        for (int v = 0; v < n; ++v) {
            for (int u : lists[v])
                adj.set(v, u);
            degree[v] = static_cast<int>(lists[v].size());
            alive.set(v);
        }
    }

    /** Remove the vertices on removed_stack[base..): clear alive bits
     * and decrement surviving neighbours' cached degrees. */
    void
    removeFrom(std::size_t base)
    {
        for (std::size_t k = base; k < removed_stack.size(); ++k) {
            const int r = removed_stack[k];
            alive.reset(r);
            forEachLiveNeighbour(
                r, [&](int nb) { --degree[nb]; });
        }
    }

    /** Exact inverse of removeFrom(): restore in reverse order so
     * every increment mirrors the decrement it undoes. */
    void
    restoreFrom(std::size_t base)
    {
        for (std::size_t k = removed_stack.size(); k-- > base;) {
            const int r = removed_stack[k];
            forEachLiveNeighbour(
                r, [&](int nb) { ++degree[nb]; });
            alive.set(r);
        }
        removed_stack.resize(base);
    }

    template <typename Fn>
    void
    forEachLiveNeighbour(int v, Fn &&fn)
    {
        const std::uint64_t *row = adj.row(v);
        const std::uint64_t *live = alive.data();
        for (std::size_t w = 0; w < alive.words(); ++w) {
            std::uint64_t word = row[w] & live[w];
            while (word) {
                fn(static_cast<int>(w * 64 +
                                    std::countr_zero(word)));
                word &= word - 1;
            }
        }
    }

    void
    recurse(int alive_count)
    {
        if (current.size() + alive_count <= best.size())
            return;
        // Pick the live vertex with the highest cached live degree
        // (ascending scan: first max wins, as in the reference).
        int pivot = -1, pivot_deg = -1;
        alive.forEach([&](int i) {
            if (degree[i] > pivot_deg) {
                pivot = i;
                pivot_deg = degree[i];
            }
        });
        if (pivot == -1) {
            if (current.size() > best.size())
                best = current;
            return;
        }
        if (pivot_deg == 0) {
            // All remaining vertices are isolated: take them all.
            std::vector<int> taken = current;
            alive.forEach([&](int i) { taken.push_back(i); });
            if (taken.size() > best.size())
                best = std::move(taken);
            return;
        }

        // Branch 1: include pivot (removes pivot + neighbourhood).
        {
            const std::size_t base = removed_stack.size();
            removed_stack.push_back(pivot);
            forEachLiveNeighbour(
                pivot, [&](int nb) { removed_stack.push_back(nb); });
            const int n_removed =
                static_cast<int>(removed_stack.size() - base);
            removeFrom(base);
            current.push_back(pivot);
            recurse(alive_count - n_removed);
            current.pop_back();
            restoreFrom(base);
        }
        // Branch 2: exclude pivot.
        {
            const std::size_t base = removed_stack.size();
            removed_stack.push_back(pivot);
            removeFrom(base);
            recurse(alive_count - 1);
            restoreFrom(base);
        }
    }
};

} // namespace

MisResult
maximalIndependentSet(
    const std::vector<std::vector<ir::NodeId>> &occurrences,
    int exact_limit)
{
    const int n = static_cast<int>(occurrences.size());
    if (n == 0)
        return {};
    telemetry::StageTimer timer(
        telemetry::histogram("apex.mis.solve.ms"));

    const auto adj = overlapGraph(occurrences);

    if (n <= exact_limit) {
        ExactMis solver(adj);
        solver.best = greedyMis(adj).chosen; // seed bound
        solver.recurse(n);
        std::sort(solver.best.begin(), solver.best.end());
        MisResult r;
        r.chosen = std::move(solver.best);
        r.size = static_cast<int>(r.chosen.size());
        return r;
    }
    return greedyMis(adj);
}

} // namespace apex::mining
