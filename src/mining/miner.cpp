#include "mining/miner.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <cstdint>
#include <tuple>

#include "ir/signature.hpp"
#include "mining/dfs_code.hpp"
#include "mining/isomorphism.hpp"
#include "mining/mis.hpp"
#include "runtime/telemetry.hpp"

/*
 * The DFS-code mining engine (Pangolin-style; see DESIGN.md Sec. 7j).
 *
 * It walks the exact same level-synchronous frontier x extension
 * order as the reference engine (miner_reference.cpp) — same seed
 * order, same std::set<Extension> enumeration, same per-level cap and
 * first-discovery representatives — so its output is byte-identical,
 * but the two per-candidate hot spots are replaced:
 *
 *  - identity: the minimum DFS code of the candidate's core
 *    (mining/dfs_code.hpp) instead of the full-graph
 *    ir::canonicalCode WL + permutation B&B.  ir::canonicalCode is
 *    computed once per *kept* pattern only, where the public
 *    MinedPattern::code contract needs it.
 *  - support: the parent's materialized embedding list is extended
 *    across the one added edge (a filter for kClose, one operand
 *    lookup for kNewUp, a fanout scan for kNewDown) instead of
 *    re-running the isomorphism matcher per candidate.  The matcher
 *    only runs when a list overflows MinerOptions::max_embeddings —
 *    then the candidate (and its descendants) re-match with the same
 *    truncation the reference engine uses, so the overflowed regime
 *    stays byte-identical too.
 *
 * Parallelism is the reference engine's speculative-expansion +
 * sequential-replay scheme, applied to every phase with chunked index
 * claiming; each parallel iteration writes only its own slot, so the
 * mined list is byte-identical at any job count.
 */
namespace apex::mining {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::Op;

namespace {

/** Per-candidate growth work is fine-grained; claiming indices in
 * chunks keeps the atomic counter off the profile. */
constexpr int kGrowthChunk = 16;

/** Label key for a minable node: op + LUT truth table. */
using Label = std::pair<Op, std::uint64_t>;

Label
labelOf(const Node &n)
{
    return {n.op, n.op == Op::kLut ? n.param : 0};
}

bool
isMinable(const Graph &g, NodeId id, const MinerOptions &opt)
{
    const Op op = g.op(id);
    if (ir::opIsCompute(op))
        return true;
    return opt.mine_constants && op == Op::kConst;
}

/** Append a fresh placeholder of the type expected at (op, port). */
NodeId
addPlaceholder(Graph &g, Op consumer, int port)
{
    const Op in_op =
        ir::opOperandType(consumer, port) == ir::ValueType::kBit
            ? Op::kInputBit
            : Op::kInput;
    return g.addNode(in_op);
}

/** Build the one-core-node pattern for a label. */
Graph
seedPattern(Label label)
{
    Graph g;
    const int arity = ir::opArity(label.first);
    std::vector<NodeId> operands;
    for (int p = 0; p < arity; ++p)
        operands.push_back(addPlaceholder(g, label.first, p));
    g.addNode(label.first, std::move(operands), label.second);
    return g;
}

/** A candidate one-edge extension of a pattern. */
struct Extension {
    enum Kind { kNewUp, kNewDown, kClose } kind;
    NodeId a;   ///< kNewUp/kClose: consumer node; kNewDown: producer.
    int port;   ///< Consumer input port involved.
    NodeId b;   ///< kClose: producer core node (else unused).
    Op op;      ///< kNew*: label of the added node.
    std::uint64_t param; ///< kNew*: LUT table of the added node.

    auto key() const { return std::tie(kind, a, port, b, op, param); }
    bool operator<(const Extension &o) const { return key() < o.key(); }
};

/** Internal pattern record: public data + the embedding list. */
struct WorkPattern {
    MinedPattern mined;
    std::vector<Embedding> embeddings;
    std::vector<NodeId> core_ids; ///< Non-placeholder pattern ids.
    /** False when the list was truncated at max_embeddings: support
     * then mirrors the reference engine's truncated matcher list, and
     * children must re-match instead of extending it. */
    bool embeddings_complete = true;
};

/** Fill occurrences / MNI / frequency from the embedding list. */
void
computeSupport(const MinerOptions &opt, WorkPattern *wp)
{
    std::set<std::vector<NodeId>> occ_sets;
    std::map<NodeId, std::set<NodeId>> image; // core node -> targets
    for (const Embedding &e : wp->embeddings) {
        std::vector<NodeId> s;
        s.reserve(wp->core_ids.size());
        for (NodeId cid : wp->core_ids) {
            s.push_back(e.map[cid]);
            image[cid].insert(e.map[cid]);
        }
        std::sort(s.begin(), s.end());
        occ_sets.insert(std::move(s));
    }
    wp->mined.occurrences.assign(occ_sets.begin(), occ_sets.end());

    // GRAMI minimum-node-image support.
    wp->mined.mni_support =
        wp->embeddings.empty() ? 0 : INT32_MAX;
    for (NodeId cid : wp->core_ids) {
        wp->mined.mni_support =
            std::min(wp->mined.mni_support,
                     static_cast<int>(image[cid].size()));
    }

    wp->mined.frequency =
        opt.metric == SupportMetric::kMni
            ? wp->mined.mni_support
            : static_cast<int>(wp->mined.occurrences.size());
}

/** Enumerate the extensions of @p wp that occur in @p app. */
std::set<Extension>
collectExtensions(const Graph &app,
                  const std::vector<std::vector<ir::Edge>> &app_fanout,
                  const WorkPattern &wp, const MinerOptions &opt)
{
    std::set<Extension> result;
    const Graph &pat = wp.mined.pattern;

    for (const Embedding &emb : wp.embeddings) {
        // Reverse map: target node -> core pattern node.
        std::map<NodeId, NodeId> rev;
        for (NodeId cid : wp.core_ids)
            rev[emb.map[cid]] = cid;

        for (NodeId cid : wp.core_ids) {
            const NodeId t = emb.map[cid];
            const Node &pn = pat.node(cid);
            const Node &tn = app.node(t);

            // Upward: free operand ports of cid.
            for (std::size_t p = 0; p < pn.operands.size(); ++p) {
                if (!isPlaceholder(pat, pn.operands[p]))
                    continue;
                const NodeId s = tn.operands[p];
                if (!isMinable(app, s, opt))
                    continue;
                auto it = rev.find(s);
                if (it != rev.end()) {
                    result.insert(Extension{Extension::kClose, cid,
                                            static_cast<int>(p),
                                            it->second, Op::kConst, 0});
                } else {
                    const Label lab = labelOf(app.node(s));
                    result.insert(Extension{Extension::kNewUp, cid,
                                            static_cast<int>(p),
                                            ir::kNoNode, lab.first,
                                            lab.second});
                }
            }

            // Downward: app consumers of t.
            for (const ir::Edge &e : app_fanout[t]) {
                if (!isMinable(app, e.dst, opt))
                    continue;
                auto it = rev.find(e.dst);
                if (it != rev.end()) {
                    // Edge into an existing core node: a closing
                    // extension on that node's port, unless already
                    // part of the pattern.
                    const Node &pdn = pat.node(it->second);
                    if (e.port <
                            static_cast<int>(pdn.operands.size()) &&
                        isPlaceholder(pat, pdn.operands[e.port])) {
                        result.insert(Extension{Extension::kClose,
                                                it->second, e.port,
                                                cid, Op::kConst, 0});
                    }
                } else {
                    const Label lab = labelOf(app.node(e.dst));
                    result.insert(Extension{Extension::kNewDown, cid,
                                            e.port, ir::kNoNode,
                                            lab.first, lab.second});
                }
            }
        }
    }
    return result;
}

/** One grown candidate with the id bookkeeping embedding extension
 * needs: pre-compaction ids are the parent's ids plus the appended
 * node/placeholders; `remap` carries them into the compacted child. */
struct Grown {
    Graph graph;                    ///< Compacted child pattern.
    std::map<NodeId, NodeId> remap; ///< Kept pre-compact id -> child.
    NodeId added = ir::kNoNode;     ///< Pre-compact id of the new core
                                    ///< node (kNew* only).
    /** The new node's placeholder operands: (pre-compact id, port). */
    std::vector<std::pair<NodeId, int>> added_placeholders;
};

/** Apply one extension; same growth + compaction as the reference
 * engine's applyExtension, with the id remapping captured. */
Grown
applyExtensionMapped(const Graph &pattern, const Extension &ext)
{
    Grown out;
    Graph g = pattern; // copy
    switch (ext.kind) {
      case Extension::kClose:
        g.setOperand(ext.a, ext.port, ext.b);
        break;
      case Extension::kNewUp: {
        const int arity = ir::opArity(ext.op);
        std::vector<NodeId> operands;
        for (int p = 0; p < arity; ++p) {
            const NodeId ph = addPlaceholder(g, ext.op, p);
            out.added_placeholders.emplace_back(ph, p);
            operands.push_back(ph);
        }
        out.added = g.addNode(ext.op, std::move(operands), ext.param);
        g.setOperand(ext.a, ext.port, out.added);
        break;
      }
      case Extension::kNewDown: {
        const int arity = ir::opArity(ext.op);
        std::vector<NodeId> operands;
        for (int p = 0; p < arity; ++p) {
            if (p == ext.port) {
                operands.push_back(ext.a);
            } else {
                const NodeId ph = addPlaceholder(g, ext.op, p);
                out.added_placeholders.emplace_back(ph, p);
                operands.push_back(ph);
            }
        }
        out.added = g.addNode(ext.op, std::move(operands), ext.param);
        break;
      }
    }

    // Compact: drop placeholders whose consumer edge was rebound away
    // (identical keep rule to the reference's compactPattern).
    std::vector<int> consumers(g.size(), 0);
    for (const ir::Edge &e : g.edges())
        ++consumers[e.src];
    std::vector<NodeId> keep;
    for (NodeId id = 0; id < g.size(); ++id) {
        const bool placeholder =
            g.op(id) == Op::kInput || g.op(id) == Op::kInputBit;
        if (!placeholder || consumers[id] > 0)
            keep.push_back(id);
    }
    out.graph = g.inducedSubgraph(keep, &out.remap);
    return out;
}

/**
 * Extend @p parent's embedding list across @p ext into the child's.
 *
 * Each child embedding restricts to a valid parent embedding (drop
 * the added node/placeholders; the freed port's placeholder binding
 * is the dropped node's image), and that restriction is injective, so
 * iterating the parent's complete list and checking the one added
 * edge enumerates every child embedding exactly once:
 *
 *  - kClose: keep parent embeddings whose image realizes the closed
 *    edge (the consumer's target operand equals the producer's image);
 *  - kNewUp: the consumer's freed target operand is the only possible
 *    image of the added producer — at most one child per parent;
 *  - kNewDown: every target fanout of the producer's image on the
 *    right port yields a child.
 *
 * kNew* images must carry the extension's label and be distinct from
 * the parent core's image (the matcher's core injectivity).
 *
 * @return false when the child list would exceed @p limit; @p out is
 * then meaningless and the caller falls back to the matcher.
 */
bool
extendEmbeddings(const Graph &app,
                 const std::vector<std::vector<ir::Edge>> &app_fanout,
                 const WorkPattern &parent, const Extension &ext,
                 const Grown &grown, std::size_t limit,
                 std::vector<Embedding> *out)
{
    const std::size_t parent_size = parent.mined.pattern.size();
    const std::size_t child_size = grown.graph.size();

    // Split the remap once: kept parent ids vs the added structure.
    std::vector<std::pair<NodeId, NodeId>> kept_parent; // old -> child
    for (const auto &[old_id, child_id] : grown.remap)
        if (old_id < parent_size)
            kept_parent.emplace_back(old_id, child_id);
    NodeId added_child = ir::kNoNode;
    std::vector<std::pair<NodeId, int>> ph_child; // child id, port
    if (ext.kind != Extension::kClose) {
        added_child = grown.remap.at(grown.added);
        for (const auto &[ph, port] : grown.added_placeholders)
            ph_child.emplace_back(grown.remap.at(ph), port);
    }

    const auto matchesLabel = [&ext](const Node &n) {
        if (n.op != ext.op)
            return false;
        return ext.op != Op::kLut || n.param == ext.param;
    };

    out->clear();
    for (const Embedding &e : parent.embeddings) {
        const NodeId ta = e.map[ext.a];
        const auto emit = [&](NodeId image) {
            if (out->size() >= limit)
                return false;
            Embedding ce;
            ce.map.assign(child_size, ir::kNoNode);
            for (const auto &[old_id, child_id] : kept_parent)
                ce.map[child_id] = e.map[old_id];
            if (ext.kind != Extension::kClose) {
                ce.map[added_child] = image;
                const Node &in = app.node(image);
                for (const auto &[child_id, port] : ph_child)
                    ce.map[child_id] = in.operands[port];
            }
            out->push_back(std::move(ce));
            return true;
        };
        const auto usedByCore = [&](NodeId image) {
            for (NodeId cid : parent.core_ids)
                if (e.map[cid] == image)
                    return true;
            return false;
        };

        switch (ext.kind) {
          case Extension::kClose:
            if (app.node(ta).operands[ext.port] == e.map[ext.b])
                if (!emit(ir::kNoNode))
                    return false;
            break;
          case Extension::kNewUp: {
            const NodeId s = app.node(ta).operands[ext.port];
            if (matchesLabel(app.node(s)) && !usedByCore(s))
                if (!emit(s))
                    return false;
            break;
          }
          case Extension::kNewDown:
            for (const ir::Edge &fe : app_fanout[ta]) {
                if (fe.port != ext.port)
                    continue;
                if (matchesLabel(app.node(fe.dst)) &&
                    !usedByCore(fe.dst))
                    if (!emit(fe.dst))
                        return false;
            }
            break;
        }
    }
    return true;
}

} // namespace

std::vector<MinedPattern>
FrequentSubgraphMiner::mine(const Graph &app, MineStats *stats) const
{
    if (options_.engine == MinerEngine::kReference)
        return minePatternsReference(app, options_, stats);

    APEX_SPAN("mine");
    telemetry::StageTimer timer(
        telemetry::histogram("apex.mine.ms"));
    MineStats local;
    MineStats &st = stats != nullptr ? *stats : local;
    st = MineStats{};
    std::vector<MinedPattern> results;
    std::set<dfs::Code> seen;
    runtime::ThreadPool *pool = options_.pool;
    const auto app_fanout = app.fanouts();

    // Level 1: single-node patterns per frequent label.  The per-label
    // embedding list is the label's node bucket itself (ascending ids
    // — the matcher's bucket order), so no matching runs here either.
    std::map<Label, std::vector<NodeId>> buckets;
    for (NodeId id = 0; id < app.size(); ++id)
        if (isMinable(app, id, options_))
            buckets[labelOf(app.node(id))].push_back(id);

    std::vector<WorkPattern> frontier;
    for (const auto &[label, nodes] : buckets) {
        if (static_cast<int>(nodes.size()) < options_.min_support)
            continue;
        WorkPattern wp;
        wp.mined.pattern = seedPattern(label);
        wp.mined.code = ir::canonicalCode(wp.mined.pattern);
        const NodeId core = static_cast<NodeId>(
            wp.mined.pattern.size() - 1);
        wp.core_ids.push_back(core);
        wp.mined.core_size = 1;
        const std::size_t take =
            std::min(nodes.size(), options_.max_embeddings);
        wp.embeddings_complete = nodes.size() <= options_.max_embeddings;
        wp.embeddings.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            Embedding e;
            e.map.assign(wp.mined.pattern.size(), ir::kNoNode);
            const Node &tn = app.node(nodes[i]);
            for (std::size_t p = 0; p < tn.operands.size(); ++p)
                e.map[p] = tn.operands[p];
            e.map[core] = nodes[i];
            wp.embeddings.push_back(std::move(e));
        }
        computeSupport(options_, &wp);
        if (wp.mined.frequency < options_.min_support)
            continue;
        seen.insert(dfs::minCode(dfs::coreView(wp.mined.pattern)));
        results.push_back(wp.mined);
        frontier.push_back(std::move(wp));
    }

    // Pattern growth: one speculative parallel expansion + sequential
    // replay per level (parallelFor degrades to the same loop inline
    // when no pool is wired, so there is exactly one code path).
    int level = 1;
    while (!frontier.empty() &&
           level < options_.max_pattern_nodes) {
        if (Status s = options_.deadline.check(
                "mining level " + std::to_string(level + 1));
            !s.ok()) {
            throw ApexError(std::move(s));
        }
        APEX_SPAN("mine.level", {{"level", level + 1}});
        telemetry::counter("apex.mine.levels").add(1);
        ++st.levels;

        // Phase 1: per-frontier-pattern extension sets.
        std::vector<std::set<Extension>> ext_sets(frontier.size());
        runtime::parallelFor(
            pool, static_cast<int>(frontier.size()), [&](int i) {
                ext_sets[i] = collectExtensions(
                    app, app_fanout, frontier[i], options_);
            });

        // Phase 2: flatten to one work item per candidate, in the
        // frontier x extension replay order.
        struct Seed {
            int owner;
            const Extension *ext;
        };
        std::vector<Seed> seeds;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            for (const Extension &ext : ext_sets[i]) {
                if (ext.kind != Extension::kClose &&
                    frontier[i].mined.core_size >=
                        options_.max_pattern_nodes) {
                    continue;
                }
                seeds.push_back({static_cast<int>(i), &ext});
            }
        }
        st.candidates += static_cast<long long>(seeds.size());

        // Phase 3: grow every candidate and compute its minimum DFS
        // code — the cheap canonical identity.
        struct Candidate {
            Grown grown;
            dfs::Code key;
        };
        std::vector<Candidate> cands(seeds.size());
        runtime::parallelForChunked(
            pool, static_cast<int>(seeds.size()), kGrowthChunk,
            [&](int k) {
                cands[k].grown = applyExtensionMapped(
                    frontier[seeds[k].owner].mined.pattern,
                    *seeds[k].ext);
                cands[k].key =
                    dfs::minCode(dfs::coreView(cands[k].grown.graph));
            });

        // Phase 4: pick the unique unseen codes, in replay order.
        std::map<dfs::Code, std::size_t> pending;
        std::vector<std::size_t> uniq;
        for (std::size_t k = 0; k < cands.size(); ++k) {
            if (seen.count(cands[k].key) != 0)
                continue;
            if (pending.emplace(cands[k].key, uniq.size()).second)
                uniq.push_back(k);
        }

        // Phase 5: evaluate the uniques — extend the parent's
        // embedding list (or re-match on overflow), compute support,
        // and canonicalize only the keepers.
        std::vector<WorkPattern> evaluated(uniq.size());
        std::vector<char> kept(uniq.size(), 0);
        std::vector<long long> extended(uniq.size(), 0);
        std::vector<char> rematched(uniq.size(), 0);
        runtime::parallelForChunked(
            pool, static_cast<int>(uniq.size()), kGrowthChunk,
            [&](int u) {
                const std::size_t k = uniq[u];
                const WorkPattern &parent =
                    frontier[seeds[k].owner];
                WorkPattern child;
                const bool from_list =
                    parent.embeddings_complete &&
                    extendEmbeddings(app, app_fanout, parent,
                                     *seeds[k].ext, cands[k].grown,
                                     options_.max_embeddings,
                                     &child.embeddings);
                child.mined.pattern =
                    std::move(cands[k].grown.graph);
                if (from_list) {
                    child.embeddings_complete = true;
                    extended[u] = static_cast<long long>(
                        child.embeddings.size());
                } else {
                    child.embeddings = findEmbeddings(
                        child.mined.pattern, app,
                        options_.max_embeddings);
                    child.embeddings_complete =
                        child.embeddings.size() <
                        options_.max_embeddings;
                    rematched[u] = 1;
                }
                for (NodeId id = 0;
                     id < child.mined.pattern.size(); ++id)
                    if (!isPlaceholder(child.mined.pattern, id))
                        child.core_ids.push_back(id);
                child.mined.core_size =
                    static_cast<int>(child.core_ids.size());
                computeSupport(options_, &child);
                if (child.mined.frequency < options_.min_support)
                    return;
                child.mined.code =
                    ir::canonicalCode(child.mined.pattern);
                kept[u] = 1;
                evaluated[u] = std::move(child);
            });
        for (std::size_t u = 0; u < uniq.size(); ++u) {
            st.embeddings += extended[u];
            st.matcher_calls += rematched[u];
        }

        // Phase 6: sequential replay against `seen` and the per-level
        // cap — byte-identical to the reference engine's merge.
        std::vector<WorkPattern> next;
        for (std::size_t k = 0; k < cands.size(); ++k) {
            if (!seen.insert(cands[k].key).second) {
                ++st.duplicates;
                continue;
            }
            const std::size_t u =
                pending.find(cands[k].key)->second;
            if (kept[u] == 0)
                continue;
            results.push_back(evaluated[u].mined);
            next.push_back(std::move(evaluated[u]));
            if (static_cast<int>(next.size()) >=
                options_.max_patterns_per_level) {
                break;
            }
        }

        if (static_cast<int>(next.size()) >=
            options_.max_patterns_per_level) {
            st.capped_levels.push_back(level + 1);
            telemetry::counter("apex.mine.frontier_truncated").add(1);
        }
        frontier = std::move(next);
        ++level;
    }
    st.patterns = static_cast<long long>(results.size());
    telemetry::counter("apex.mine.patterns")
        .add(static_cast<long long>(results.size()));
    telemetry::counter("apex.mine.embeddings").add(st.embeddings);
    telemetry::counter("apex.mine.pruned_noncanonical")
        .add(st.duplicates);
    telemetry::counter("apex.mine.matcher_fallbacks")
        .add(st.matcher_calls);
    return results;
}

void
rankPatterns(std::vector<MinedPattern> &patterns)
{
    APEX_SPAN("mis.rank",
              {{"patterns", static_cast<long long>(patterns.size())}});
    telemetry::StageTimer timer(
        telemetry::histogram("apex.mis.ms"));
    // Drop patterns that contain no real compute (constants only).
    std::erase_if(patterns, [](const MinedPattern &p) {
        for (NodeId id = 0; id < p.pattern.size(); ++id)
            if (ir::opIsCompute(p.pattern.op(id)))
                return false;
        return true;
    });

    for (MinedPattern &p : patterns)
        p.mis_size = maximalIndependentSet(p.occurrences).size;

    std::sort(patterns.begin(), patterns.end(),
              [](const MinedPattern &a, const MinedPattern &b) {
                  if (a.mis_size != b.mis_size)
                      return a.mis_size > b.mis_size;
                  if (a.core_size != b.core_size)
                      return a.core_size > b.core_size;
                  return a.code < b.code;
              });
}

} // namespace apex::mining
