#include <algorithm>

#include "mining/mis.hpp"

/**
 * @file
 * Retained reference MIS implementations: the historic all-pairs
 * overlap construction, O(n)-scan greedy and degree-recomputing exact
 * branch and bound, kept verbatim as the differential-testing oracle
 * for the indexed/bitset rewrite in mis.cpp.  Every function here
 * must return byte-identical results to its optimized counterpart.
 */

namespace apex::mining {

std::vector<std::vector<int>>
overlapGraphReference(
    const std::vector<std::vector<ir::NodeId>> &occurrences)
{
    const int n = static_cast<int>(occurrences.size());
    std::vector<std::vector<int>> adj(n);

    auto intersects = [](const std::vector<ir::NodeId> &a,
                         const std::vector<ir::NodeId> &b) {
        std::size_t i = 0, j = 0;
        while (i < a.size() && j < b.size()) {
            if (a[i] == b[j])
                return true;
            if (a[i] < b[j])
                ++i;
            else
                ++j;
        }
        return false;
    };

    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (intersects(occurrences[i], occurrences[j])) {
                adj[i].push_back(j);
                adj[j].push_back(i);
            }
    return adj;
}

namespace {

/** Min-degree greedy: repeatedly take the vertex with fewest live
 * neighbours, remove it and its neighbourhood. */
MisResult
greedyMisReference(const std::vector<std::vector<int>> &adj)
{
    const int n = static_cast<int>(adj.size());
    std::vector<bool> alive(n, true);
    std::vector<int> degree(n, 0);
    for (int i = 0; i < n; ++i)
        degree[i] = static_cast<int>(adj[i].size());

    MisResult result;
    int remaining = n;
    while (remaining > 0) {
        int best = -1;
        for (int i = 0; i < n; ++i)
            if (alive[i] && (best == -1 || degree[i] < degree[best]))
                best = i;
        result.chosen.push_back(best);
        // Remove best and its neighbourhood.
        std::vector<int> removed = {best};
        for (int nb : adj[best])
            if (alive[nb])
                removed.push_back(nb);
        for (int r : removed) {
            alive[r] = false;
            --remaining;
            for (int nb : adj[r])
                if (alive[nb])
                    --degree[nb];
        }
    }
    std::sort(result.chosen.begin(), result.chosen.end());
    result.size = static_cast<int>(result.chosen.size());
    return result;
}

/** Exact maximum independent set by branch and bound on the highest-
 * degree vertex (include/exclude), with the live-vertex count bound. */
void
exactMisReference(const std::vector<std::vector<int>> &adj,
                  std::vector<bool> &alive, int alive_count,
                  std::vector<int> &current, std::vector<int> &best)
{
    if (current.size() + alive_count <= best.size())
        return;
    // Pick the live vertex with the highest live degree.
    const int n = static_cast<int>(adj.size());
    int pivot = -1, pivot_deg = -1;
    for (int i = 0; i < n; ++i) {
        if (!alive[i])
            continue;
        int d = 0;
        for (int nb : adj[i])
            if (alive[nb])
                ++d;
        if (d > pivot_deg) {
            pivot = i;
            pivot_deg = d;
        }
    }
    if (pivot == -1) {
        if (current.size() > best.size())
            best = current;
        return;
    }
    if (pivot_deg == 0) {
        // All remaining vertices are isolated: take them all.
        std::vector<int> taken = current;
        for (int i = 0; i < n; ++i)
            if (alive[i])
                taken.push_back(i);
        if (taken.size() > best.size())
            best = std::move(taken);
        return;
    }

    // Branch 1: include pivot (removes pivot + neighbourhood).
    {
        std::vector<int> removed = {pivot};
        for (int nb : adj[pivot])
            if (alive[nb])
                removed.push_back(nb);
        for (int r : removed)
            alive[r] = false;
        current.push_back(pivot);
        exactMisReference(adj, alive,
                          alive_count -
                              static_cast<int>(removed.size()),
                          current, best);
        current.pop_back();
        for (int r : removed)
            alive[r] = true;
    }
    // Branch 2: exclude pivot.
    {
        alive[pivot] = false;
        exactMisReference(adj, alive, alive_count - 1, current, best);
        alive[pivot] = true;
    }
}

} // namespace

MisResult
maximalIndependentSetReference(
    const std::vector<std::vector<ir::NodeId>> &occurrences,
    int exact_limit)
{
    const int n = static_cast<int>(occurrences.size());
    if (n == 0)
        return {};

    const auto adj = overlapGraphReference(occurrences);

    if (n <= exact_limit) {
        std::vector<bool> alive(n, true);
        std::vector<int> current;
        std::vector<int> best =
            greedyMisReference(adj).chosen; // seed bound
        exactMisReference(adj, alive, n, current, best);
        std::sort(best.begin(), best.end());
        MisResult r;
        r.chosen = std::move(best);
        r.size = static_cast<int>(r.chosen.size());
        return r;
    }
    return greedyMisReference(adj);
}

} // namespace apex::mining
