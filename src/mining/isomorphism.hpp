#ifndef APEX_MINING_ISOMORPHISM_H_
#define APEX_MINING_ISOMORPHISM_H_

#include <cstddef>
#include <vector>

#include "ir/graph.hpp"

/**
 * @file
 * Subgraph isomorphism for dataflow patterns.
 *
 * A *pattern* is a small Graph whose kInput/kInputBit nodes are free
 * placeholders; all other nodes are labeled ops that must match target
 * nodes exactly (same op; kLut additionally matches its truth table;
 * kConst matches any constant).  Edges must match including the
 * destination port, so operand order of non-commutative ops is
 * preserved (Sec. 3.3 of the paper).
 *
 * An *embedding* maps every non-placeholder pattern node to a distinct
 * target node such that for every pattern edge u ->(p) v between
 * non-placeholder nodes, the target has map(u) ->(p) map(v).
 * Placeholder operands are unconstrained.
 */

namespace apex::mining {

/** One embedding: pattern node id -> target node id (placeholders map
 * to the target node that feeds the corresponding port). */
struct Embedding {
    std::vector<ir::NodeId> map; ///< Indexed by pattern node id.
};

/**
 * Find embeddings of @p pattern in @p target (VF2-style backtracking).
 *
 * @param pattern  Pattern graph with placeholder inputs.
 * @param target   Target graph.
 * @param limit    Stop after this many embeddings (0 = unlimited).
 * @return all embeddings found (up to @p limit).
 */
std::vector<Embedding> findEmbeddings(const ir::Graph &pattern,
                                      const ir::Graph &target,
                                      std::size_t limit = 0);

/** @return true when at least one embedding exists. */
bool hasEmbedding(const ir::Graph &pattern, const ir::Graph &target);

/**
 * Retained reference matcher: the historic backtracking search whose
 * unconstrained pattern nodes scan the whole target graph.  Kept as
 * the differential-testing oracle for the label-indexed matcher —
 * findEmbeddings() must return a byte-identical embedding list
 * (order and `limit` truncation included).
 */
std::vector<Embedding>
findEmbeddingsReference(const ir::Graph &pattern,
                        const ir::Graph &target,
                        std::size_t limit = 0);

/**
 * @return true when pattern node @p id is a free placeholder
 * (kInput / kInputBit).
 */
bool isPlaceholder(const ir::Graph &pattern, ir::NodeId id);

/**
 * @return true when a pattern node labeled @p pattern_node can match
 * target node @p target_node (op equality with the const/LUT rules).
 */
bool labelsMatch(const ir::Node &pattern_node,
                 const ir::Node &target_node);

} // namespace apex::mining

#endif // APEX_MINING_ISOMORPHISM_H_
