#include "mining/dfs_code.hpp"

#include <algorithm>

#include "mining/isomorphism.hpp"

namespace apex::mining::dfs {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::Op;

CoreView
coreView(const Graph &pattern)
{
    CoreView view;
    std::vector<int> core_index(pattern.size(), -1);
    for (NodeId id = 0; id < pattern.size(); ++id) {
        if (isPlaceholder(pattern, id))
            continue;
        core_index[id] = static_cast<int>(view.labels.size());
        const Node &n = pattern.node(id);
        view.labels.emplace_back(
            n.op, n.op == Op::kLut ? n.param : 0);
    }
    view.adj.resize(view.labels.size());
    for (NodeId id = 0; id < pattern.size(); ++id) {
        const int consumer = core_index[id];
        if (consumer < 0)
            continue;
        const Node &n = pattern.node(id);
        for (std::size_t p = 0; p < n.operands.size(); ++p) {
            const int producer = core_index[n.operands[p]];
            if (producer < 0)
                continue;
            view.adj[consumer].push_back(
                {producer, 0, static_cast<int>(p)});
            view.adj[producer].push_back(
                {consumer, 1, static_cast<int>(p)});
        }
    }
    return view;
}

namespace {

/** Edge token: (position of the earlier endpoint, direction, port).
 * Position dominates, then direction, then port — one u64 keeps the
 * whole code flat and comparisons branch-free. */
std::uint64_t
edgeToken(int pos, int dir, int port)
{
    return (static_cast<std::uint64_t>(pos) << 33) |
           (static_cast<std::uint64_t>(dir) << 32) |
           static_cast<std::uint64_t>(port);
}

/** Branch-and-bound over connected expansions.  `best` is the
 * incumbent (possibly caller-seeded); every candidate segment is
 * compared against it token by token while the prefix is still equal,
 * and greater branches die before recursing. */
struct Search {
    const CoreView &g;
    Code cur;
    Code best;
    bool have_best = false;
    bool abort_on_smaller = false;
    bool found_smaller = false;
    std::vector<int> pos; ///< vertex -> discovery index, or -1.
    int placed = 0;

    explicit Search(const CoreView &view)
        : g(view), pos(view.size(), -1) {}

    /** The tokens vertex @p v would emit if discovered next. */
    Code segmentFor(int v) const
    {
        Code seg;
        seg.push_back(static_cast<std::uint64_t>(g.labels[v].first));
        seg.push_back(g.labels[v].second);
        if (placed == 0)
            return seg;
        Code edges;
        for (const CoreView::Half &h : g.adj[v])
            if (pos[h.other] >= 0)
                edges.push_back(
                    edgeToken(pos[h.other], h.dir, h.port));
        std::sort(edges.begin(), edges.end());
        seg.push_back(static_cast<std::uint64_t>(edges.size()));
        seg.insert(seg.end(), edges.begin(), edges.end());
        return seg;
    }

    void recurse(bool eq)
    {
        if (found_smaller)
            return;
        if (placed == static_cast<int>(g.size())) {
            if (!have_best) {
                best = cur;
                have_best = true;
            } else if (!eq && cur < best) {
                // `eq` frames arrive exactly equal to the incumbent
                // (all complete codes of one core have equal length).
                // Diverged frames stopped comparing against a since-
                // replaced incumbent, so compare the completion.
                best = cur;
                if (abort_on_smaller)
                    found_smaller = true;
            }
            return;
        }

        struct Cand {
            Code seg;
            int v;
        };
        std::vector<Cand> cands;
        for (int v = 0; v < static_cast<int>(g.size()); ++v) {
            if (pos[v] >= 0)
                continue;
            if (placed > 0) {
                bool attached = false;
                for (const CoreView::Half &h : g.adj[v])
                    if (pos[h.other] >= 0) {
                        attached = true;
                        break;
                    }
                if (!attached)
                    continue;
            }
            cands.push_back({segmentFor(v), v});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand &a, const Cand &b) {
                      return a.seg != b.seg ? a.seg < b.seg
                                            : a.v < b.v;
                  });

        for (const Cand &c : cands) {
            bool child_eq = eq;
            if (have_best && child_eq) {
                bool prune = false;
                for (std::size_t i = 0; i < c.seg.size(); ++i) {
                    const std::size_t at = cur.size() + i;
                    if (at >= best.size() ||
                        c.seg[i] > best[at]) {
                        prune = true;
                        break;
                    }
                    if (c.seg[i] < best[at]) {
                        child_eq = false;
                        break;
                    }
                }
                if (prune)
                    continue;
            }
            const std::size_t mark = cur.size();
            cur.insert(cur.end(), c.seg.begin(), c.seg.end());
            pos[c.v] = placed++;
            recurse(child_eq);
            --placed;
            pos[c.v] = -1;
            cur.resize(mark);
            if (found_smaller)
                return;
        }
    }
};

} // namespace

Code
minCode(const CoreView &core)
{
    if (core.size() == 0)
        return {};
    Search s(core);
    s.recurse(true);
    return s.best;
}

bool
isCanonical(const CoreView &core, const Code &code)
{
    if (core.size() == 0)
        return code.empty();
    Search s(core);
    s.best = code;
    s.have_best = true;
    s.abort_on_smaller = true;
    s.recurse(true);
    return !s.found_smaller && s.best == code;
}

} // namespace apex::mining::dfs
