#ifndef APEX_MINING_MINER_H_
#define APEX_MINING_MINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/deadline.hpp"
#include "ir/graph.hpp"
#include "runtime/thread_pool.hpp"

/**
 * @file
 * Frequent subgraph mining over a single large dataflow graph — the
 * GRAMI substitute (Sec. 3.1 of the paper).
 *
 * Mining works on the application's *minable* nodes (compute ops and
 * constants).  Patterns grow one edge at a time, guided by the
 * occurrences of their parent pattern (only extensions that actually
 * exist in the application are generated, as in pattern-growth
 * miners).
 *
 * Two engines share that growth order (and produce byte-identical
 * results — enforced by the differential tests):
 *
 *  - kDfsCode (default, Pangolin-style): grown candidates are
 *    deduplicated by the minimum DFS code of their core
 *    (mining/dfs_code.hpp) and their embeddings are *extended* from
 *    the parent's materialized embedding list one edge at a time, so
 *    support needs no isomorphism re-matching.  The full-graph
 *    matcher only runs when an embedding list overflows
 *    max_embeddings (and for descendants of overflowed patterns),
 *    which keeps memory bounded and keeps the overflowed regime
 *    byte-identical to the reference.
 *  - kReference (miner_reference.cpp, the historic engine): dedup by
 *    the full `ir::canonicalCode` B&B search, occurrences recomputed
 *    with the exact isomorphism matcher per unique candidate.
 *
 * Either way reported frequencies are exact.
 *
 * Frequency of a pattern = number of *distinct node sets* over which
 * an embedding exists.  Overlap between those sets is the subject of
 * the MIS analysis (mis.hpp), not of mining itself.
 */

namespace apex::mining {

/** How pattern frequency is counted. */
enum class SupportMetric {
    /** Number of distinct occurrence node sets (intuitive count;
     * the default used throughout the evaluation). */
    kDistinctNodeSets,
    /** GRAMI's minimum-node-image support: the minimum, over pattern
     * nodes, of how many distinct target nodes that pattern node maps
     * to.  Anti-monotone, hence a sound pruning bound. */
    kMni,
};

/** Which mining engine executes mine(). */
enum class MinerEngine {
    /** DFS-code canonicality + incremental embedding lists. */
    kDfsCode,
    /** The historic growth miner — the differential oracle. */
    kReference,
};

/** Mining parameters. */
struct MinerOptions {
    int min_support = 2;       ///< Minimum frequency to keep growing.
    int max_pattern_nodes = 5; ///< Maximum core (non-placeholder) size.
    bool mine_constants = true; ///< Include kConst nodes in patterns.
    /** Safety valve: cap on unique patterns explored per level.
     * Hitting it truncates the frontier — counted per level in
     * MineStats::capped_levels (and `apex.mine.frontier_truncated`)
     * so sweeps can surface a warning instead of silently changing
     * which PE variants exist downstream. */
    int max_patterns_per_level = 512;
    SupportMetric metric = SupportMetric::kDistinctNodeSets;
    /**
     * Memory bound: embeddings materialized per pattern.  A pattern
     * whose embedding list overflows degrades to the full
     * isomorphism matcher truncated at this cap (counted in
     * MineStats::matcher_calls) instead of growing the list without
     * bound — exactly the reference engine's behavior, so the two
     * engines stay byte-identical even in the overflowed regime.
     */
    std::size_t max_embeddings = 20000;
    MinerEngine engine = MinerEngine::kDfsCode;
    /**
     * Wall-clock bound for the whole mining run, checked at level
     * boundaries (each level multiplies the candidate count, so the
     * boundary is where runaway growth is caught).  Expiry raises
     * ApexError(kTimeout); partial pattern lists are never returned —
     * a silently truncated frontier would change which PE variants
     * exist downstream.
     */
    Deadline deadline;
    /**
     * Optional worker pool.  With parallelism > 1 each level's
     * candidate expansion (growth, canonicalization, embedding
     * search) is fanned out speculatively and merged in a sequential
     * replay of the frontier x extension order, so the mined pattern
     * list is byte-identical to the sequential walk.  Null (or
     * parallelism <= 1) runs the original incremental loop.
     */
    runtime::ThreadPool *pool = nullptr;
};

/**
 * Counters of one mine() run.  Every field is deterministic for a
 * given (app, options, engine) triple at any job count — the engines
 * evaluate the same candidate set regardless of scheduling — except
 * that the reference engine's sequential path stops counting
 * candidates/duplicates at the per-level cap where its parallel path
 * counts the whole speculative batch.  capped_levels is identical
 * across engines, paths and job counts; the sweep's truncation
 * warning is built from it alone.
 */
struct MineStats {
    int levels = 0;             ///< Growth levels entered (level >= 2).
    long long candidates = 0;   ///< Grown candidate extensions.
    long long duplicates = 0;   ///< Killed as already-seen duplicates.
    long long patterns = 0;     ///< Frequent patterns returned.
    /** Embeddings materialized by incremental extension (kDfsCode). */
    long long embeddings = 0;
    /** Full findEmbeddings() invocations (kDfsCode: overflow
     * fallbacks only; kReference: one per evaluated candidate). */
    long long matcher_calls = 0;
    /** Levels (1-based, matching "mining level N" deadline contexts)
     * whose frontier hit max_patterns_per_level. */
    std::vector<int> capped_levels;
};

/** One frequent pattern with its occurrences in the application. */
struct MinedPattern {
    ir::Graph pattern; ///< Materialized pattern (placeholder inputs).
    std::string code;  ///< Canonical code (unique pattern identity).
    int core_size = 0; ///< Non-placeholder node count.
    /** Distinct occurrence node sets (sorted target node ids). */
    std::vector<std::vector<ir::NodeId>> occurrences;
    int frequency = 0; ///< Under the configured SupportMetric.
    int mni_support = 0; ///< GRAMI minimum-node-image support.
    int mis_size = 0;  ///< Non-overlapping occurrences (Sec. 3.2).
};

/** Frequent-subgraph miner for one application graph. */
class FrequentSubgraphMiner {
  public:
    explicit FrequentSubgraphMiner(MinerOptions options = {})
        : options_(options) {}

    /**
     * Mine all frequent patterns of @p app up to the configured size.
     *
     * @param stats Optional run counters (see MineStats).
     * @return patterns with exact frequencies; mis_size is left 0
     * (use MisAnalysis / rankPatterns to fill and order it).
     */
    std::vector<MinedPattern> mine(const ir::Graph &app,
                                   MineStats *stats = nullptr) const;

    const MinerOptions &options() const { return options_; }

  private:
    MinerOptions options_;
};

/**
 * The historic pattern-growth miner (miner_reference.cpp), kept
 * verbatim as the differential oracle for the DFS-code engine.
 * FrequentSubgraphMiner::mine dispatches here for
 * MinerEngine::kReference; benches and tests call it directly.
 */
std::vector<MinedPattern>
minePatternsReference(const ir::Graph &app,
                      const MinerOptions &options,
                      MineStats *stats = nullptr);

/**
 * Compute mis_size for every pattern (Sec. 3.2) and order the list the
 * way the APEX flow consumes it: decreasing MIS size, then decreasing
 * core size, then canonical code (deterministic tie-break).
 * Single-constant patterns are dropped — they are not PEs.
 */
void rankPatterns(std::vector<MinedPattern> &patterns);

} // namespace apex::mining

#endif // APEX_MINING_MINER_H_
