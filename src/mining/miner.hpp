#ifndef APEX_MINING_MINER_H_
#define APEX_MINING_MINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/deadline.hpp"
#include "ir/graph.hpp"
#include "runtime/thread_pool.hpp"

/**
 * @file
 * Frequent subgraph mining over a single large dataflow graph — the
 * GRAMI substitute (Sec. 3.1 of the paper).
 *
 * Mining works on the application's *minable* nodes (compute ops and
 * constants).  Patterns grow one edge at a time, guided by the
 * occurrences of their parent pattern (only extensions that actually
 * exist in the application are generated, as in pattern-growth
 * miners).  Grown structures are deduplicated via canonical codes and
 * their occurrences recomputed with the exact isomorphism matcher, so
 * reported frequencies are exact.
 *
 * Frequency of a pattern = number of *distinct node sets* over which
 * an embedding exists.  Overlap between those sets is the subject of
 * the MIS analysis (mis.hpp), not of mining itself.
 */

namespace apex::mining {

/** How pattern frequency is counted. */
enum class SupportMetric {
    /** Number of distinct occurrence node sets (intuitive count;
     * the default used throughout the evaluation). */
    kDistinctNodeSets,
    /** GRAMI's minimum-node-image support: the minimum, over pattern
     * nodes, of how many distinct target nodes that pattern node maps
     * to.  Anti-monotone, hence a sound pruning bound. */
    kMni,
};

/** Mining parameters. */
struct MinerOptions {
    int min_support = 2;       ///< Minimum frequency to keep growing.
    int max_pattern_nodes = 5; ///< Maximum core (non-placeholder) size.
    bool mine_constants = true; ///< Include kConst nodes in patterns.
    /** Safety valve: cap on unique patterns explored per level. */
    int max_patterns_per_level = 512;
    SupportMetric metric = SupportMetric::kDistinctNodeSets;
    /**
     * Wall-clock bound for the whole mining run, checked at level
     * boundaries (each level multiplies the candidate count, so the
     * boundary is where runaway growth is caught).  Expiry raises
     * ApexError(kTimeout); partial pattern lists are never returned —
     * a silently truncated frontier would change which PE variants
     * exist downstream.
     */
    Deadline deadline;
    /**
     * Optional worker pool.  With parallelism > 1 each level's
     * candidate expansion (growth, canonicalization, embedding
     * search) is fanned out speculatively and merged in a sequential
     * replay of the frontier x extension order, so the mined pattern
     * list is byte-identical to the sequential walk.  Null (or
     * parallelism <= 1) runs the original incremental loop.
     */
    runtime::ThreadPool *pool = nullptr;
};

/** One frequent pattern with its occurrences in the application. */
struct MinedPattern {
    ir::Graph pattern; ///< Materialized pattern (placeholder inputs).
    std::string code;  ///< Canonical code (unique pattern identity).
    int core_size = 0; ///< Non-placeholder node count.
    /** Distinct occurrence node sets (sorted target node ids). */
    std::vector<std::vector<ir::NodeId>> occurrences;
    int frequency = 0; ///< Under the configured SupportMetric.
    int mni_support = 0; ///< GRAMI minimum-node-image support.
    int mis_size = 0;  ///< Non-overlapping occurrences (Sec. 3.2).
};

/** Frequent-subgraph miner for one application graph. */
class FrequentSubgraphMiner {
  public:
    explicit FrequentSubgraphMiner(MinerOptions options = {})
        : options_(options) {}

    /**
     * Mine all frequent patterns of @p app up to the configured size.
     *
     * @return patterns with exact frequencies; mis_size is left 0
     * (use MisAnalysis / rankPatterns to fill and order it).
     */
    std::vector<MinedPattern> mine(const ir::Graph &app) const;

    const MinerOptions &options() const { return options_; }

  private:
    MinerOptions options_;
};

/**
 * Compute mis_size for every pattern (Sec. 3.2) and order the list the
 * way the APEX flow consumes it: decreasing MIS size, then decreasing
 * core size, then canonical code (deterministic tie-break).
 * Single-constant patterns are dropped — they are not PEs.
 */
void rankPatterns(std::vector<MinedPattern> &patterns);

} // namespace apex::mining

#endif // APEX_MINING_MINER_H_
