#ifndef APEX_RUNTIME_THREAD_POOL_H_
#define APEX_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/**
 * @file
 * Work-stealing thread pool for the parallel DSE runtime.
 *
 * A pool with parallelism P owns P-1 worker threads; the P-th lane is
 * the caller itself, which participates through tryRunOne() while it
 * waits (TaskGraph::wait, parallelFor).  Each worker owns a deque:
 * local work is popped LIFO (cache-hot), and an idle worker steals
 * FIFO from a victim chosen round-robin, so the oldest — typically
 * largest — subtrees migrate first.  Submissions from outside the
 * pool land in a shared inbox deque that every worker steals from.
 *
 * Tasks must not block on other pool tasks (they may *help* via
 * tryRunOne or parallelFor, which never blocks).  Under that
 * contract the pool is deadlock-free: any thread that waits for work
 * it scheduled also executes pending work itself.
 *
 * A pool with parallelism <= 1 starts no threads; submit() runs the
 * task inline, which keeps the sequential path allocation-free and
 * byte-identical to the pre-runtime behavior.
 */

namespace apex::runtime {

/** Execution counters (monotonic since construction).  Backed by the
 * process-wide telemetry counters `apex.pool.tasks_run` /
 * `apex.pool.tasks_stolen`; each pool snapshots them at construction
 * and stats() reports the delta, so a fresh pool starts at zero. */
struct PoolStats {
    long tasks_run = 0;    ///< Tasks executed to completion.
    long tasks_stolen = 0; ///< Executed from another lane's deque.
};

/** Work-stealing thread pool. */
class ThreadPool {
  public:
    /** @param parallelism Total lanes incl. the caller; clamped >= 1. */
    explicit ThreadPool(int parallelism = defaultParallelism());
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes (worker threads + the participating caller). */
    int parallelism() const { return parallelism_; }

    /**
     * Enqueue @p fn.  Called from a worker of this pool, it lands in
     * that worker's own deque; from any other thread, in the shared
     * inbox.  With parallelism <= 1 the task runs inline instead.
     */
    void submit(std::function<void()> fn);

    /**
     * Execute one pending task on the calling thread, if any.
     * @return true when a task ran.  This is the "help while
     * waiting" primitive — safe from any thread, including workers.
     */
    bool tryRunOne();

    PoolStats stats() const;

    /** $APEX_JOBS when set and valid, else hardware concurrency. */
    static int defaultParallelism();

  private:
    struct Lane {
        std::mutex mutex;
        std::deque<std::function<void()>> deque;
    };

    void workerLoop(int self);
    bool popLane(int lane, bool back, std::function<void()> *fn);
    /** Steal one task, preferring lanes after @p self. */
    bool stealFrom(int self, std::function<void()> *fn);

    int parallelism_ = 1;
    /** Lanes [0, workers) are per-worker; lane [workers] is the
     * shared inbox for external submissions. */
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::vector<std::thread> threads_;
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::atomic<bool> stop_{false};
    std::atomic<int> pending_{0};
    /** Registry values at construction; stats() = registry - this. */
    PoolStats baseline_;
};

/**
 * Run fn(0..n-1) across the pool with the caller participating.
 * Iterations are claimed from an atomic counter, so the index
 * distribution is nondeterministic but every index runs exactly once;
 * callers needing determinism must make fn(i) write only to slot i.
 * The first exception (lowest index) is rethrown on the caller after
 * every iteration finished.  pool == nullptr or parallelism <= 1
 * degrades to a plain sequential loop.
 */
void parallelFor(ThreadPool *pool, int n,
                 std::function<void(int)> fn);

/**
 * parallelFor with indices claimed in contiguous blocks of @p chunk:
 * one fetch_add claims [base, base + chunk), amortizing the shared
 * counter and keeping adjacent slots on one lane when fn(i) is
 * fine-grained (e.g. the miner's per-candidate growth).  Semantics
 * are otherwise identical to parallelFor — every index runs exactly
 * once, the lowest-index exception is rethrown after all iterations
 * finish, and a null pool / parallelism <= 1 / chunk >= n degrades to
 * the plain sequential loop.
 */
void parallelForChunked(ThreadPool *pool, int n, int chunk,
                        std::function<void(int)> fn);

} // namespace apex::runtime

#endif // APEX_RUNTIME_THREAD_POOL_H_
