#ifndef APEX_RUNTIME_TASK_GRAPH_H_
#define APEX_RUNTIME_TASK_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/deadline.hpp"
#include "core/status.hpp"
#include "runtime/thread_pool.hpp"

/**
 * @file
 * Dependency-aware task graph on top of the work-stealing pool.
 *
 * Build the graph with add(label, fn, deps) — dependencies must refer
 * to already-added tasks, so the graph is acyclic by construction and
 * insertion order is a topological order.  run() executes every task
 * respecting dependencies:
 *
 *  - with a pool of parallelism > 1, ready tasks are submitted to the
 *    pool and the calling thread helps execute them (it never blocks
 *    while work is pending, so nested graphs and parallelFor inside
 *    tasks cannot deadlock);
 *  - with no pool (or parallelism <= 1), tasks run inline in
 *    insertion order — the deterministic sequential schedule.
 *
 * Each task returns a Status.  A failed dependency cancels its
 * dependents (they report kCancelled without running), and cancel()
 * cooperatively skips every task that has not started yet.  After
 * run(), per-task statuses are available and every failure has been
 * recorded into a Diagnostics trail (stage "runtime", scope = label)
 * that callers merge into their reports.
 */

namespace apex::runtime {

using TaskId = int;

/** Dependency-aware task DAG with cooperative cancellation. */
class TaskGraph {
  public:
    /** @param pool May be null: run() then executes inline. */
    explicit TaskGraph(ThreadPool *pool = nullptr) : pool_(pool) {}

    TaskGraph(const TaskGraph &) = delete;
    TaskGraph &operator=(const TaskGraph &) = delete;

    /**
     * Add a task.  @p deps must all be ids returned by earlier add()
     * calls; violating that throws ApexError(kInvalidArgument).
     * Tasks may not be added after run() started.
     */
    TaskId add(std::string label, std::function<Status()> fn,
               const std::vector<TaskId> &deps = {});

    /** Number of tasks added. */
    int size() const { return static_cast<int>(tasks_.size()); }

    /**
     * Cooperatively cancel: tasks that have not started yet complete
     * with kCancelled instead of running.  Safe from any thread,
     * including from inside a running task.
     */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
    bool cancelled() const {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /**
     * Bound the whole graph by @p deadline: a task that has not
     * started when it expires completes with kTimeout instead of
     * running (already-running tasks finish — they enforce their own
     * deadlines internally).  Must be set before run().
     */
    void setDeadline(const Deadline &deadline) {
        deadline_ = deadline;
    }

    /**
     * Attribute every task to request @p trace_id: the thread trace
     * id is installed around each task body, so the graph's own
     * "task" spans — and any span the body opens without re-scoping —
     * carry the id under both the inline and the pooled schedule.
     * Without this, pool workers would record trace 0 while the
     * inline schedule inherited the caller's id, making the span set
     * depend on the job count.  Must be set before run().
     */
    void setTraceId(std::uint64_t trace_id) { trace_id_ = trace_id; }

    /**
     * Execute the graph to completion (including cancelled tasks,
     * which complete as kCancelled).  @return ok when every task
     * succeeded, else the first failure in task-id order — a
     * deterministic choice independent of execution interleaving.
     */
    Status run();

    /** Status of @p id; valid after run(). */
    const Status &taskStatus(TaskId id) const;

    /** One error record per failed/cancelled task, in id order. */
    const Diagnostics &diagnostics() const { return diagnostics_; }

  private:
    struct Task {
        std::string label;
        std::function<Status()> fn;
        std::vector<TaskId> dependents;
        int pending = 0; ///< Unfinished dependencies.
        bool dep_failed = false;
        std::string failed_dep; ///< Label of the failed dependency.
        Status status;
    };

    void runTask(TaskId id);
    void runInline();
    void runPooled();
    Status finish(); ///< Aggregate statuses + diagnostics.

    ThreadPool *pool_ = nullptr;
    std::vector<Task> tasks_;
    Deadline deadline_;
    std::uint64_t trace_id_ = 0;
    std::atomic<bool> cancelled_{false};
    bool started_ = false;

    std::mutex mutex_; ///< Guards pending counts + remaining_.
    int remaining_ = 0;
    Diagnostics diagnostics_;
};

} // namespace apex::runtime

#endif // APEX_RUNTIME_TASK_GRAPH_H_
