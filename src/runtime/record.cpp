#include "runtime/record.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "core/fault.hpp"
#include "runtime/cache.hpp"
#include "runtime/telemetry.hpp"

namespace apex::runtime {

namespace fs = std::filesystem;

namespace {

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** fsync @p path (best effort — crash-safety hardening must not turn
 * an otherwise-working log into an error). */
void
syncPath(const std::string &path, bool directory)
{
    const int fd =
        ::open(path.c_str(),
               directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

/** Remove stale compaction temporaries (`<log>.tmp.*`) left behind by
 * a crash between the tmp write and the rename. */
void
removeStaleTemporaries(const std::string &path)
{
    const fs::path p(path);
    const std::string prefix = p.filename().string() + ".tmp.";
    std::error_code ec;
    fs::directory_iterator it(p.parent_path(), ec);
    if (ec)
        return;
    for (const auto &entry : it) {
        if (entry.path().filename().string().rfind(prefix, 0) == 0)
            fs::remove(entry.path(), ec);
    }
}

} // namespace

std::string
encodeFrame(std::string_view magic, int version, std::string_view type,
            std::string_view payload)
{
    std::ostringstream os;
    os << magic << ' ' << version << ' ' << type << " sum "
       << hex64(fnv1a64(payload)) << " len " << payload.size() << '\n';
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    os << '\n';
    return os.str();
}

FrameStatus
readFrame(std::istream &is, std::string_view magic, int version,
          FramedRecord *out)
{
    std::string file_magic;
    if (!(is >> file_magic))
        return is.eof() ? FrameStatus::kEof : FrameStatus::kCorrupt;
    int file_version = 0;
    std::string type, field;
    std::uint64_t checksum = 0;
    std::size_t payload_len = 0;
    if (!(is >> file_version >> type))
        return FrameStatus::kCorrupt;
    if (file_magic != magic)
        return FrameStatus::kCorrupt;
    if (file_version != version)
        return FrameStatus::kVersionMismatch;
    if (!(is >> field) || field != "sum")
        return FrameStatus::kCorrupt;
    if (!(is >> std::hex >> checksum >> std::dec))
        return FrameStatus::kCorrupt;
    if (!(is >> field >> payload_len) || field != "len")
        return FrameStatus::kCorrupt;
    if (is.get() != '\n')
        return FrameStatus::kCorrupt;
    std::string payload(payload_len, '\0');
    if (payload_len > 0 &&
        !is.read(payload.data(),
                 static_cast<std::streamsize>(payload_len)))
        return FrameStatus::kCorrupt; // truncated payload
    if (is.get() != '\n')
        return FrameStatus::kCorrupt; // truncated trailer
    if (fnv1a64(payload) != checksum)
        return FrameStatus::kCorrupt; // bit rot / partial overwrite
    out->type = std::move(type);
    out->payload = std::move(payload);
    return FrameStatus::kOk;
}

Status
RecordLog::open(const std::string &path, std::string_view magic,
                int version, bool replay)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open())
        return Status(ErrorCode::kInvalidArgument,
                      "record log already open at '" + path_ + "'");
    path_ = path;
    magic_ = std::string(magic);
    version_ = version;
    records_.clear();
    recovery_ = LogRecovery::kFresh;
    committed_bytes_ = 0;
    last_error_ = Status::okStatus();

    {
        std::error_code ec;
        fs::create_directories(fs::path(path).parent_path(), ec);
        // A failing mkdir surfaces as the ofstream failing below.
    }
    // A crash between a compaction's tmp write and its rename leaves
    // an orphan tmp file; clear them before (not after) recovery so
    // this open's own tmp is never collected.
    removeStaleTemporaries(path_);

    bool compact = false;
    if (replay) {
        std::ifstream is(path_, std::ios::binary);
        if (is) {
            recovery_ = LogRecovery::kClean;
            for (;;) {
                FramedRecord record;
                const FrameStatus fs =
                    readFrame(is, magic_, version_, &record);
                if (fs == FrameStatus::kOk) {
                    records_.push_back(std::move(record));
                    continue;
                }
                if (fs == FrameStatus::kEof)
                    break;
                // A mismatched version on the *first* frame means the
                // whole log is another schema: restart it.  Anything
                // else — corruption, or skew mid-file — is a damaged
                // tail: keep the valid prefix, drop the rest.
                if (fs == FrameStatus::kVersionMismatch &&
                    records_.empty()) {
                    recovery_ = LogRecovery::kVersionMismatch;
                } else {
                    recovery_ = LogRecovery::kTailDropped;
                }
                compact = true;
                break;
            }
            if (records_.empty() &&
                recovery_ == LogRecovery::kClean)
                recovery_ = LogRecovery::kFresh;
            if (recovery_ == LogRecovery::kTailDropped)
                telemetry::counter("apex.record.tail_drops").add(1);
        }
    }

    if (compact || !replay) {
        // Rewrite the valid prefix (possibly empty) atomically so a
        // crash during recovery cannot make the log worse.
        std::ostringstream tid;
        tid << std::this_thread::get_id();
        const std::string tmp = path_ + ".tmp." + tid.str();
        {
            std::ofstream os(tmp,
                             std::ios::binary | std::ios::trunc);
            if (!os)
                return Status(ErrorCode::kResourceExhausted,
                              "cannot write record log at '" + tmp +
                                  "'");
            for (const FramedRecord &r : records_) {
                os << encodeFrame(magic_, version_, r.type,
                                  r.payload);
                if (!os)
                    break; // One failing frame fails the compaction.
            }
            os.flush();
            if (!os)
                return Status(ErrorCode::kResourceExhausted,
                              "short write compacting record log '" +
                                  tmp + "' (disk full?)");
        }
        // Write-then-rename alone is not crash-safe: the tmp's bytes
        // must be on disk before the rename points the log name at
        // them, and the rename itself lives in the directory, which
        // has its own durability.  fsync both (best effort).
        syncPath(tmp, /*directory=*/false);
        std::error_code ec;
        fs::rename(tmp, path_, ec);
        if (ec) {
            fs::remove(tmp, ec);
            return Status(ErrorCode::kResourceExhausted,
                          "cannot replace record log '" + path_ +
                              "': " + ec.message());
        }
        const fs::path parent = fs::path(path_).parent_path();
        if (!parent.empty())
            syncPath(parent.string(), /*directory=*/true);
    }

    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_)
        return Status(ErrorCode::kInternal,
                      "cannot open record log '" + path_ +
                          "' for append");
    {
        std::error_code ec;
        const std::uintmax_t size = fs::file_size(path_, ec);
        committed_bytes_ = ec ? 0 : size;
    }
    return Status::okStatus();
}

Status
RecordLog::failAppend(Status error)
{
    telemetry::counter("apex.record.append_failures").add(1);
    last_error_ = error;
    out_.close();
    // Cut the file back to the last fully-flushed frame.  Shrinking
    // needs no free space, so this works on the full disk that broke
    // the append; the next open() then replays a clean log instead
    // of dropping a corrupt tail.
    (void)::truncate(path_.c_str(),
                     static_cast<off_t>(committed_bytes_));
    return error;
}

Status
RecordLog::append(std::string_view type, std::string_view payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_.is_open())
        return last_error_.ok()
                   ? Status(ErrorCode::kInternal,
                            "record log is not open")
                   : last_error_;
    const std::string frame =
        encodeFrame(magic_, version_, type, payload);
    if (const Status f = checkFault(FaultStage::kDiskFull); !f.ok()) {
        // Rehearse ENOSPC mid-frame: half the frame reaches the file
        // before the write dies, exactly the torn tail a real full
        // disk leaves behind.
        out_.write(frame.data(),
                   static_cast<std::streamsize>(frame.size() / 2));
        out_.flush();
        return failAppend(
            Status(f.code(), "append to record log '" + path_ +
                                 "' failed: " + f.message()));
    }
    out_.write(frame.data(),
               static_cast<std::streamsize>(frame.size()));
    if (out_)
        out_.flush();
    if (!out_)
        return failAppend(Status(
            ErrorCode::kResourceExhausted,
            "append to record log '" + path_ +
                "' failed (disk full or I/O error); log closed at "
                "last good frame"));
    committed_bytes_ += frame.size();
    return Status::okStatus();
}

Status
RecordLog::lastError() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return last_error_;
}

} // namespace apex::runtime
