#include "runtime/eventlog.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "runtime/telemetry.hpp"

namespace apex::eventlog {

namespace {

/** Sink state.  One mutex serializes writers; the hot filter (level)
 * is checked before taking it. */
struct Sink {
    std::mutex mu;
    std::FILE *file = nullptr; ///< Owned unless it is stderr.
    bool structured = false;   ///< configure() succeeded.
    Options options;
    // Rate-bound window (monotonic, so clock steps cannot widen it).
    std::uint64_t window_start_ns = 0;
    int window_lines = 0;
    long long window_suppressed = 0;
    std::atomic<long long> suppressed_total{0};
    std::atomic<int> min_level{static_cast<int>(Level::kInfo)};
};

Sink &
sink()
{
    static Sink *s = new Sink();
    return *s;
}

void
appendEscaped(std::string *out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            *out += "\\\"";
            break;
        case '\\':
            *out += "\\\\";
            break;
        case '\n':
            *out += "\\n";
            break;
        case '\r':
            *out += "\\r";
            break;
        case '\t':
            *out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                *out += buf;
            } else {
                *out += c;
            }
        }
    }
}

long long
wallMillis()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** Render one JSONL line (no trailing newline). */
std::string
renderLine(Level level, std::string_view component,
           std::string_view message, std::uint64_t trace_id)
{
    std::string line;
    line.reserve(96 + component.size() + message.size());
    line += "{\"ts_ms\":";
    line += std::to_string(wallMillis());
    line += ",\"level\":\"";
    line += levelName(level);
    line += "\",\"component\":\"";
    appendEscaped(&line, component);
    line += "\",\"message\":\"";
    appendEscaped(&line, message);
    line += '"';
    if (trace_id != 0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(trace_id));
        line += ",\"trace_id\":\"";
        line += buf;
        line += '"';
    }
    line += '}';
    return line;
}

/** Caller holds s.mu and the sink is structured.  Writes one line,
 * honoring the rate bound; rolls the window as needed. */
void
writeBounded(Sink &s, const std::string &line)
{
    const std::uint64_t now_ns = telemetry::monotonicNanos();
    const double window_ns =
        (s.options.rate_window_ms > 0 ? s.options.rate_window_ms
                                      : 1000.0) *
        1e6;
    if (static_cast<double>(now_ns - s.window_start_ns) >=
        window_ns) {
        if (s.window_suppressed > 0) {
            const std::string summary = renderLine(
                Level::kWarn, "eventlog",
                "rate bound: suppressed " +
                    std::to_string(s.window_suppressed) +
                    " line(s) in the last window",
                0);
            std::fprintf(s.file, "%s\n", summary.c_str());
        }
        s.window_start_ns = now_ns;
        s.window_lines = 0;
        s.window_suppressed = 0;
    }
    const int cap = s.options.rate_max_per_window > 0
                        ? s.options.rate_max_per_window
                        : 1;
    if (s.window_lines >= cap) {
        ++s.window_suppressed;
        s.suppressed_total.fetch_add(1, std::memory_order_relaxed);
        static telemetry::Counter &suppressed =
            telemetry::counter("apex.log.suppressed");
        suppressed.add(1);
        return;
    }
    ++s.window_lines;
    std::fprintf(s.file, "%s\n", line.c_str());
    std::fflush(s.file);
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::kDebug:
        return "debug";
    case Level::kInfo:
        return "info";
    case Level::kWarn:
        return "warn";
    case Level::kError:
        return "error";
    }
    return "info";
}

bool
parseLevel(std::string_view text, Level *out)
{
    if (text == "debug")
        *out = Level::kDebug;
    else if (text == "info")
        *out = Level::kInfo;
    else if (text == "warn" || text == "warning")
        *out = Level::kWarn;
    else if (text == "error")
        *out = Level::kError;
    else
        return false;
    return true;
}

bool
configure(const Options &options)
{
    std::FILE *file = stderr;
    if (!options.path.empty()) {
        file = std::fopen(options.path.c_str(), "a");
        if (file == nullptr) {
            std::fprintf(stderr,
                         "apex: cannot open log file '%s'; keeping "
                         "previous log sink\n",
                         options.path.c_str());
            return false;
        }
    }
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.file != nullptr && s.file != stderr)
        std::fclose(s.file);
    s.file = file;
    s.structured = true;
    s.options = options;
    s.window_start_ns = telemetry::monotonicNanos();
    s.window_lines = 0;
    s.window_suppressed = 0;
    s.min_level.store(static_cast<int>(options.level),
                      std::memory_order_relaxed);
    return true;
}

void
shutdown()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.file != nullptr && s.file != stderr) {
        std::fflush(s.file);
        std::fclose(s.file);
    }
    s.file = nullptr;
    s.structured = false;
    s.min_level.store(static_cast<int>(Level::kInfo),
                      std::memory_order_relaxed);
}

bool
configured()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.structured;
}

void
emit(Level level, std::string_view component,
     std::string_view message, std::uint64_t trace_id)
{
    Sink &s = sink();
    if (static_cast<int>(level) <
        s.min_level.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.structured) {
        // Fallback for processes that never opted into JSONL (batch
        // apexc): one human-readable stderr line, like the fprintf
        // calls this subsystem replaced.
        std::fprintf(stderr, "apex: [%.*s] %.*s\n",
                     static_cast<int>(component.size()),
                     component.data(),
                     static_cast<int>(message.size()),
                     message.data());
        return;
    }
    writeBounded(
        s, renderLine(level, component, message, trace_id));
}

long long
suppressedLines()
{
    return sink().suppressed_total.load(std::memory_order_relaxed);
}

} // namespace apex::eventlog
