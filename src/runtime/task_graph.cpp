#include "runtime/task_graph.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "runtime/telemetry.hpp"

namespace apex::runtime {

TaskId
TaskGraph::add(std::string label, std::function<Status()> fn,
               const std::vector<TaskId> &deps)
{
    if (started_)
        throw ApexError(Status(ErrorCode::kInvalidArgument,
                               "TaskGraph::add after run()"));
    const TaskId id = static_cast<TaskId>(tasks_.size());
    Task t;
    t.label = std::move(label);
    t.fn = std::move(fn);
    for (TaskId d : deps) {
        if (d < 0 || d >= id)
            throw ApexError(Status(
                ErrorCode::kInvalidArgument,
                "task dependency must refer to an earlier task"));
        tasks_[d].dependents.push_back(id);
        ++t.pending;
    }
    tasks_.push_back(std::move(t));
    return id;
}

const Status &
TaskGraph::taskStatus(TaskId id) const
{
    return tasks_[id].status;
}

void
TaskGraph::runTask(TaskId id)
{
    // The final decrement of remaining_ below lets the run() caller
    // return and destroy the graph, so nothing may touch `this` after
    // it — the pool pointer is copied out up front, and completion is
    // detected by the caller's polling help-loop rather than a
    // condition-variable notify from here.
    ThreadPool *const pool = pool_;
    Task &t = tasks_[id];
    bool dep_failed;
    std::string failed_dep;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dep_failed = t.dep_failed;
        failed_dep = t.failed_dep;
    }

    Status s;
    if (cancelled_.load(std::memory_order_relaxed)) {
        s = Status(ErrorCode::kCancelled, "task graph cancelled");
    } else if (deadline_.expired()) {
        s = Status(ErrorCode::kTimeout,
                   "deadline expired before task '" + t.label + "'");
    } else if (dep_failed) {
        s = Status(ErrorCode::kCancelled,
                   "dependency '" + failed_dep + "' failed");
    } else {
        try {
            // Before the span: its destructor stamps the thread's
            // trace id, which must still be installed then.
            telemetry::ScopedTraceId trace_scope;
            if (trace_id_ != 0)
                trace_scope.set(trace_id_);
            APEX_SPAN("task", {{"label", t.label}});
            s = t.fn();
        } catch (const ApexError &e) {
            s = e.status().withContext("task '" + t.label + "'");
        } catch (const std::exception &e) {
            s = Status(ErrorCode::kInternal,
                       std::string("task '") + t.label +
                           "' threw: " + e.what());
        }
    }

    std::vector<TaskId> ready;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        t.status = std::move(s);
        for (TaskId d : t.dependents) {
            Task &dt = tasks_[d];
            if (!t.status.ok() && !dt.dep_failed) {
                dt.dep_failed = true;
                dt.failed_dep = t.label;
            }
            if (--dt.pending == 0)
                ready.push_back(d);
        }
        --remaining_;
    }
    // Inline mode visits every task in insertion order already; only
    // the pooled schedule dispatches newly-ready dependents.  A
    // non-empty ready list implies remaining_ > 0 (those dependents
    // have not run), so `this` is guaranteed alive here.
    if (pool != nullptr && pool->parallelism() > 1)
        for (TaskId r : ready)
            pool->submit([this, r] { runTask(r); });
}

void
TaskGraph::runInline()
{
    // Insertion order is topological (deps precede dependents), so a
    // single in-order pass is a valid sequential schedule.
    for (TaskId id = 0; id < size(); ++id)
        runTask(id);
}

void
TaskGraph::runPooled()
{
    std::vector<TaskId> ready;
    for (TaskId id = 0; id < size(); ++id)
        if (tasks_[id].pending == 0)
            ready.push_back(id);
    for (TaskId r : ready)
        pool_->submit([this, r] { runTask(r); });

    // Help instead of blocking: a waiting caller that executes
    // pending work cannot deadlock the pool.  Completion is detected
    // by polling — workers never notify, so their last touch of the
    // graph is the mutex unlock after the final decrement, and the
    // caller (the only thread left) can destroy it safely.
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (remaining_ == 0)
                return;
        }
        if (!pool_->tryRunOne())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

Status
TaskGraph::finish()
{
    Status first = Status::okStatus();
    for (const Task &t : tasks_) {
        if (t.status.ok())
            continue;
        DiagnosticRecord record;
        record.severity = Severity::kError;
        record.stage = "runtime";
        record.code = t.status.code();
        record.message = t.status.toString();
        record.scope = t.label;
        diagnostics_.report(std::move(record));
        if (first.ok())
            first = t.status.withContext("task '" + t.label + "'");
    }
    return first;
}

Status
TaskGraph::run()
{
    if (started_)
        throw ApexError(Status(ErrorCode::kInvalidArgument,
                               "TaskGraph::run called twice"));
    started_ = true;
    remaining_ = size();
    if (remaining_ == 0)
        return Status::okStatus();
    if (pool_ && pool_->parallelism() > 1)
        runPooled();
    else
        runInline();
    return finish();
}

} // namespace apex::runtime
