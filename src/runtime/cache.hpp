#ifndef APEX_RUNTIME_CACHE_H_
#define APEX_RUNTIME_CACHE_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

/**
 * @file
 * Content-addressed artifact cache for the DSE runtime.
 *
 * Stage results (mapping / place-and-route evaluations) are memoized
 * under a key derived from the canonical content of their inputs — a
 * fingerprint of the IR graph plus every stage parameter — so a key
 * hit is a proof that recomputation would produce the same artifact.
 *
 * Two tiers:
 *  - an in-memory LRU tier (bounded entry count, thread-safe);
 *  - an optional write-through on-disk tier (--cache-dir) so repeated
 *    sweeps across process runs become incremental.  Disk entries are
 *    framed records (runtime/record.hpp, shared with the sweep
 *    journal): the frame header records the schema version and an
 *    FNV-1a checksum, and the payload embeds the full key.  Any
 *    mismatch (truncation, bit rot, key collision on file name)
 *    deletes the file and counts as a miss, and an entry written by
 *    another schema version is dropped as a version mismatch — a
 *    stale or corrupt cache can cost time, never correctness.
 *    A *write* failure (disk full, I/O error) latches the tier off:
 *    the cache continues memory-only with the
 *    `apex.cache.disk_disabled` gauge raised, and a periodic probe
 *    write re-enables the tier when space returns (see
 *    CacheOptions::disk_reprobe_ms and DESIGN.md Sec. 7h).
 *
 * Values are opaque byte strings; serialization of the artifact is
 * the caller's contract (see core/evaluate.cpp).
 */

namespace apex::runtime {

/** Cache configuration. */
struct CacheOptions {
    /** In-memory LRU capacity in entries (0 disables the tier). */
    std::size_t max_memory_entries = 4096;
    /** On-disk tier directory; empty disables the tier.  Created on
     * first use. */
    std::string disk_dir;
    /**
     * After a disk-tier write failure (disk full, I/O error) the
     * tier drops to memory-only; every this-many milliseconds the
     * next access re-probes the directory with a tiny write and
     * re-enables the tier when it succeeds — so a sweep survives a
     * transient full disk and recovers when space returns.  0 probes
     * on every access (tests); < 0 never re-probes.
     */
    double disk_reprobe_ms = 2000.0;
};

/**
 * Monotonic counters (snapshot via ArtifactCache::stats).
 *
 * The authoritative counters live in the telemetry registry under
 * `apex.cache.*` (one set per process); each ArtifactCache snapshots
 * them at construction and stats() reports the delta since then, so a
 * fresh cache still starts from zero the way tests expect.  (Caveat:
 * two caches live at once would see each other's traffic; the runtime
 * only ever creates one per sweep.)
 */
struct CacheStats {
    long hits = 0;            ///< get() served from either tier.
    long misses = 0;          ///< get() found nothing usable.
    long memory_hits = 0;     ///< Served from the LRU tier.
    long disk_hits = 0;       ///< Served from the disk tier.
    long insertions = 0;      ///< put() calls.
    long evictions = 0;       ///< LRU entries dropped at capacity.
    long disk_writes = 0;     ///< Disk entries written.
    long corrupt_dropped = 0; ///< Disk entries rejected + deleted.
    /** Disk entries from another on-disk schema version, dropped and
     * treated as misses (e.g. after an upgrade over an old dir). */
    long version_mismatches = 0;
};

/** Two-tier content-addressed memoization cache. */
class ArtifactCache {
  public:
    explicit ArtifactCache(CacheOptions options = {});

    ArtifactCache(const ArtifactCache &) = delete;
    ArtifactCache &operator=(const ArtifactCache &) = delete;

    /** Look up @p key; a disk hit is promoted into the LRU tier. */
    std::optional<std::string> get(const std::string &key);

    /** Insert (or refresh) @p key -> @p value in both tiers. */
    void put(const std::string &key, const std::string &value);

    CacheStats stats() const;

    std::size_t memoryEntries() const;

    /** Path the disk tier uses for @p key (exposed for tests). */
    std::string diskPathFor(const std::string &key) const;

    /** True while the disk tier is latched off after a write failure
     * (the `apex.cache.disk_disabled` gauge mirrors this). */
    bool diskDisabled() const;

    const CacheOptions &options() const { return options_; }

  private:
    std::optional<std::string> getFromDisk(const std::string &key);
    void putToDisk(const std::string &key, const std::string &value);
    void insertMemory(const std::string &key, std::string value);
    /** Latch the disk tier off after a failed write. */
    void disableDisk(const std::string &why);
    /** True when the disk tier may be used for this access: enabled,
     * or disabled-but-due for a re-probe that just succeeded. */
    bool diskUsable();

    CacheOptions options_;
    mutable std::mutex mutex_;
    /** Front = most recently used. */
    std::list<std::pair<std::string, std::string>> lru_;
    std::map<std::string,
             std::list<std::pair<std::string, std::string>>::iterator>
        index_;
    /** Registry values at construction; stats() = registry - this. */
    CacheStats baseline_;
    bool disk_dir_ready_ = false;
    /** Disk-tier degradation latch (guarded by mutex_). */
    bool disk_disabled_ = false;
    /** Monotonic deadline for the next recovery probe. */
    std::chrono::steady_clock::time_point next_probe_{};
};

/** FNV-1a 64-bit hash (shared by cache file naming and checksums). */
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 14695981039346656037ull);

} // namespace apex::runtime

#endif // APEX_RUNTIME_CACHE_H_
