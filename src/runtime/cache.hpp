#ifndef APEX_RUNTIME_CACHE_H_
#define APEX_RUNTIME_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

/**
 * @file
 * Content-addressed artifact cache for the DSE runtime.
 *
 * Stage results (mapping / place-and-route evaluations) are memoized
 * under a key derived from the canonical content of their inputs — a
 * fingerprint of the IR graph plus every stage parameter — so a key
 * hit is a proof that recomputation would produce the same artifact.
 *
 * Two tiers:
 *  - an in-memory LRU tier (bounded entry count, thread-safe);
 *  - an optional write-through on-disk tier (--cache-dir) so repeated
 *    sweeps across process runs become incremental.  Disk entries are
 *    framed records (runtime/record.hpp, shared with the sweep
 *    journal): the frame header records the schema version and an
 *    FNV-1a checksum, and the payload embeds the full key.  Any
 *    mismatch (truncation, bit rot, key collision on file name)
 *    deletes the file and counts as a miss, and an entry written by
 *    another schema version is dropped as a version mismatch — a
 *    stale or corrupt cache can cost time, never correctness.
 *
 * Values are opaque byte strings; serialization of the artifact is
 * the caller's contract (see core/evaluate.cpp).
 */

namespace apex::runtime {

/** Cache configuration. */
struct CacheOptions {
    /** In-memory LRU capacity in entries (0 disables the tier). */
    std::size_t max_memory_entries = 4096;
    /** On-disk tier directory; empty disables the tier.  Created on
     * first use. */
    std::string disk_dir;
};

/**
 * Monotonic counters (snapshot via ArtifactCache::stats).
 *
 * The authoritative counters live in the telemetry registry under
 * `apex.cache.*` (one set per process); each ArtifactCache snapshots
 * them at construction and stats() reports the delta since then, so a
 * fresh cache still starts from zero the way tests expect.  (Caveat:
 * two caches live at once would see each other's traffic; the runtime
 * only ever creates one per sweep.)
 */
struct CacheStats {
    long hits = 0;            ///< get() served from either tier.
    long misses = 0;          ///< get() found nothing usable.
    long memory_hits = 0;     ///< Served from the LRU tier.
    long disk_hits = 0;       ///< Served from the disk tier.
    long insertions = 0;      ///< put() calls.
    long evictions = 0;       ///< LRU entries dropped at capacity.
    long disk_writes = 0;     ///< Disk entries written.
    long corrupt_dropped = 0; ///< Disk entries rejected + deleted.
    /** Disk entries from another on-disk schema version, dropped and
     * treated as misses (e.g. after an upgrade over an old dir). */
    long version_mismatches = 0;
};

/** Two-tier content-addressed memoization cache. */
class ArtifactCache {
  public:
    explicit ArtifactCache(CacheOptions options = {});

    ArtifactCache(const ArtifactCache &) = delete;
    ArtifactCache &operator=(const ArtifactCache &) = delete;

    /** Look up @p key; a disk hit is promoted into the LRU tier. */
    std::optional<std::string> get(const std::string &key);

    /** Insert (or refresh) @p key -> @p value in both tiers. */
    void put(const std::string &key, const std::string &value);

    CacheStats stats() const;

    std::size_t memoryEntries() const;

    /** Path the disk tier uses for @p key (exposed for tests). */
    std::string diskPathFor(const std::string &key) const;

    const CacheOptions &options() const { return options_; }

  private:
    std::optional<std::string> getFromDisk(const std::string &key);
    void putToDisk(const std::string &key, const std::string &value);
    void insertMemory(const std::string &key, std::string value);

    CacheOptions options_;
    mutable std::mutex mutex_;
    /** Front = most recently used. */
    std::list<std::pair<std::string, std::string>> lru_;
    std::map<std::string,
             std::list<std::pair<std::string, std::string>>::iterator>
        index_;
    /** Registry values at construction; stats() = registry - this. */
    CacheStats baseline_;
    bool disk_dir_ready_ = false;
};

/** FNV-1a 64-bit hash (shared by cache file naming and checksums). */
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 14695981039346656037ull);

} // namespace apex::runtime

#endif // APEX_RUNTIME_CACHE_H_
