#include "runtime/wire.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "runtime/cache.hpp"

namespace apex::runtime {

namespace {

// Frame headers are one short ASCII line; a "header" that runs past
// this bound is garbage, not a slow pipe.
constexpr std::size_t kMaxHeaderBytes = 256;

// Upper bound on a single frame payload (64 MiB).  A length field
// beyond this is corruption — honoring it would let one flipped bit
// make the supervisor buffer unbounded memory waiting for bytes that
// will never arrive.
constexpr std::size_t kMaxPayloadBytes = 64u << 20;

} // namespace

void
FrameDecoder::feed(const char *data, std::size_t n)
{
    if (corrupt_)
        return;
    buffer_.append(data, n);
}

DecodeResult
FrameDecoder::next(FramedRecord *out)
{
    if (corrupt_)
        return DecodeResult::kCorrupt;

    // Reclaim the consumed prefix once it dominates the buffer.
    if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }

    const std::size_t header_end = buffer_.find('\n', pos_);
    if (header_end == std::string::npos) {
        if (buffer_.size() - pos_ > kMaxHeaderBytes) {
            corrupt_ = true;
            return DecodeResult::kCorrupt;
        }
        return DecodeResult::kNeedMore;
    }
    if (header_end - pos_ > kMaxHeaderBytes) {
        corrupt_ = true;
        return DecodeResult::kCorrupt;
    }

    std::istringstream header(
        buffer_.substr(pos_, header_end - pos_));
    std::string magic, type, field;
    int version = 0;
    std::uint64_t checksum = 0;
    std::size_t payload_len = 0;
    if (!(header >> magic >> version >> type) || magic != magic_ ||
        version != version_ || !(header >> field) || field != "sum" ||
        !(header >> std::hex >> checksum >> std::dec) ||
        !(header >> field >> payload_len) || field != "len" ||
        payload_len > kMaxPayloadBytes) {
        corrupt_ = true;
        return DecodeResult::kCorrupt;
    }

    const std::size_t body_start = header_end + 1;
    // Payload plus its trailing newline.
    if (buffer_.size() - body_start < payload_len + 1)
        return DecodeResult::kNeedMore;
    if (buffer_[body_start + payload_len] != '\n') {
        corrupt_ = true;
        return DecodeResult::kCorrupt;
    }
    std::string payload = buffer_.substr(body_start, payload_len);
    if (fnv1a64(payload) != checksum) {
        corrupt_ = true;
        return DecodeResult::kCorrupt;
    }
    out->type = std::move(type);
    out->payload = std::move(payload);
    pos_ = body_start + payload_len + 1;
    return DecodeResult::kFrame;
}

Status
writeAll(int fd, std::string_view bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status(ErrorCode::kInternal,
                          "pipe write failed: " +
                              std::string(std::strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
    return Status::okStatus();
}

Status
writeFrame(int fd, std::string_view type, std::string_view payload)
{
    return writeAll(fd,
                    encodeFrame(kWireMagic, kWireVersion, type,
                                payload));
}

} // namespace apex::runtime
