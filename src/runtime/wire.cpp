#include "runtime/wire.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <unistd.h>

#include "runtime/cache.hpp"

namespace apex::runtime {

namespace {

// Frame headers are one short ASCII line; a "header" that runs past
// this bound is garbage, not a slow pipe.
constexpr std::size_t kMaxHeaderBytes = 256;

} // namespace

void
FrameDecoder::feed(const char *data, std::size_t n)
{
    if (corrupt_)
        return;
    buffer_.append(data, n);
}

DecodeResult
FrameDecoder::poison(std::string reason)
{
    corrupt_ = true;
    reason_ = std::move(reason);
    return DecodeResult::kCorrupt;
}

DecodeResult
FrameDecoder::next(FramedRecord *out)
{
    if (corrupt_)
        return DecodeResult::kCorrupt;

    // Reclaim the consumed prefix once it dominates the buffer.
    if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }

    const std::size_t header_end = buffer_.find('\n', pos_);
    if (header_end == std::string::npos) {
        if (buffer_.size() - pos_ > kMaxHeaderBytes)
            return poison("frame header exceeds " +
                          std::to_string(kMaxHeaderBytes) + " bytes");
        return DecodeResult::kNeedMore;
    }
    if (header_end - pos_ > kMaxHeaderBytes)
        return poison("frame header exceeds " +
                      std::to_string(kMaxHeaderBytes) + " bytes");

    std::istringstream header(
        buffer_.substr(pos_, header_end - pos_));
    std::string magic, type, field;
    int version = 0;
    std::uint64_t checksum = 0;
    std::size_t payload_len = 0;
    if (!(header >> magic >> version >> type) || magic != magic_ ||
        version != version_ || !(header >> field) || field != "sum" ||
        !(header >> std::hex >> checksum >> std::dec) ||
        !(header >> field >> payload_len) || field != "len") {
        if (magic == magic_ && version != version_)
            return poison("frame version mismatch: stream speaks v" +
                          std::to_string(version) + ", decoder v" +
                          std::to_string(version_));
        return poison("malformed frame header");
    }
    if (payload_len > max_payload_)
        return poison("frame payload of " +
                      std::to_string(payload_len) +
                      " bytes exceeds the " +
                      std::to_string(max_payload_) + "-byte limit");

    const std::size_t body_start = header_end + 1;
    // Payload plus its trailing newline.
    if (buffer_.size() - body_start < payload_len + 1)
        return DecodeResult::kNeedMore;
    if (buffer_[body_start + payload_len] != '\n')
        return poison("frame payload missing terminator");
    std::string payload = buffer_.substr(body_start, payload_len);
    if (fnv1a64(payload) != checksum)
        return poison("frame payload checksum mismatch");
    out->type = std::move(type);
    out->payload = std::move(payload);
    pos_ = body_start + payload_len + 1;
    return DecodeResult::kFrame;
}

DrainResult
drainFd(int fd, FrameDecoder &decoder, DrainMode mode)
{
    char buf[16384];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return DrainResult::kOpen;
            return DrainResult::kError;
        }
        if (n == 0)
            return DrainResult::kEof;
        decoder.feed(buf, static_cast<std::size_t>(n));
        if (mode == DrainMode::kSingleRead)
            return DrainResult::kOpen;
        // A short read means the stream is (momentarily) drained; on
        // a blocking fd looping again would wait for bytes that may
        // never come.
        if (static_cast<std::size_t>(n) < sizeof buf)
            return DrainResult::kOpen;
    }
}

Status
writeAll(int fd, std::string_view bytes, int stall_timeout_ms)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Non-blocking fd (a service socket) with a full
                // kernel buffer: wait until writable, then retry.  A
                // blocking fd never reports EAGAIN, so the worker
                // pool's pipes skip this path entirely.  The timeout
                // only fires on *zero* progress for the whole window;
                // a slow-but-reading peer keeps resetting it.
                struct pollfd pfd = {fd, POLLOUT, 0};
                const int pr = ::poll(&pfd, 1, stall_timeout_ms);
                if (pr == 0)
                    return Status(
                        ErrorCode::kUnavailable,
                        "write stalled: peer accepted no bytes for " +
                            std::to_string(stall_timeout_ms) + " ms");
                continue;
            }
            return Status(ErrorCode::kInternal,
                          "pipe write failed: " +
                              std::string(std::strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
    return Status::okStatus();
}

Status
writeFrame(int fd, std::string_view type, std::string_view payload)
{
    return writeAll(fd,
                    encodeFrame(kWireMagic, kWireVersion, type,
                                payload));
}

Status
writeFrame(int fd, std::string_view magic, int version,
           std::string_view type, std::string_view payload,
           int stall_timeout_ms)
{
    return writeAll(fd, encodeFrame(magic, version, type, payload),
                    stall_timeout_ms);
}

} // namespace apex::runtime
