#ifndef APEX_RUNTIME_RECORD_H_
#define APEX_RUNTIME_RECORD_H_

#include <fstream>
#include <istream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"

/**
 * @file
 * Framed, checksummed, versioned on-disk records — the durability
 * substrate shared by the artifact cache and the sweep journal.
 *
 * A frame is one self-describing unit:
 *
 *     <magic> <version> <type> sum <fnv1a64-hex> len <bytes>\n
 *     <payload>\n
 *
 * The header names the schema (magic + version) so a format change is
 * detected *before* the payload is interpreted — a stale file reads
 * as kVersionMismatch, never as silently-deserialized garbage — and
 * the checksum covers the payload so truncation and bit rot read as
 * kCorrupt.  Both outcomes are recoverable signals, not errors: the
 * cache treats them as misses, the journal replays the valid prefix.
 *
 * RecordLog builds an append-only write-ahead log out of frames: each
 * append writes one complete frame and flushes, so a crash (power
 * loss, kill -9) can only ever lose or mangle the *tail* frame, which
 * the checksum detects on the next open.  A recovered log is
 * compacted back to its valid prefix with write-then-rename, so
 * readers never observe a partial file.
 */

namespace apex::runtime {

/** One decoded frame. */
struct FramedRecord {
    std::string type;    ///< Caller-defined record kind.
    std::string payload; ///< Checksummed opaque bytes.
};

/** Outcome of decoding one frame. */
enum class FrameStatus {
    kOk,              ///< Frame decoded; checksum verified.
    kEof,             ///< Clean end of stream (no partial frame).
    kCorrupt,         ///< Malformed header, truncation or bad sum.
    kVersionMismatch, ///< Right magic, different schema version.
};

/** Encode one frame (header + payload + trailing newline). */
std::string encodeFrame(std::string_view magic, int version,
                        std::string_view type,
                        std::string_view payload);

/**
 * Decode the next frame from @p is.  @p out is written only on kOk.
 * A frame whose magic matches but whose version differs reports
 * kVersionMismatch (schema skew); anything else unreadable reports
 * kCorrupt.
 */
FrameStatus readFrame(std::istream &is, std::string_view magic,
                      int version, FramedRecord *out);

/** What open() found on disk. */
enum class LogRecovery {
    kFresh,           ///< No usable prior log (new or truncated).
    kClean,           ///< Prior log replayed completely.
    kTailDropped,     ///< Prior log had a corrupt tail; prefix kept.
    kVersionMismatch, ///< Prior log is another schema; started fresh.
};

/**
 * Append-only, crash-safe record log.  Thread-safe appends; loading
 * happens once in open().  All I/O failures degrade to an inactive
 * log (appends become no-ops) — durability must never take down the
 * computation it protects.
 */
class RecordLog {
  public:
    RecordLog() = default;
    RecordLog(const RecordLog &) = delete;
    RecordLog &operator=(const RecordLog &) = delete;

    /**
     * Open @p path for appending.  With @p replay, existing frames of
     * the same magic/version are loaded into records() first and a
     * corrupt tail is dropped (the file is compacted to the valid
     * prefix via write-then-rename); without it, or on schema
     * mismatch, the log is restarted empty.
     */
    Status open(const std::string &path, std::string_view magic,
                int version, bool replay);

    /** True when open() succeeded and appends will hit disk. */
    bool active() const { return out_.is_open(); }

    /** How open() recovered the prior log. */
    LogRecovery recovery() const { return recovery_; }

    /** Frames replayed by open(). */
    const std::vector<FramedRecord> &records() const {
        return records_;
    }

    /** Append one frame and flush it to the OS. Thread-safe. */
    Status append(std::string_view type, std::string_view payload);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string magic_;
    int version_ = 0;
    LogRecovery recovery_ = LogRecovery::kFresh;
    std::vector<FramedRecord> records_;
    std::mutex mutex_;
    std::ofstream out_;
};

} // namespace apex::runtime

#endif // APEX_RUNTIME_RECORD_H_
