#ifndef APEX_RUNTIME_RECORD_H_
#define APEX_RUNTIME_RECORD_H_

#include <cstdint>
#include <fstream>
#include <istream>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"

/**
 * @file
 * Framed, checksummed, versioned on-disk records — the durability
 * substrate shared by the artifact cache and the sweep journal.
 *
 * A frame is one self-describing unit:
 *
 *     <magic> <version> <type> sum <fnv1a64-hex> len <bytes>\n
 *     <payload>\n
 *
 * The header names the schema (magic + version) so a format change is
 * detected *before* the payload is interpreted — a stale file reads
 * as kVersionMismatch, never as silently-deserialized garbage — and
 * the checksum covers the payload so truncation and bit rot read as
 * kCorrupt.  Both outcomes are recoverable signals, not errors: the
 * cache treats them as misses, the journal replays the valid prefix.
 *
 * RecordLog builds an append-only write-ahead log out of frames: each
 * append writes one complete frame and flushes, so a crash (power
 * loss, kill -9) can only ever lose or mangle the *tail* frame, which
 * the checksum detects on the next open.  A recovered log is
 * compacted back to its valid prefix with write-then-rename, so
 * readers never observe a partial file.
 */

namespace apex::runtime {

/** One decoded frame. */
struct FramedRecord {
    std::string type;    ///< Caller-defined record kind.
    std::string payload; ///< Checksummed opaque bytes.
};

/** Outcome of decoding one frame. */
enum class FrameStatus {
    kOk,              ///< Frame decoded; checksum verified.
    kEof,             ///< Clean end of stream (no partial frame).
    kCorrupt,         ///< Malformed header, truncation or bad sum.
    kVersionMismatch, ///< Right magic, different schema version.
};

/** Encode one frame (header + payload + trailing newline). */
std::string encodeFrame(std::string_view magic, int version,
                        std::string_view type,
                        std::string_view payload);

/**
 * Decode the next frame from @p is.  @p out is written only on kOk.
 * A frame whose magic matches but whose version differs reports
 * kVersionMismatch (schema skew); anything else unreadable reports
 * kCorrupt.
 */
FrameStatus readFrame(std::istream &is, std::string_view magic,
                      int version, FramedRecord *out);

/** What open() found on disk. */
enum class LogRecovery {
    kFresh,           ///< No usable prior log (new or truncated).
    kClean,           ///< Prior log replayed completely.
    kTailDropped,     ///< Prior log had a corrupt tail; prefix kept.
    kVersionMismatch, ///< Prior log is another schema; started fresh.
};

/**
 * Append-only, crash-safe record log.  Thread-safe appends; loading
 * happens once in open().  A write failure (disk full, I/O error)
 * deactivates the log — the file is truncated back to its last good
 * frame and the failure is latched in lastError() — and the *caller*
 * picks the policy: the cache disk tier degrades to memory-only, the
 * sweep journal fails the sweep loudly rather than silently running
 * undurable (DESIGN.md Sec. 7h).
 */
class RecordLog {
  public:
    RecordLog() = default;
    RecordLog(const RecordLog &) = delete;
    RecordLog &operator=(const RecordLog &) = delete;

    /**
     * Open @p path for appending.  With @p replay, existing frames of
     * the same magic/version are loaded into records() first and a
     * corrupt tail is dropped (the file is compacted to the valid
     * prefix via write-then-rename); without it, or on schema
     * mismatch, the log is restarted empty.
     */
    Status open(const std::string &path, std::string_view magic,
                int version, bool replay);

    /** True when open() succeeded and appends will hit disk. */
    bool active() const { return out_.is_open(); }

    /** How open() recovered the prior log. */
    LogRecovery recovery() const { return recovery_; }

    /** Frames replayed by open(). */
    const std::vector<FramedRecord> &records() const {
        return records_;
    }

    /**
     * Append one frame and flush it to the OS.  Thread-safe.  Every
     * write and flush is checked: a failure (ENOSPC, EIO) truncates
     * the file back to the last fully-flushed frame, closes the log
     * (active() turns false, later appends return the latched error)
     * and reports kResourceExhausted — a torn frame is never left on
     * disk ahead of further appends, where it would make the whole
     * suffix unreadable on the next open.
     */
    Status append(std::string_view type, std::string_view payload);

    /** The error that deactivated the log (ok while healthy).  The
     * caller decides the policy: the sweep journal fails the sweep
     * loudly, the cache disk tier degrades to memory-only. */
    Status lastError() const;

    const std::string &path() const { return path_; }

  private:
    /** Latch @p error, truncate the torn tail, close the stream.
     * Caller holds mutex_. */
    Status failAppend(Status error);

    std::string path_;
    std::string magic_;
    int version_ = 0;
    LogRecovery recovery_ = LogRecovery::kFresh;
    std::vector<FramedRecord> records_;
    mutable std::mutex mutex_;
    std::ofstream out_;
    /** Bytes of fully-flushed frames — the truncation point that
     * repairs the file after a failed append. */
    std::uintmax_t committed_bytes_ = 0;
    Status last_error_;
};

} // namespace apex::runtime

#endif // APEX_RUNTIME_RECORD_H_
