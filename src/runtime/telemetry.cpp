#include "runtime/telemetry.hpp"

#include <pthread.h>

#include "core/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>

namespace apex::telemetry {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
} // namespace internal

namespace {

// --------------------------------------------------------------------
// Fork-tolerant spinlock.  std::mutex held across fork() by another
// thread deadlocks the child; the durability fault stage forks while
// pool workers may be emitting spans.  A spinlock can simply be
// re-initialized in the pthread_atfork child handler.
// --------------------------------------------------------------------

class SpinLock {
  public:
    void lock()
    {
        while (flag_.exchange(true, std::memory_order_acquire)) {
            // Spin; critical sections below are a few instructions.
        }
    }
    void unlock() { flag_.store(false, std::memory_order_release); }
    void resetAfterFork()
    {
        flag_.store(false, std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag_{false};
};

class SpinGuard {
  public:
    explicit SpinGuard(SpinLock &l) : lock_(l) { lock_.lock(); }
    ~SpinGuard() { lock_.unlock(); }

  private:
    SpinLock &lock_;
};

// --------------------------------------------------------------------
// Clock
// --------------------------------------------------------------------

std::chrono::steady_clock::time_point
processOrigin()
{
    static const std::chrono::steady_clock::time_point origin =
        std::chrono::steady_clock::now();
    return origin;
}

// --------------------------------------------------------------------
// SPSC event ring.  The owning thread pushes; the collector drains
// under the global registration lock.  head_ (producer) and tail_
// (consumer) are monotonically increasing event indices; the slot for
// index i is i % capacity.  push() publishes the slot write with a
// release store of head_; drain() acquires head_ before reading
// slots, and push() acquires tail_ before reusing them, so slot
// accesses never race.
// --------------------------------------------------------------------

struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}

    std::vector<SpanEvent> slots;
    std::atomic<std::uint64_t> head{0}; ///< Next index to write.
    std::atomic<std::uint64_t> tail{0}; ///< Next index to read.

    /** Producer side; returns false (drop) when full. */
    bool push(SpanEvent &&ev)
    {
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        const std::uint64_t t = tail.load(std::memory_order_acquire);
        if (h - t >= slots.size())
            return false;
        slots[h % slots.size()] = std::move(ev);
        head.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side; appends everything available to @p out. */
    void drain(std::vector<SpanEvent> *out)
    {
        const std::uint64_t h = head.load(std::memory_order_acquire);
        std::uint64_t t = tail.load(std::memory_order_relaxed);
        while (t < h) {
            out->push_back(std::move(slots[t % slots.size()]));
            ++t;
        }
        tail.store(t, std::memory_order_release);
    }
};

// --------------------------------------------------------------------
// Global tracing state
// --------------------------------------------------------------------

struct TracingGlobal {
    SpinLock lock; ///< Guards rings + collected + next_thread_ord.
    std::vector<std::shared_ptr<Ring>> rings;
    std::vector<SpanEvent> collected;
    std::uint64_t next_thread_ord = 0;
    std::atomic<long long> recorded{0};
    std::atomic<long long> dropped{0};
    std::atomic<long long> evicted{0};
    std::atomic<std::size_t> ring_capacity{16384};
    // Oldest-first eviction bound on `collected`: a daemon that keeps
    // tracing on across requests must not grow without limit.
    std::atomic<std::size_t> collected_cap{131072};
};

TracingGlobal &
tracingGlobal()
{
    static TracingGlobal *g = new TracingGlobal();
    return *g;
}

// --------------------------------------------------------------------
// Per-thread state.  The ring is shared_ptr'd so the global keeps it
// alive (and drainable) after the owning thread exits.
// --------------------------------------------------------------------

struct ThreadState {
    std::shared_ptr<Ring> ring;
    std::uint64_t ord = 0;
    int lane = -1;
    int depth = 0;
    std::string cell;
    std::uint64_t trace_id = 0;
};

ThreadState &
threadState()
{
    thread_local ThreadState state;
    return state;
}

Ring &
threadRing(ThreadState &state)
{
    if (!state.ring) {
        TracingGlobal &g = tracingGlobal();
        auto ring = std::make_shared<Ring>(
            g.ring_capacity.load(std::memory_order_relaxed));
        SpinGuard guard(g.lock);
        state.ord = g.next_thread_ord++;
        g.rings.push_back(ring);
        state.ring = std::move(ring);
    }
    return *state.ring;
}

// --------------------------------------------------------------------
// JSON helpers
// --------------------------------------------------------------------

void
appendJsonEscaped(std::string *out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            *out += "\\\"";
            break;
        case '\\':
            *out += "\\\\";
            break;
        case '\n':
            *out += "\\n";
            break;
        case '\r':
            *out += "\\r";
            break;
        case '\t':
            *out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                *out += buf;
            } else {
                *out += c;
            }
        }
    }
}

std::string
jsonString(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    appendJsonEscaped(&out, s);
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/** Fixed-point microseconds: %g would round late timestamps in a
 * long trace to >1us granularity, which misorders adjacent spans in
 * the viewer. */
std::string
jsonMicros(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

// Set when the registry Impl is first created so the atfork child
// handler can reset its lock without access to the private Impl.
std::atomic<SpinLock *> g_registry_lock{nullptr};

} // namespace

// --------------------------------------------------------------------
// Tracing controls
// --------------------------------------------------------------------

void
setTracingEnabled(bool on)
{
    internal::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

void
setLane(int lane)
{
    threadState().lane = lane;
}

int
currentLane()
{
    return threadState().lane;
}

ScopedCell::~ScopedCell()
{
    if (active_)
        threadState().cell = std::move(prev_);
}

void
ScopedCell::set(std::string cell)
{
    ThreadState &state = threadState();
    if (!active_) {
        active_ = true;
        prev_ = std::move(state.cell);
    }
    state.cell = std::move(cell);
}

ScopedTraceId::~ScopedTraceId()
{
    if (active_)
        threadState().trace_id = prev_;
}

void
ScopedTraceId::set(std::uint64_t trace_id)
{
    ThreadState &state = threadState();
    if (!active_) {
        active_ = true;
        prev_ = state.trace_id;
    }
    state.trace_id = trace_id;
}

void
setThreadTraceId(std::uint64_t trace_id)
{
    threadState().trace_id = trace_id;
}

std::uint64_t
currentTraceId()
{
    return threadState().trace_id;
}

// --------------------------------------------------------------------
// Spans
// --------------------------------------------------------------------

SpanArg::SpanArg(std::string_view k, std::string_view v)
    : key(k), json_value(jsonString(v))
{
}
SpanArg::SpanArg(std::string_view k, const char *v)
    : SpanArg(k, std::string_view(v))
{
}
SpanArg::SpanArg(std::string_view k, const std::string &v)
    : SpanArg(k, std::string_view(v))
{
}
SpanArg::SpanArg(std::string_view k, int v)
    : key(k), json_value(std::to_string(v))
{
}
SpanArg::SpanArg(std::string_view k, long v)
    : key(k), json_value(std::to_string(v))
{
}
SpanArg::SpanArg(std::string_view k, long long v)
    : key(k), json_value(std::to_string(v))
{
}
SpanArg::SpanArg(std::string_view k, double v)
    : key(k), json_value(jsonNumber(v))
{
}

void
Span::begin(std::string_view name)
{
    ThreadState &state = threadState();
    active_ = true;
    name_.assign(name);
    scope_ = state.cell;
    depth_ = state.depth++;
    t0_ns_ = monotonicNanos();
}

void
Span::begin(std::string_view name,
            std::initializer_list<SpanArg> args)
{
    for (const SpanArg &arg : args) {
        if (!args_.empty())
            args_ += ',';
        args_ += jsonString(arg.key);
        args_ += ':';
        args_ += arg.json_value;
    }
    begin(name);
}

Span::~Span()
{
    if (active_)
        end();
}

void
Span::end()
{
    const std::uint64_t t1_ns = monotonicNanos();
    ThreadState &state = threadState();
    --state.depth;

    SpanEvent ev;
    ev.name = std::move(name_);
    ev.scope = std::move(scope_);
    ev.args = std::move(args_);
    ev.ts_us = static_cast<double>(t0_ns_) / 1e3;
    ev.dur_us = static_cast<double>(t1_ns - t0_ns_) / 1e3;
    ev.lane = state.lane;
    ev.depth = depth_;
    ev.trace_id = state.trace_id;

    TracingGlobal &g = tracingGlobal();
    Ring &ring = threadRing(state);
    ev.thread_ord = state.ord;
    if (ring.push(std::move(ev))) {
        g.recorded.fetch_add(1, std::memory_order_relaxed);
    } else {
        g.dropped.fetch_add(1, std::memory_order_relaxed);
        // Mirror ring drops into the always-on registry so a metrics
        // dump reveals truncated traces without draining the rings.
        static Counter &dropped = counter("apex.trace.dropped");
        dropped.add(1);
    }
}

// --------------------------------------------------------------------
// Collector
// --------------------------------------------------------------------

void
collect()
{
    TracingGlobal &g = tracingGlobal();
    SpinGuard guard(g.lock);
    for (const std::shared_ptr<Ring> &ring : g.rings)
        ring->drain(&g.collected);
    // Bound the retained store: a daemon traces indefinitely, and an
    // unbounded `collected` would be a slow leak.  Evict oldest-first
    // and count it, so served trace slices can report the loss.
    const std::size_t cap =
        g.collected_cap.load(std::memory_order_relaxed);
    if (g.collected.size() > cap) {
        const std::size_t excess = g.collected.size() - cap;
        g.collected.erase(g.collected.begin(),
                          g.collected.begin() +
                              static_cast<std::ptrdiff_t>(excess));
        g.evicted.fetch_add(static_cast<long long>(excess),
                            std::memory_order_relaxed);
    }
}

const std::vector<SpanEvent> &
events()
{
    return tracingGlobal().collected;
}

long long
spansRecorded()
{
    return tracingGlobal().recorded.load(std::memory_order_relaxed);
}

long long
droppedEvents()
{
    return tracingGlobal().dropped.load(std::memory_order_relaxed);
}

long long
evictedEvents()
{
    return tracingGlobal().evicted.load(std::memory_order_relaxed);
}

std::vector<SpanEvent>
eventsForTrace(std::uint64_t trace_id)
{
    collect();
    TracingGlobal &g = tracingGlobal();
    SpinGuard guard(g.lock);
    std::vector<SpanEvent> out;
    for (const SpanEvent &ev : g.collected)
        if (ev.trace_id == trace_id)
            out.push_back(ev);
    return out;
}

void
setCollectedCap(std::size_t cap)
{
    tracingGlobal().collected_cap.store(cap == 0 ? 1 : cap,
                                        std::memory_order_relaxed);
}

void
resetTracingForTesting()
{
    TracingGlobal &g = tracingGlobal();
    collect();
    SpinGuard guard(g.lock);
    g.collected.clear();
    g.recorded.store(0, std::memory_order_relaxed);
    g.dropped.store(0, std::memory_order_relaxed);
    g.evicted.store(0, std::memory_order_relaxed);
}

void
setRingCapacityForTesting(std::size_t capacity)
{
    tracingGlobal().ring_capacity.store(
        capacity == 0 ? 1 : capacity, std::memory_order_relaxed);
}

namespace {

// One Chrome tid per emitting context: worker lanes are their lane
// id; non-pool threads get 1000 + thread ordinal so they sort after
// the lanes in the viewer.
long long
tidFor(const SpanEvent &ev)
{
    if (ev.lane >= 0)
        return ev.lane;
    return 1000 + static_cast<long long>(ev.thread_ord);
}

std::string
tidName(const SpanEvent &ev)
{
    return ev.lane >= 0 ? "lane " + std::to_string(ev.lane)
                        : "thread " + std::to_string(ev.thread_ord);
}

/** Render one complete ("X") span event.  @p ts_base_us is
 * subtracted from the timestamp (0 for single-process traces). */
void
appendSpanJson(std::string *out, int pid, const SpanEvent &ev,
               double ts_base_us)
{
    *out += "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
            ",\"tid\":" + std::to_string(tidFor(ev)) + ",\"name\":" +
            jsonString(ev.name) + ",\"cat\":\"apex\",\"ts\":" +
            jsonMicros(ev.ts_us - ts_base_us) + ",\"dur\":" +
            jsonMicros(ev.dur_us) + ",\"args\":{";
    bool first_arg = true;
    if (!ev.scope.empty()) {
        *out += "\"cell\":" + jsonString(ev.scope);
        first_arg = false;
    }
    if (!ev.args.empty()) {
        if (!first_arg)
            *out += ',';
        *out += ev.args;
        first_arg = false;
    }
    if (ev.trace_id != 0) {
        if (!first_arg)
            *out += ',';
        char buf[32];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(ev.trace_id));
        *out += "\"trace_id\":\"";
        *out += buf;
        *out += '"';
        first_arg = false;
    }
    if (!first_arg)
        *out += ',';
    *out += "\"depth\":" + std::to_string(ev.depth) + "}}";
}

/** thread_name metadata events for every tid present in @p sorted. */
void
appendThreadNames(std::string *out, bool *first, int pid,
                  const std::vector<const SpanEvent *> &sorted,
                  const char *lane_label)
{
    std::map<long long, std::string> tid_names;
    for (const SpanEvent *ev : sorted) {
        const long long tid = tidFor(*ev);
        if (tid_names.count(tid))
            continue;
        tid_names[tid] =
            ev->lane >= 0
                ? std::string(lane_label) + " " +
                      std::to_string(ev->lane)
                : tidName(*ev);
    }
    for (const auto &[tid, name] : tid_names) {
        if (!*first)
            *out += ',';
        *first = false;
        *out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                ",\"tid\":" + std::to_string(tid) +
                ",\"name\":\"thread_name\",\"args\":{\"name\":" +
                jsonString(name) + "}}";
    }
}

std::vector<const SpanEvent *>
sortedByTs(const std::vector<SpanEvent> &events)
{
    std::vector<const SpanEvent *> sorted;
    sorted.reserve(events.size());
    for (const SpanEvent &ev : events)
        sorted.push_back(&ev);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const SpanEvent *a, const SpanEvent *b) {
                         return a->ts_us < b->ts_us;
                     });
    return sorted;
}

} // namespace

std::string
chromeTraceJson()
{
    collect();
    TracingGlobal &g = tracingGlobal();

    std::vector<const SpanEvent *> sorted;
    {
        SpinGuard guard(g.lock);
        sorted.reserve(g.collected.size());
        for (const SpanEvent &ev : g.collected)
            sorted.push_back(&ev);
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const SpanEvent *a, const SpanEvent *b) {
                         return a->ts_us < b->ts_us;
                     });

    std::string out;
    out.reserve(256 + sorted.size() * 160);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    appendThreadNames(&out, &first, 1, sorted, "lane");
    for (const SpanEvent *ev : sorted) {
        if (!first)
            out += ',';
        first = false;
        appendSpanJson(&out, 1, *ev, 0.0);
    }
    // Loss accounting: a reader can tell a complete trace from one
    // truncated by ring overflow or collector eviction.
    out += "],\"otherData\":{\"recorded\":" +
           std::to_string(spansRecorded()) + ",\"dropped\":" +
           std::to_string(droppedEvents()) + ",\"evicted\":" +
           std::to_string(evictedEvents()) + "}}";
    return out;
}

std::string
chromeTraceJsonMerged(const std::vector<TraceProcessSlice> &slices)
{
    std::string out;
    std::size_t total = 0;
    for (const TraceProcessSlice &slice : slices)
        total += slice.events.size();
    out.reserve(512 + total * 160);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceProcessSlice &slice : slices) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"ph\":\"M\",\"pid\":" +
               std::to_string(slice.pid) +
               ",\"tid\":0,\"name\":\"process_name\",\"args\":"
               "{\"name\":" +
               jsonString(slice.process_name) + "}}";
    }
    for (const TraceProcessSlice &slice : slices) {
        const std::vector<const SpanEvent *> sorted =
            sortedByTs(slice.events);
        // Rebase each process to its own first event: the slices'
        // steady clocks share no epoch, so only intra-process offsets
        // are meaningful; rebasing at least starts the lanes together.
        const double base = sorted.empty() ? 0.0 : sorted[0]->ts_us;
        appendThreadNames(&out, &first, slice.pid, sorted, "worker");
        for (const SpanEvent *ev : sorted) {
            if (!first)
                out += ',';
            first = false;
            appendSpanJson(&out, slice.pid, *ev, base);
        }
    }
    out += "],\"otherData\":{\"dropped\":{";
    bool first_drop = true;
    for (const TraceProcessSlice &slice : slices) {
        if (!first_drop)
            out += ',';
        first_drop = false;
        out += jsonString(slice.process_name) + ":" +
               std::to_string(slice.dropped);
    }
    out += "}}}";
    return out;
}

// --------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<long long>[bounds_.size() + 1])
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    std::size_t i =
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin();
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t expected =
        sum_bits_.load(std::memory_order_relaxed);
    for (;;) {
        double current;
        std::memcpy(&current, &expected, sizeof current);
        const double next = current + v;
        std::uint64_t next_bits;
        std::memcpy(&next_bits, &next, sizeof next_bits);
        if (sum_bits_.compare_exchange_weak(
                expected, next_bits, std::memory_order_relaxed))
            break;
    }
}

double
Histogram::sum() const
{
    const std::uint64_t bits =
        sum_bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

long long
Histogram::bucketCount(std::size_t i) const
{
    if (i > bounds_.size())
        return 0;
    return buckets_[i].load(std::memory_order_relaxed);
}

const std::vector<double> &
defaultLatencyBucketsMs()
{
    static const std::vector<double> *buckets =
        new std::vector<double>{0.05, 0.1,  0.25, 0.5,  1.0,  2.5,
                                5.0,  10.0, 25.0, 50.0, 100.0, 250.0,
                                500.0, 1000.0, 2500.0, 10000.0};
    return *buckets;
}

struct Registry::Impl {
    mutable SpinLock lock;
    // std::map keeps jsonDump() name-sorted; unique_ptr keeps metric
    // addresses stable across rehash-free inserts.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms;
};

Registry &
Registry::instance()
{
    static Registry *registry = new Registry();
    return *registry;
}

Registry::Impl &
Registry::impl() const
{
    static Impl *impl = [] {
        Impl *i = new Impl();
        g_registry_lock.store(&i->lock, std::memory_order_release);
        return i;
    }();
    return *impl;
}

Counter &
Registry::counter(std::string_view name)
{
    Impl &i = impl();
    SpinGuard guard(i.lock);
    auto it = i.counters.find(name);
    if (it == i.counters.end())
        it = i.counters
                 .emplace(std::string(name),
                          std::unique_ptr<Counter>(new Counter()))
                 .first;
    return *it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    Impl &i = impl();
    SpinGuard guard(i.lock);
    auto it = i.gauges.find(name);
    if (it == i.gauges.end())
        it = i.gauges
                 .emplace(std::string(name),
                          std::unique_ptr<Gauge>(new Gauge()))
                 .first;
    return *it->second;
}

Histogram &
Registry::histogram(std::string_view name,
                    const std::vector<double> &bounds)
{
    Impl &i = impl();
    SpinGuard guard(i.lock);
    auto it = i.histograms.find(name);
    if (it == i.histograms.end())
        it = i.histograms
                 .emplace(std::string(name),
                          std::unique_ptr<Histogram>(
                              new Histogram(bounds)))
                 .first;
    return *it->second;
}

std::string
Registry::jsonDump() const
{
    Impl &i = impl();
    SpinGuard guard(i.lock);

    std::string out = "{\"apex_metrics\":1,\"counters\":[";
    bool first = true;
    for (const auto &[name, c] : i.counters) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":" + jsonString(name) + ",\"value\":" +
               std::to_string(c->value()) + "}";
    }
    out += "],\"gauges\":[";
    first = true;
    for (const auto &[name, g] : i.gauges) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":" + jsonString(name) + ",\"value\":" +
               jsonNumber(g->value()) + "}";
    }
    out += "],\"histograms\":[";
    first = true;
    for (const auto &[name, h] : i.histograms) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":" + jsonString(name) + ",\"bounds\":[";
        for (std::size_t b = 0; b < h->bounds().size(); ++b) {
            if (b)
                out += ',';
            out += jsonNumber(h->bounds()[b]);
        }
        out += "],\"counts\":[";
        for (std::size_t b = 0; b <= h->bounds().size(); ++b) {
            if (b)
                out += ',';
            out += std::to_string(h->bucketCount(b));
        }
        out += "],\"sum\":" + jsonNumber(h->sum()) + ",\"count\":" +
               std::to_string(h->count()) + "}";
    }
    out += "]}";
    return out;
}

void
Registry::resetForTesting()
{
    Impl &i = impl();
    SpinGuard guard(i.lock);
    for (auto &[name, c] : i.counters)
        c->value_.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : i.gauges)
        g->value_.store(0.0, std::memory_order_relaxed);
    for (auto &[name, h] : i.histograms) {
        for (std::size_t b = 0; b <= h->bounds_.size(); ++b)
            h->buckets_[b].store(0, std::memory_order_relaxed);
        h->count_.store(0, std::memory_order_relaxed);
        h->sum_bits_.store(0, std::memory_order_relaxed);
    }
}

PeriodicMetricsWriter::PeriodicMetricsWriter(std::string path,
                                             double interval_ms)
    : path_(std::move(path)), interval_ms_(interval_ms)
{
    thread_ = std::thread([this] { threadMain(); });
}

PeriodicMetricsWriter::~PeriodicMetricsWriter()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    (void)flushNow();
}

bool
PeriodicMetricsWriter::flushNow()
{
    // Write-to-temp + rename keeps every observed state of the file a
    // complete dump; rename(2) is atomic within a filesystem.  Any
    // failure leaves the previous good file untouched, counts
    // apex.resource.metrics_flush_failures, and the periodic thread
    // simply tries again next interval — metrics are an observability
    // aid, never worth crashing the process over.
    const std::string dump = Registry::instance().jsonDump();
    const std::string tmp = path_ + ".tmp";
    bool failed = !checkFault(FaultStage::kDiskFull).ok();
    if (!failed) {
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (f == nullptr) {
            counter("apex.resource.metrics_flush_failures").add(1);
            return false;
        }
        const bool wrote =
            std::fwrite(dump.data(), 1, dump.size(), f) ==
            dump.size();
        failed = !wrote || std::fclose(f) != 0 ||
                 std::rename(tmp.c_str(), path_.c_str()) != 0;
    }
    if (failed) {
        std::remove(tmp.c_str());
        counter("apex.resource.metrics_flush_failures").add(1);
        return false;
    }
    flushes_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
PeriodicMetricsWriter::threadMain()
{
    const auto interval = std::chrono::duration<double, std::milli>(
        interval_ms_ > 0 ? interval_ms_ : 1000.0);
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        if (cv_.wait_for(lock, interval, [this] { return stop_; }))
            return; // Destructor performs the final flush.
        lock.unlock();
        (void)flushNow();
        lock.lock();
    }
}

StageTimer::StageTimer(Histogram &h)
    : histogram_(h), t0_ns_(monotonicNanos())
{
}

StageTimer::~StageTimer()
{
    histogram_.observe(
        static_cast<double>(monotonicNanos() - t0_ns_) / 1e6);
}

std::uint64_t
monotonicNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processOrigin())
            .count());
}

// --------------------------------------------------------------------
// Fork safety: a fork while another thread holds a telemetry spinlock
// would leave it locked forever in the child (the durability fault
// stage forks + SIGKILLs children mid-sweep).  Reset every lock in
// the child; the child's telemetry data is disposable.
// --------------------------------------------------------------------

namespace {

void
atforkChild()
{
    tracingGlobal().lock.resetAfterFork();
    if (SpinLock *lock =
            g_registry_lock.load(std::memory_order_acquire))
        lock->resetAfterFork();
}

struct AtforkInstaller {
    AtforkInstaller()
    {
        pthread_atfork(nullptr, nullptr, &atforkChild);
    }
};
AtforkInstaller g_atfork_installer;

} // namespace

} // namespace apex::telemetry
