#include "runtime/cache.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/fault.hpp"
#include "runtime/eventlog.hpp"
#include "runtime/record.hpp"
#include "runtime/telemetry.hpp"

namespace apex::runtime {

namespace fs = std::filesystem;

namespace {

/** On-disk entry schema: bump when the framing or payload layout of
 * disk entries changes.  Old entries then read as version mismatches
 * (counted, treated as misses) instead of being misparsed. */
constexpr std::string_view kCacheMagic = "apexcache";
constexpr int kCacheVersion = 2;

/** The process-wide `apex.cache.*` counters behind CacheStats. */
struct CacheCounters {
    telemetry::Counter &hits = telemetry::counter("apex.cache.hits");
    telemetry::Counter &misses =
        telemetry::counter("apex.cache.misses");
    telemetry::Counter &memory_hits =
        telemetry::counter("apex.cache.memory_hits");
    telemetry::Counter &disk_hits =
        telemetry::counter("apex.cache.disk_hits");
    telemetry::Counter &insertions =
        telemetry::counter("apex.cache.insertions");
    telemetry::Counter &evictions =
        telemetry::counter("apex.cache.evictions");
    telemetry::Counter &disk_writes =
        telemetry::counter("apex.cache.disk_writes");
    telemetry::Counter &corrupt_dropped =
        telemetry::counter("apex.cache.corrupt_dropped");
    telemetry::Counter &version_mismatches =
        telemetry::counter("apex.cache.version_mismatches");
};

CacheCounters &
cacheCounters()
{
    static CacheCounters *counters = new CacheCounters();
    return *counters;
}

CacheStats
globalCacheStats()
{
    const CacheCounters &c = cacheCounters();
    CacheStats s;
    s.hits = static_cast<long>(c.hits.value());
    s.misses = static_cast<long>(c.misses.value());
    s.memory_hits = static_cast<long>(c.memory_hits.value());
    s.disk_hits = static_cast<long>(c.disk_hits.value());
    s.insertions = static_cast<long>(c.insertions.value());
    s.evictions = static_cast<long>(c.evictions.value());
    s.disk_writes = static_cast<long>(c.disk_writes.value());
    s.corrupt_dropped = static_cast<long>(c.corrupt_dropped.value());
    s.version_mismatches =
        static_cast<long>(c.version_mismatches.value());
    return s;
}

} // namespace

std::uint64_t
fnv1a64(std::string_view data, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

ArtifactCache::ArtifactCache(CacheOptions options)
    : options_(std::move(options)), baseline_(globalCacheStats())
{
    // Surface the degradation latch in every metrics dump from the
    // start, so observers can alert on 0 -> 1 instead of on absence.
    if (!options_.disk_dir.empty())
        telemetry::gauge("apex.cache.disk_disabled").set(0.0);
}

std::string
ArtifactCache::diskPathFor(const std::string &key) const
{
    return (fs::path(options_.disk_dir) /
            (hex64(fnv1a64(key)) + ".apexcache"))
        .string();
}

void
ArtifactCache::insertMemory(const std::string &key, std::string value)
{
    // Caller holds mutex_.
    if (options_.max_memory_entries == 0)
        return;
    if (auto it = index_.find(key); it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > options_.max_memory_entries) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        cacheCounters().evictions.add(1);
    }
}

std::optional<std::string>
ArtifactCache::get(const std::string &key)
{
    APEX_SPAN("cache.get");
    CacheCounters &counters = cacheCounters();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (auto it = index_.find(key); it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            counters.hits.add(1);
            counters.memory_hits.add(1);
            return it->second->second;
        }
    }
    if (diskUsable()) {
        if (auto value = getFromDisk(key)) {
            std::lock_guard<std::mutex> lock(mutex_);
            insertMemory(key, *value);
            counters.hits.add(1);
            counters.disk_hits.add(1);
            return value;
        }
    }
    counters.misses.add(1);
    return std::nullopt;
}

void
ArtifactCache::put(const std::string &key, const std::string &value)
{
    APEX_SPAN("cache.put");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cacheCounters().insertions.add(1);
        insertMemory(key, value);
    }
    if (diskUsable())
        putToDisk(key, value);
}

std::optional<std::string>
ArtifactCache::getFromDisk(const std::string &key)
{
    const std::string path = diskPathFor(key);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;

    auto drop = [&](telemetry::Counter &counter)
        -> std::optional<std::string> {
        is.close();
        std::error_code ec;
        fs::remove(path, ec);
        counter.add(1);
        return std::nullopt;
    };

    FramedRecord record;
    switch (readFrame(is, kCacheMagic, kCacheVersion, &record)) {
      case FrameStatus::kOk:
        break;
      case FrameStatus::kVersionMismatch:
        // An intact entry from another schema version: count it apart
        // from corruption so upgrades over an old dir are observable.
        return drop(cacheCounters().version_mismatches);
      default:
        return drop(cacheCounters().corrupt_dropped);
    }

    // Payload layout: "key <len>\n<key bytes><value bytes>".  The
    // embedded key disambiguates file-name hash collisions.
    std::istringstream ps(record.payload);
    std::string field;
    std::size_t key_len = 0;
    if (!(ps >> field >> key_len) || field != "key")
        return drop(cacheCounters().corrupt_dropped);
    ps.get(); // newline after the key header
    std::string stored_key(key_len, '\0');
    if (!ps.read(stored_key.data(),
                 static_cast<std::streamsize>(key_len)) ||
        stored_key != key)
        return drop(cacheCounters().corrupt_dropped);
    std::string value(record.payload.substr(
        static_cast<std::size_t>(ps.tellg())));
    return value;
}

void
ArtifactCache::putToDisk(const std::string &key,
                         const std::string &value)
{
    if (const Status f = checkFault(FaultStage::kDiskFull); !f.ok()) {
        disableDisk(f.message());
        return;
    }
    bool dir_ready;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!disk_dir_ready_) {
            std::error_code ec;
            fs::create_directories(options_.disk_dir, ec);
            disk_dir_ready_ = !ec;
        }
        dir_ready = disk_dir_ready_;
    }
    if (!dir_ready) {
        disableDisk("cannot create cache directory '" +
                    options_.disk_dir + "'");
        return;
    }
    const std::string path = diskPathFor(key);
    // Write-then-rename so readers never observe a partial entry; the
    // tmp name is per-thread so concurrent writers cannot interleave.
    std::ostringstream tid;
    tid << std::this_thread::get_id();
    const std::string tmp = path + ".tmp." + tid.str();
    bool wrote = false;
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (os) {
            std::ostringstream payload;
            payload << "key " << key.size() << '\n' << key << value;
            os << encodeFrame(kCacheMagic, kCacheVersion, "entry",
                              payload.str());
            os.flush();
            wrote = static_cast<bool>(os);
        }
    }
    std::error_code ec;
    if (!wrote) {
        fs::remove(tmp, ec);
        disableDisk("cannot write cache entry '" + tmp +
                    "' (disk full?)");
        return;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code rm_ec;
        fs::remove(tmp, rm_ec);
        disableDisk("cannot publish cache entry '" + path +
                    "': " + ec.message());
        return;
    }
    cacheCounters().disk_writes.add(1);
}

void
ArtifactCache::disableDisk(const std::string &why)
{
    telemetry::counter("apex.cache.disk_write_failures").add(1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (disk_disabled_)
            return; // Already latched: one log line per episode.
        disk_disabled_ = true;
        const double ms = options_.disk_reprobe_ms;
        next_probe_ =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(
                    ms > 0 ? ms : 0.0));
    }
    telemetry::gauge("apex.cache.disk_disabled").set(1.0);
    eventlog::emit(eventlog::Level::kWarn, "cache",
                   "disk tier disabled (" + why +
                       "); continuing memory-only",
                   telemetry::currentTraceId());
}

bool
ArtifactCache::diskUsable()
{
    if (options_.disk_dir.empty())
        return false;
    std::unique_lock<std::mutex> lock(mutex_);
    if (!disk_disabled_)
        return true;
    if (options_.disk_reprobe_ms < 0)
        return false; // Re-probing turned off: memory-only for good.
    const auto now = std::chrono::steady_clock::now();
    if (now < next_probe_)
        return false;
    // Claim this probe window before dropping the lock, so a burst of
    // concurrent accesses performs one probe, not a stampede.
    next_probe_ =
        now + std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      options_.disk_reprobe_ms));
    lock.unlock();

    // A tiny real write is the only trustworthy "space is back"
    // signal; a statvfs free-block count can be stale under quota.
    const std::string probe =
        (fs::path(options_.disk_dir) / ".apexprobe").string();
    bool ok = false;
    {
        std::ofstream os(probe, std::ios::binary | std::ios::trunc);
        if (os) {
            os << "apexprobe\n";
            os.flush();
            ok = static_cast<bool>(os);
        }
    }
    std::error_code ec;
    fs::remove(probe, ec);
    if (!ok)
        return false;

    lock.lock();
    disk_disabled_ = false;
    telemetry::gauge("apex.cache.disk_disabled").set(0.0);
    telemetry::counter("apex.cache.disk_reenabled").add(1);
    eventlog::emit(eventlog::Level::kInfo, "cache",
                   "disk tier re-enabled (probe write succeeded)");
    return true;
}

bool
ArtifactCache::diskDisabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return disk_disabled_;
}

CacheStats
ArtifactCache::stats() const
{
    const CacheStats now = globalCacheStats();
    CacheStats s;
    s.hits = now.hits - baseline_.hits;
    s.misses = now.misses - baseline_.misses;
    s.memory_hits = now.memory_hits - baseline_.memory_hits;
    s.disk_hits = now.disk_hits - baseline_.disk_hits;
    s.insertions = now.insertions - baseline_.insertions;
    s.evictions = now.evictions - baseline_.evictions;
    s.disk_writes = now.disk_writes - baseline_.disk_writes;
    s.corrupt_dropped = now.corrupt_dropped - baseline_.corrupt_dropped;
    s.version_mismatches =
        now.version_mismatches - baseline_.version_mismatches;
    return s;
}

std::size_t
ArtifactCache::memoryEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

} // namespace apex::runtime
