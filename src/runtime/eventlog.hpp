#ifndef APEX_RUNTIME_EVENTLOG_H_
#define APEX_RUNTIME_EVENTLOG_H_

#include <cstdint>
#include <string>
#include <string_view>

/**
 * @file
 * Structured event log: the one code path through which long-running
 * APEX processes (the daemon above all) report operational events.
 *
 * Each event is one JSONL line:
 *
 *     {"ts_ms":<unix epoch ms>,"level":"warn",
 *      "component":"service.admission",
 *      "message":"admission queue saturated (depth 8); shedding load",
 *      "trace_id":"00000000000000fe"}        // omitted when 0
 *
 * Properties (DESIGN.md Sec. 7i):
 *
 *  - **Leveled**: events below the configured level are dropped at
 *    the call site (one comparison; no formatting).
 *  - **Rate-bounded**: at most `rate_max_per_window` lines per
 *    `rate_window_ms` window; overflow is counted (counter
 *    `apex.log.suppressed`) and summarized in one line when the
 *    window rolls, so a log storm costs bounded bytes and the loss
 *    is visible.  Call sites keep their own one-episode latches
 *    (queue saturation, cache disk tier) — the rate bound is the
 *    backstop, not the dedup mechanism.
 *  - **Trace-correlated**: events carry the request trace id when the
 *    caller has one, so `grep trace_id daemon.log` follows a single
 *    request through admission, execution, and failure paths.
 *
 * Unconfigured (no configure() call, or an empty path), emit() falls
 * back to one plain line on stderr — batch CLI runs keep today's
 * human-readable diagnostics without opting into JSONL.
 *
 * Thread-safe: emit() may be called from any thread.  configure() and
 * shutdown() are process-setup APIs; call them from main().
 */

namespace apex::eventlog {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Lower-case level name ("debug", "info", "warn", "error"). */
const char *levelName(Level level);

/** Parse "debug"/"info"/"warn"/"error" (as in --log-level). */
bool parseLevel(std::string_view text, Level *out);

struct Options {
    std::string path;             ///< JSONL sink ("" = stderr JSONL).
    Level level = Level::kInfo;   ///< Minimum level emitted.
    double rate_window_ms = 1000; ///< Rate-bound window length.
    int rate_max_per_window = 200; ///< Max lines per window.
};

/** Install the structured sink.  False (with the reason on stderr)
 * when @p options.path cannot be opened for append; the previous
 * configuration (or the stderr fallback) then stays in effect. */
bool configure(const Options &options);

/** Flush + close the sink and return to the stderr fallback. */
void shutdown();

/** True after a successful configure() (structured mode). */
bool configured();

/** Emit one event.  @p component names the subsystem dot-path
 * ("service.admission", "cache", "worker"); @p trace_id ties the
 * event to a request (0 = none). */
void emit(Level level, std::string_view component,
          std::string_view message, std::uint64_t trace_id = 0);

/** Lines suppressed by the rate bound since configure(). */
long long suppressedLines();

} // namespace apex::eventlog

#endif // APEX_RUNTIME_EVENTLOG_H_
