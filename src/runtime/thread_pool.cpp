#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <exception>
#include <utility>

#include "runtime/telemetry.hpp"

namespace apex::runtime {

namespace {

/** Which pool (and lane) the current thread is a worker of. */
thread_local ThreadPool *tl_pool = nullptr;
thread_local int tl_lane = -1;

telemetry::Counter &
tasksRunCounter()
{
    static telemetry::Counter *c =
        &telemetry::counter("apex.pool.tasks_run");
    return *c;
}

telemetry::Counter &
tasksStolenCounter()
{
    static telemetry::Counter *c =
        &telemetry::counter("apex.pool.tasks_stolen");
    return *c;
}

PoolStats
globalPoolStats()
{
    PoolStats s;
    s.tasks_run = static_cast<long>(tasksRunCounter().value());
    s.tasks_stolen = static_cast<long>(tasksStolenCounter().value());
    return s;
}

} // namespace

int
ThreadPool::defaultParallelism()
{
    if (const char *env = std::getenv("APEX_JOBS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int parallelism)
    : parallelism_(std::max(1, parallelism)),
      baseline_(globalPoolStats())
{
    const int workers = parallelism_ - 1;
    lanes_.reserve(workers + 1);
    for (int i = 0; i < workers + 1; ++i)
        lanes_.push_back(std::make_unique<Lane>());
    threads_.reserve(workers);
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_relaxed);
    wake_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    if (parallelism_ <= 1) {
        // Sequential pool: run inline, preserving submission order.
        fn();
        tasksRunCounter().add(1);
        return;
    }
    const int lane = (tl_pool == this)
                         ? tl_lane
                         : static_cast<int>(lanes_.size()) - 1;
    {
        std::lock_guard<std::mutex> lock(lanes_[lane]->mutex);
        lanes_[lane]->deque.push_back(std::move(fn));
    }
    pending_.fetch_add(1, std::memory_order_release);
    wake_cv_.notify_one();
}

bool
ThreadPool::popLane(int lane, bool back, std::function<void()> *fn)
{
    Lane &l = *lanes_[lane];
    std::lock_guard<std::mutex> lock(l.mutex);
    if (l.deque.empty())
        return false;
    if (back) {
        *fn = std::move(l.deque.back());
        l.deque.pop_back();
    } else {
        *fn = std::move(l.deque.front());
        l.deque.pop_front();
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

bool
ThreadPool::stealFrom(int self, std::function<void()> *fn)
{
    const int n = static_cast<int>(lanes_.size());
    for (int i = 1; i <= n; ++i) {
        const int victim = (self + i) % n;
        if (victim == self)
            continue;
        if (popLane(victim, /*back=*/false, fn)) {
            tasksStolenCounter().add(1);
            return true;
        }
    }
    return false;
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> fn;
    const bool own_worker = tl_pool == this;
    const int self = own_worker ? tl_lane
                                : static_cast<int>(lanes_.size()) - 1;
    bool got = popLane(self, /*back=*/own_worker, &fn);
    if (!got)
        got = stealFrom(self, &fn);
    if (!got)
        return false;
    fn();
    tasksRunCounter().add(1);
    return true;
}

void
ThreadPool::workerLoop(int self)
{
    tl_pool = this;
    tl_lane = self;
    telemetry::setLane(self);
    while (!stop_.load(std::memory_order_relaxed)) {
        if (tryRunOne())
            continue;
        std::unique_lock<std::mutex> lock(wake_mutex_);
        wake_cv_.wait_for(lock, std::chrono::milliseconds(10), [&] {
            return stop_.load(std::memory_order_relaxed) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
    }
    tl_pool = nullptr;
    tl_lane = -1;
    telemetry::setLane(-1);
}

PoolStats
ThreadPool::stats() const
{
    const PoolStats now = globalPoolStats();
    PoolStats s;
    s.tasks_run = now.tasks_run - baseline_.tasks_run;
    s.tasks_stolen = now.tasks_stolen - baseline_.tasks_stolen;
    return s;
}

void
parallelForChunked(ThreadPool *pool, int n, int chunk,
                   std::function<void(int)> fn)
{
    if (n <= 0)
        return;
    chunk = std::max(1, chunk);
    if (!pool || pool->parallelism() <= 1 || n <= chunk) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }

    struct State {
        std::function<void(int)> fn;
        int n = 0;
        int chunk = 1;
        std::atomic<int> next{0};
        std::atomic<int> done{0};
        std::mutex error_mutex;
        std::exception_ptr error;
        int error_index = INT_MAX;
    };
    auto state = std::make_shared<State>();
    state->fn = std::move(fn);
    state->n = n;
    state->chunk = chunk;

    auto drain = [state] {
        for (;;) {
            const int base = state->next.fetch_add(
                state->chunk, std::memory_order_relaxed);
            if (base >= state->n)
                break;
            const int end = std::min(state->n, base + state->chunk);
            for (int i = base; i < end; ++i) {
                try {
                    state->fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(
                        state->error_mutex);
                    if (i < state->error_index) {
                        state->error_index = i;
                        state->error = std::current_exception();
                    }
                }
                state->done.fetch_add(1, std::memory_order_release);
            }
        }
    };

    const int blocks = (n + chunk - 1) / chunk;
    const int helpers = std::min(pool->parallelism() - 1, blocks - 1);
    for (int h = 0; h < helpers; ++h)
        pool->submit(drain);
    drain(); // the caller is a full lane

    // All indices are claimed; help the pool until they all finish
    // (a helper may still be mid-iteration on another thread).
    while (state->done.load(std::memory_order_acquire) < n) {
        if (!pool->tryRunOne())
            std::this_thread::yield();
    }
    if (state->error)
        std::rethrow_exception(state->error);
}

void
parallelFor(ThreadPool *pool, int n, std::function<void(int)> fn)
{
    parallelForChunked(pool, n, 1, std::move(fn));
}

} // namespace apex::runtime
