#ifndef APEX_RUNTIME_WIRE_H_
#define APEX_RUNTIME_WIRE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "core/status.hpp"
#include "runtime/record.hpp"

/**
 * @file
 * Length-framed, checksummed pipe protocol — the wire layer of the
 * supervised worker pool (runtime/worker_pool.hpp).
 *
 * Frames reuse the exact on-disk format of runtime/record.hpp
 * (`<magic> <version> <type> sum <fnv1a64-hex> len <N>\n<payload>\n`),
 * so the same header-before-payload discipline that protects the WAL
 * protects the pipes: a schema skew is detected before the payload is
 * interpreted, and a torn or bit-flipped payload reads as corruption,
 * never as a silently-wrong result.  The difference from a file is
 * that a pipe delivers bytes incrementally, so decoding needs an
 * incremental front end: FrameDecoder buffers fed bytes and
 * distinguishes "frame complete", "need more bytes" and "stream is
 * poisoned".
 *
 * Corruption on a pipe is not recoverable the way a WAL tail is:
 * once framing is lost there is no resynchronization point, so a
 * corrupt decoder stays corrupt and the supervisor's only safe move
 * is to kill and restart the worker behind it.  That is exactly the
 * supervision-tree contract — a garbled worker is indistinguishable
 * from a crashed one.
 */

namespace apex::runtime {

/** Magic + schema version of worker-pool pipe frames. */
inline constexpr std::string_view kWireMagic = "apexwire";
inline constexpr int kWireVersion = 1;

/** Outcome of one FrameDecoder::next() call. */
enum class DecodeResult {
    kFrame,    ///< One complete, checksum-verified frame extracted.
    kNeedMore, ///< No complete frame buffered yet; feed more bytes.
    kCorrupt,  ///< Framing lost; the stream is permanently poisoned.
};

/**
 * Incremental frame decoder for one pipe.  feed() appends raw bytes;
 * next() extracts complete frames in order.  After the first corrupt
 * frame the decoder latches kCorrupt forever — a byte stream with
 * broken framing cannot be resynchronized.
 */
class FrameDecoder {
  public:
    explicit FrameDecoder(std::string_view magic = kWireMagic,
                          int version = kWireVersion)
        : magic_(magic), version_(version) {}

    /** Append @p n raw bytes from the pipe. */
    void feed(const char *data, std::size_t n);

    /** Extract the next complete frame into @p out (kFrame only). */
    DecodeResult next(FramedRecord *out);

    /** True once any frame failed to decode. */
    bool corrupt() const { return corrupt_; }

    /** Bytes buffered but not yet consumed (tests / diagnostics). */
    std::size_t buffered() const { return buffer_.size() - pos_; }

  private:
    std::string magic_;
    int version_ = 0;
    std::string buffer_;
    std::size_t pos_ = 0; ///< Consumed prefix of buffer_.
    bool corrupt_ = false;
};

/** write() @p bytes to @p fd completely, retrying short writes and
 * EINTR.  The caller must ignore SIGPIPE; a closed peer reports a
 * Status instead of killing the process. */
Status writeAll(int fd, std::string_view bytes);

/** Encode one wire frame and write it to @p fd completely. */
Status writeFrame(int fd, std::string_view type,
                  std::string_view payload);

} // namespace apex::runtime

#endif // APEX_RUNTIME_WIRE_H_
