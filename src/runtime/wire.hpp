#ifndef APEX_RUNTIME_WIRE_H_
#define APEX_RUNTIME_WIRE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "core/status.hpp"
#include "runtime/record.hpp"

/**
 * @file
 * Length-framed, checksummed byte-stream protocol — the wire layer of
 * the supervised worker pool (runtime/worker_pool.hpp) and the DSE
 * service daemon (src/service/).
 *
 * Frames reuse the exact on-disk format of runtime/record.hpp
 * (`<magic> <version> <type> sum <fnv1a64-hex> len <N>\n<payload>\n`),
 * so the same header-before-payload discipline that protects the WAL
 * protects the pipes and sockets: a schema skew is detected before the
 * payload is interpreted, and a torn or bit-flipped payload reads as
 * corruption, never as a silently-wrong result.  The difference from a
 * file is that a pipe or socket delivers bytes incrementally, so
 * decoding needs an incremental front end: FrameDecoder buffers fed
 * bytes and distinguishes "frame complete", "need more bytes" and
 * "stream is poisoned".
 *
 * Corruption on a byte stream is not recoverable the way a WAL tail
 * is: once framing is lost there is no resynchronization point, so a
 * corrupt decoder stays corrupt and the owner's only safe move is to
 * drop the peer (kill the worker, close the connection).  That is
 * exactly the supervision-tree contract — a garbled peer is
 * indistinguishable from a crashed one.
 *
 * Resource bounds: a decoder enforces an explicit maximum frame size
 * (max_payload at construction, kMaxFramePayloadBytes by default).  A
 * length field beyond the bound reads as corruption with a clean
 * reason — honoring it would let one flipped bit (or one hostile
 * client) make the receiving process buffer unbounded memory waiting
 * for bytes that will never arrive.
 */

namespace apex::runtime {

/** Magic + schema version of worker-pool pipe frames. */
inline constexpr std::string_view kWireMagic = "apexwire";
inline constexpr int kWireVersion = 1;

/** Default upper bound on a single frame payload (64 MiB). */
inline constexpr std::size_t kMaxFramePayloadBytes = 64u << 20;

/** Outcome of one FrameDecoder::next() call. */
enum class DecodeResult {
    kFrame,    ///< One complete, checksum-verified frame extracted.
    kNeedMore, ///< No complete frame buffered yet; feed more bytes.
    kCorrupt,  ///< Framing lost; the stream is permanently poisoned.
};

/**
 * Incremental frame decoder for one byte stream.  feed() appends raw
 * bytes; next() extracts complete frames in order.  After the first
 * corrupt frame the decoder latches kCorrupt forever — a byte stream
 * with broken framing cannot be resynchronized — and corruptReason()
 * names what was wrong (bad header, oversized length, checksum
 * mismatch, ...) so the owner can report a useful error instead of a
 * bare "corrupt".
 */
class FrameDecoder {
  public:
    explicit FrameDecoder(std::string_view magic = kWireMagic,
                          int version = kWireVersion,
                          std::size_t max_payload =
                              kMaxFramePayloadBytes)
        : magic_(magic), version_(version),
          max_payload_(max_payload) {}

    /** Append @p n raw bytes from the stream. */
    void feed(const char *data, std::size_t n);

    /** Extract the next complete frame into @p out (kFrame only). */
    DecodeResult next(FramedRecord *out);

    /** True once any frame failed to decode. */
    bool corrupt() const { return corrupt_; }

    /** Why the decoder latched corrupt ("" while healthy). */
    const std::string &corruptReason() const { return reason_; }

    /** Largest payload this decoder will accept. */
    std::size_t maxPayload() const { return max_payload_; }

    /** Bytes buffered but not yet consumed (tests / diagnostics). */
    std::size_t buffered() const { return buffer_.size() - pos_; }

  private:
    DecodeResult poison(std::string reason);

    std::string magic_;
    int version_ = 0;
    std::size_t max_payload_ = kMaxFramePayloadBytes;
    std::string buffer_;
    std::size_t pos_ = 0; ///< Consumed prefix of buffer_.
    bool corrupt_ = false;
    std::string reason_;
};

/** Outcome of one drainFd() call. */
enum class DrainResult {
    kOpen,  ///< Everything currently readable was fed; stream open.
    kEof,   ///< Peer closed the stream (after feeding what remained).
    kError, ///< read() failed (not EINTR/EAGAIN).
};

/** How drainFd() decides it has read enough. */
enum class DrainMode {
    /** Loop read() until EAGAIN/EOF.  Correct for *non-blocking* fds
     * only: it guarantees the kernel buffer is empty on return, which
     * the worker pool needs for the final drain of a dead worker. */
    kUntilEagain,
    /** Return after the first successful read() of any size.  The
     * mode for *blocking* fds: a full-buffer read must not trigger
     * another read() — if the bytes in hand already complete a frame,
     * that read would block on a quiet peer forever.  The caller
     * decodes between calls and comes back for more. */
    kSingleRead,
};

/**
 * Feed @p decoder bytes read from @p fd.  With kUntilEagain (the
 * default) loops read() until EAGAIN, EOF or error — non-blocking
 * fds only.  With kSingleRead returns after one successful read; on
 * a blocking fd that read may wait, so callers either poll() first
 * or intend to block for the next frame.  Shared by the worker-pool
 * supervisor, the service daemon's sessions and the service client.
 */
DrainResult drainFd(int fd, FrameDecoder &decoder,
                    DrainMode mode = DrainMode::kUntilEagain);

/**
 * write() @p bytes to @p fd completely, retrying short writes and
 * EINTR.  The caller must ignore SIGPIPE; a closed peer reports a
 * Status instead of killing the process.
 *
 * On a non-blocking fd a full kernel buffer waits for POLLOUT.
 * @p stall_timeout_ms bounds each such wait: if the peer accepts no
 * bytes for that long, writeAll gives up with kUnavailable so a
 * reader that stopped reading costs its own connection, not the
 * writer's thread.  Negative (the default) waits indefinitely —
 * fine for blocking fds (worker-pool pipes never report EAGAIN).
 */
Status writeAll(int fd, std::string_view bytes,
                int stall_timeout_ms = -1);

/** Encode one worker-pool wire frame and write it to @p fd
 * completely. */
Status writeFrame(int fd, std::string_view type,
                  std::string_view payload);

/** Encode one frame of an arbitrary protocol (magic/version chosen by
 * the caller, e.g. the service protocol) and write it to @p fd,
 * bounding write stalls by @p stall_timeout_ms (see writeAll). */
Status writeFrame(int fd, std::string_view magic, int version,
                  std::string_view type, std::string_view payload,
                  int stall_timeout_ms = -1);

} // namespace apex::runtime

#endif // APEX_RUNTIME_WIRE_H_
