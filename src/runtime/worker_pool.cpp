#include "runtime/worker_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <mutex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/fault.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/wire.hpp"

namespace apex::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
msBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

// Worker-side cooperative termination flag (set by SIGTERM/SIGINT in
// the child; only ever consulted after fork).
volatile std::sig_atomic_t g_worker_terminate = 0;

void
onWorkerTerminate(int)
{
    g_worker_terminate = 1;
}

/** Fault directives carried in a request frame: the supervisor counts
 * fault ordinals at dispatch (stable across restarts) and tells the
 * worker how to misbehave. */
constexpr std::string_view kDirectiveNone = "-";
constexpr std::string_view kDirectiveKill = "kill";
constexpr std::string_view kDirectiveHang = "hang";
constexpr std::string_view kDirectiveGarbage = "garbage";

/** Why the *supervisor* killed a worker (distinguishes our own
 * SIGKILLs from the kernel OOM killer's). */
enum class KillReason { kNone, kHang, kProtocol, kShutdown };

} // namespace

std::string_view
workerDeathCauseName(WorkerDeathCause cause)
{
    switch (cause) {
      case WorkerDeathCause::kNone:  return "none";
      case WorkerDeathCause::kCrash: return "crash";
      case WorkerDeathCause::kOom:   return "oom";
      case WorkerDeathCause::kHang:  return "hang";
    }
    return "none";
}

WorkerDeathCause
workerDeathCauseFromName(std::string_view name)
{
    if (name == "crash")
        return WorkerDeathCause::kCrash;
    if (name == "oom")
        return WorkerDeathCause::kOom;
    if (name == "hang")
        return WorkerDeathCause::kHang;
    return WorkerDeathCause::kNone;
}

/** One queued task and its bookkeeping. */
struct WorkerPool::Pending {
    std::size_t index = 0; ///< Into the caller's task list.
};

struct WorkerPool::Worker {
    pid_t pid = -1;
    int req_fd = -1;  ///< Supervisor writes task frames here.
    int resp_fd = -1; ///< Supervisor reads results/heartbeats here.
    FrameDecoder decoder;
    bool alive = false;
    bool ever_spawned = false;
    /** Index of the dispatched task, or npos when idle. */
    std::size_t busy = kIdle;
    Clock::time_point dispatched_at{};
    Clock::time_point last_frame{};
    KillReason kill_reason = KillReason::kNone;
    int consecutive_deaths = 0;
    /** Earliest respawn time (exponential backoff). */
    Clock::time_point restart_at = Clock::time_point::min();

    static constexpr std::size_t kIdle =
        static_cast<std::size_t>(-1);
};

WorkerPool::WorkerPool(Handler handler, WorkerPoolOptions options)
    : handler_(std::move(handler)), options_(options)
{
    if (options_.workers < 1)
        options_.workers = 1;
    workers_.resize(static_cast<std::size_t>(options_.workers));
    // A worker death between our poll and our write would otherwise
    // SIGPIPE the supervisor — exactly the cascade this pool exists
    // to prevent.
    std::signal(SIGPIPE, SIG_IGN);
}

WorkerPool::~WorkerPool()
{
    shutdownAll();
}

void
WorkerPool::spawnWorker(Worker &w)
{
    int req[2] = {-1, -1};  // supervisor -> worker
    int resp[2] = {-1, -1}; // worker -> supervisor
    if (::pipe(req) != 0)
        return;
    if (::pipe(resp) != 0) {
        ::close(req[0]);
        ::close(req[1]);
        return;
    }

    // Never fork with dirty stdio buffers: the child would flush a
    // second copy of everything on libc shutdown paths.
    std::fflush(stdout);
    std::fflush(stderr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {req[0], req[1], resp[0], resp[1]})
            ::close(fd);
        return;
    }
    if (pid == 0) {
        ::close(req[1]);
        ::close(resp[0]);
        workerMain(req[0], resp[1]); // [[noreturn]]
    }

    ::close(req[0]);
    ::close(resp[1]);
    ::fcntl(resp[0], F_SETFL,
            ::fcntl(resp[0], F_GETFL, 0) | O_NONBLOCK);

    w.pid = pid;
    w.req_fd = req[1];
    w.resp_fd = resp[0];
    w.decoder = FrameDecoder();
    w.alive = true;
    w.busy = Worker::kIdle;
    w.kill_reason = KillReason::kNone;
    w.last_frame = Clock::now();
    ++stats_.forks;
    if (w.ever_spawned) {
        ++stats_.restarts;
        telemetry::counter("apex.worker.restarts").add(1);
    }
    w.ever_spawned = true;
}

void
WorkerPool::stopWorker(Worker &w, bool kill_now)
{
    if (w.pid > 0 && w.alive)
        ::kill(w.pid, kill_now ? SIGKILL : SIGTERM);
    if (kill_now && w.pid > 0) {
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        w.alive = false;
        if (w.req_fd >= 0)
            ::close(w.req_fd);
        if (w.resp_fd >= 0)
            ::close(w.resp_fd);
        w.req_fd = w.resp_fd = -1;
        w.pid = -1;
    }
}

void
WorkerPool::shutdownAll()
{
    if (shut_down_)
        return;
    shut_down_ = true;
    // Cooperative first: SIGTERM, a bounded grace, then SIGKILL.
    for (Worker &w : workers_)
        if (w.alive && w.pid > 0)
            ::kill(w.pid, SIGTERM);
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options_.shutdown_grace_ms));
    for (Worker &w : workers_) {
        if (!w.alive || w.pid <= 0)
            continue;
        for (;;) {
            int status = 0;
            const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
            if (r == w.pid)
                break;
            if (Clock::now() >= deadline) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, &status, 0);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        w.alive = false;
        if (w.req_fd >= 0)
            ::close(w.req_fd);
        if (w.resp_fd >= 0)
            ::close(w.resp_fd);
        w.req_fd = w.resp_fd = -1;
        w.pid = -1;
    }
}

// ---------------------------------------------------------------------
// Worker child
// ---------------------------------------------------------------------

void
WorkerPool::workerMain(int req_fd, int resp_fd)
{
    // Children always leave through _Exit: inherited stdio buffers,
    // atexit hooks and static destructors belong to the supervisor.
    struct sigaction sa = {};
    sa.sa_handler = onWorkerTerminate;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // No SA_RESTART: blocking read() gets EINTR.
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    std::signal(SIGPIPE, SIG_IGN);

    // Heartbeat thread: proof-of-life frames on the response pipe,
    // interleaved with results under a write mutex.  A "hang" fault
    // freezes heartbeats too — a truly wedged process emits nothing.
    std::mutex write_mutex;
    std::atomic<bool> heartbeats{true};
    const auto beat = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(
            options_.heartbeat_ms));
    // Termination signals are kept *blocked* in every thread and only
    // unblocked atomically inside ppoll() below.  This closes two
    // races at once: a SIGTERM delivered to the heartbeat thread
    // (asleep in sleep_for()) would never interrupt the main thread's
    // read, and a SIGTERM landing between the terminate-flag check
    // and the blocking read would be consumed with the worker already
    // committed to blocking — the classic missed wakeup that pselect/
    // ppoll exist to prevent.
    sigset_t term_mask, wait_mask;
    sigemptyset(&term_mask);
    sigaddset(&term_mask, SIGTERM);
    sigaddset(&term_mask, SIGINT);
    ::pthread_sigmask(SIG_BLOCK, &term_mask, &wait_mask);
    sigdelset(&wait_mask, SIGTERM);
    sigdelset(&wait_mask, SIGINT);
    std::thread heartbeat_thread([&] {
        for (;;) {
            std::this_thread::sleep_for(beat);
            if (!heartbeats.load(std::memory_order_relaxed))
                continue;
            std::lock_guard<std::mutex> lock(write_mutex);
            if (!writeFrame(resp_fd, "hb", "").ok())
                return; // Supervisor is gone; nothing left to prove.
        }
    });
    heartbeat_thread.detach();

    FrameDecoder decoder;
    char buf[4096];
    for (;;) {
        FramedRecord frame;
        DecodeResult dr;
        while ((dr = decoder.next(&frame)) ==
               DecodeResult::kNeedMore) {
            // Wait with the termination signals unblocked only for
            // the duration of the ppoll: delivery can then only
            // interrupt the wait itself, never slip past the flag
            // check into a blocking read.
            struct pollfd pfd = {req_fd, POLLIN, 0};
            const int pr = ::ppoll(&pfd, 1, nullptr, &wait_mask);
            if (pr < 0) {
                if (errno != EINTR)
                    std::_Exit(2);
                if (g_worker_terminate)
                    std::_Exit(0);
                continue;
            }
            const ssize_t n = ::read(req_fd, buf, sizeof buf);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                std::_Exit(0); // Supervisor closed the pipe.
            decoder.feed(buf, static_cast<std::size_t>(n));
        }
        if (dr != DecodeResult::kFrame)
            std::_Exit(2); // Garbled request stream.
        if (g_worker_terminate)
            std::_Exit(0);

        // Payload: "<id> <directive>\n<task bytes>".
        const std::size_t nl = frame.payload.find('\n');
        if (nl == std::string::npos)
            std::_Exit(2);
        std::istringstream head(frame.payload.substr(0, nl));
        std::string id, directive;
        if (!(head >> id >> directive))
            std::_Exit(2);
        // Optional third header token (absent from old supervisors):
        // the request trace id, installed before the handler so the
        // child's spans and currentTraceId() match the dispatcher's.
        unsigned long long trace = 0;
        if (head >> trace)
            telemetry::setThreadTraceId(trace);
        const std::string task = frame.payload.substr(nl + 1);

        if (directive == kDirectiveKill) {
            std::abort(); // SIGABRT: an honest crash.
        } else if (directive == kDirectiveHang) {
            heartbeats.store(false, std::memory_order_relaxed);
            for (;;)
                ::pause(); // Wedged until the supervisor kills us.
        } else if (directive == kDirectiveGarbage) {
            std::lock_guard<std::mutex> lock(write_mutex);
            (void)writeAll(
                resp_fd,
                "!!this is not a frame, checksums save us!!\n");
            continue; // Supervisor will kill us for the framing loss.
        }

        std::string response;
        try {
            response = handler_(task);
        } catch (...) {
            std::_Exit(3); // A throwing handler is a crashed worker.
        }
        std::lock_guard<std::mutex> lock(write_mutex);
        if (!writeFrame(resp_fd, "resp", id + "\n" + response).ok())
            std::_Exit(0);
    }
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

std::vector<WorkerTaskOutcome>
WorkerPool::run(const std::vector<std::string> &tasks)
{
    std::vector<WorkerTaskOutcome> outcomes(tasks.size());
    std::deque<std::size_t> queue;
    for (std::size_t i = 0; i < tasks.size(); ++i)
        queue.push_back(i);
    std::size_t remaining = tasks.size();
    bool cancelled = false;

    const auto liveness =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                options_.liveness_timeout_ms));

    // Finish (or give up on) one task whose worker died.
    const auto settleDeadTask = [&](Worker &w,
                                    WorkerDeathCause cause) {
        const std::size_t t = w.busy;
        w.busy = Worker::kIdle;
        if (t == Worker::kIdle)
            return;
        WorkerTaskOutcome &o = outcomes[t];
        if (o.fate == TaskFate::kDone)
            return; // Response arrived before the death was reaped.
        o.cause = cause;
        if (o.attempts > options_.task_retries) {
            o.fate = TaskFate::kQuarantined;
            o.wall_ms = msBetween(w.dispatched_at, Clock::now());
            --remaining;
            ++stats_.quarantined;
            telemetry::counter("apex.worker.quarantined").add(1);
        } else {
            // Front of the queue: the retry happens promptly and
            // fault-ordinal windows stay aligned with the same task.
            queue.push_front(t);
            ++stats_.retries;
            telemetry::counter("apex.worker.retries").add(1);
        }
    };

    // Drain whatever a worker managed to say, then classify.  (EOF
    // and read errors need no handling here: worker death is detected
    // by waitpid, and the decoder just processes what did arrive.)
    const auto drainAndProcess = [&](Worker &w) {
        (void)drainFd(w.resp_fd, w.decoder);
        FramedRecord frame;
        for (;;) {
            const DecodeResult dr = w.decoder.next(&frame);
            if (dr == DecodeResult::kNeedMore)
                break;
            if (dr == DecodeResult::kCorrupt) {
                // Framing loss: the worker is lying or dying.  Kill
                // it; classification happens at the reap.
                if (w.alive && w.kill_reason == KillReason::kNone) {
                    w.kill_reason = KillReason::kProtocol;
                    ::kill(w.pid, SIGKILL);
                }
                break;
            }
            const Clock::time_point now = Clock::now();
            telemetry::histogram("apex.worker.heartbeat.ms")
                .observe(msBetween(w.last_frame, now));
            w.last_frame = now;
            if (frame.type == "hb")
                continue;
            if (frame.type != "resp")
                continue; // Unknown-but-valid frame: forward compat.
            const std::size_t nl = frame.payload.find('\n');
            if (nl == std::string::npos)
                continue;
            if (w.busy == Worker::kIdle)
                continue; // Stale response from a pre-retry attempt.
            WorkerTaskOutcome &o = outcomes[w.busy];
            o.fate = TaskFate::kDone;
            o.cause = WorkerDeathCause::kNone;
            o.response = frame.payload.substr(nl + 1);
            o.wall_ms = msBetween(w.dispatched_at, now);
            w.busy = Worker::kIdle;
            w.consecutive_deaths = 0;
            --remaining;
        }
    };

    while (remaining > 0) {
        // Cooperative cancel: stop dispatching, ask workers to exit,
        // and report everything unfinished as kCancelled.
        if (options_.cancel &&
            options_.cancel->load(std::memory_order_relaxed)) {
            cancelled = true;
            break;
        }

        // Reap deaths.  Classification order matters: our own kills
        // (hang / protocol) are known causes; an external SIGKILL is
        // the OOM killer; everything else is a crash.
        for (Worker &w : workers_) {
            if (!w.alive || w.pid <= 0)
                continue;
            int status = 0;
            const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
            if (r != w.pid)
                continue;
            // waitpid reaped the pid — mark the worker dead *before*
            // draining so the drain's protocol-kill path can never
            // signal a recycled pid.
            w.alive = false;
            // The worker may have answered before dying; honor it.
            drainAndProcess(w);
            WorkerDeathCause cause = WorkerDeathCause::kCrash;
            if (w.kill_reason == KillReason::kHang)
                cause = WorkerDeathCause::kHang;
            else if (w.kill_reason == KillReason::kProtocol)
                cause = WorkerDeathCause::kCrash;
            else if (WIFSIGNALED(status) &&
                     WTERMSIG(status) == SIGKILL)
                cause = WorkerDeathCause::kOom;
            ::close(w.req_fd);
            ::close(w.resp_fd);
            w.req_fd = w.resp_fd = -1;
            w.pid = -1;
            settleDeadTask(w, cause);
            ++w.consecutive_deaths;
            const int shift =
                w.consecutive_deaths > 20 ? 20
                                          : w.consecutive_deaths - 1;
            const double backoff_ms = std::min(
                options_.backoff_cap_ms,
                options_.backoff_base_ms *
                    static_cast<double>(1u << shift));
            w.restart_at =
                Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        backoff_ms));
        }

        if (remaining == 0)
            break;

        // Respawn dead workers whose backoff has elapsed (and fresh
        // ones on the first pass).
        for (Worker &w : workers_)
            if (!w.alive && Clock::now() >= w.restart_at)
                spawnWorker(w);

        // Liveness: a busy worker that has said nothing for too long
        // is wedged.  SIGKILL it; the reap classifies it as a hang.
        for (Worker &w : workers_) {
            if (!w.alive || w.busy == Worker::kIdle)
                continue;
            if (Clock::now() - w.last_frame > liveness &&
                w.kill_reason == KillReason::kNone) {
                w.kill_reason = KillReason::kHang;
                ::kill(w.pid, SIGKILL);
            }
        }

        // Dispatch queued tasks to idle live workers.
        for (Worker &w : workers_) {
            if (queue.empty())
                break;
            if (!w.alive || w.busy != Worker::kIdle)
                continue;
            const std::size_t t = queue.front();
            queue.pop_front();
            ++outcomes[t].attempts;

            // Fault directives are decided *here*, in the supervisor,
            // so the Nth dispatch misbehaves no matter which child
            // ends up running it.
            std::string_view directive = kDirectiveNone;
            if (!checkFault(FaultStage::kWorkerKill).ok())
                directive = kDirectiveKill;
            else if (!checkFault(FaultStage::kWorkerHang).ok())
                directive = kDirectiveHang;
            else if (!checkFault(FaultStage::kWorkerGarbage).ok())
                directive = kDirectiveGarbage;

            std::ostringstream payload;
            payload << next_task_id_++ << ' ' << directive << ' '
                    << options_.trace_id << '\n'
                    << tasks[t];
            w.dispatched_at = Clock::now();
            w.last_frame = w.dispatched_at;
            w.busy = t;
            if (!writeFrame(w.req_fd, "req", payload.str()).ok()) {
                // The worker died under us; undo the attempt and let
                // the reap handle the body.
                --outcomes[t].attempts;
                w.busy = Worker::kIdle;
                queue.push_front(t);
            }
        }

        // Wait for frames (bounded so timers keep firing).
        std::vector<pollfd> fds;
        std::vector<Worker *> fd_owner;
        for (Worker &w : workers_) {
            if (!w.alive)
                continue;
            fds.push_back({w.resp_fd, POLLIN, 0});
            fd_owner.push_back(&w);
        }
        const int poll_ms = 20;
        if (fds.empty()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
            continue;
        }
        const int ready =
            ::poll(fds.data(),
                   static_cast<nfds_t>(fds.size()), poll_ms);
        if (ready <= 0)
            continue;
        for (std::size_t i = 0; i < fds.size(); ++i)
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
                drainAndProcess(*fd_owner[i]);
    }

    if (cancelled) {
        telemetry::counter("apex.worker.cancelled").add(1);
        for (Worker &w : workers_)
            if (w.alive && w.pid > 0)
                ::kill(w.pid, SIGTERM);
        const Clock::time_point grace_deadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    options_.shutdown_grace_ms));
        // Keep accepting results during the grace window: a cell that
        // finishes while we wind down is a cell we don't lose.
        while (Clock::now() < grace_deadline) {
            bool any_busy = false;
            for (Worker &w : workers_) {
                if (!w.alive)
                    continue;
                int status = 0;
                if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
                    w.alive = false;
                    drainAndProcess(w);
                    ::close(w.req_fd);
                    ::close(w.resp_fd);
                    w.req_fd = w.resp_fd = -1;
                    w.pid = -1;
                    w.busy = Worker::kIdle;
                    continue;
                }
                drainAndProcess(w);
                if (w.busy != Worker::kIdle)
                    any_busy = true;
            }
            if (!any_busy)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        for (Worker &w : workers_)
            if (w.alive)
                stopWorker(w, /*kill_now=*/true);
    }

    return outcomes;
}

} // namespace apex::runtime
