#ifndef APEX_RUNTIME_WORKER_POOL_H_
#define APEX_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"

/**
 * @file
 * Supervised multi-process worker pool: crash isolation for the DSE
 * sweep (and, eventually, the DSE-as-a-service daemon).
 *
 * The in-process ThreadPool shares one address space with the work it
 * runs, so a segfaulting placer or an OOM-killed clique search takes
 * the whole sweep down with it.  WorkerPool puts each unit of work
 * behind a process boundary instead: the supervisor forks N workers,
 * dispatches task payloads over length-framed fnv1a64-checksummed
 * pipes (runtime/wire.hpp), and treats a worker death as an *event* —
 * classify it, restart the worker under deterministic exponential
 * backoff, retry the task elsewhere, and quarantine a task that keeps
 * killing its workers so the rest of the batch still completes.
 *
 * Supervision tree:
 *
 *     supervisor (sweep process)
 *       ├── worker 0 ── req pipe ──▶ handler(task) ──▶ resp pipe
 *       ├── worker 1      (heartbeat frames interleave on resp)
 *       └── worker N-1
 *
 * Liveness is two independent signals: waitpid (the kernel tells us a
 * child died, and how) and heartbeats (a live-but-frozen child stops
 * emitting frames; after liveness_timeout_ms of silence while busy it
 * is SIGKILLed and classified as a hang).  Death causes:
 *
 *   - hang:  the supervisor itself killed the worker for silence;
 *   - oom:   SIGKILL from outside (the kernel OOM killer is the only
 *            expected sender once the supervisor's own kills are
 *            accounted);
 *   - crash: any other signal (SIGSEGV, SIGABRT, ...), a nonzero
 *            exit, or framing corruption on the result pipe (a
 *            garbled worker is indistinguishable from a crashed one).
 *
 * Task fate: a task whose worker died is retried (re-queued at the
 * front, so the retry happens promptly and ordinal-deterministic
 * fault windows land on the same task).  After 1 + task_retries
 * worker-killing attempts it is quarantined — returned to the caller
 * as kQuarantined with the death cause — and the batch continues.
 *
 * Determinism contract: run() returns outcomes indexed exactly like
 * the input task list, so callers assemble results in task order
 * regardless of which worker finished what when.  Restart backoff is
 * deterministic (base * 2^(consecutive_deaths-1), capped, no jitter).
 *
 * Fork-safety notes: stdio is flushed before every fork and workers
 * only ever leave via _Exit, so inherited buffers are never flushed
 * twice.  Workers are forked when run() is first called — fork-COW
 * shares whatever the caller built beforehand (e.g. merged PE
 * variants) with every worker for free.  SIGPIPE is ignored around
 * pipe writes; a dead peer is a Status, not a process death.
 */

namespace apex::runtime {

/** Why a worker died (classified by the supervisor). */
enum class WorkerDeathCause {
    kNone = 0,
    kCrash, ///< Fatal signal / nonzero exit / garbled result pipe.
    kOom,   ///< SIGKILL from outside the supervisor (OOM killer).
    kHang,  ///< Killed by the supervisor for heartbeat silence.
};

/** "crash", "oom", "hang" — stable names used in reports/journals. */
std::string_view workerDeathCauseName(WorkerDeathCause cause);

/** Inverse of workerDeathCauseName() (kNone for unknown). */
WorkerDeathCause workerDeathCauseFromName(std::string_view name);

/** What finally happened to one task. */
enum class TaskFate {
    kDone,        ///< Handler response received.
    kQuarantined, ///< Killed its worker on every allowed attempt.
    kCancelled,   ///< Batch cancelled before the task completed.
};

/** Per-task result of WorkerPool::run(). */
struct WorkerTaskOutcome {
    TaskFate fate = TaskFate::kCancelled;
    WorkerDeathCause cause = WorkerDeathCause::kNone;
    int attempts = 0;       ///< Dispatches consumed (1 = first try).
    std::string response;   ///< Handler output (kDone only).
    double wall_ms = 0.0;   ///< Dispatch -> response wall time.
};

/** Aggregate supervisor statistics (mirrored into telemetry as
 * apex.worker.{restarts,retries,quarantined}). */
struct WorkerPoolStats {
    long forks = 0;       ///< Workers ever forked (initial + restarts).
    long restarts = 0;    ///< Workers re-forked after a death.
    long retries = 0;     ///< Tasks re-queued after a worker death.
    long quarantined = 0; ///< Tasks given up on.
};

struct WorkerPoolOptions {
    int workers = 1;
    /** Re-dispatches allowed after a worker-killing attempt; the
     * (task_retries + 1)th death quarantines the task. */
    int task_retries = 2;
    double heartbeat_ms = 25.0;
    /** Silence budget for a *busy* worker before it is declared hung
     * and SIGKILLed. */
    double liveness_timeout_ms = 2000.0;
    double backoff_base_ms = 10.0;
    double backoff_cap_ms = 1000.0;
    /** SIGTERM -> SIGKILL grace when cancelling / shutting down. */
    double shutdown_grace_ms = 2000.0;
    /** Cooperative cancel; polled by the supervisor loop. */
    const std::atomic<bool> *cancel = nullptr;
    /** Request trace id carried to each child in the task frame and
     * installed as its thread trace id before the handler runs, so
     * spans (and the handler itself, via currentTraceId()) stay
     * correlated to the request across the fork.  0 = unscoped. */
    std::uint64_t trace_id = 0;
};

/**
 * Forks `workers` children on first run(); each child loops reading
 * task frames, calling @p handler, and writing response frames.  The
 * handler runs *in the child*: it may crash, hang, or exhaust memory
 * without harming the supervisor.  Throwing from the handler exits
 * the child with a failure code (classified as a crash).
 */
class WorkerPool {
  public:
    using Handler = std::function<std::string(const std::string &)>;

    WorkerPool(Handler handler, WorkerPoolOptions options);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run every task to a final fate and return outcomes in task
     * order.  Serializes callers; the pool's workers are reused
     * across run() calls (and respawned on demand).
     */
    std::vector<WorkerTaskOutcome>
    run(const std::vector<std::string> &tasks);

    const WorkerPoolStats &stats() const { return stats_; }
    int parallelism() const { return options_.workers; }

  private:
    struct Worker;
    struct Pending;

    void spawnWorker(Worker &w);
    void stopWorker(Worker &w, bool kill_now);
    void shutdownAll();
    [[noreturn]] void workerMain(int req_fd, int resp_fd);

    Handler handler_;
    WorkerPoolOptions options_;
    WorkerPoolStats stats_;
    std::vector<Worker> workers_;
    std::uint64_t next_task_id_ = 1;
    bool shut_down_ = false;
};

} // namespace apex::runtime

#endif // APEX_RUNTIME_WORKER_POOL_H_
