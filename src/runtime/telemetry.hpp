#ifndef APEX_RUNTIME_TELEMETRY_H_
#define APEX_RUNTIME_TELEMETRY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

/**
 * @file
 * Process-wide telemetry for the DSE pipeline: structured spans and a
 * unified metrics registry.
 *
 * Two independent facilities share this header:
 *
 *  - **Spans** (tracing): `APEX_SPAN("route", {{"app", name}})`
 *    opens an RAII span that records (name, args, wall interval,
 *    worker lane, nesting depth) when it closes.  Span events land in
 *    a lock-free single-producer ring buffer owned by the emitting
 *    thread; the collector (driver thread) drains every ring with
 *    collect() and exports Chrome-trace-event / Perfetto-compatible
 *    JSON via chromeTraceJson().  Tracing is **off by default**: the
 *    entire disabled path of APEX_SPAN is one relaxed atomic load and
 *    a branch — no allocation, no locks, no clock reads — so
 *    instrumented hot paths cost nothing unless `--trace` is given.
 *
 *  - **Metrics** (always on): named monotonic counters, gauges and
 *    fixed-bucket histograms in a process-wide Registry, dumped as
 *    stable JSON (`--metrics-out`).  These replace the ad-hoc
 *    per-subsystem counters (cache stats, pool stats, sweep runtime
 *    stats); subsystems that expose per-instance stats snapshot the
 *    global counters at construction and report deltas.  Metric
 *    names follow `apex.<area>.<name>` (see DESIGN.md Sec. 7d).
 *
 * Threading contract: span emission and metric updates are safe from
 * any thread (TSan-clean under the work-stealing pool).  collect(),
 * events(), chromeTraceJson() and resetTracingForTesting() are
 * driver-thread APIs — call them from one thread at a time.  The
 * internal locks are fork-tolerant spinlocks reset in the child via
 * pthread_atfork, so the crash/durability fault stages (fork +
 * SIGKILL) cannot deadlock telemetry in the child process.
 */

namespace apex::telemetry {

// --------------------------------------------------------------------
// Tracing enable flag (the one atomic the disabled path touches)
// --------------------------------------------------------------------

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
} // namespace internal

/** True when span tracing is on (off by default). */
inline bool
tracingEnabled()
{
    return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/** Turn span tracing on or off (e.g. from `apexc ... --trace`). */
void setTracingEnabled(bool on);

// --------------------------------------------------------------------
// Thread attribution
// --------------------------------------------------------------------

/** Tag the calling thread as worker lane @p lane of the pool (-1 =
 * not a pool worker; the sweep's participating caller).  Spans record
 * the current lane so traces show pool utilization per lane. */
void setLane(int lane);

/** Lane of the calling thread (-1 outside pool workers). */
int currentLane();

/**
 * Scoped (app, variant) attribution: while alive, every span the
 * calling thread opens carries this cell identity, which is what the
 * per-cell stage-time breakdown in ExplorationReport groups by.
 * Default-constructed it does nothing; set() arms it (callers gate
 * the string build on tracingEnabled() to keep the disabled path
 * allocation-free).
 */
class ScopedCell {
  public:
    ScopedCell() = default;
    ~ScopedCell();

    ScopedCell(const ScopedCell &) = delete;
    ScopedCell &operator=(const ScopedCell &) = delete;

    /** Install @p cell as the thread's span scope until destruction. */
    void set(std::string cell);

  private:
    bool active_ = false;
    std::string prev_;
};

// --------------------------------------------------------------------
// Request trace context
// --------------------------------------------------------------------

/**
 * Scoped request attribution: while alive, every span the calling
 * thread opens carries this trace id, which is what ties one client
 * request's spans together across the client, the daemon's executor
 * threads, and forked worker processes (DESIGN.md Sec. 7i).  Mirrors
 * ScopedCell: default-constructed it does nothing; set() arms it and
 * the destructor restores the previous id, so nested requests (or a
 * request running inside an instrumented caller) unwind correctly.
 */
class ScopedTraceId {
  public:
    ScopedTraceId() = default;
    ~ScopedTraceId();

    ScopedTraceId(const ScopedTraceId &) = delete;
    ScopedTraceId &operator=(const ScopedTraceId &) = delete;

    /** Install @p trace_id as the thread's trace id until destruction. */
    void set(std::uint64_t trace_id);

  private:
    bool active_ = false;
    std::uint64_t prev_ = 0;
};

/** Unconditionally set the calling thread's trace id (no restore).
 * For contexts that never unwind — a forked worker child installs the
 * dispatched task's trace id before running the handler and exits via
 * _Exit(), so RAII restoration would never run anyway. */
void setThreadTraceId(std::uint64_t trace_id);

/** Trace id spans opened by the calling thread will carry (0 = none). */
std::uint64_t currentTraceId();

// --------------------------------------------------------------------
// Spans
// --------------------------------------------------------------------

/** One key plus a pre-rendered JSON value for span args. */
struct SpanArg {
    SpanArg(std::string_view k, std::string_view v);
    SpanArg(std::string_view k, const char *v);
    SpanArg(std::string_view k, const std::string &v);
    SpanArg(std::string_view k, int v);
    SpanArg(std::string_view k, long v);
    SpanArg(std::string_view k, long long v);
    SpanArg(std::string_view k, double v);

    std::string key;
    std::string json_value; ///< Rendered JSON literal.
};

/** RAII span; use via APEX_SPAN, or begin() directly. */
class Span {
  public:
    Span() = default;
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    void begin(std::string_view name);
    void begin(std::string_view name,
               std::initializer_list<SpanArg> args);

  private:
    void end();

    bool active_ = false;
    int depth_ = 0;
    std::uint64_t t0_ns_ = 0;
    std::string name_;
    std::string scope_;
    std::string args_; ///< `"k":v,...` fragment (may be empty).
};

#define APEX_TELEMETRY_CAT2(a, b) a##b
#define APEX_TELEMETRY_CAT(a, b) APEX_TELEMETRY_CAT2(a, b)

/**
 * Open a span for the rest of the enclosing scope.  When tracing is
 * disabled this is one atomic load + branch: the argument expressions
 * are not evaluated and nothing is allocated.
 *
 *     APEX_SPAN("route");
 *     APEX_SPAN("evaluate", {{"app", app.name}, {"level", 2}});
 */
#define APEX_SPAN(...)                                                \
    ::apex::telemetry::Span APEX_TELEMETRY_CAT(apex_span_,            \
                                               __LINE__);             \
    if (::apex::telemetry::tracingEnabled())                          \
    APEX_TELEMETRY_CAT(apex_span_, __LINE__).begin(__VA_ARGS__)

/** One recorded span, as drained by the collector. */
struct SpanEvent {
    std::string name;
    std::string scope; ///< ScopedCell at begin() ("" when none).
    std::string args;  ///< Rendered `"k":v,...` fragment.
    double ts_us = 0.0;
    double dur_us = 0.0;
    int lane = -1;
    std::uint64_t thread_ord = 0; ///< Stable per-thread ordinal.
    int depth = 0;                ///< Span nesting depth at begin().
    std::uint64_t trace_id = 0;   ///< Owning request (0 = unscoped).
};

/** Drain every thread's ring into the process event store. */
void collect();

/** Events accumulated by collect() so far (driver thread only). */
const std::vector<SpanEvent> &events();

/** Spans recorded (ring pushes) since start/reset. */
long long spansRecorded();

/** Spans dropped because a ring was full (never blocks producers). */
long long droppedEvents();

/** Collected events evicted because the process event store hit its
 * cap (long-running daemons bound memory; see setCollectedCap). */
long long evictedEvents();

/** collect() + copy of every collected event carrying @p trace_id.
 * Same single-collector contract as collect(): in the daemon only the
 * io thread calls this, when serving a `trace` request. */
std::vector<SpanEvent> eventsForTrace(std::uint64_t trace_id);

/** Cap on events retained by collect() (oldest evicted beyond it);
 * bounds daemon memory when tracing stays on across many requests. */
void setCollectedCap(std::size_t cap);

/** collect() + render Chrome trace-event JSON (chrome://tracing,
 * Perfetto).  Worker lanes appear as tids with thread_name metadata.
 * otherData carries recorded/dropped/evicted so a truncated trace is
 * detectable instead of silently incomplete. */
std::string chromeTraceJson();

/**
 * One process's slice of a merged multi-process trace: the events it
 * contributed, the Chrome pid lane to render them under, and how many
 * spans that process dropped (ring-full) while recording them.
 */
struct TraceProcessSlice {
    int pid = 1;
    std::string process_name;
    std::vector<SpanEvent> events;
    long long dropped = 0;
};

/**
 * Render several processes' span slices as one Chrome-trace file with
 * a `process_name` metadata lane per slice (client / apexd / apexd
 * workers).  Each slice's timestamps are rebased so it starts at 0 —
 * the processes' steady clocks share no epoch, so absolute alignment
 * across lanes is not meaningful and is not implied.  Pure function
 * of its input: does not touch the calling process's rings.
 */
std::string
chromeTraceJsonMerged(const std::vector<TraceProcessSlice> &slices);

/** Clear collected events and the recorded/dropped counters. */
void resetTracingForTesting();

/** Ring capacity (events) for threads that have not traced yet; lets
 * tests exercise wrap behavior with a tiny ring. */
void setRingCapacityForTesting(std::size_t capacity);

// --------------------------------------------------------------------
// Metrics registry
// --------------------------------------------------------------------

/** Monotonic counter. */
class Counter {
  public:
    void add(long long delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    long long value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<long long> value_{0};
};

/** Last-write-wins gauge. */
class Gauge {
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    std::atomic<double> value_{0.0};
};

/** Fixed-bucket histogram: counts per upper bound + an overflow
 * bucket, plus sum and count (so bench rows can report per-stage
 * totals without draining a trace). */
class Histogram {
  public:
    void observe(double v);

    long long count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const;
    /** Bucket @p i counts observations <= bounds()[i]; the final
     * index (bounds().size()) is the overflow bucket. */
    long long bucketCount(std::size_t i) const;
    const std::vector<double> &bounds() const { return bounds_; }

  private:
    friend class Registry;
    explicit Histogram(std::vector<double> bounds);

    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<long long>[]> buckets_;
    std::atomic<long long> count_{0};
    std::atomic<std::uint64_t> sum_bits_{0}; ///< double, CAS-added.
};

/** Default latency buckets in milliseconds (50us .. 10s). */
const std::vector<double> &defaultLatencyBucketsMs();

/**
 * Process-wide metrics registry.  Lookup registers on first use and
 * returns a stable reference; hot paths cache it in a function-local
 * static.  jsonDump() is stable: entries sorted by name, fixed field
 * order, fixed float formatting.
 */
class Registry {
  public:
    static Registry &instance();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name,
                         const std::vector<double> &bounds =
                             defaultLatencyBucketsMs());

    /** Stable JSON dump of every registered metric. */
    std::string jsonDump() const;

    /** Zero every value (registrations survive). */
    void resetForTesting();

  private:
    Registry() = default;
    struct Impl;
    Impl &impl() const;
};

/** Shorthands for the common "static local" lookup pattern. */
inline Counter &
counter(std::string_view name)
{
    return Registry::instance().counter(name);
}
inline Gauge &
gauge(std::string_view name)
{
    return Registry::instance().gauge(name);
}
inline Histogram &
histogram(std::string_view name)
{
    return Registry::instance().histogram(name);
}

/**
 * Background metrics flusher: every @p interval_ms it atomically
 * rewrites @p path with Registry::instance().jsonDump() — written to
 * `<path>.tmp` first, then renamed over the target — so an observer
 * tailing the file never reads a torn dump.  The destructor stops the
 * timer thread and performs one final flush, leaving the file at the
 * process's last state.  Long-running processes (the service daemon,
 * `--metrics-interval` CLI runs) use this to expose live metrics;
 * one-shot runs keep the write-once-at-exit path.
 */
class PeriodicMetricsWriter {
  public:
    PeriodicMetricsWriter(std::string path, double interval_ms);
    ~PeriodicMetricsWriter();

    PeriodicMetricsWriter(const PeriodicMetricsWriter &) = delete;
    PeriodicMetricsWriter &
    operator=(const PeriodicMetricsWriter &) = delete;

    /** Synchronous flush (the timer thread calls this too).  False
     * when the dump could not be written. */
    bool flushNow();

    /** Successful flushes so far. */
    long flushCount() const
    {
        return flushes_.load(std::memory_order_relaxed);
    }

  private:
    void threadMain();

    const std::string path_;
    const double interval_ms_;
    std::atomic<long> flushes_{0};
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

/** RAII stage timer: observes elapsed milliseconds into a histogram
 * at scope exit.  Always on (metrics are not gated on tracing). */
class StageTimer {
  public:
    explicit StageTimer(Histogram &h);
    ~StageTimer();

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    Histogram &histogram_;
    std::uint64_t t0_ns_;
};

/** Nanoseconds since the process telemetry origin (steady clock). */
std::uint64_t monotonicNanos();

} // namespace apex::telemetry

#endif // APEX_RUNTIME_TELEMETRY_H_
