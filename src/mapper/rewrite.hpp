#ifndef APEX_MAPPER_REWRITE_H_
#define APEX_MAPPER_REWRITE_H_

#include <optional>
#include <vector>

#include "ir/graph.hpp"
#include "pe/functional.hpp"
#include "pe/spec.hpp"

/**
 * @file
 * Rewrite-rule synthesis (Sec. 4.1.1) — the SMT-based synthesis
 * substitute.
 *
 * A rewrite rule records how a PE must be configured to execute one
 * operation pattern: the mapping of pattern nodes onto datapath
 * resources, the mux selects and opcodes that realize the pattern's
 * edges, which PE input port carries each pattern input, which
 * constant register absorbs each pattern constant, and the output
 * select.
 *
 * The paper solves "exists config x, forall inputs y: P(x, y) = Op(y)"
 * with an SMT solver.  Here the exists is solved *structurally*
 * (backtracking embedding of the pattern into the configurable
 * datapath — the config space of these PEs is exactly their routing
 * and opcode space), and the forall is validated by exhaustive
 * equivalence at reduced bit-width plus randomized checking at full
 * width (see DESIGN.md for the soundness discussion).
 */

namespace apex::mapper {

/** A synthesized rewrite rule. */
struct RewriteRule {
    ir::Graph pattern;  ///< Pattern graph (placeholders + consts).
    pe::PeConfig config; ///< PE configuration executing the pattern
                         ///< (const values are bound per match site).
    /** Pattern node id -> datapath node id (-1 for unmapped). */
    std::vector<int> node_to_dp;
    /** Placeholder pattern node ids, ascending — rule input order. */
    std::vector<ir::NodeId> placeholders;
    /** For each placeholder: index into PeSpec::word_inputs (word
     * placeholders) or PeSpec::bit_inputs (bit placeholders). */
    std::vector<int> input_ports;
    /** Pattern const node ids -> position in PeSpec::const_regs. */
    std::vector<std::pair<ir::NodeId, int>> const_bindings;
    ir::NodeId out_node = ir::kNoNode; ///< Pattern sink node.
    bool word_output = true;  ///< Sink produces a word (else a bit).
    int size = 0;             ///< Compute nodes covered by the rule.
    /** PE type executing this rule (0 in homogeneous CGRAs; set by
     * combineLibraries() for heterogeneous fabrics). */
    int pe_type = 0;
};

/** Synthesis parameters. */
struct SynthesisOptions {
    /** Random vectors checked at full width. */
    int random_checks = 128;
    /** Width of the reduced-width exhaustive sweep (skipped when the
     * pattern has more than exhaustive_max_inputs free inputs). */
    int exhaustive_width = 3;
    int exhaustive_max_inputs = 3;
    unsigned seed = 0xA9EC;
};

/** Synthesizes rewrite rules for one PE specification. */
class RewriteRuleSynthesizer {
  public:
    explicit RewriteRuleSynthesizer(const pe::PeSpec &spec,
                                    SynthesisOptions options = {});

    /**
     * Try to synthesize a rule executing @p pattern on the PE.
     *
     * @return the validated rule, or nullopt when the PE cannot
     * execute the pattern (no structural embedding, or — should the
     * structural argument ever be violated — validation failure).
     */
    std::optional<RewriteRule>
    synthesize(const ir::Graph &pattern) const;

    /**
     * Synthesize the standard rule library for this PE:
     *  - one rule per single op the datapath supports, plus variants
     *    with each word operand bound to a constant register;
     *  - one rule per entry of @p complex_patterns (merged subgraphs
     *    from application analysis) that the PE can execute.
     *
     * Rules are returned largest-first (instruction-selection order).
     */
    std::vector<RewriteRule>
    synthesizeLibrary(const std::vector<ir::Graph> &complex_patterns)
        const;

    const pe::PeSpec &spec() const { return spec_; }

  private:
    const pe::PeSpec &spec_;
    SynthesisOptions options_;
};

/**
 * Check functional equivalence of @p rule against its pattern on the
 * PE @p spec (exhaustive reduced-width + randomized full-width).
 * Exposed for tests.
 */
bool validateRule(const pe::PeSpec &spec, const RewriteRule &rule,
                  const SynthesisOptions &options = {});

/**
 * Merge several per-PE-type rule libraries into one instruction-
 * selection library for a heterogeneous CGRA: rules from
 * libraries[t] get pe_type = t, and the result is re-sorted
 * most-complex-first with cheaper PE types preferred on ties (a tie
 * means both PE types execute the pattern; the smaller PE should).
 *
 * @param libraries       One library per PE type.
 * @param type_area_rank  Optional areas per type used for the
 *                        tie-break (smaller = preferred).
 */
std::vector<RewriteRule>
combineLibraries(std::vector<std::vector<RewriteRule>> libraries,
                 const std::vector<double> &type_area_rank = {});

} // namespace apex::mapper

#endif // APEX_MAPPER_REWRITE_H_
