#ifndef APEX_MAPPER_REPORT_H_
#define APEX_MAPPER_REPORT_H_

#include <string>

#include "mapper/select.hpp"

/**
 * @file
 * Mapping reports: the human-readable summary a compiler prints after
 * instruction selection — rule-use histogram, PE utilization (ops per
 * PE, the paper's "maximize utilization of the PE's hardware
 * resources" objective), constant-register absorption and IO counts.
 */

namespace apex::mapper {

/** Aggregated mapping statistics. */
struct MappingStats {
    int pe_count = 0;
    int covered_ops = 0;       ///< Compute ops executed on PEs.
    double ops_per_pe = 0.0;   ///< covered_ops / pe_count.
    int consts_absorbed = 0;   ///< Constants bound to PE const regs.
    int multi_op_pes = 0;      ///< PEs executing >= 2 ops (merged).
    int max_rule_size = 0;     ///< Largest rule actually used.
    int distinct_rules = 0;    ///< Rules with at least one use.
};

/** Compute statistics for a mapping result. */
MappingStats mappingStats(const SelectionResult &result,
                          const std::vector<RewriteRule> &rules);

/**
 * Render a report: the stats plus a per-rule histogram (rule pattern
 * summary, size, uses), ordered by use count.
 */
std::string mappingReport(const SelectionResult &result,
                          const std::vector<RewriteRule> &rules);

} // namespace apex::mapper

#endif // APEX_MAPPER_REPORT_H_
