#include "mapper/rewrite.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <random>
#include <set>

#include "ir/interpreter.hpp"
#include "runtime/telemetry.hpp"

namespace apex::mapper {

using ir::Graph;
using ir::NodeId;
using ir::Op;
using merging::DpNodeKind;
using pe::PeConfig;
using pe::PeSpec;

namespace {

bool
isPlaceholderNode(const Graph &g, NodeId id)
{
    const Op op = g.op(id);
    return op == Op::kInput || op == Op::kInputBit;
}

bool
isConstNode(const Graph &g, NodeId id)
{
    const Op op = g.op(id);
    return op == Op::kConst || op == Op::kConstBit;
}

/** Find the unique sink (compute node without consumers); kNoNode if
 * the pattern has zero or several sinks. */
NodeId
uniqueSink(const Graph &pattern)
{
    std::vector<bool> has_consumer(pattern.size(), false);
    for (const ir::Edge &e : pattern.edges())
        has_consumer[e.src] = true;
    NodeId sink = ir::kNoNode;
    for (NodeId id = 0; id < pattern.size(); ++id) {
        if (!ir::opIsCompute(pattern.op(id)) || has_consumer[id])
            continue;
        if (sink != ir::kNoNode)
            return ir::kNoNode;
        sink = id;
    }
    return sink;
}

/** Backtracking structural embedding of a pattern into the datapath. */
struct StructuralMatcher {
    const Graph &pattern;
    const PeSpec &spec;
    std::vector<int> pat2dp;
    std::vector<bool> dp_used;
    std::vector<NodeId> order; ///< Pattern nodes in assignment order.
    NodeId sink;

    StructuralMatcher(const Graph &p, const PeSpec &s, NodeId snk)
        : pattern(p), spec(s), pat2dp(p.size(), -1),
          dp_used(s.dp.nodes.size(), false), sink(snk)
    {
        for (NodeId id : p.topoOrder())
            order.push_back(id);
    }

    bool
    edgeOk(NodeId psrc, NodeId pdst, int port) const
    {
        const merging::DpEdge want{pat2dp[psrc], pat2dp[pdst], port};
        return std::find(spec.dp.edges.begin(), spec.dp.edges.end(),
                         want) != spec.dp.edges.end();
    }

    /** Check edges of @p pid against already-assigned neighbours. */
    bool
    consistent(NodeId pid) const
    {
        const ir::Node &pn = pattern.node(pid);
        for (int p = 0; p < static_cast<int>(pn.operands.size());
             ++p) {
            const NodeId src = pn.operands[p];
            if (pat2dp[src] >= 0 && !edgeOk(src, pid, p))
                return false;
        }
        // Fanout edges into assigned consumers.
        for (NodeId other = 0; other < pattern.size(); ++other) {
            if (pat2dp[other] < 0)
                continue;
            const ir::Node &on = pattern.node(other);
            for (int p = 0; p < static_cast<int>(on.operands.size());
                 ++p) {
                if (on.operands[p] == pid && !edgeOk(pid, other, p))
                    return false;
            }
        }
        return true;
    }

    std::vector<int>
    candidatesFor(NodeId pid) const
    {
        const ir::Node &pn = pattern.node(pid);
        std::vector<int> result;
        if (isPlaceholderNode(pattern, pid)) {
            const auto &inputs = pn.op == Op::kInputBit
                                     ? spec.bit_inputs
                                     : spec.word_inputs;
            for (int id : inputs)
                result.push_back(id);
        } else if (isConstNode(pattern, pid)) {
            for (int id : spec.const_regs) {
                const bool want_bit = pn.op == Op::kConstBit;
                const bool is_bit = spec.dp.nodes[id].type ==
                                    ir::ValueType::kBit;
                if (want_bit == is_bit)
                    result.push_back(id);
            }
        } else {
            for (int id : spec.dp.blockIds()) {
                if (!spec.dp.nodes[id].ops.count(pn.op))
                    continue;
                if (pid == sink && !spec.dp.nodes[id].is_output)
                    continue;
                result.push_back(id);
            }
        }
        return result;
    }

    bool
    search(std::size_t depth)
    {
        if (depth == order.size())
            return true;
        const NodeId pid = order[depth];
        for (int cand : candidatesFor(pid)) {
            if (dp_used[cand])
                continue;
            pat2dp[pid] = cand;
            dp_used[cand] = true;
            if (consistent(pid) && search(depth + 1))
                return true;
            dp_used[cand] = false;
            pat2dp[pid] = -1;
        }
        return false;
    }
};

/** Make a const-variant of a single-op seed: placeholders at the
 * word ports selected by @p const_mask are replaced by constants. */
Graph
constVariant(Op op, unsigned const_mask)
{
    Graph g;
    std::vector<NodeId> operands;
    for (int p = 0; p < ir::opArity(op); ++p) {
        const bool bit = ir::opOperandType(op, p) ==
                         ir::ValueType::kBit;
        if (const_mask >> p & 1)
            operands.push_back(
                g.addNode(bit ? Op::kConstBit : Op::kConst));
        else
            operands.push_back(
                g.addNode(bit ? Op::kInputBit : Op::kInput));
    }
    g.addNode(op, std::move(operands));
    return g;
}

Graph
seedSingleOp(Op op)
{
    Graph g;
    std::vector<NodeId> operands;
    for (int p = 0; p < ir::opArity(op); ++p) {
        const bool bit = ir::opOperandType(op, p) ==
                         ir::ValueType::kBit;
        operands.push_back(
            g.addNode(bit ? Op::kInputBit : Op::kInput));
    }
    g.addNode(op, std::move(operands));
    return g;
}

} // namespace

RewriteRuleSynthesizer::RewriteRuleSynthesizer(const PeSpec &spec,
                                               SynthesisOptions opt)
    : spec_(spec), options_(opt)
{
}

std::optional<RewriteRule>
RewriteRuleSynthesizer::synthesize(const Graph &pattern) const
{
    const NodeId sink = uniqueSink(pattern);
    if (sink == ir::kNoNode)
        return std::nullopt;

    StructuralMatcher matcher(pattern, spec_, sink);
    if (!matcher.search(0))
        return std::nullopt;

    RewriteRule rule;
    rule.pattern = pattern;
    rule.node_to_dp = matcher.pat2dp;
    rule.out_node = sink;
    rule.word_output =
        ir::opResultType(pattern.op(sink)) == ir::ValueType::kWord;
    rule.config = pe::defaultConfig(spec_);

    for (NodeId id = 0; id < pattern.size(); ++id) {
        const int dp_id = matcher.pat2dp[id];
        if (isPlaceholderNode(pattern, id)) {
            rule.placeholders.push_back(id);
            const auto &inputs =
                pattern.op(id) == Op::kInputBit ? spec_.bit_inputs
                                                : spec_.word_inputs;
            const auto it = std::find(inputs.begin(), inputs.end(),
                                      dp_id);
            rule.input_ports.push_back(
                static_cast<int>(it - inputs.begin()));
        } else if (isConstNode(pattern, id)) {
            const auto it = std::find(spec_.const_regs.begin(),
                                      spec_.const_regs.end(), dp_id);
            rule.const_bindings.emplace_back(
                id,
                static_cast<int>(it - spec_.const_regs.begin()));
        } else {
            rule.config.block_op[dp_id] = pattern.op(id);
            ++rule.size;
            // LUT truth table becomes configuration.
            if (pattern.op(id) == Op::kLut) {
                for (std::size_t l = 0; l < spec_.lut_blocks.size();
                     ++l) {
                    if (spec_.lut_blocks[l] == dp_id)
                        rule.config.lut_table[l] =
                            pattern.node(id).param;
                }
            }
        }
    }

    // Mux selects from pattern edges.
    for (const ir::Edge &e : pattern.edges()) {
        const int dst_dp = matcher.pat2dp[e.dst];
        const int src_dp = matcher.pat2dp[e.src];
        if (dst_dp < 0 || src_dp < 0)
            continue;
        if (spec_.dp.nodes[dst_dp].kind != DpNodeKind::kBlock)
            continue;
        const int mux = spec_.muxIndexOf(dst_dp, e.port);
        if (mux < 0)
            continue;
        const auto &sources = spec_.muxes[mux].sources;
        const auto it = std::find(sources.begin(), sources.end(),
                                  src_dp);
        rule.config.mux_sel[mux] =
            static_cast<int>(it - sources.begin());
    }

    // Output select.
    const int sink_dp = matcher.pat2dp[sink];
    const auto &outs = rule.word_output ? spec_.word_outputs
                                        : spec_.bit_outputs;
    const auto it = std::find(outs.begin(), outs.end(), sink_dp);
    if (it == outs.end())
        return std::nullopt;
    if (rule.word_output)
        rule.config.word_out_sel =
            static_cast<int>(it - outs.begin());
    else
        rule.config.bit_out_sel = static_cast<int>(it - outs.begin());

    if (!validateRule(spec_, rule, options_))
        return std::nullopt;
    return rule;
}

std::vector<RewriteRule>
RewriteRuleSynthesizer::synthesizeLibrary(
    const std::vector<Graph> &complex_patterns) const
{
    APEX_SPAN("map.rewrite",
              {{"patterns",
                static_cast<long long>(complex_patterns.size())}});
    telemetry::StageTimer timer(
        telemetry::histogram("apex.rewrite.ms"));
    std::vector<RewriteRule> rules;

    // Complex patterns first.
    for (const Graph &p : complex_patterns) {
        if (auto rule = synthesize(p))
            rules.push_back(std::move(*rule));
    }

    // Single-op rules + const variants for every supported op.
    std::set<Op> supported;
    for (int b : spec_.dp.blockIds())
        supported.insert(spec_.dp.nodes[b].ops.begin(),
                         spec_.dp.nodes[b].ops.end());
    for (Op op : supported) {
        if (auto rule = synthesize(seedSingleOp(op)))
            rules.push_back(std::move(*rule));
        // Every non-empty subset of word operand ports may be bound
        // to constant registers (Sec. 2.3's I/O reduction).
        unsigned word_ports = 0;
        for (int port = 0; port < ir::opArity(op); ++port)
            if (ir::opOperandType(op, port) == ir::ValueType::kWord)
                word_ports |= 1u << port;
        for (unsigned mask = 1; mask < 8; ++mask) {
            if ((mask & word_ports) != mask)
                continue;
            if (auto rule = synthesize(constVariant(op, mask)))
                rules.push_back(std::move(*rule));
        }
    }

    // Largest first; prefer const-absorbing variants on ties.
    std::stable_sort(
        rules.begin(), rules.end(),
        [](const RewriteRule &a, const RewriteRule &b) {
            if (a.size != b.size)
                return a.size > b.size;
            return a.const_bindings.size() > b.const_bindings.size();
        });
    return rules;
}

std::vector<RewriteRule>
combineLibraries(std::vector<std::vector<RewriteRule>> libraries,
                 const std::vector<double> &type_area_rank)
{
    std::vector<RewriteRule> combined;
    for (std::size_t t = 0; t < libraries.size(); ++t) {
        for (RewriteRule &rule : libraries[t]) {
            rule.pe_type = static_cast<int>(t);
            combined.push_back(std::move(rule));
        }
    }
    auto rank = [&](int type) {
        return type < static_cast<int>(type_area_rank.size())
                   ? type_area_rank[type]
                   : 0.0;
    };
    std::stable_sort(
        combined.begin(), combined.end(),
        [&](const RewriteRule &a, const RewriteRule &b) {
            if (a.size != b.size)
                return a.size > b.size;
            if (a.const_bindings.size() != b.const_bindings.size())
                return a.const_bindings.size() >
                       b.const_bindings.size();
            return rank(a.pe_type) < rank(b.pe_type);
        });
    return combined;
}

bool
validateRule(const PeSpec &spec, const RewriteRule &rule,
             const SynthesisOptions &options)
{
    // Free variables of the forall: placeholders and constants.
    std::vector<NodeId> free_vars = rule.placeholders;
    for (const auto &[const_node, reg] : rule.const_bindings)
        free_vars.push_back(const_node);

    auto check = [&](const std::vector<std::uint64_t> &values,
                     int width) {
        // Bind the pattern side: copy the pattern with const params
        // overridden, interpret.
        Graph bound = rule.pattern;
        std::map<NodeId, std::uint64_t> inputs;
        pe::PeInputs pe_in;
        pe_in.word.assign(spec.word_inputs.size(), 0);
        pe_in.bit.assign(spec.bit_inputs.size(), 0);
        PeConfig cfg = rule.config;

        for (std::size_t i = 0; i < free_vars.size(); ++i) {
            const NodeId id = free_vars[i];
            const std::uint64_t v = values[i];
            if (isPlaceholderNode(rule.pattern, id)) {
                inputs[id] = v;
                // Locate this placeholder's rule input port.
                for (std::size_t k = 0; k < rule.placeholders.size();
                     ++k) {
                    if (rule.placeholders[k] != id)
                        continue;
                    if (rule.pattern.op(id) == Op::kInputBit)
                        pe_in.bit[rule.input_ports[k]] = v & 1;
                    else
                        pe_in.word[rule.input_ports[k]] = v;
                }
            } else {
                bound.node(id).param = v;
                for (const auto &[cnode, reg] : rule.const_bindings)
                    if (cnode == id)
                        cfg.const_val[reg] = v;
            }
        }

        const ir::Interpreter interp(width);
        const auto pattern_vals = interp.evalAll(bound, inputs);
        const std::uint64_t want = pattern_vals[rule.out_node];

        const pe::PeFunctionalModel model(spec, width);
        pe::PeOutputs out;
        if (!model.evaluate(cfg, pe_in, &out))
            return false;
        const std::uint64_t got = rule.word_output ? out.word
                                                   : out.bit;
        return got == want;
    };

    const int nvars = static_cast<int>(free_vars.size());
    auto width_of = [&](NodeId id) {
        return ir::opResultType(rule.pattern.op(id)) ==
                       ir::ValueType::kBit
                   ? 1
                   : 0; // 0 = word (width set per phase)
    };

    // Phase 1: exhaustive at reduced width when tractable.
    if (nvars <= options.exhaustive_max_inputs) {
        const int w = options.exhaustive_width;
        std::vector<std::uint64_t> values(nvars, 0);
        std::function<bool(int)> sweep = [&](int i) -> bool {
            if (i == nvars)
                return check(values, w);
            const std::uint64_t limit =
                width_of(free_vars[i]) == 1 ? 2 : (1u << w);
            for (std::uint64_t v = 0; v < limit; ++v) {
                values[i] = v;
                if (!sweep(i + 1))
                    return false;
            }
            return true;
        };
        if (!sweep(0))
            return false;
    }

    // Phase 2: randomized checking at full width.
    std::mt19937 rng(options.seed);
    std::uniform_int_distribution<std::uint32_t> dist(0, 0xFFFF);
    for (int t = 0; t < options.random_checks; ++t) {
        std::vector<std::uint64_t> values(nvars);
        for (int i = 0; i < nvars; ++i) {
            values[i] = width_of(free_vars[i]) == 1 ? (dist(rng) & 1)
                                                    : dist(rng);
        }
        if (!check(values, ir::kWordWidth))
            return false;
    }
    return true;
}

} // namespace apex::mapper
