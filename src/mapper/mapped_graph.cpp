#include "mapper/mapped_graph.hpp"

namespace apex::mapper {

std::vector<int>
MappedGraph::nodesOfKind(MappedKind kind) const
{
    std::vector<int> result;
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i)
        if (nodes[i].kind == kind)
            result.push_back(i);
    return result;
}

std::vector<int>
MappedGraph::topoOrder() const
{
    const int n = static_cast<int>(nodes.size());
    std::vector<int> indeg(n, 0);
    std::vector<std::vector<int>> consumers(n);
    for (int i = 0; i < n; ++i) {
        for (int src : nodes[i].inputs) {
            if (src < 0)
                continue;
            ++indeg[i];
            consumers[src].push_back(i);
        }
    }
    std::vector<int> ready, order;
    for (int i = 0; i < n; ++i)
        if (indeg[i] == 0)
            ready.push_back(i);
    while (!ready.empty()) {
        const int id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (int c : consumers[id])
            if (--indeg[c] == 0)
                ready.push_back(c);
    }
    return order;
}

int
MappedGraph::count(MappedKind kind) const
{
    int total = 0;
    for (const MappedNode &n : nodes)
        total += n.kind == kind;
    return total;
}

} // namespace apex::mapper
