#include "mapper/select.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/fault.hpp"
#include "pe/functional.hpp"
#include "runtime/telemetry.hpp"

/*
 * Determinism contract (parallel DSE runtime): this module is called
 * from concurrently evaluated sweep cells, and its output feeds the
 * content-addressed evaluation cache, so for identical inputs it must
 * produce identical results on every lane and every run.  Concretely:
 * only ordered containers (std::map / std::sort with total orders) —
 * never unordered_* whose iteration order can vary —, no reads of
 * global mutable state, and tie-breaks resolved by explicit keys
 * (node id, rule index), never by pointer values or hashes.
 */
namespace apex::mapper {

using ir::Graph;
using ir::NodeId;
using ir::Op;

namespace {

bool
isPlaceholderNode(const Graph &g, NodeId id)
{
    const Op op = g.op(id);
    return op == Op::kInput || op == Op::kInputBit;
}

bool
isConstNode(const Graph &g, NodeId id)
{
    const Op op = g.op(id);
    return op == Op::kConst || op == Op::kConstBit;
}

/** One successful rule application. */
struct Match {
    int rule = -1;
    std::vector<NodeId> pat2app; ///< pattern node -> app node.
};

/** Anchored matcher: embed rule.pattern with out_node fixed. */
struct AnchoredMatcher {
    const Graph &pattern;
    const Graph &app;
    const std::vector<std::vector<ir::Edge>> &app_fanout;
    const std::vector<bool> &covered;
    std::vector<NodeId> pat2app;
    std::vector<bool> app_used; // app compute nodes used by the match

    AnchoredMatcher(const Graph &p, const Graph &a,
                    const std::vector<std::vector<ir::Edge>> &fan,
                    const std::vector<bool> &cov)
        : pattern(p), app(a), app_fanout(fan), covered(cov),
          pat2app(p.size(), ir::kNoNode), app_used(a.size(), false) {}

    /** Recursive match downward from (pattern node, app node). */
    bool
    match(NodeId pid, NodeId aid)
    {
        if (pat2app[pid] != ir::kNoNode)
            return pat2app[pid] == aid;

        if (isPlaceholderNode(pattern, pid)) {
            // Placeholders bind to any externally-produced value of
            // the right type, but never to constants (those must be
            // absorbed by a const-binding rule variant).
            if (isConstNode(app, aid))
                return false;
            const ir::ValueType want =
                pattern.op(pid) == Op::kInputBit ? ir::ValueType::kBit
                                                 : ir::ValueType::kWord;
            if (ir::opResultType(app.op(aid)) != want)
                return false;
            pat2app[pid] = aid;
            return true;
        }
        if (isConstNode(pattern, pid)) {
            if (app.op(aid) != pattern.op(pid))
                return false;
            pat2app[pid] = aid;
            return true;
        }

        // Compute node: ops equal, app node free and uncovered.
        const ir::Node &pn = pattern.node(pid);
        const ir::Node &an = app.node(aid);
        if (pn.op != an.op || covered[aid] || app_used[aid])
            return false;
        if (pn.op == Op::kLut && pn.param != an.param)
            return false;
        if (pn.operands.size() != an.operands.size())
            return false;

        pat2app[pid] = aid;
        app_used[aid] = true;
        for (std::size_t p = 0; p < pn.operands.size(); ++p) {
            if (!match(pn.operands[p], an.operands[p])) {
                // Unwind this subtree.
                undo(pid);
                return false;
            }
        }
        return true;
    }

    /** Undo the binding of @p pid and everything bound after it is
     * handled by restarting the whole match — matches are cheap, so
     * the matcher simply resets on failure (see tryMatch). */
    void
    undo(NodeId pid)
    {
        app_used[pat2app[pid]] = false;
        pat2app[pid] = ir::kNoNode;
    }

    /** Validate internal-fanout and shared-placeholder conditions. */
    bool
    finalize(NodeId sink_pid)
    {
        // Internal compute nodes must have all consumers inside.
        std::map<NodeId, NodeId> app2pat;
        for (NodeId pid = 0; pid < pattern.size(); ++pid) {
            if (pat2app[pid] == ir::kNoNode)
                continue;
            if (ir::opIsCompute(pattern.op(pid)))
                app2pat[pat2app[pid]] = pid;
        }
        for (NodeId pid = 0; pid < pattern.size(); ++pid) {
            if (pid == sink_pid || pat2app[pid] == ir::kNoNode)
                continue;
            if (!ir::opIsCompute(pattern.op(pid)))
                continue;
            for (const ir::Edge &e : app_fanout[pat2app[pid]]) {
                auto it = app2pat.find(e.dst);
                if (it == app2pat.end())
                    return false; // internal value escapes
                // The consuming pattern node must use it on the same
                // port.
                const ir::Node &cons = pattern.node(it->second);
                if (e.port >=
                        static_cast<int>(cons.operands.size()) ||
                    cons.operands[e.port] != pid) {
                    return false;
                }
            }
        }
        return true;
    }
};

} // namespace

SelectionResult
InstructionSelector::map(const Graph &app) const
{
    APEX_SPAN("map.select");
    telemetry::StageTimer timer(
        telemetry::histogram("apex.map.ms"));
    SelectionResult result;
    if (Status fault = checkFault(FaultStage::kMap); !fault.ok()) {
        result.status = std::move(fault);
        result.error = result.status.toString();
        return result;
    }
    result.rule_uses.assign(rules_.size(), 0);

    const auto app_fanout = app.fanouts();
    std::vector<bool> covered(app.size(), false);
    std::vector<int> producer_match(app.size(), -1);
    std::vector<Match> matches;

    auto no_rule_error = [&](NodeId aid) {
        std::ostringstream os;
        os << "no rewrite rule covers node " << aid << " ("
           << ir::opName(app.op(aid)) << ")";
        result.error = os.str();
        result.status = Status(ErrorCode::kMappingFailed, os.str());
    };

    if (policy_ == SelectionPolicy::kGreedyLargestFirst) {
        // Reverse topological order: sinks first, so the largest
        // rules tile from the outputs down (the paper's policy).
        std::vector<NodeId> order = app.topoOrder();
        std::reverse(order.begin(), order.end());

        for (NodeId aid : order) {
            if (!ir::opIsCompute(app.op(aid)) || covered[aid])
                continue;
            bool matched = false;
            for (std::size_t r = 0; r < rules_.size() && !matched;
                 ++r) {
                const RewriteRule &rule = rules_[r];
                AnchoredMatcher matcher(rule.pattern, app,
                                        app_fanout, covered);
                if (!matcher.match(rule.out_node, aid))
                    continue;
                if (!matcher.finalize(rule.out_node))
                    continue;
                Match m;
                m.rule = static_cast<int>(r);
                m.pat2app = matcher.pat2app;
                for (NodeId pid = 0; pid < rule.pattern.size();
                     ++pid) {
                    if (m.pat2app[pid] != ir::kNoNode &&
                        ir::opIsCompute(rule.pattern.op(pid))) {
                        covered[m.pat2app[pid]] = true;
                    }
                }
                producer_match[aid] =
                    static_cast<int>(matches.size());
                matches.push_back(std::move(m));
                ++result.rule_uses[r];
                matched = true;
            }
            if (!matched) {
                no_rule_error(aid);
                return result;
            }
        }
    } else {
        // Min-cost DP tiling.  Phase A: per compute node, the best
        // rule anchored there and its accumulated cost.
        const std::vector<bool> nothing_covered(app.size(), false);
        std::vector<double> cost(app.size(), 0.0);
        std::vector<Match> best_match(app.size());
        for (NodeId aid : app.topoOrder()) {
            if (!ir::opIsCompute(app.op(aid)))
                continue;
            double best = 1e18;
            for (std::size_t r = 0; r < rules_.size(); ++r) {
                const RewriteRule &rule = rules_[r];
                AnchoredMatcher matcher(rule.pattern, app,
                                        app_fanout,
                                        nothing_covered);
                if (!matcher.match(rule.out_node, aid) ||
                    !matcher.finalize(rule.out_node)) {
                    continue;
                }
                double c = 1.0; // one PE instance
                for (NodeId ph : rule.placeholders) {
                    const NodeId src = matcher.pat2app[ph];
                    if (ir::opIsCompute(app.op(src)))
                        c += cost[src];
                }
                if (c < best) {
                    best = c;
                    best_match[aid].rule = static_cast<int>(r);
                    best_match[aid].pat2app = matcher.pat2app;
                }
            }
            if (best >= 1e18) {
                no_rule_error(aid);
                return result;
            }
            cost[aid] = best;
        }

        // Phase B: reconstruct from the values that must exist —
        // compute nodes consumed by structural nodes and compute
        // nodes without consumers; placeholder-bound producers of
        // applied matches join the worklist.
        std::vector<bool> required(app.size(), false);
        std::vector<NodeId> worklist;
        auto require = [&](NodeId aid) {
            if (!required[aid]) {
                required[aid] = true;
                worklist.push_back(aid);
            }
        };
        for (NodeId aid = 0; aid < app.size(); ++aid) {
            if (!ir::opIsCompute(app.op(aid)))
                continue;
            if (app_fanout[aid].empty())
                require(aid);
            for (const ir::Edge &e : app_fanout[aid])
                if (!ir::opIsCompute(app.op(e.dst)))
                    require(aid);
        }
        while (!worklist.empty()) {
            const NodeId aid = worklist.back();
            worklist.pop_back();
            if (producer_match[aid] >= 0)
                continue;
            const Match &m = best_match[aid];
            const RewriteRule &rule = rules_[m.rule];
            producer_match[aid] = static_cast<int>(matches.size());
            matches.push_back(m);
            ++result.rule_uses[m.rule];
            for (NodeId pid = 0; pid < rule.pattern.size(); ++pid) {
                if (m.pat2app[pid] != ir::kNoNode &&
                    ir::opIsCompute(rule.pattern.op(pid))) {
                    covered[m.pat2app[pid]] = true;
                }
            }
            for (NodeId ph : rule.placeholders) {
                const NodeId src = m.pat2app[ph];
                if (ir::opIsCompute(app.op(src)))
                    require(src);
            }
        }
    }

    // Build the mapped graph in app topological order so producers
    // exist before consumers.
    std::vector<int> app2mapped(app.size(), -1);
    auto producer_of = [&](NodeId aid) {
        return app2mapped[aid];
    };

    for (NodeId aid : app.topoOrder()) {
        const ir::Node &an = app.node(aid);
        MappedNode mn;
        mn.name = an.name;
        mn.app_node = aid;
        switch (an.op) {
          case Op::kInput:
            mn.kind = MappedKind::kInput;
            break;
          case Op::kInputBit:
            mn.kind = MappedKind::kInputBit;
            break;
          case Op::kOutput:
          case Op::kOutputBit:
            mn.kind = an.op == Op::kOutput ? MappedKind::kOutput
                                           : MappedKind::kOutputBit;
            mn.inputs = {producer_of(an.operands[0])};
            break;
          case Op::kMem:
            mn.kind = MappedKind::kMem;
            mn.inputs = {producer_of(an.operands[0])};
            break;
          case Op::kReg:
            mn.kind = MappedKind::kReg;
            mn.inputs = {producer_of(an.operands[0])};
            break;
          case Op::kRegFile:
            mn.kind = MappedKind::kRegFile;
            mn.depth = static_cast<int>(an.param);
            mn.inputs = {producer_of(an.operands[0])};
            break;
          case Op::kConst:
          case Op::kConstBit:
            continue; // absorbed into PE constant registers
          default: {
            if (producer_match[aid] < 0)
                continue; // internal node of some PE
            const Match &m = matches[producer_match[aid]];
            const RewriteRule &rule = rules_[m.rule];
            mn.kind = MappedKind::kPe;
            mn.rule = m.rule;
            for (NodeId ph : rule.placeholders) {
                const int src = producer_of(m.pat2app[ph]);
                if (src < 0) {
                    result.error =
                        "placeholder bound to an unavailable value";
                    result.status = Status(ErrorCode::kMappingFailed,
                                           result.error);
                    return result;
                }
                mn.inputs.push_back(src);
            }
            for (const auto &[cnode, reg] : rule.const_bindings) {
                mn.const_vals.push_back(
                    app.node(m.pat2app[cnode]).param);
            }
            break;
          }
        }
        for (int src : mn.inputs) {
            if (src < 0) {
                result.error = "dangling mapped edge";
                result.status = Status(ErrorCode::kMappingFailed,
                                       result.error);
                return result;
            }
        }
        app2mapped[aid] =
            static_cast<int>(result.mapped.nodes.size());
        result.mapped.nodes.push_back(std::move(mn));
    }

    result.success = true;
    return result;
}

std::vector<std::uint64_t>
executeMapped(const MappedGraph &mapped,
              const std::vector<RewriteRule> &rules,
              const pe::PeSpec &spec,
              const std::vector<std::uint64_t> &inputs_by_order)
{
    return executeMappedHetero(mapped, rules, {&spec},
                               inputs_by_order);
}

std::vector<std::uint64_t>
executeMappedHetero(const MappedGraph &mapped,
                    const std::vector<RewriteRule> &rules,
                    const std::vector<const pe::PeSpec *> &specs,
                    const std::vector<std::uint64_t> &inputs_by_order)
{
    std::vector<pe::PeFunctionalModel> models;
    models.reserve(specs.size());
    for (const pe::PeSpec *spec : specs)
        models.emplace_back(*spec);
    std::vector<std::uint64_t> value(mapped.nodes.size(), 0);

    // Bind input pads in *application* input order (app_node id
    // order), matching ir::Interpreter::evalByOrder.
    std::vector<int> input_pads;
    for (std::size_t id = 0; id < mapped.nodes.size(); ++id) {
        const MappedKind k = mapped.nodes[id].kind;
        if (k == MappedKind::kInput || k == MappedKind::kInputBit)
            input_pads.push_back(static_cast<int>(id));
    }
    std::sort(input_pads.begin(), input_pads.end(), [&](int a, int b) {
        return mapped.nodes[a].app_node < mapped.nodes[b].app_node;
    });
    for (std::size_t i = 0; i < input_pads.size(); ++i) {
        value[input_pads[i]] =
            i < inputs_by_order.size() ? inputs_by_order[i] : 0;
    }

    for (int id : mapped.topoOrder()) {
        const MappedNode &mn = mapped.nodes[id];
        switch (mn.kind) {
          case MappedKind::kInput:
          case MappedKind::kInputBit:
            break;
          case MappedKind::kOutput:
          case MappedKind::kOutputBit:
          case MappedKind::kMem:
          case MappedKind::kReg:
          case MappedKind::kRegFile:
            value[id] = value[mn.inputs[0]];
            break;
          case MappedKind::kPe: {
            const RewriteRule &rule = rules[mn.rule];
            const pe::PeSpec &spec = *specs[rule.pe_type];
            pe::PeConfig cfg = rule.config;
            for (std::size_t c = 0; c < rule.const_bindings.size();
                 ++c) {
                cfg.const_val[rule.const_bindings[c].second] =
                    mn.const_vals[c];
            }
            pe::PeInputs in;
            in.word.assign(spec.word_inputs.size(), 0);
            in.bit.assign(spec.bit_inputs.size(), 0);
            for (std::size_t k = 0; k < rule.placeholders.size();
                 ++k) {
                const std::uint64_t v = value[mn.inputs[k]];
                if (rule.pattern.op(rule.placeholders[k]) ==
                    Op::kInputBit) {
                    in.bit[rule.input_ports[k]] = v & 1;
                } else {
                    in.word[rule.input_ports[k]] = v;
                }
            }
            pe::PeOutputs out;
            const bool ok =
                models[rule.pe_type].evaluate(cfg, in, &out);
            value[id] = ok ? (rule.word_output ? out.word : out.bit)
                           : 0;
            break;
          }
        }
    }

    // Report outputs in application output order.
    std::vector<int> output_pads;
    for (std::size_t id = 0; id < mapped.nodes.size(); ++id) {
        const MappedKind k = mapped.nodes[id].kind;
        if (k == MappedKind::kOutput || k == MappedKind::kOutputBit)
            output_pads.push_back(static_cast<int>(id));
    }
    std::sort(output_pads.begin(), output_pads.end(),
              [&](int a, int b) {
                  return mapped.nodes[a].app_node <
                         mapped.nodes[b].app_node;
              });
    std::vector<std::uint64_t> outputs;
    for (int id : output_pads)
        outputs.push_back(value[id]);
    return outputs;
}

} // namespace apex::mapper
