#include "mapper/report.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace apex::mapper {

namespace {

/** One-line summary of a rule pattern, e.g. "add(mul(x,c),x)". */
std::string
ruleSummary(const RewriteRule &rule)
{
    std::ostringstream os;
    bool first = true;
    os << '[';
    for (const auto &[op, count] : rule.pattern.opHistogram()) {
        if (!ir::opIsCompute(op) && op != ir::Op::kConst &&
            op != ir::Op::kConstBit)
            continue;
        if (!first)
            os << ' ';
        first = false;
        if (count > 1)
            os << count << 'x';
        os << ir::opName(op);
    }
    os << ']';
    return os.str();
}

} // namespace

MappingStats
mappingStats(const SelectionResult &result,
             const std::vector<RewriteRule> &rules)
{
    MappingStats stats;
    for (const MappedNode &n : result.mapped.nodes) {
        if (n.kind != MappedKind::kPe)
            continue;
        const RewriteRule &rule = rules[n.rule];
        ++stats.pe_count;
        stats.covered_ops += rule.size;
        stats.consts_absorbed +=
            static_cast<int>(rule.const_bindings.size());
        stats.multi_op_pes += rule.size >= 2;
        stats.max_rule_size = std::max(stats.max_rule_size,
                                       rule.size);
    }
    for (int uses : result.rule_uses)
        stats.distinct_rules += uses > 0;
    stats.ops_per_pe =
        stats.pe_count > 0
            ? static_cast<double>(stats.covered_ops) /
                  stats.pe_count
            : 0.0;
    return stats;
}

std::string
mappingReport(const SelectionResult &result,
              const std::vector<RewriteRule> &rules)
{
    const MappingStats stats = mappingStats(result, rules);
    std::ostringstream os;
    os << "mapping report\n";
    os << "  PEs:            " << stats.pe_count << '\n';
    os << "  ops covered:    " << stats.covered_ops << " ("
       << stats.ops_per_pe << " ops/PE)\n";
    os << "  merged PEs:     " << stats.multi_op_pes << '\n';
    os << "  consts bound:   " << stats.consts_absorbed << '\n';
    os << "  rules used:     " << stats.distinct_rules << " of "
       << rules.size() << " (largest " << stats.max_rule_size
       << " ops)\n";

    std::vector<std::size_t> order(result.rule_uses.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return result.rule_uses[a] > result.rule_uses[b];
              });
    os << "  per-rule uses:\n";
    for (std::size_t i : order) {
        if (result.rule_uses[i] == 0)
            break;
        os << "    " << result.rule_uses[i] << "x size "
           << rules[i].size << " pe_type " << rules[i].pe_type
           << ' ' << ruleSummary(rules[i]) << '\n';
    }
    return os.str();
}

} // namespace apex::mapper
