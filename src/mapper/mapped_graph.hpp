#ifndef APEX_MAPPER_MAPPED_GRAPH_H_
#define APEX_MAPPER_MAPPED_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.hpp"

/**
 * @file
 * The mapped application: a dataflow graph over CGRA resources (PE
 * instances, memory tiles, IO pads, pipeline registers, register-file
 * FIFOs) produced by instruction selection (Fig. 7 of the paper) and
 * transformed by application pipelining (Sec. 4.3).
 */

namespace apex::mapper {

/** Kind of a mapped node. */
enum class MappedKind : std::uint8_t {
    kPe,      ///< PE instance executing one rewrite rule.
    kMem,     ///< Memory tile (line buffer).
    kInput,   ///< Word input pad.
    kInputBit,///< Bit input pad.
    kOutput,  ///< Word output pad.
    kOutputBit, ///< Bit output pad.
    kReg,     ///< Pipeline register (lives in the interconnect).
    kRegFile, ///< Register file acting as a FIFO of depth `depth`.
};

/** One node of the mapped application graph. */
struct MappedNode {
    MappedKind kind = MappedKind::kPe;
    int rule = -1; ///< kPe: index into the rewrite-rule library.
    /** kPe: values bound to the rule's const registers, parallel to
     * RewriteRule::const_bindings. */
    std::vector<std::uint64_t> const_vals;
    /** Producers, one per input. kPe: parallel to
     * RewriteRule::placeholders; others: single producer. */
    std::vector<int> inputs;
    int depth = 0; ///< kRegFile: FIFO depth in cycles.
    /** kReg: true when inserted by branch delay matching (pipeline
     * skew compensation) rather than present in the application
     * (functional delay). */
    bool is_balancing = false;
    /** kRegFile: how many of the folded registers were balancing
     * registers (the rest were functional delays). */
    int balancing_regs = 0;
    std::string name; ///< Debug name (IO pads keep the app name).
    /** App graph node this mapped node produces (sink for PEs). */
    ir::NodeId app_node = ir::kNoNode;
};

/** The mapped application graph. */
struct MappedGraph {
    std::vector<MappedNode> nodes;

    /** @return ids with the given kind, in creation order. */
    std::vector<int> nodesOfKind(MappedKind kind) const;

    /** @return a topological order (producers first). */
    std::vector<int> topoOrder() const;

    /** @return count of nodes with the given kind. */
    int count(MappedKind kind) const;

    /** Total registers (kReg count + RF depths are reported apart). */
    int registerCount() const { return count(MappedKind::kReg); }
};

} // namespace apex::mapper

#endif // APEX_MAPPER_MAPPED_GRAPH_H_
