#ifndef APEX_MAPPER_SELECT_H_
#define APEX_MAPPER_SELECT_H_

#include <string>
#include <vector>

#include "core/status.hpp"
#include "ir/graph.hpp"
#include "mapper/mapped_graph.hpp"
#include "mapper/rewrite.hpp"

/**
 * @file
 * Instruction selection (Sec. 4.1.2): transform the application
 * dataflow graph of IR operations into a dataflow graph of PE
 * instances by greedily applying rewrite rules, most complex first —
 * the LLVM-style tiling the paper uses.
 *
 * A rule matches at an application node when its pattern embeds with
 * the sink anchored there, every internal node of the match has no
 * consumer outside the match (its value would not be observable on
 * the PE output), every pattern constant lands on an application
 * constant (absorbed into the PE's constant registers), and pattern
 * inputs bind to values produced outside the match.
 */

namespace apex::mapper {

/** Result of mapping one application. */
struct SelectionResult {
    bool success = false;
    std::string error;       ///< Set when success is false.
    Status status;           ///< Typed outcome (kMappingFailed).
    MappedGraph mapped;      ///< Valid when success.
    std::vector<int> rule_uses; ///< Per-rule application counts.

    /** Number of PE instances used (the paper's "#PEs"). */
    int peCount() const { return mapped.count(MappedKind::kPe); }
};

/** Tiling policy. */
enum class SelectionPolicy {
    /** The paper's policy: greedy, most complex rule first
     * (LLVM-style maximal munch). */
    kGreedyLargestFirst,
    /** Dynamic-programming cost minimization: per node, choose the
     * rule minimizing (1 + sum of the costs of the values it
     * consumes).  Optimal PE count on expression trees; on DAGs
     * shared values are materialized once but the DP bound may
     * overcount them (classic tiling heuristic). */
    kMinCost,
};

/** Instruction selector (greedy or DP tiling). */
class InstructionSelector {
  public:
    /** @param rules  Rule library, ordered most-complex-first (as
     * produced by RewriteRuleSynthesizer::synthesizeLibrary). */
    explicit InstructionSelector(
        std::vector<RewriteRule> rules,
        SelectionPolicy policy = SelectionPolicy::kGreedyLargestFirst)
        : rules_(std::move(rules)), policy_(policy) {}

    /** Map @p app onto PEs; fails when some compute node cannot be
     * covered by any rule. */
    SelectionResult map(const ir::Graph &app) const;

    const std::vector<RewriteRule> &rules() const { return rules_; }
    SelectionPolicy policy() const { return policy_; }

  private:
    std::vector<RewriteRule> rules_;
    SelectionPolicy policy_;
};

/**
 * Execute a mapped application on the PE functional model and return
 * the output values in application output order.  Registers, register
 * files and memory nodes forward their input (steady-state streaming
 * semantics) so the result is directly comparable with
 * ir::Interpreter::evalByOrder on the source application.
 */
std::vector<std::uint64_t>
executeMapped(const MappedGraph &mapped,
              const std::vector<RewriteRule> &rules,
              const pe::PeSpec &spec,
              const std::vector<std::uint64_t> &inputs_by_order);

/**
 * Heterogeneous-fabric variant of executeMapped(): each rule's
 * pe_type indexes @p specs (see combineLibraries()).
 */
std::vector<std::uint64_t>
executeMappedHetero(const MappedGraph &mapped,
                    const std::vector<RewriteRule> &rules,
                    const std::vector<const pe::PeSpec *> &specs,
                    const std::vector<std::uint64_t>
                        &inputs_by_order);

} // namespace apex::mapper

#endif // APEX_MAPPER_SELECT_H_
