#ifndef APEX_CORE_EXPLORER_H_
#define APEX_CORE_EXPLORER_H_

#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "core/status.hpp"
#include "merging/merge.hpp"
#include "mining/miner.hpp"
#include "model/tech.hpp"
#include "pe/spec.hpp"
#include "runtime/thread_pool.hpp"

/**
 * @file
 * The APEX design-space-exploration driver (Fig. 6): application
 * frequent-subgraph analysis, PE-variant generation by subgraph
 * merging, and the paper's Sec. 5 variant recipe:
 *
 *  - PE Base : the Fig. 1 general-purpose PE;
 *  - PE 1    : PE Base restricted to the ops the application uses;
 *  - PE k    : PE 1 merged with the top k-1 mined subgraphs in MIS
 *              order;
 *  - PE IP / PE ML : PE 1 over the op-union of a domain's apps,
 *              merged with top subgraphs from every app;
 *  - PE Spec : the most specialized per-application variant.
 */

namespace apex::core {

/** A candidate PE design produced by the explorer. */
struct PeVariant {
    std::string name;
    pe::PeSpec spec;
    /** The merged subgraphs — fed to rewrite-rule synthesis so the
     * compiler can exploit the specialized datapath. */
    std::vector<ir::Graph> patterns;
    /** Clique searches during construction that stopped before
     * optimality (node budget or deadline): the variant is correct
     * but may waste area, so sweeps surface it as a warning instead
     * of letting it pass silently. */
    int non_optimal_merges = 0;
    /** Of those, searches cut short by the merge deadline. */
    int merge_timeouts = 0;
    /** Mining levels whose pattern frontier hit the miner's
     * max_patterns_per_level safety valve while this variant was
     * built (summed over apps for domain variants).  Non-zero means
     * candidate patterns were silently dropped — the variant is
     * valid but may have missed a better subgraph, so sweeps surface
     * it as a warning (same policy as non_optimal_merges). */
    int mine_capped_levels = 0;
};

/** Exploration knobs. */
struct ExplorerOptions {
    mining::MinerOptions miner{.min_support = 3,
                               .max_pattern_nodes = 4,
                               .mine_constants = true,
                               .max_patterns_per_level = 256};
    /** Patterns must re-occur at least this often without overlap. */
    int min_mis = 2;
    /** Knobs (clique budget, deadline) for every datapath merge the
     * explorer performs while building variants. */
    merging::MergeOptions merge;
    /** Maximum subgraphs merged into the most specialized PE. */
    int max_merged_subgraphs = 3;
    /**
     * Worker pool shared by mining (per-level candidate expansion)
     * and domain analysis (per-app mining fan-out).  Null, or
     * parallelism <= 1, keeps every path on the original sequential
     * schedule; results are identical either way.
     */
    runtime::ThreadPool *pool = nullptr;
};

/** APEX explorer: analysis + PE-variant generation. */
class Explorer {
  public:
    explicit Explorer(const model::TechModel &tech =
                          model::defaultTech(),
                      ExplorerOptions options = {});

    /**
     * Frequent-subgraph analysis of one application (Sec. 3): mining,
     * MIS analysis, ranking.  Only single-sink patterns with >= 2
     * compute nodes and MIS >= min_mis survive — those are the PE
     * candidates.
     */
    std::vector<mining::MinedPattern>
    analyze(const ir::Graph &app) const;

    /**
     * Status-bearing analyze(): mining failures (including injected
     * faults and unexpected exceptions) come back as kMiningFailed
     * instead of propagating.  analyze() is the legacy wrapper that
     * degrades to an empty pattern list.
     *
     * @param stats Optional miner counters for the run (levels,
     * candidates, capped levels, ...); left zeroed on failure paths
     * that never reach the miner.
     */
    Result<std::vector<mining::MinedPattern>>
    tryAnalyze(const ir::Graph &app,
               mining::MineStats *stats = nullptr) const;

    /** PE Base. */
    PeVariant baselineVariant() const;

    /** PE 1 for @p app. */
    PeVariant subsetVariant(const apps::AppInfo &app) const;

    /**
     * PE (1+k) for @p app: PE 1 merged with the top @p k subgraphs.
     * k = 0 degenerates to PE 1.
     */
    PeVariant specializedVariant(const apps::AppInfo &app,
                                 int k) const;

    /**
     * Status-bearing specializedVariant(): mining and merge failures
     * come back typed (kMiningFailed / kMergeInfeasible).  The
     * legacy API degrades to PE 1 when variant construction fails.
     */
    Result<PeVariant> trySpecializedVariant(const apps::AppInfo &app,
                                            int k) const;

    /** The most specialized variant (k = max_merged_subgraphs). */
    PeVariant specVariant(const apps::AppInfo &app) const;

    /**
     * Domain PE: op-union subset PE merged with the top
     * @p per_app subgraphs of every application in @p domain_apps.
     */
    PeVariant domainVariant(const std::vector<apps::AppInfo>
                                &domain_apps,
                            int per_app, const std::string &name)
        const;

    /** Status-bearing domainVariant(); the legacy API degrades to
     * the op-union subset PE without merged patterns. */
    Result<PeVariant>
    tryDomainVariant(const std::vector<apps::AppInfo> &domain_apps,
                     int per_app, const std::string &name) const;

    const model::TechModel &tech() const { return tech_; }
    const ExplorerOptions &options() const { return options_; }

  private:
    /** Top-k mergeable pattern graphs of an app, in MIS order. */
    std::vector<ir::Graph> topPatterns(const ir::Graph &app,
                                       int k) const;
    Result<std::vector<ir::Graph>>
    tryTopPatterns(const ir::Graph &app, int k,
                   mining::MineStats *stats = nullptr) const;

    const model::TechModel &tech_;
    ExplorerOptions options_;
};

} // namespace apex::core

#endif // APEX_CORE_EXPLORER_H_
