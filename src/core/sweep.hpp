#ifndef APEX_CORE_SWEEP_H_
#define APEX_CORE_SWEEP_H_

#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/status.hpp"

/**
 * @file
 * Fault-tolerant DSE sweep driver.
 *
 * runSweep() evaluates every (application, PE variant) pair of the
 * paper's Sec. 5 recipe and never lets one failure abort the sweep:
 * a failing stage — validation, mining, merging, mapping, placement,
 * routing or evaluation — is recorded as a StageFailure in the
 * ExplorationReport (stage name, error code, attempts consumed) and
 * only the affected pair (or app, when its graph is invalid) is
 * skipped.  The per-pair diagnostics trails are merged into the
 * report under an "app/variant" scope so recovered retries stay
 * observable after the sweep.
 */

namespace apex::core {

/** Sweep configuration. */
struct SweepOptions {
    EvalLevel level = EvalLevel::kPostMapping;
    EvalOptions eval;
    bool include_baseline = true;    ///< PE Base.
    bool include_subset = true;      ///< PE 1 per app.
    bool include_specialized = true; ///< PE k (k = max merged).
};

/** One completed (application, variant) evaluation. */
struct SweepEntry {
    std::string app;
    std::string variant;
    EvalResult result;
};

/** Everything a sweep produced. */
struct SweepOutcome {
    std::vector<SweepEntry> entries; ///< Successful evaluations.
    ExplorationReport report;        ///< Roll-up incl. failures.
};

/** Evaluate @p apps across the variant recipe, surviving failures. */
SweepOutcome runSweep(const std::vector<apps::AppInfo> &apps,
                      const Explorer &explorer,
                      const model::TechModel &tech,
                      const SweepOptions &options = {});

} // namespace apex::core

#endif // APEX_CORE_SWEEP_H_
