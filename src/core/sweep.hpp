#ifndef APEX_CORE_SWEEP_H_
#define APEX_CORE_SWEEP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/deadline.hpp"
#include "core/evaluate.hpp"
#include "core/status.hpp"
#include "runtime/cache.hpp"
#include "runtime/thread_pool.hpp"

/**
 * @file
 * Fault-tolerant, parallel DSE sweep driver.
 *
 * runSweep() evaluates every (application, PE variant) pair of the
 * paper's Sec. 5 recipe and never lets one failure abort the sweep:
 * a failing stage — validation, mining, merging, mapping, placement,
 * routing or evaluation — is recorded as a StageFailure in the
 * ExplorationReport (stage name, error code, attempts consumed) and
 * only the affected pair (or app, when its graph is invalid) is
 * skipped.  The per-pair diagnostics trails are merged into the
 * report under an "app/variant" scope so recovered retries stay
 * observable after the sweep.
 *
 * Parallel execution (jobs > 1) fans the sweep out as a task graph:
 * one variant-construction task per application, one evaluation task
 * per (app, variant) cell depending on it.  Every task writes only
 * its own preallocated slot and the report is assembled in a single
 * sequential pass afterwards in the same (app, variant) order the
 * sequential driver uses, so the outcome — entries, failures,
 * diagnostics, ordering — is byte-identical for any job count.
 *
 * Durability (see core/journal.hpp): with a journal_dir set, every
 * completed build and evaluation is checkpointed to a crash-safe
 * write-ahead journal before the sweep moves on, and resume = true
 * replays a prior journal so only the missing cells are recomputed —
 * the resumed report is byte-identical to an uninterrupted run.
 *
 * Pressure (see core/deadline.hpp): `deadline` bounds the whole
 * sweep (cells that cannot start in time fail as kTimeout, not as a
 * hang) and `cell_deadline_ms` bounds each cell; a cell whose budget
 * expires is retried once with cheap fallback knobs and, when that
 * succeeds, marked degraded in the report instead of failing.
 */

namespace apex::core {

/** Where evaluations execute. */
enum class IsolateMode {
    /** Cells run on the in-process ThreadPool (the default and the
     * determinism oracle). */
    kInProcess,
    /**
     * Cells run in forked worker processes behind the supervised
     * WorkerPool (runtime/worker_pool.hpp): a crashing, hanging or
     * OOM-killed cell costs one worker, not the sweep.  A cell that
     * kills its worker on every allowed attempt (1 + cell_retries)
     * is quarantined — recorded as a kWorkerCrashed failure with the
     * death cause, journaled durably, and the sweep continues.  With
     * no faults the report is byte-identical to kInProcess at any
     * job count.
     */
    kProcess,
};

/** One completed cell evaluation, reported through
 * SweepOptions::progress while the sweep is still running. */
struct SweepProgress {
    int done = 0;  ///< Evaluations completed so far (this sweep).
    int total = 0; ///< Upper bound: 3 recipe cells per application.
    std::string app;
    std::string variant;
};

/** Sweep configuration. */
struct SweepOptions {
    EvalLevel level = EvalLevel::kPostMapping;
    EvalOptions eval;
    bool include_baseline = true;    ///< PE Base.
    bool include_subset = true;      ///< PE 1 per app.
    bool include_specialized = true; ///< PE k (k = max merged).

    /**
     * Worker lanes (threads + the participating caller).  1 runs the
     * deterministic inline schedule; <= 0 asks the runtime for its
     * default ($APEX_JOBS, else hardware concurrency).  Ignored when
     * @ref pool is set.
     */
    int jobs = 1;
    /** External pool to run on (shared across sweeps); null =>
     * the sweep owns a pool sized by @ref jobs. */
    runtime::ThreadPool *pool = nullptr;
    /** Memoization cache for evaluate(); overrides eval.cache. */
    runtime::ArtifactCache *cache = nullptr;
    /** Cooperative cancellation: when it reads true, unstarted cells
     * finish as kCancelled skips instead of evaluating. */
    const std::atomic<bool> *cancel = nullptr;
    /** Invoked after each fresh cell evaluation completes, from
     * whichever lane (or worker supervisor) finished it — the callee
     * must be thread-safe.  Replayed cells do not fire.  Purely
     * observational: it never affects the report. */
    std::function<void(const SweepProgress &)> progress;

    /** Wall-clock bound for the whole sweep.  Cells (and builds) that
     * cannot start before it expires are recorded as kTimeout
     * failures; running stages observe it cooperatively. */
    Deadline deadline;
    /**
     * Per-cell wall-clock budget in milliseconds (<= 0: none).  Each
     * evaluation runs under the tighter of this and the sweep
     * deadline; on expiry it is retried once with cheap fallback
     * knobs (1 placement attempt, no track escalation, at most 2
     * fabric growths) under the sweep deadline only, and a result
     * salvaged that way is marked EvalResult::degraded.
     */
    double cell_deadline_ms = 0.0;
    /** Directory for the crash-safe sweep journal (the CLI passes its
     * cache dir).  Empty disables journaling. */
    std::string journal_dir;
    /** Replay the journal in journal_dir: cells completed by a prior
     * (possibly crashed) run are restored instead of re-evaluated.
     * A journal whose configuration fingerprint does not match is
     * ignored and restarted.  Requires journal_dir. */
    bool resume = false;

    /** Execution substrate for evaluations (builds always run
     * in-process: fork-COW then shares the built variants with every
     * worker for free). */
    IsolateMode isolate = IsolateMode::kInProcess;
    /** kProcess only: re-dispatches allowed after a worker-killing
     * attempt before the cell is quarantined. */
    int cell_retries = 2;
    /** kProcess only: worker proof-of-life cadence. */
    double worker_heartbeat_ms = 25.0;
    /** kProcess only: silence budget before a busy worker is
     * declared hung and SIGKILLed. */
    double worker_liveness_timeout_ms = 2000.0;

    /**
     * Request trace id stamped on every span this sweep records —
     * build/eval tasks on pool lanes and (kProcess) dispatched cells
     * in forked workers — so a multi-request daemon can slice one
     * request's spans back out (service `trace`).  0 = unscoped.
     * Purely observational: never affects the outcome.
     */
    std::uint64_t trace_id = 0;
};

/** One completed (application, variant) evaluation. */
struct SweepEntry {
    std::string app;
    std::string variant;
    EvalResult result;
};

/** Runtime counters of one sweep (reported under --diagnostics). */
struct SweepRuntimeStats {
    int jobs = 1;                  ///< Lanes actually used.
    long tasks_run = 0;            ///< Graph tasks executed.
    long tasks_stolen = 0;         ///< Executed off a foreign lane.
    long cache_hits = 0;           ///< evaluate() cache hits.
    long cache_misses = 0;         ///< evaluate() cache misses.
    long cells_replayed = 0;       ///< Restored from the journal.
    long cells_degraded = 0;       ///< Completed on the cheap path.
    long non_optimal_cliques = 0;  ///< Clique searches cut short.
    long mine_capped_levels = 0;   ///< Mining levels truncated at the
                                   ///< max_patterns_per_level cap.
    long worker_restarts = 0;      ///< Workers re-forked (kProcess).
    long worker_retries = 0;       ///< Cells re-dispatched (kProcess).
    long worker_quarantined = 0;   ///< Cells given up on (kProcess).
    double build_ms = 0.0;         ///< CPU ms in variant construction.
    double eval_ms = 0.0;          ///< CPU ms in evaluations.
    double wall_ms = 0.0;          ///< End-to-end sweep wall time.

    /** "jobs=8 tasks=24 stolen=7 cache=12/12 ... wall=103.4ms". */
    std::string toString() const;
};

/** Everything a sweep produced. */
struct SweepOutcome {
    std::vector<SweepEntry> entries; ///< Successful evaluations.
    ExplorationReport report;        ///< Roll-up incl. failures.
    SweepRuntimeStats stats;         ///< Parallel-runtime counters.
    /**
     * Non-ok when journaling was requested but could not keep its
     * durability promise (open failure, or a failed append — disk
     * full, I/O error — that left the on-disk log incomplete).  The
     * evaluations above are still valid; the CLI turns this into a
     * loud exit 17 because a later --resume against that journal
     * would silently redo (or mis-trust) work.  Always ok when
     * journal_dir was empty.
     */
    Status durability;
};

/**
 * Fingerprint of every input that shapes a sweep's work: the app set,
 * the recipe, the evaluation knobs, the tech model and the explorer
 * configuration.  Deadlines and job counts are deliberately excluded
 * — they decide how fast cells complete, never what they contain —
 * so a resumed run may use different budgets.  Doubles as the
 * journal identity and the service layer's request-coalescing key.
 */
std::uint64_t sweepFingerprint(const std::vector<apps::AppInfo> &apps,
                               const Explorer &explorer,
                               const model::TechModel &tech,
                               const SweepOptions &options);

/** Evaluate @p apps across the variant recipe, surviving failures. */
SweepOutcome runSweep(const std::vector<apps::AppInfo> &apps,
                      const Explorer &explorer,
                      const model::TechModel &tech,
                      const SweepOptions &options = {});

} // namespace apex::core

#endif // APEX_CORE_SWEEP_H_
