#ifndef APEX_CORE_STATUS_H_
#define APEX_CORE_STATUS_H_

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/**
 * @file
 * Unified error layer for the APEX pipeline.
 *
 * Every stage of the mine -> merge -> PE gen -> map -> place -> route
 * -> evaluate flow reports failure through a typed Status instead of
 * ad-hoc string fields, so a DSE sweep can classify a failure, decide
 * whether it is retryable, and keep going.  The pieces:
 *
 *  - ErrorCode / Status / Result<T>: the error vocabulary.  Status
 *    carries a code, a message and a context chain built up with
 *    withContext() as the error propagates outward ("while routing
 *    pe_3" -> "while evaluating camera").
 *  - ApexError / IrError: exception carriers for constructor-style
 *    code paths (GraphBuilder, op tables) that cannot return Status.
 *  - Diagnostics: a structured sink collecting per-stage info /
 *    warning / error records, including retry attempt ordinals, so
 *    the full trail of a recovered failure stays observable.
 *  - ExplorationReport: the sweep-level roll-up — which app/variant
 *    pairs failed, at which stage, with which code, after how many
 *    attempts.
 */

namespace apex {

/** Failure taxonomy of the APEX pipeline. */
enum class ErrorCode {
    kOk = 0,
    kInvalidArgument,   ///< Bad option / CLI input.
    kParseError,        ///< Malformed apexir text.
    kInvalidIr,         ///< Graph violates structural invariants.
    kMiningFailed,      ///< Frequent-subgraph analysis failed.
    kMergeInfeasible,   ///< Datapath merge produced no viable result.
    kMappingFailed,     ///< Instruction selection could not cover.
    kPlaceFailed,       ///< Placement failed (non-capacity).
    kRouteFailed,       ///< Routing failed (congestion/unroutable).
    kBudgetExhausted,   ///< Fabric too small / search budget spent.
    kEvaluationFailed,  ///< Evaluation-level failure.
    kTimeout,           ///< Stage exceeded its budget.
    kCancelled,         ///< Cooperatively cancelled before running.
    kInternal,          ///< Unexpected exception / logic error.
    kWorkerCrashed,     ///< Worker process died evaluating a cell.
    kUnavailable,       ///< Service unreachable / refusing work.
    /** The machine ran out of a system resource the run depends on:
     * disk space for a durable write (ENOSPC/EIO on the journal,
     * cache tier or metrics file), file descriptors, memory.  Kept
     * distinct from kBudgetExhausted (a *search* budget) because the
     * recovery is different: free the resource and rerun/resume. */
    kResourceExhausted,
};

/** Stable identifier, e.g. "RouteFailed". */
std::string_view errorCodeName(ErrorCode code);

/** Distinct process exit code for the CLI (0 for kOk). */
int exitCodeFor(ErrorCode code);

/** Pipeline stage a code is conventionally raised by (see sweep). */
std::string_view stageForCode(ErrorCode code);

/**
 * Outcome of an operation: an error code, a message, and a chain of
 * context frames added while unwinding.  Default-constructed Status
 * is success.
 */
class [[nodiscard]] Status {
  public:
    Status() = default;
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    static Status okStatus() { return {}; }

    bool ok() const { return code_ == ErrorCode::kOk; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Innermost-first context frames. */
    const std::vector<std::string> &context() const { return context_; }

    /** Append a context frame (no-op on an ok status). */
    Status &&withContext(std::string frame) && {
        if (!ok())
            context_.push_back(std::move(frame));
        return std::move(*this);
    }
    Status withContext(std::string frame) const & {
        Status copy = *this;
        return std::move(copy).withContext(std::move(frame));
    }

    /** "RouteFailed: congestion ... [while routing pe_3 on 8x8]". */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string message_;
    std::vector<std::string> context_;
};

/** Exception carrier for a Status (used where returning is not an
 * option: builders, lookup tables, Result::value()). */
class ApexError : public std::runtime_error {
  public:
    explicit ApexError(Status status)
        : std::runtime_error(status.toString()),
          status_(std::move(status)) {}

    const Status &status() const { return status_; }
    ErrorCode code() const { return status_.code(); }

  private:
    Status status_;
};

/** IR-layer violation (invalid operand, unknown op, bad width). */
class IrError : public ApexError {
  public:
    IrError(ErrorCode code, std::string message)
        : ApexError(Status(code, std::move(message))) {}
};

/** Either a value or a non-ok Status. */
template <typename T>
class [[nodiscard]] Result {
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Status status) : status_(std::move(status)) {
        if (status_.ok())
            status_ = Status(ErrorCode::kInternal,
                             "Result constructed from ok Status");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Ok status when holding a value; the error otherwise. */
    const Status &status() const { return status_; }

    const T &value() const & {
        requireOk();
        return *value_;
    }
    T &value() & {
        requireOk();
        return *value_;
    }
    T &&value() && {
        requireOk();
        return std::move(*value_);
    }

    T valueOr(T fallback) const & {
        return ok() ? *value_ : std::move(fallback);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    void requireOk() const {
        if (!ok())
            throw ApexError(status_);
    }

    Status status_;          // ok when value_ holds.
    std::optional<T> value_;
};

/** Early-return helper for Status-returning functions. */
#define APEX_RETURN_IF_ERROR(expr)                                    \
    do {                                                              \
        if (::apex::Status _apex_status = (expr); !_apex_status.ok()) \
            return _apex_status;                                      \
    } while (0)

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

enum class Severity { kInfo, kWarning, kError };

std::string_view severityName(Severity severity);

/** One structured diagnostic event. */
struct DiagnosticRecord {
    Severity severity = Severity::kInfo;
    std::string stage;   ///< "place", "route", "validate", ...
    ErrorCode code = ErrorCode::kOk;
    std::string message;
    int attempt = 0;     ///< Retry ordinal, 1-based; 0 = n/a.
    std::string scope;   ///< "app/variant" when merged into a report.
};

/** Ordered sink of per-stage diagnostics. */
class Diagnostics {
  public:
    void report(DiagnosticRecord record) {
        records_.push_back(std::move(record));
    }
    void info(std::string stage, std::string message, int attempt = 0);
    void warning(std::string stage, std::string message,
                 int attempt = 0);
    void error(std::string stage, const Status &status,
               int attempt = 0);

    /** Append @p other's records, tagging them with @p scope. */
    void merge(const Diagnostics &other, const std::string &scope = {});

    const std::vector<DiagnosticRecord> &records() const {
        return records_;
    }
    bool empty() const { return records_.empty(); }
    int count(Severity severity) const;

    /** Records of one stage, in order (e.g. the retry trail). */
    std::vector<DiagnosticRecord>
    forStage(std::string_view stage) const;

    /** Human-readable multi-line dump. */
    std::string toString() const;

  private:
    std::vector<DiagnosticRecord> records_;
};

// ---------------------------------------------------------------------
// ExplorationReport
// ---------------------------------------------------------------------

/** One skipped app/variant with its failure provenance. */
struct StageFailure {
    std::string app;
    std::string variant; ///< Empty when the whole app was skipped.
    std::string stage;   ///< Stage that declared the failure.
    Status status;
    int attempts = 1;    ///< P&R attempts consumed before giving up.
};

/** Wall time one pipeline stage spent inside one cell ("app/variant"
 * scope; "" for work outside any cell, e.g. journal replay). */
struct StageTime {
    std::string scope;
    std::string stage; ///< Span name ("mine.level", "route", ...).
    double ms = 0.0;
    long count = 0; ///< Spans aggregated into this row.
};

/** Sweep-level roll-up: what ran, what was skipped, and why. */
struct ExplorationReport {
    int evaluated = 0; ///< (app, variant) pairs that completed.
    int skipped = 0;   ///< Pairs (or whole apps) recorded and skipped.
    /** Of the evaluated pairs, how many completed on the degraded
     * path after their cell deadline expired. */
    int degraded = 0;
    std::vector<StageFailure> failures;
    Diagnostics diagnostics;
    /** Per-cell stage-time breakdown, aggregated from the spans this
     * sweep emitted.  Filled only while tracing is enabled (--trace),
     * sorted by (scope, stage). */
    std::vector<StageTime> stage_times;

    bool allOk() const { return failures.empty(); }

    /** One-paragraph summary plus one line per failure. */
    std::string summary() const;

    /** Aligned text table of stage_times ("" when empty); printed by
     * the CLI under --diagnostics when tracing is on. */
    std::string stageTimeTable() const;
};

} // namespace apex

#endif // APEX_CORE_STATUS_H_
