#ifndef APEX_CORE_EVALUATE_H_
#define APEX_CORE_EVALUATE_H_

#include <string>

#include "cgra/metrics.hpp"
#include "core/deadline.hpp"
#include "core/explorer.hpp"
#include "core/status.hpp"
#include "runtime/cache.hpp"
#include "runtime/thread_pool.hpp"

/**
 * @file
 * Three-level evaluation of a (application, PE variant) pair,
 * mirroring Sec. 5.3:
 *
 *  - post-mapping    : rewrite rules + instruction selection only —
 *                      PE counts, PE-core area and energy (minutes-
 *                      scale results in the paper; Fig. 11/14);
 *  - post-PnR        : placement + routing on the fabric — adds the
 *                      interconnect (SB/CB), memory tiles and
 *                      routing-tile accounting (Fig. 15);
 *  - post-pipelining : PE and application pipelining before PnR —
 *                      adds timing, runtime and performance/mm^2
 *                      (Fig. 16, Tables 2/3).
 */

namespace apex::core {

/** Evaluation depth. */
enum class EvalLevel {
    kPostMapping,
    kPostPnr,
    kPostPipelining,
};

/** Everything the benchmarks report. */
struct EvalResult {
    bool success = false;
    std::string error;   ///< Legacy mirror of status (when failed).
    /** Typed outcome with context chain (which app/variant, after how
     * many attempts). */
    Status status;
    /** Full trail of the run: every placement retry, routing-track
     * escalation and fabric growth, as info/error records. */
    Diagnostics diagnostics;
    /** Placement attempts consumed (seed retries x fabric growths). */
    int pnr_attempts = 0;
    /** The cell deadline expired and this result came from the cheap
     * fallback knobs (see runSweep): valid, but possibly on a larger
     * fabric / with fewer retries than the configured evaluation. */
    bool degraded = false;

    // --- Post-mapping --------------------------------------------
    int pe_count = 0;          ///< PE instances used.
    double pe_area = 0.0;      ///< PE core area x count (um^2).
    double pe_energy = 0.0;    ///< PE-core energy per output item, pJ.

    // --- Post-place-and-route -------------------------------------
    int fabric_width = 0;
    int fabric_height = 0;
    double sb_area = 0.0;      ///< Switch boxes (um^2).
    double cb_area = 0.0;      ///< Connection boxes (um^2).
    double mem_area = 0.0;     ///< Memory tiles (um^2).
    double cgra_area = 0.0;    ///< Total application footprint.
    double sb_energy = 0.0;    ///< pJ per output item.
    double cb_energy = 0.0;
    double mem_energy = 0.0;
    double cgra_energy = 0.0;  ///< Total pJ per output item.
    cgra::Utilization util;

    // --- Post-pipelining -------------------------------------------
    int pipeline_stages = 0;   ///< PE pipeline depth chosen.
    double period_ns = 0.0;    ///< Achieved clock period.
    double latency_cycles = 0; ///< Input->output fill latency.
    double runtime_ms = 0.0;   ///< One frame / layer.
    double perf_per_mm2 = 0.0; ///< Items per ms per mm^2 (x1e-6 for
                               ///< frames: see frames_per_ms_mm2).
    double frames_per_ms_mm2 = 0.0; ///< Frames/ms/mm^2 (Table 2).
    double total_energy_uj = 0.0;   ///< Energy for one frame, uJ.

    /** Raw functional-unit energy of the app (ASIC floor), uJ. */
    double raw_compute_energy_uj = 0.0;
    /** Word-level op events per frame (FPGA comparator input). */
    double op_events = 0.0;
};

/** Evaluation knobs. */
struct EvalOptions {
    int fabric_width = 32;
    int fabric_height = 16;
    /** Grow the fabric when the app does not fit (keeps the flow
     * usable for large unrolls). */
    bool auto_grow_fabric = true;
    /** Fabric doublings tried when auto_grow_fabric is set (1 means
     * the initial size only).  The degraded retry path lowers this. */
    int max_fabric_growths = 5;
    unsigned placer_seed = 0xCA11;
    /** Placement attempts per fabric size, each with a derived seed;
     * capacity failures skip straight to fabric growth. */
    int place_retries = 3;
    /** Routing-track escalations (+2 tracks each) tried on congestion
     * before giving up on a placement. */
    int route_track_escalations = 2;
    /**
     * Optional content-addressed memoization cache.  Successful
     * evaluations are stored under a key fingerprinting the app
     * graph, the variant (datapath, patterns, pipelining), the
     * evaluation level, the tech model and every knob above, so a
     * hit is guaranteed to reproduce the sequential result bit for
     * bit.  Failures are never cached (they are retried).
     */
    runtime::ArtifactCache *cache = nullptr;
    /**
     * Wall-clock bound for this evaluation, enforced through the P&R
     * ladder (growth/retry boundaries and the router's rip-up loop).
     * Expiry yields a kTimeout result.  Deliberately NOT part of the
     * cache key: a deadline only decides whether a result is computed,
     * never its value, so cached artifacts stay reusable across runs
     * with different budgets.
     */
    Deadline deadline;
};

/** Run the flow for @p app on @p variant up to @p level. */
EvalResult evaluate(const apps::AppInfo &app, const PeVariant &variant,
                    EvalLevel level, const model::TechModel &tech,
                    const EvalOptions &options = {});

/**
 * The paper's "PE Spec" stopping rule (Sec. 5): starting from PE 1,
 * keep merging the next-ranked subgraph while the post-mapping
 * area-energy product of the application improves; return the last
 * improving variant ("the most specialized PE possible without
 * increasing the area or energy of the application").
 *
 * With @p pool (parallelism > 1), every candidate k is built and
 * scored concurrently and the stopping rule is applied to the score
 * sequence afterwards — speculative work past the stopping point is
 * wasted, but the chosen variant is identical to the sequential
 * scan because each score depends only on its own candidate.
 */
PeVariant bestSpecializedVariant(const apps::AppInfo &app,
                                 const Explorer &explorer,
                                 const model::TechModel &tech,
                                 runtime::ThreadPool *pool = nullptr,
                                 const EvalOptions &options = {});

/**
 * Serialize a *successful* EvalResult for the artifact cache
 * (diagnostics and failure state are deliberately excluded: failures
 * are never cached).  Doubles round-trip exactly via hex floats, so
 * a cache hit is bit-identical to the evaluation that produced it.
 */
std::string serializeEvalResult(const EvalResult &r);

/** Inverse of serializeEvalResult(); kParseError on any corruption. */
Result<EvalResult> parseEvalResult(const std::string &text);

/**
 * Cache key for evaluate(): a content fingerprint of every input
 * that can influence the result (see EvalOptions::cache).
 */
std::string evalCacheKey(const apps::AppInfo &app,
                         const PeVariant &variant, EvalLevel level,
                         const model::TechModel &tech,
                         const EvalOptions &options);

/**
 * Energy one PE instance spends per cycle executing @p rule on
 * @p spec: decode/clock overhead + active blocks + idle toggling of
 * the unused blocks + input muxing (used by both the homogeneous and
 * heterogeneous evaluators).
 */
double peInstanceEnergy(const mapper::RewriteRule &rule,
                        const pe::PeSpec &spec,
                        const model::TechModel &tech);

/**
 * Fingerprint of every TechModel field evaluate() can read.  Shared
 * by the eval cache key and the sweep journal header, so a resumed
 * sweep can prove it is replaying cells of the same configuration.
 */
std::uint64_t techFingerprint(const model::TechModel &tech);

} // namespace apex::core

#endif // APEX_CORE_EVALUATE_H_
