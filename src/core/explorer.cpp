#include "core/explorer.hpp"

#include <set>

#include "ir/signature.hpp"
#include "merging/merge.hpp"
#include "pe/baseline.hpp"

namespace apex::core {

using ir::Graph;
using ir::NodeId;
using ir::Op;

namespace {

/** Is this mined pattern a viable PE building block?  It must have a
 * unique sink (one PE output), at least two compute nodes (otherwise
 * the base ALU already covers it), and no structural ops. */
bool
mergeable(const mining::MinedPattern &p)
{
    int sinks = 0;
    int compute = 0;
    std::vector<bool> has_consumer(p.pattern.size(), false);
    for (const ir::Edge &e : p.pattern.edges())
        has_consumer[e.src] = true;
    for (NodeId id = 0; id < p.pattern.size(); ++id) {
        const Op op = p.pattern.op(id);
        if (ir::opIsCompute(op)) {
            ++compute;
            if (!has_consumer[id])
                ++sinks;
        }
    }
    return sinks == 1 && compute >= 2;
}

} // namespace

Explorer::Explorer(const model::TechModel &tech,
                   ExplorerOptions options)
    : tech_(tech), options_(options)
{
}

std::vector<mining::MinedPattern>
Explorer::analyze(const Graph &app) const
{
    mining::FrequentSubgraphMiner miner(options_.miner);
    auto patterns = miner.mine(app);
    mining::rankPatterns(patterns);
    std::erase_if(patterns, [&](const mining::MinedPattern &p) {
        return !mergeable(p) || p.mis_size < options_.min_mis;
    });
    return patterns;
}

std::vector<Graph>
Explorer::topPatterns(const Graph &app, int k) const
{
    std::vector<Graph> result;
    for (const auto &p : analyze(app)) {
        if (static_cast<int>(result.size()) >= k)
            break;
        result.push_back(p.pattern);
    }
    return result;
}

PeVariant
Explorer::baselineVariant() const
{
    PeVariant v;
    v.name = "pe_base";
    v.spec = pe::baselinePe();
    return v;
}

PeVariant
Explorer::subsetVariant(const apps::AppInfo &app) const
{
    PeVariant v;
    v.name = "pe1_" + app.name;
    v.spec = pe::baselineSubsetPe(pe::opsUsedBy(app.graph), v.name);
    return v;
}

PeVariant
Explorer::specializedVariant(const apps::AppInfo &app, int k) const
{
    PeVariant v;
    v.name = "pe" + std::to_string(k + 1) + "_" + app.name;
    const pe::PeSpec seed =
        pe::baselineSubsetPe(pe::opsUsedBy(app.graph), v.name);
    v.patterns = topPatterns(app.graph, k);
    const auto mm = merging::mergeIntoDatapath(
        seed.dp, v.patterns, tech_, nullptr);
    v.spec = pe::makePeSpec(mm.merged, v.name,
                            seed.has_register_file);
    return v;
}

PeVariant
Explorer::specVariant(const apps::AppInfo &app) const
{
    PeVariant v =
        specializedVariant(app, options_.max_merged_subgraphs);
    v.name = "pe_spec_" + app.name;
    v.spec.name = v.name;
    return v;
}

PeVariant
Explorer::domainVariant(const std::vector<apps::AppInfo>
                            &domain_apps,
                        int per_app, const std::string &name) const
{
    PeVariant v;
    v.name = name;

    std::set<Op> ops;
    for (const apps::AppInfo &app : domain_apps) {
        const auto app_ops = pe::opsUsedBy(app.graph);
        ops.insert(app_ops.begin(), app_ops.end());
    }
    const pe::PeSpec seed = pe::baselineSubsetPe(ops, name);

    // Interleave the domain's top subgraphs app by app, deduplicated
    // by canonical identity, so every application contributes its
    // most valuable pattern before any contributes a second one.
    std::vector<std::vector<Graph>> per_app_patterns;
    for (const apps::AppInfo &app : domain_apps)
        per_app_patterns.push_back(
            topPatterns(app.graph, per_app));

    std::set<std::string> seen;
    for (int round = 0; round < per_app; ++round) {
        for (const auto &list : per_app_patterns) {
            if (round >= static_cast<int>(list.size()))
                continue;
            const std::string code =
                ir::canonicalCode(list[round]);
            if (seen.insert(code).second)
                v.patterns.push_back(list[round]);
        }
    }

    const auto mm = merging::mergeIntoDatapath(
        seed.dp, v.patterns, tech_, nullptr);
    v.spec = pe::makePeSpec(mm.merged, name);
    return v;
}

} // namespace apex::core
