#include "core/explorer.hpp"

#include <set>

#include "core/fault.hpp"
#include "ir/signature.hpp"
#include "merging/merge.hpp"
#include "pe/baseline.hpp"

namespace apex::core {

using ir::Graph;
using ir::NodeId;
using ir::Op;

namespace {

/** Is this mined pattern a viable PE building block?  It must have a
 * unique sink (one PE output), at least two compute nodes (otherwise
 * the base ALU already covers it), and no structural ops. */
bool
mergeable(const mining::MinedPattern &p)
{
    int sinks = 0;
    int compute = 0;
    std::vector<bool> has_consumer(p.pattern.size(), false);
    for (const ir::Edge &e : p.pattern.edges())
        has_consumer[e.src] = true;
    for (NodeId id = 0; id < p.pattern.size(); ++id) {
        const Op op = p.pattern.op(id);
        if (ir::opIsCompute(op)) {
            ++compute;
            if (!has_consumer[id])
                ++sinks;
        }
    }
    return sinks == 1 && compute >= 2;
}

} // namespace

Explorer::Explorer(const model::TechModel &tech,
                   ExplorerOptions options)
    : tech_(tech), options_(options)
{
    // The miner inherits the explorer's pool unless the caller wired
    // a dedicated one.
    if (options_.miner.pool == nullptr)
        options_.miner.pool = options_.pool;
}

Result<std::vector<mining::MinedPattern>>
Explorer::tryAnalyze(const Graph &app,
                     mining::MineStats *stats) const
{
    if (stats != nullptr)
        *stats = mining::MineStats{};
    if (Status fault = checkFault(FaultStage::kMine); !fault.ok())
        return std::move(fault).withContext("mining subgraphs");
    try {
        mining::FrequentSubgraphMiner miner(options_.miner);
        auto patterns = miner.mine(app, stats);
        mining::rankPatterns(patterns);
        std::erase_if(patterns, [&](const mining::MinedPattern &p) {
            return !mergeable(p) || p.mis_size < options_.min_mis;
        });
        return patterns;
    } catch (const ApexError &e) {
        return e.status().withContext("mining subgraphs");
    } catch (const std::exception &e) {
        return Status(ErrorCode::kMiningFailed,
                      std::string("mining threw: ") + e.what());
    }
}

std::vector<mining::MinedPattern>
Explorer::analyze(const Graph &app) const
{
    return tryAnalyze(app).valueOr({});
}

Result<std::vector<Graph>>
Explorer::tryTopPatterns(const Graph &app, int k,
                         mining::MineStats *stats) const
{
    auto mined = tryAnalyze(app, stats);
    if (!mined.ok())
        return mined.status();
    std::vector<Graph> result;
    for (const auto &p : mined.value()) {
        if (static_cast<int>(result.size()) >= k)
            break;
        result.push_back(p.pattern);
    }
    return result;
}

std::vector<Graph>
Explorer::topPatterns(const Graph &app, int k) const
{
    return tryTopPatterns(app, k).valueOr({});
}

PeVariant
Explorer::baselineVariant() const
{
    PeVariant v;
    v.name = "pe_base";
    v.spec = pe::baselinePe();
    return v;
}

PeVariant
Explorer::subsetVariant(const apps::AppInfo &app) const
{
    PeVariant v;
    v.name = "pe1_" + app.name;
    v.spec = pe::baselineSubsetPe(pe::opsUsedBy(app.graph), v.name);
    return v;
}

Result<PeVariant>
Explorer::trySpecializedVariant(const apps::AppInfo &app,
                                int k) const
{
    PeVariant v;
    v.name = "pe" + std::to_string(k + 1) + "_" + app.name;
    const pe::PeSpec seed =
        pe::baselineSubsetPe(pe::opsUsedBy(app.graph), v.name);
    mining::MineStats mine_stats;
    auto patterns = tryTopPatterns(app.graph, k, &mine_stats);
    if (!patterns.ok())
        return patterns.status().withContext("building variant '" +
                                             v.name + "'");
    v.patterns = std::move(patterns).value();
    v.mine_capped_levels =
        static_cast<int>(mine_stats.capped_levels.size());
    const auto mm = merging::mergeIntoDatapath(
        seed.dp, v.patterns, tech_, nullptr, options_.merge);
    if (!mm.status.ok())
        return mm.status.withContext("building variant '" + v.name +
                                     "'");
    v.non_optimal_merges = mm.non_optimal_cliques;
    v.merge_timeouts = mm.clique_timeouts;
    v.spec = pe::makePeSpec(mm.merged, v.name,
                            seed.has_register_file);
    return v;
}

PeVariant
Explorer::specializedVariant(const apps::AppInfo &app, int k) const
{
    auto result = trySpecializedVariant(app, k);
    if (result.ok())
        return std::move(result).value();
    // Degrade to PE 1 under the requested name so exploration can
    // continue with a functional (if unspecialized) variant.
    PeVariant v = subsetVariant(app);
    v.name = "pe" + std::to_string(k + 1) + "_" + app.name;
    v.spec.name = v.name;
    return v;
}

PeVariant
Explorer::specVariant(const apps::AppInfo &app) const
{
    PeVariant v =
        specializedVariant(app, options_.max_merged_subgraphs);
    v.name = "pe_spec_" + app.name;
    v.spec.name = v.name;
    return v;
}

namespace {

/** Op-union subset seed PE over a set of applications. */
pe::PeSpec
domainSeedPe(const std::vector<apps::AppInfo> &domain_apps,
             const std::string &name)
{
    std::set<Op> ops;
    for (const apps::AppInfo &app : domain_apps) {
        const auto app_ops = pe::opsUsedBy(app.graph);
        ops.insert(app_ops.begin(), app_ops.end());
    }
    return pe::baselineSubsetPe(ops, name);
}

} // namespace

Result<PeVariant>
Explorer::tryDomainVariant(const std::vector<apps::AppInfo>
                               &domain_apps,
                           int per_app,
                           const std::string &name) const
{
    PeVariant v;
    v.name = name;
    const pe::PeSpec seed = domainSeedPe(domain_apps, name);

    // Interleave the domain's top subgraphs app by app, deduplicated
    // by canonical identity, so every application contributes its
    // most valuable pattern before any contributes a second one.
    std::vector<std::vector<Graph>> per_app_patterns(
        domain_apps.size());
    std::vector<mining::MineStats> per_app_stats(domain_apps.size());
    const bool parallel = options_.pool != nullptr &&
                          options_.pool->parallelism() > 1;
    if (parallel) {
        // Fan the per-app mining out; each iteration writes only its
        // own slot.  The first failure *in app order* is reported, as
        // in the sequential walk (later apps' work is speculative).
        std::vector<Status> statuses(domain_apps.size());
        runtime::parallelFor(
            options_.pool, static_cast<int>(domain_apps.size()),
            [&](int i) {
                auto patterns =
                    tryTopPatterns(domain_apps[i].graph, per_app,
                                   &per_app_stats[i]);
                if (patterns.ok())
                    per_app_patterns[i] =
                        std::move(patterns).value();
                else
                    statuses[i] = patterns.status();
            });
        for (std::size_t i = 0; i < domain_apps.size(); ++i) {
            if (!statuses[i].ok())
                return std::move(statuses[i])
                    .withContext("building domain variant '" + name +
                                 "' (app '" + domain_apps[i].name +
                                 "')");
        }
    } else {
        for (std::size_t i = 0; i < domain_apps.size(); ++i) {
            auto patterns =
                tryTopPatterns(domain_apps[i].graph, per_app,
                               &per_app_stats[i]);
            if (!patterns.ok())
                return patterns.status().withContext(
                    "building domain variant '" + name + "' (app '" +
                    domain_apps[i].name + "')");
            per_app_patterns[i] = std::move(patterns).value();
        }
    }
    for (const mining::MineStats &s : per_app_stats)
        v.mine_capped_levels +=
            static_cast<int>(s.capped_levels.size());

    std::set<std::string> seen;
    for (int round = 0; round < per_app; ++round) {
        for (const auto &list : per_app_patterns) {
            if (round >= static_cast<int>(list.size()))
                continue;
            const std::string code =
                ir::canonicalCode(list[round]);
            if (seen.insert(code).second)
                v.patterns.push_back(list[round]);
        }
    }

    const auto mm = merging::mergeIntoDatapath(
        seed.dp, v.patterns, tech_, nullptr, options_.merge);
    if (!mm.status.ok())
        return mm.status.withContext("building domain variant '" +
                                     name + "'");
    v.non_optimal_merges = mm.non_optimal_cliques;
    v.merge_timeouts = mm.clique_timeouts;
    v.spec = pe::makePeSpec(mm.merged, name);
    return v;
}

PeVariant
Explorer::domainVariant(const std::vector<apps::AppInfo>
                            &domain_apps,
                        int per_app, const std::string &name) const
{
    auto result = tryDomainVariant(domain_apps, per_app, name);
    if (result.ok())
        return std::move(result).value();
    // Degrade to the op-union subset PE with no merged patterns.
    PeVariant v;
    v.name = name;
    v.spec = domainSeedPe(domain_apps, name);
    return v;
}

} // namespace apex::core
