#include "core/status.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace apex {

std::string_view
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk:                return "Ok";
      case ErrorCode::kInvalidArgument:   return "InvalidArgument";
      case ErrorCode::kParseError:        return "ParseError";
      case ErrorCode::kInvalidIr:         return "InvalidIr";
      case ErrorCode::kMiningFailed:      return "MiningFailed";
      case ErrorCode::kMergeInfeasible:   return "MergeInfeasible";
      case ErrorCode::kMappingFailed:     return "MappingFailed";
      case ErrorCode::kPlaceFailed:       return "PlaceFailed";
      case ErrorCode::kRouteFailed:       return "RouteFailed";
      case ErrorCode::kBudgetExhausted:   return "BudgetExhausted";
      case ErrorCode::kEvaluationFailed:  return "EvaluationFailed";
      case ErrorCode::kTimeout:           return "Timeout";
      case ErrorCode::kCancelled:         return "Cancelled";
      case ErrorCode::kInternal:          return "Internal";
      case ErrorCode::kWorkerCrashed:     return "WorkerCrashed";
      case ErrorCode::kUnavailable:       return "Unavailable";
      case ErrorCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
}

int
exitCodeFor(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk:                return 0;
      case ErrorCode::kInvalidArgument:   return 2;
      case ErrorCode::kParseError:        return 3;
      case ErrorCode::kInvalidIr:         return 4;
      case ErrorCode::kMiningFailed:      return 5;
      case ErrorCode::kMergeInfeasible:   return 6;
      case ErrorCode::kMappingFailed:     return 7;
      case ErrorCode::kPlaceFailed:       return 8;
      case ErrorCode::kRouteFailed:       return 9;
      case ErrorCode::kBudgetExhausted:   return 10;
      case ErrorCode::kEvaluationFailed:  return 11;
      case ErrorCode::kTimeout:           return 12;
      case ErrorCode::kInternal:          return 13;
      case ErrorCode::kCancelled:         return 14;
      case ErrorCode::kWorkerCrashed:     return 15;
      case ErrorCode::kUnavailable:       return 16;
      case ErrorCode::kResourceExhausted: return 17;
    }
    return 1;
}

std::string_view
stageForCode(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kParseError:        return "deserialize";
      case ErrorCode::kInvalidIr:         return "validate";
      case ErrorCode::kMiningFailed:      return "mine";
      case ErrorCode::kMergeInfeasible:   return "merge";
      case ErrorCode::kMappingFailed:     return "map";
      case ErrorCode::kPlaceFailed:       return "place";
      case ErrorCode::kBudgetExhausted:   return "place";
      case ErrorCode::kRouteFailed:       return "route";
      case ErrorCode::kEvaluationFailed:  return "evaluate";
      case ErrorCode::kTimeout:           return "deadline";
      case ErrorCode::kCancelled:         return "runtime";
      case ErrorCode::kWorkerCrashed:     return "worker";
      case ErrorCode::kUnavailable:       return "service";
      case ErrorCode::kResourceExhausted: return "durability";
      default:                            return "unknown";
    }
}

std::string
Status::toString() const
{
    if (ok())
        return "Ok";
    std::ostringstream os;
    os << errorCodeName(code_) << ": " << message_;
    for (const std::string &frame : context_)
        os << " [" << frame << "]";
    return os.str();
}

std::string_view
severityName(Severity severity)
{
    switch (severity) {
      case Severity::kInfo:    return "info";
      case Severity::kWarning: return "warning";
      case Severity::kError:   return "error";
    }
    return "unknown";
}

void
Diagnostics::info(std::string stage, std::string message, int attempt)
{
    report({Severity::kInfo, std::move(stage), ErrorCode::kOk,
            std::move(message), attempt, {}});
}

void
Diagnostics::warning(std::string stage, std::string message,
                     int attempt)
{
    report({Severity::kWarning, std::move(stage), ErrorCode::kOk,
            std::move(message), attempt, {}});
}

void
Diagnostics::error(std::string stage, const Status &status, int attempt)
{
    report({Severity::kError, std::move(stage), status.code(),
            status.toString(), attempt, {}});
}

void
Diagnostics::merge(const Diagnostics &other, const std::string &scope)
{
    for (DiagnosticRecord record : other.records_) {
        if (!scope.empty() && record.scope.empty())
            record.scope = scope;
        records_.push_back(std::move(record));
    }
}

int
Diagnostics::count(Severity severity) const
{
    int n = 0;
    for (const DiagnosticRecord &r : records_)
        if (r.severity == severity)
            ++n;
    return n;
}

std::vector<DiagnosticRecord>
Diagnostics::forStage(std::string_view stage) const
{
    std::vector<DiagnosticRecord> result;
    for (const DiagnosticRecord &r : records_)
        if (r.stage == stage)
            result.push_back(r);
    return result;
}

std::string
Diagnostics::toString() const
{
    std::ostringstream os;
    for (const DiagnosticRecord &r : records_) {
        os << '[' << severityName(r.severity) << "] " << r.stage;
        if (r.attempt > 0)
            os << " (attempt " << r.attempt << ')';
        if (!r.scope.empty())
            os << " {" << r.scope << '}';
        os << ": " << r.message << '\n';
    }
    return os.str();
}

std::string
ExplorationReport::summary() const
{
    std::ostringstream os;
    os << evaluated << " evaluated, " << skipped << " skipped, "
       << diagnostics.count(Severity::kWarning) << " warnings";
    if (degraded > 0)
        os << ", " << degraded << " degraded";
    os << '\n';
    for (const StageFailure &f : failures) {
        os << "  FAILED " << f.app;
        if (!f.variant.empty())
            os << '/' << f.variant;
        os << " at stage '" << f.stage << "' ["
           << errorCodeName(f.status.code()) << "] after "
           << f.attempts << (f.attempts == 1 ? " attempt" : " attempts")
           << ": " << f.status.message() << '\n';
    }
    return os.str();
}

std::string
ExplorationReport::stageTimeTable() const
{
    if (stage_times.empty())
        return "";
    std::size_t scope_w = 4; // "cell"
    std::size_t stage_w = 5; // "stage"
    for (const StageTime &t : stage_times) {
        scope_w = std::max(scope_w, std::max<std::size_t>(
                                        t.scope.size(), 3));
        stage_w = std::max(stage_w, t.stage.size());
    }
    std::ostringstream os;
    os << "  " << std::left << std::setw(static_cast<int>(scope_w))
       << "cell" << "  " << std::setw(static_cast<int>(stage_w))
       << "stage" << "  " << std::right << std::setw(10) << "ms"
       << "  " << std::setw(6) << "spans" << '\n';
    for (const StageTime &t : stage_times) {
        os << "  " << std::left << std::setw(static_cast<int>(scope_w))
           << (t.scope.empty() ? "(-)" : t.scope) << "  "
           << std::setw(static_cast<int>(stage_w)) << t.stage << "  "
           << std::right << std::setw(10) << std::fixed
           << std::setprecision(2) << t.ms << "  " << std::setw(6)
           << t.count << '\n';
    }
    return os.str();
}

} // namespace apex
