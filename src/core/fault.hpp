#ifndef APEX_CORE_FAULT_H_
#define APEX_CORE_FAULT_H_

#include <array>
#include <atomic>
#include <optional>
#include <string_view>

#include "core/status.hpp"

/**
 * @file
 * Deterministic fault injection for pipeline robustness testing.
 *
 * Every pipeline stage calls checkFault(stage) on entry.  When the
 * injector is armed for that stage — programmatically (tests) or via
 * the APEX_FAULT environment variable (CLI, CI) — the Nth call to the
 * stage returns a failure Status carrying the stage's natural error
 * code (a route fault fails exactly like real congestion), which
 * exercises the production retry/skip paths rather than a synthetic
 * one.
 *
 * Spec grammar (comma-separated):
 *
 *     APEX_FAULT="route:2"        # fail the 2nd route() call
 *     APEX_FAULT="place:1:3"      # fail place() calls 1,2,3
 *     APEX_FAULT="mine:1,route:4" # several stages at once
 *
 * Counting is global per stage.  The per-stage counters are lock-free
 * atomics so concurrent pipeline stages under the parallel DSE
 * runtime stay data-race-free: every call still receives a unique
 * ordinal, and a fault armed for ordinal N fires on exactly one call.
 * (Which *task* observes ordinal N depends on the schedule once jobs
 * > 1; deterministic fault tests therefore run with jobs = 1, where
 * the sequential schedule makes ordinals reproducible.)
 */

namespace apex {

/** Instrumented pipeline stages. */
enum class FaultStage {
    kDeserialize = 0,
    kValidate,
    kMine,
    kMerge,
    kMap,
    kPlace,
    kRoute,
    kEvaluate,
    /** Crash points ("crash"): the armed call hard-kills the process
     * (SIGKILL, no cleanup) — instrumented at sweep-journal append
     * boundaries so kill -9 durability is rehearsable. */
    kCrash,
    /** Clock skew ("clock"): the armed Deadline poll observes a clock
     * far in the future, taking the kTimeout path deterministically. */
    kClockSkew,
    /** Worker-pool faults ("worker_kill" / "worker_hang" /
     * "worker_garbage"): counted at *dispatch* in the supervisor, so
     * ordinals stay deterministic across restarted children.  The
     * armed dispatch makes the worker abort mid-task, freeze (no
     * heartbeats, no result), or write an unframed byte salad on its
     * result pipe. */
    kWorkerKill,
    kWorkerHang,
    kWorkerGarbage,
    /** Durability writes ("disk_full"): the armed call fails the Nth
     * write that would otherwise reach disk — record-log appends,
     * cache disk-tier entries, metrics-file flushes — as ENOSPC
     * would (kResourceExhausted), so the degradation ladder of
     * DESIGN.md Sec. 7h is rehearsable without filling a disk. */
    kDiskFull,
    /** Listener accepts ("accept_emfile"): the armed accept(2) in the
     * service io loop observes EMFILE instead of a connection, so
     * fd-exhaustion backoff is testable without exhausting the
     * process's descriptor table. */
    kAcceptEmfile,
    kNumStages,
};

inline constexpr int kNumFaultStages =
    static_cast<int>(FaultStage::kNumStages);

/** "deserialize", "validate", ... (the APEX_FAULT spec names). */
std::string_view faultStageName(FaultStage stage);

/** Inverse of faultStageName(); nullopt for unknown names. */
std::optional<FaultStage> faultStageFromName(std::string_view name);

/** Error code an injected fault at @p stage reports. */
ErrorCode faultErrorCode(FaultStage stage);

/** Process-wide deterministic fault injector. */
class FaultInjector {
  public:
    /** Singleton; arms itself from $APEX_FAULT on first use. */
    static FaultInjector &instance();

    /** Parse and arm a spec string (see file comment). */
    Status configure(std::string_view spec);

    /** Fail calls [nth, nth + count) of @p stage (1-based). */
    void arm(FaultStage stage, int nth_call, int count = 1);

    /** Disarm every stage and zero all call counters. */
    void reset();

    /**
     * Stage entry hook: counts the call and returns the injected
     * failure when this call is armed, ok otherwise.
     */
    Status onCall(FaultStage stage);

    /** Calls observed for @p stage since the last reset(). */
    int callCount(FaultStage stage) const;

    /** True when any stage is armed. */
    bool armed() const;

  private:
    FaultInjector();

    std::array<std::atomic<int>, kNumFaultStages> calls_{};
    /** 0 = disarmed.  Armed ranges are written before the counters
     * are exercised (arm/reset are test-setup operations). */
    std::array<std::atomic<int>, kNumFaultStages> fail_from_{};
    std::array<std::atomic<int>, kNumFaultStages> fail_count_{};
};

/** Stage entry hook used by instrumented pipeline code. */
inline Status
checkFault(FaultStage stage)
{
    return FaultInjector::instance().onCall(stage);
}

/**
 * Crash-point hook: when the crash stage is armed for this call, the
 * process dies as if kill -9'd — no destructors, no buffered-stream
 * flushes.  Placed immediately after durable-state transitions (sweep
 * journal appends) so crash-safety is testable under APEX_FAULT.
 */
void crashPoint();

/**
 * RAII arming for tests: resets the injector (fresh counters), arms
 * one fault, and disarms everything again on destruction.
 */
class FaultScope {
  public:
    FaultScope(FaultStage stage, int nth_call, int count = 1);
    ~FaultScope();

    FaultScope(const FaultScope &) = delete;
    FaultScope &operator=(const FaultScope &) = delete;
};

} // namespace apex

#endif // APEX_CORE_FAULT_H_
