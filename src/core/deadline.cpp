#include "core/deadline.hpp"

#include <limits>

#include "core/fault.hpp"

namespace apex {

Deadline
Deadline::after(double ms)
{
    Deadline d;
    d.finite_ = true;
    d.at_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    ms > 0.0 ? ms : 0.0));
    return d;
}

Deadline
Deadline::at(Clock::time_point when)
{
    Deadline d;
    d.finite_ = true;
    d.at_ = when;
    return d;
}

bool
Deadline::expired() const
{
    if (!finite_)
        return false;
    // Clock-skew fault: an armed poll observes a clock far in the
    // future, so the timeout path runs without any real waiting.
    if (!checkFault(FaultStage::kClockSkew).ok())
        return true;
    return Clock::now() >= at_;
}

double
Deadline::remainingMs() const
{
    if (!finite_)
        return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ -
                                                     Clock::now())
        .count();
}

Status
Deadline::check(std::string_view what) const
{
    if (!expired())
        return Status::okStatus();
    return Status(ErrorCode::kTimeout,
                  "deadline expired before " + std::string(what));
}

Deadline
Deadline::earliest(const Deadline &a, const Deadline &b)
{
    if (!a.finite_)
        return b;
    if (!b.finite_)
        return a;
    return a.at_ <= b.at_ ? a : b;
}

} // namespace apex
