#include "core/sweep.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "ir/validate.hpp"
#include "runtime/task_graph.hpp"

namespace apex::core {

namespace {

/** Record a failed (app, variant) pair — or a whole app when
 * @p variant is empty — and keep sweeping. */
void
recordFailure(ExplorationReport &report, const std::string &app,
              const std::string &variant, Status status, int attempts)
{
    StageFailure f;
    f.app = app;
    f.variant = variant;
    f.stage = std::string(stageForCode(status.code()));
    f.status = std::move(status);
    f.attempts = std::max(1, attempts);

    DiagnosticRecord record;
    record.severity = Severity::kError;
    record.stage = f.stage;
    record.code = f.status.code();
    record.message = f.status.toString();
    record.attempt = f.attempts;
    record.scope = variant.empty() ? app : app + "/" + variant;
    report.diagnostics.report(std::move(record));

    report.failures.push_back(std::move(f));
    ++report.skipped;
}

/** Fixed identity of the (up to) three recipe cells per app, so the
 * task graph can be built before variant construction runs. */
enum RecipeCell { kBaseline = 0, kSubset = 1, kSpecialized = 2 };

/** One (app, variant) evaluation slot; written only by its task. */
struct Cell {
    std::optional<PeVariant> variant; ///< Set by the build task.
    bool ran = false;                 ///< Evaluation task executed.
    EvalResult result;
};

/** Per-application slots; written only by this app's tasks. */
struct AppSlot {
    bool build_ran = false;
    Status validate_status; ///< Non-ok => whole app skipped.
    bool spec_failed = false;
    std::string spec_name;
    Status spec_status;
    std::array<Cell, 3> cells;
};

using Clock = std::chrono::steady_clock;

long
elapsedUs(Clock::time_point from)
{
    return static_cast<long>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - from)
            .count());
}

} // namespace

std::string
SweepRuntimeStats::toString() const
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "jobs=%d tasks=%ld stolen=%ld cache=%ld/%ld "
                  "build=%.2fms eval=%.2fms wall=%.2fms",
                  jobs, tasks_run, tasks_stolen, cache_hits,
                  cache_hits + cache_misses, build_ms, eval_ms,
                  wall_ms);
    return buf;
}

SweepOutcome
runSweep(const std::vector<apps::AppInfo> &apps,
         const Explorer &explorer, const model::TechModel &tech,
         const SweepOptions &options)
{
    const Clock::time_point wall_start = Clock::now();
    SweepOutcome out;

    // Resolve the execution resources.  jobs == 1 (the default) means
    // no pool at all: the task graph runs inline in insertion order,
    // which is exactly the sequential driver's schedule (including
    // fault-injection call ordinals).
    runtime::ThreadPool *pool = options.pool;
    std::unique_ptr<runtime::ThreadPool> owned_pool;
    if (pool == nullptr) {
        int n = options.jobs;
        if (n <= 0)
            n = runtime::ThreadPool::defaultParallelism();
        if (n > 1) {
            owned_pool = std::make_unique<runtime::ThreadPool>(n);
            pool = owned_pool.get();
        }
    }
    out.stats.jobs = pool != nullptr ? pool->parallelism() : 1;

    EvalOptions eval_opts = options.eval;
    if (options.cache != nullptr)
        eval_opts.cache = options.cache;
    runtime::ArtifactCache *cache = eval_opts.cache;
    const runtime::CacheStats cache_before =
        cache != nullptr ? cache->stats() : runtime::CacheStats{};
    const runtime::PoolStats pool_before =
        pool != nullptr ? pool->stats() : runtime::PoolStats{};

    const std::atomic<bool> *cancel = options.cancel;
    std::vector<AppSlot> slots(apps.size());
    std::atomic<long> tasks_run{0};
    std::atomic<long> build_us{0};
    std::atomic<long> eval_us{0};

    // --- Fan out: one build task per app, one eval task per cell ---
    // Every task writes only its own slot; all ordering-sensitive
    // work (report assembly) happens sequentially afterwards.
    runtime::TaskGraph graph(pool);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const apps::AppInfo &app = apps[i];
        AppSlot &slot = slots[i];

        const runtime::TaskId build = graph.add(
            "build:" + app.name,
            [&options, &explorer, &graph, &app, &slot, cancel,
             &tasks_run, &build_us]() -> Status {
                if (cancel != nullptr && cancel->load()) {
                    graph.cancel();
                    return Status::okStatus();
                }
                const Clock::time_point t0 = Clock::now();
                tasks_run.fetch_add(1, std::memory_order_relaxed);
                slot.build_ran = true;

                // Boundary validation: a corrupt application skips
                // only itself, never the sweep.
                if (Status s = ir::validate(app.graph); !s.ok()) {
                    slot.validate_status =
                        std::move(s).withContext(
                            "validating application '" + app.name +
                            "'");
                    build_us.fetch_add(elapsedUs(t0),
                                       std::memory_order_relaxed);
                    return Status::okStatus();
                }
                if (options.include_baseline)
                    slot.cells[kBaseline].variant =
                        explorer.baselineVariant();
                if (options.include_subset)
                    slot.cells[kSubset].variant =
                        explorer.subsetVariant(app);
                if (options.include_specialized) {
                    const int k =
                        explorer.options().max_merged_subgraphs;
                    auto v = explorer.trySpecializedVariant(app, k);
                    if (v.ok()) {
                        slot.cells[kSpecialized].variant =
                            std::move(v).value();
                    } else {
                        slot.spec_failed = true;
                        slot.spec_name = "pe" +
                                         std::to_string(k + 1) +
                                         "_" + app.name;
                        slot.spec_status = v.status();
                    }
                }
                build_us.fetch_add(elapsedUs(t0),
                                   std::memory_order_relaxed);
                return Status::okStatus();
            });

        for (int j = 0; j < 3; ++j) {
            Cell &cell = slot.cells[j];
            graph.add(
                "eval:" + app.name + "#" + std::to_string(j),
                [&options, &graph, &app, &cell, cancel, &eval_opts,
                 &tech, &tasks_run, &eval_us]() -> Status {
                    if (cancel != nullptr && cancel->load()) {
                        graph.cancel();
                        return Status::okStatus();
                    }
                    if (!cell.variant.has_value())
                        return Status::okStatus();
                    const Clock::time_point t0 = Clock::now();
                    tasks_run.fetch_add(1,
                                        std::memory_order_relaxed);
                    cell.ran = true;
                    EvalResult &r = cell.result;
                    try {
                        r = evaluate(app, *cell.variant,
                                     options.level, tech,
                                     eval_opts);
                    } catch (const ApexError &e) {
                        r.status = e.status().withContext(
                            "evaluating '" + app.name + "' on '" +
                            cell.variant->name + "'");
                        r.error = r.status.toString();
                    } catch (const std::exception &e) {
                        r.status = Status(
                            ErrorCode::kInternal,
                            std::string("unexpected exception: ") +
                                e.what());
                        r.error = r.status.toString();
                    }
                    eval_us.fetch_add(elapsedUs(t0),
                                      std::memory_order_relaxed);
                    return Status::okStatus();
                },
                {build});
        }
    }
    // Expected per-cell failures live in the slots, so a non-ok run()
    // can only mean cancellation — which the assembly below reads off
    // the ran/build_ran flags directly.
    (void)graph.run();

    // --- Deterministic assembly ------------------------------------
    // One sequential pass in (app, recipe-cell) order reproduces the
    // sequential driver's report byte for byte: same entry order,
    // same failure order, same diagnostics scoping.
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const apps::AppInfo &app = apps[i];
        AppSlot &slot = slots[i];
        if (!slot.build_ran) {
            recordFailure(
                out.report, app.name, "",
                Status(ErrorCode::kCancelled,
                       "sweep cancelled before variant construction"),
                1);
            continue;
        }
        if (!slot.validate_status.ok()) {
            recordFailure(out.report, app.name, "",
                          std::move(slot.validate_status), 1);
            continue;
        }
        if (slot.spec_failed)
            recordFailure(out.report, app.name, slot.spec_name,
                          std::move(slot.spec_status), 1);

        for (int j = 0; j < 3; ++j) {
            Cell &cell = slot.cells[j];
            if (!cell.variant.has_value())
                continue;
            const std::string &vname = cell.variant->name;
            if (!cell.ran) {
                recordFailure(
                    out.report, app.name, vname,
                    Status(ErrorCode::kCancelled,
                           "sweep cancelled before evaluation"),
                    1);
                continue;
            }
            EvalResult &r = cell.result;
            out.report.diagnostics.merge(r.diagnostics,
                                         app.name + "/" + vname);
            if (r.success) {
                ++out.report.evaluated;
                out.entries.push_back(
                    {app.name, vname, std::move(r)});
            } else {
                Status s = r.status.ok()
                               ? Status(ErrorCode::kEvaluationFailed,
                                        r.error)
                               : r.status;
                recordFailure(out.report, app.name, vname,
                              std::move(s), r.pnr_attempts);
            }
        }
    }

    // --- Runtime counters ------------------------------------------
    out.stats.tasks_run = tasks_run.load();
    if (pool != nullptr) {
        const runtime::PoolStats after = pool->stats();
        out.stats.tasks_stolen =
            after.tasks_stolen - pool_before.tasks_stolen;
    }
    if (cache != nullptr) {
        const runtime::CacheStats after = cache->stats();
        out.stats.cache_hits = after.hits - cache_before.hits;
        out.stats.cache_misses = after.misses - cache_before.misses;
    }
    out.stats.build_ms = static_cast<double>(build_us.load()) / 1e3;
    out.stats.eval_ms = static_cast<double>(eval_us.load()) / 1e3;
    out.stats.wall_ms =
        static_cast<double>(elapsedUs(wall_start)) / 1e3;
    return out;
}

} // namespace apex::core
