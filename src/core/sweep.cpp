#include "core/sweep.hpp"

#include <algorithm>
#include <utility>

#include "ir/validate.hpp"

namespace apex::core {

namespace {

/** Record a failed (app, variant) pair — or a whole app when
 * @p variant is empty — and keep sweeping. */
void
recordFailure(ExplorationReport &report, const std::string &app,
              const std::string &variant, Status status, int attempts)
{
    StageFailure f;
    f.app = app;
    f.variant = variant;
    f.stage = std::string(stageForCode(status.code()));
    f.status = std::move(status);
    f.attempts = std::max(1, attempts);

    DiagnosticRecord record;
    record.severity = Severity::kError;
    record.stage = f.stage;
    record.code = f.status.code();
    record.message = f.status.toString();
    record.attempt = f.attempts;
    record.scope = variant.empty() ? app : app + "/" + variant;
    report.diagnostics.report(std::move(record));

    report.failures.push_back(std::move(f));
    ++report.skipped;
}

} // namespace

SweepOutcome
runSweep(const std::vector<apps::AppInfo> &apps,
         const Explorer &explorer, const model::TechModel &tech,
         const SweepOptions &options)
{
    SweepOutcome out;

    for (const apps::AppInfo &app : apps) {
        // Boundary validation: a corrupt application skips only
        // itself, never the sweep.
        if (Status s = ir::validate(app.graph); !s.ok()) {
            recordFailure(out.report, app.name, "",
                          std::move(s).withContext(
                              "validating application '" + app.name +
                              "'"),
                          1);
            continue;
        }

        std::vector<PeVariant> variants;
        if (options.include_baseline)
            variants.push_back(explorer.baselineVariant());
        if (options.include_subset)
            variants.push_back(explorer.subsetVariant(app));
        if (options.include_specialized) {
            const int k = explorer.options().max_merged_subgraphs;
            auto v = explorer.trySpecializedVariant(app, k);
            if (v.ok()) {
                variants.push_back(std::move(v).value());
            } else {
                recordFailure(out.report, app.name,
                              "pe" + std::to_string(k + 1) + "_" +
                                  app.name,
                              v.status(), 1);
            }
        }

        for (PeVariant &variant : variants) {
            EvalResult r;
            try {
                r = evaluate(app, variant, options.level, tech,
                             options.eval);
            } catch (const ApexError &e) {
                r.status = e.status().withContext(
                    "evaluating '" + app.name + "' on '" +
                    variant.name + "'");
                r.error = r.status.toString();
            } catch (const std::exception &e) {
                r.status = Status(
                    ErrorCode::kInternal,
                    std::string("unexpected exception: ") + e.what());
                r.error = r.status.toString();
            }
            out.report.diagnostics.merge(
                r.diagnostics, app.name + "/" + variant.name);
            if (r.success) {
                ++out.report.evaluated;
                out.entries.push_back(
                    {app.name, variant.name, std::move(r)});
            } else {
                Status s = r.status.ok()
                               ? Status(ErrorCode::kEvaluationFailed,
                                        r.error)
                               : r.status;
                recordFailure(out.report, app.name, variant.name,
                              std::move(s), r.pnr_attempts);
            }
        }
    }
    return out;
}

} // namespace apex::core
