#include "core/sweep.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include <sstream>

#include "core/journal.hpp"
#include "ir/signature.hpp"
#include "ir/validate.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/worker_pool.hpp"

namespace apex::core {

namespace {

/** Record a failed (app, variant) pair — or a whole app when
 * @p variant is empty — and keep sweeping. */
void
recordFailure(ExplorationReport &report, const std::string &app,
              const std::string &variant, Status status, int attempts)
{
    StageFailure f;
    f.app = app;
    f.variant = variant;
    f.stage = std::string(stageForCode(status.code()));
    f.status = std::move(status);
    f.attempts = std::max(1, attempts);

    DiagnosticRecord record;
    record.severity = Severity::kError;
    record.stage = f.stage;
    record.code = f.status.code();
    record.message = f.status.toString();
    record.attempt = f.attempts;
    record.scope = variant.empty() ? app : app + "/" + variant;
    report.diagnostics.report(std::move(record));

    report.failures.push_back(std::move(f));
    ++report.skipped;
}

/** Fixed identity of the (up to) three recipe cells per app, so the
 * task graph can be built before variant construction runs. */
enum RecipeCell { kBaseline = 0, kSubset = 1, kSpecialized = 2 };

static_assert(kJournalCellsPerApp == 3,
              "journal cell layout mirrors the recipe cells");

/** One (app, variant) evaluation slot; written only by its task (or
 * by the sequential journal-replay pass before the graph runs). */
struct Cell {
    std::optional<PeVariant> variant; ///< Set by the build task.
    bool present = false; ///< The recipe produced this cell (variant
                          ///< built, or known from the journal).
    std::string name;     ///< Variant name (valid when present).
    int non_optimal_merges = 0; ///< Clique searches cut short.
    int merge_timeouts = 0;     ///< ... of which by deadline.
    int mine_capped_levels = 0; ///< Mining levels truncated at cap.
    bool ran = false;           ///< Evaluation outcome available.
    bool replayed = false;      ///< ... restored from the journal.
    bool deadline_skipped = false; ///< Sweep deadline beat the task.
    EvalResult result;
};

/** Per-application slots; written only by this app's tasks. */
struct AppSlot {
    bool build_ran = false;
    bool skip_build = false; ///< Fully replayed; build is redundant.
    bool journaled = false;  ///< App record already on disk.
    bool deadline_skipped = false;
    Status validate_status; ///< Non-ok => whole app skipped.
    bool spec_failed = false;
    std::string spec_name;
    Status spec_status;
    std::array<Cell, 3> cells;
};

using Clock = std::chrono::steady_clock;

long
elapsedUs(Clock::time_point from)
{
    return static_cast<long>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - from)
            .count());
}

/** Move @p v into @p cell, caching the fields the report needs even
 * after the variant itself is gone (or was never rebuilt). */
void
setVariant(Cell &cell, PeVariant v)
{
    cell.present = true;
    cell.name = v.name;
    cell.non_optimal_merges = v.non_optimal_merges;
    cell.merge_timeouts = v.merge_timeouts;
    cell.mine_capped_levels = v.mine_capped_levels;
    cell.variant = std::move(v);
}

} // namespace

// Declared in sweep.hpp; see the header comment.  Defined outside the
// anonymous namespace because the service layer keys request
// coalescing on it.
std::uint64_t
sweepFingerprint(const std::vector<apps::AppInfo> &apps,
                 const Explorer &explorer,
                 const model::TechModel &tech,
                 const SweepOptions &options)
{
    ir::Fnv64 f;
    f.mix(static_cast<std::uint64_t>(options.level));
    f.mix(static_cast<std::uint64_t>(
        (options.include_baseline ? 1 : 0) |
        (options.include_subset ? 2 : 0) |
        (options.include_specialized ? 4 : 0)));
    const EvalOptions &e = options.eval;
    f.mix(static_cast<std::uint64_t>(e.fabric_width));
    f.mix(static_cast<std::uint64_t>(e.fabric_height));
    f.mix(static_cast<std::uint64_t>(e.auto_grow_fabric));
    f.mix(static_cast<std::uint64_t>(e.max_fabric_growths));
    f.mix(static_cast<std::uint64_t>(e.placer_seed));
    f.mix(static_cast<std::uint64_t>(e.place_retries));
    f.mix(static_cast<std::uint64_t>(e.route_track_escalations));
    f.mix(techFingerprint(tech));
    const ExplorerOptions &x = explorer.options();
    f.mix(static_cast<std::uint64_t>(x.miner.min_support));
    f.mix(static_cast<std::uint64_t>(x.miner.max_pattern_nodes));
    f.mix(static_cast<std::uint64_t>(x.miner.mine_constants));
    f.mix(static_cast<std::uint64_t>(x.miner.max_patterns_per_level));
    f.mix(static_cast<std::uint64_t>(x.miner.metric));
    // max_embeddings shapes results (truncated support lists), so it
    // is part of the identity; miner.engine deliberately is NOT — the
    // engines are byte-identical (enforced by the differential tests),
    // so journals, caches and coalesced requests are shareable across
    // them.
    f.mix(static_cast<std::uint64_t>(x.miner.max_embeddings));
    f.mix(static_cast<std::uint64_t>(x.min_mis));
    f.mix(static_cast<std::uint64_t>(x.max_merged_subgraphs));
    f.mix(static_cast<std::uint64_t>(x.merge.clique_budget));
    f.mixDouble(x.merge.input_merge_weight);
    f.mixDouble(x.merge.input_merge_weight_bit);
    f.mix(static_cast<std::uint64_t>(apps.size()));
    for (const apps::AppInfo &app : apps) {
        f.mix(app.name);
        f.mix(ir::fingerprint(app.graph));
        f.mixDouble(app.work_items_per_frame);
        f.mix(static_cast<std::uint64_t>(app.items_per_cycle));
    }
    return f.digest();
}

namespace {

/** Cheap fallback knobs for the degraded retry of a timed-out cell:
 * one placement attempt, no track escalation, at most two fabric
 * growths, bounded only by the sweep deadline. */
EvalOptions
degradedOptions(const EvalOptions &base, const Deadline &sweep)
{
    EvalOptions cheap = base;
    cheap.deadline = sweep;
    cheap.place_retries = 1;
    cheap.route_track_escalations = 0;
    cheap.max_fabric_growths = 2;
    return cheap;
}

/**
 * One guarded cell evaluation: exceptions become failure results, and
 * a cell whose *cell* budget ran out while the sweep still has time
 * is retried once with the cheap fallback knobs (degraded path).
 * Shared verbatim by the in-process eval tasks and the process-mode
 * worker children, which is what keeps the two modes byte-identical.
 */
EvalResult
evaluateCellGuarded(const apps::AppInfo &app, const PeVariant &variant,
                    const model::TechModel &tech,
                    const EvalOptions &eval_opts,
                    const SweepOptions &options)
{
    EvalResult r;
    const bool cell_bounded = options.cell_deadline_ms > 0;
    EvalOptions local = eval_opts;
    local.deadline =
        cell_bounded
            ? Deadline::earliest(
                  options.deadline,
                  Deadline::after(options.cell_deadline_ms))
            : options.deadline;
    try {
        r = evaluate(app, variant, options.level, tech, local);
    } catch (const ApexError &e) {
        r.status = e.status().withContext(
            "evaluating '" + app.name + "' on '" + variant.name +
            "'");
        r.error = r.status.toString();
    } catch (const std::exception &e) {
        r.status =
            Status(ErrorCode::kInternal,
                   std::string("unexpected exception: ") + e.what());
        r.error = r.status.toString();
    }
    // Graceful degradation: the *cell* budget ran out but the sweep
    // still has time — salvage the cell with the cheap knobs instead
    // of failing.
    if (!r.success && r.status.code() == ErrorCode::kTimeout &&
        cell_bounded && !options.deadline.expired()) {
        EvalResult first = std::move(r);
        r = EvalResult{};
        try {
            r = evaluate(app, variant, options.level, tech,
                         degradedOptions(eval_opts,
                                         options.deadline));
        } catch (const ApexError &e) {
            r.status = e.status().withContext(
                "evaluating '" + app.name + "' on '" + variant.name +
                "'");
            r.error = r.status.toString();
        } catch (const std::exception &e) {
            r.status = Status(
                ErrorCode::kInternal,
                std::string("unexpected exception: ") + e.what());
            r.error = r.status.toString();
        }
        if (r.success)
            r.degraded = true;
        r.pnr_attempts += first.pnr_attempts;
        Diagnostics trail;
        trail.merge(first.diagnostics);
        trail.warning("deadline",
                      "cell deadline expired; retrying with "
                      "degraded knobs (1 placement attempt, "
                      "no track escalation, <= 2 fabric "
                      "growths)");
        trail.merge(r.diagnostics);
        r.diagnostics = std::move(trail);
    }
    return r;
}

/** The process-wide `apex.sweep.*` counters SweepRuntimeStats reads.
 * runSweep snapshots them on entry and reports the delta, so the old
 * per-sweep semantics survive the registry migration. */
struct SweepCounters {
    telemetry::Counter &tasks =
        telemetry::counter("apex.sweep.tasks");
    telemetry::Counter &build_us =
        telemetry::counter("apex.sweep.build_us");
    telemetry::Counter &eval_us =
        telemetry::counter("apex.sweep.eval_us");
    telemetry::Counter &cells_replayed =
        telemetry::counter("apex.sweep.cells_replayed");
    telemetry::Counter &cells_degraded =
        telemetry::counter("apex.sweep.cells_degraded");
    telemetry::Counter &non_optimal_cliques =
        telemetry::counter("apex.sweep.non_optimal_cliques");
    telemetry::Counter &mine_capped_levels =
        telemetry::counter("apex.sweep.mine_capped_levels");
};

SweepCounters &
sweepCounters()
{
    static SweepCounters *counters = new SweepCounters();
    return *counters;
}

/** Aggregate the spans this sweep emitted into per-(cell, stage)
 * wall-time rows.  @p first_event is the size of the collected event
 * store when the sweep started (events before it belong to earlier
 * work in the process). */
void
aggregateStageTimes(std::size_t first_event,
                    ExplorationReport *report)
{
    telemetry::collect();
    const std::vector<telemetry::SpanEvent> &evs =
        telemetry::events();
    std::map<std::pair<std::string, std::string>,
             std::pair<double, long>>
        rows;
    for (std::size_t i = first_event; i < evs.size(); ++i) {
        auto &row = rows[{evs[i].scope, evs[i].name}];
        row.first += evs[i].dur_us / 1e3;
        row.second += 1;
    }
    report->stage_times.reserve(rows.size());
    for (const auto &[key, val] : rows) {
        StageTime t;
        t.scope = key.first;
        t.stage = key.second;
        t.ms = val.first;
        t.count = val.second;
        report->stage_times.push_back(std::move(t));
    }
}

/** Append @p slot's build outcome to the journal (once). */
void
journalApp(SweepJournal &journal, int index, AppSlot &slot)
{
    if (slot.journaled || !journal.active())
        return;
    slot.journaled = true;
    SweepJournal::AppRecord rec;
    rec.app = index;
    rec.validate_status = slot.validate_status;
    rec.spec_failed = slot.spec_failed;
    rec.spec_name = slot.spec_name;
    rec.spec_status = slot.spec_status;
    for (int j = 0; j < kJournalCellsPerApp; ++j) {
        const Cell &cell = slot.cells[j];
        rec.cells[j].has_variant = cell.present;
        rec.cells[j].variant = cell.name;
        rec.cells[j].non_optimal_merges = cell.non_optimal_merges;
        rec.cells[j].merge_timeouts = cell.merge_timeouts;
        rec.cells[j].mine_capped_levels = cell.mine_capped_levels;
    }
    journal.appendApp(rec);
}

} // namespace

std::string
SweepRuntimeStats::toString() const
{
    char buf[400];
    std::snprintf(buf, sizeof buf,
                  "jobs=%d tasks=%ld stolen=%ld cache=%ld/%ld "
                  "replayed=%ld degraded=%ld nonopt_cliques=%ld "
                  "mine_capped=%ld "
                  "restarts=%ld retries=%ld quarantined=%ld "
                  "build=%.2fms eval=%.2fms wall=%.2fms",
                  jobs, tasks_run, tasks_stolen, cache_hits,
                  cache_hits + cache_misses, cells_replayed,
                  cells_degraded, non_optimal_cliques,
                  mine_capped_levels,
                  worker_restarts, worker_retries,
                  worker_quarantined, build_ms, eval_ms, wall_ms);
    return buf;
}

SweepOutcome
runSweep(const std::vector<apps::AppInfo> &apps,
         const Explorer &explorer, const model::TechModel &tech,
         const SweepOptions &options)
{
    const Clock::time_point wall_start = Clock::now();
    SweepOutcome out;
    // Declared before the span so the span closes (and records the
    // id) before the previous scope is restored.
    telemetry::ScopedTraceId sweep_trace;
    if (options.trace_id != 0)
        sweep_trace.set(options.trace_id);
    APEX_SPAN("sweep", {{"apps", static_cast<long long>(apps.size())}});

    // Event-store position when this sweep starts: only spans emitted
    // from here on feed the report's stage-time breakdown.
    std::size_t first_event = 0;
    if (telemetry::tracingEnabled()) {
        telemetry::collect();
        first_event = telemetry::events().size();
    }

    // Resolve the execution resources.  jobs == 1 (the default) means
    // no pool at all: the task graph runs inline in insertion order,
    // which is exactly the sequential driver's schedule (including
    // fault-injection call ordinals).
    runtime::ThreadPool *pool = options.pool;
    std::unique_ptr<runtime::ThreadPool> owned_pool;
    if (pool == nullptr) {
        int n = options.jobs;
        if (n <= 0)
            n = runtime::ThreadPool::defaultParallelism();
        if (n > 1) {
            owned_pool = std::make_unique<runtime::ThreadPool>(n);
            pool = owned_pool.get();
        }
    }
    out.stats.jobs = pool != nullptr ? pool->parallelism() : 1;

    EvalOptions eval_opts = options.eval;
    if (options.cache != nullptr)
        eval_opts.cache = options.cache;
    runtime::ArtifactCache *cache = eval_opts.cache;
    const runtime::CacheStats cache_before =
        cache != nullptr ? cache->stats() : runtime::CacheStats{};
    const runtime::PoolStats pool_before =
        pool != nullptr ? pool->stats() : runtime::PoolStats{};

    const std::atomic<bool> *cancel = options.cancel;
    std::vector<AppSlot> slots(apps.size());

    // Progress reporting: cells completed so far, against the recipe
    // upper bound.  Shared by the in-process eval tasks and the
    // worker-pool integration loop below.
    std::atomic<int> progress_done{0};
    const int progress_total = static_cast<int>(apps.size()) * 3;
    const auto reportProgress = [&options, &progress_done,
                                 progress_total](
                                    const std::string &app,
                                    const std::string &variant) {
        if (!options.progress)
            return;
        SweepProgress p;
        p.done = progress_done.fetch_add(1) + 1;
        p.total = progress_total;
        p.app = app;
        p.variant = variant;
        options.progress(p);
    };
    SweepCounters &counters = sweepCounters();
    const long long tasks_before = counters.tasks.value();
    const long long build_us_before = counters.build_us.value();
    const long long eval_us_before = counters.eval_us.value();

    // --- Durability: open (and maybe replay) the sweep journal ------
    // An open failure leaves the journal inactive; the sweep still
    // runs (completed work is worth reporting), but the broken
    // durability promise is surfaced in out.durability so the CLI
    // can fail loudly instead of letting the user believe the run
    // was checkpointed.
    SweepJournal journal;
    Status durability;
    if (!options.journal_dir.empty()) {
        durability =
            journal
                .open(options.journal_dir,
                      sweepFingerprint(apps, explorer, tech, options),
                      apps.size(), options.resume)
                .withContext("opening sweep journal in '" +
                             options.journal_dir + "'");
    }

    // Restore journaled outcomes sequentially, before any task runs.
    // A fully-journaled app skips variant construction entirely; a
    // partially-journaled one re-runs the (deterministic) build to
    // reconstruct the variants its missing cells need, but keeps the
    // replayed evaluations.
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const SweepJournal::AppRecord *rec = journal.appRecord(i);
        if (rec == nullptr)
            continue;
        AppSlot &slot = slots[i];
        slot.journaled = true;
        slot.validate_status = rec->validate_status;
        slot.spec_failed = rec->spec_failed;
        slot.spec_name = rec->spec_name;
        slot.spec_status = rec->spec_status;
        bool missing_eval = false;
        for (int j = 0; j < kJournalCellsPerApp; ++j) {
            const SweepJournal::CellInfo &info = rec->cells[j];
            Cell &cell = slot.cells[j];
            cell.present = info.has_variant;
            cell.name = info.variant;
            cell.non_optimal_merges = info.non_optimal_merges;
            cell.merge_timeouts = info.merge_timeouts;
            cell.mine_capped_levels = info.mine_capped_levels;
            if (!info.has_variant)
                continue;
            const SweepJournal::CellRecord *done =
                journal.cellRecord(i, j);
            if (done != nullptr) {
                cell.ran = true;
                cell.replayed = true;
                cell.result = done->result;
            } else {
                missing_eval = true;
            }
        }
        if (!missing_eval) {
            slot.skip_build = true;
            slot.build_ran = true;
        }
    }
    out.stats.cells_replayed = journal.replayedCells();
    counters.cells_replayed.add(journal.replayedCells());

    // --- Fan out: one build task per app, one eval task per cell ---
    // Every task writes only its own slot; all ordering-sensitive
    // work (report assembly) happens sequentially afterwards.
    runtime::TaskGraph graph(pool);
    graph.setTraceId(options.trace_id);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const apps::AppInfo &app = apps[i];
        AppSlot &slot = slots[i];
        const int app_index = static_cast<int>(i);

        const runtime::TaskId build = graph.add(
            "build:" + app.name,
            [&options, &explorer, &graph, &app, &slot, cancel,
             &counters, &journal, app_index]() -> Status {
                if (slot.skip_build)
                    return Status::okStatus();
                if (cancel != nullptr && cancel->load()) {
                    graph.cancel();
                    return Status::okStatus();
                }
                if (options.deadline.expired()) {
                    slot.deadline_skipped = true;
                    return Status::okStatus();
                }
                telemetry::ScopedCell cell_scope;
                if (telemetry::tracingEnabled())
                    cell_scope.set(app.name);
                // Pool lanes do not inherit the caller's trace id;
                // each task re-installs it for its own spans.
                telemetry::ScopedTraceId trace_scope;
                if (options.trace_id != 0)
                    trace_scope.set(options.trace_id);
                APEX_SPAN("build", {{"app", app.name}});
                telemetry::StageTimer timer(
                    telemetry::histogram("apex.build.ms"));
                const Clock::time_point t0 = Clock::now();
                counters.tasks.add(1);
                slot.build_ran = true;

                // Boundary validation: a corrupt application skips
                // only itself, never the sweep.
                if (Status s = ir::validate(app.graph); !s.ok()) {
                    slot.validate_status =
                        std::move(s).withContext(
                            "validating application '" + app.name +
                            "'");
                    journalApp(journal, app_index, slot);
                    counters.build_us.add(elapsedUs(t0));
                    return Status::okStatus();
                }
                if (options.include_baseline)
                    setVariant(slot.cells[kBaseline],
                               explorer.baselineVariant());
                if (options.include_subset)
                    setVariant(slot.cells[kSubset],
                               explorer.subsetVariant(app));
                if (options.include_specialized) {
                    const int k =
                        explorer.options().max_merged_subgraphs;
                    auto v = explorer.trySpecializedVariant(app, k);
                    if (v.ok()) {
                        setVariant(slot.cells[kSpecialized],
                                   std::move(v).value());
                    } else {
                        slot.spec_failed = true;
                        slot.spec_name = "pe" +
                                         std::to_string(k + 1) +
                                         "_" + app.name;
                        slot.spec_status = v.status();
                    }
                }
                journalApp(journal, app_index, slot);
                counters.build_us.add(elapsedUs(t0));
                return Status::okStatus();
            });

        // Process isolation runs evaluations behind the worker pool
        // *after* the builds; only the in-process mode fans them out
        // as graph tasks here.
        if (options.isolate != IsolateMode::kInProcess)
            continue;
        for (int j = 0; j < 3; ++j) {
            Cell &cell = slot.cells[j];
            graph.add(
                "eval:" + app.name + "#" + std::to_string(j),
                [&options, &graph, &app, &cell, cancel, &eval_opts,
                 &tech, &counters, &journal, &reportProgress,
                 app_index, j]() -> Status {
                    if (cell.ran) // replayed from the journal
                        return Status::okStatus();
                    if (cancel != nullptr && cancel->load()) {
                        graph.cancel();
                        return Status::okStatus();
                    }
                    if (!cell.variant.has_value())
                        return Status::okStatus();
                    if (options.deadline.expired()) {
                        cell.deadline_skipped = true;
                        return Status::okStatus();
                    }
                    telemetry::ScopedTraceId trace_scope;
                    if (options.trace_id != 0)
                        trace_scope.set(options.trace_id);
                    const Clock::time_point t0 = Clock::now();
                    counters.tasks.add(1);
                    cell.ran = true;
                    cell.result = evaluateCellGuarded(
                        app, *cell.variant, tech, eval_opts,
                        options);
                    EvalResult &r = cell.result;
                    counters.eval_us.add(elapsedUs(t0));
                    SweepJournal::CellRecord rec;
                    rec.app = app_index;
                    rec.cell = j;
                    rec.variant = cell.name;
                    rec.result = r;
                    journal.appendCell(rec);
                    reportProgress(app.name, cell.name);
                    return Status::okStatus();
                },
                {build});
        }
    }
    // Expected per-cell failures live in the slots, so a non-ok run()
    // can only mean cancellation — which the assembly below reads off
    // the ran/build_ran flags directly.
    (void)graph.run();

    // --- Process isolation: dispatch evaluations to forked workers --
    // Workers are forked *after* the builds, so fork-COW hands every
    // child the built variants for free; each child evaluates cells
    // it is sent and answers with the exact journal payload bytes,
    // checksummed end to end.  A worker death is survived: retry up
    // to cell_retries re-dispatches, then quarantine the cell as a
    // kWorkerCrashed failure with its death cause and keep sweeping.
    if (options.isolate == IsolateMode::kProcess) {
        struct WorkItem {
            std::size_t app;
            int cell;
        };
        std::vector<WorkItem> work;
        std::vector<std::string> payloads;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            for (int j = 0; j < 3; ++j) {
                Cell &cell = slots[i].cells[j];
                if (cell.ran || !cell.variant.has_value())
                    continue;
                if (cancel != nullptr && cancel->load())
                    continue; // Assembly records the cancellation.
                if (options.deadline.expired()) {
                    // An expired sweep deadline forks no workers.
                    cell.deadline_skipped = true;
                    continue;
                }
                work.push_back({i, j});
                payloads.push_back(std::to_string(i) + " " +
                                   std::to_string(j));
            }
        }
        if (!work.empty()) {
            // Children must not append to the shared artifact cache:
            // concurrent processes interleaving writes through one
            // inherited fd would corrupt it.  Results are identical
            // either way (the cache is a pure memoization).
            EvalOptions child_eval = eval_opts;
            child_eval.cache = nullptr;
            const auto handler =
                [&apps, &slots, &tech, &child_eval,
                 &options](const std::string &task) -> std::string {
                std::istringstream is(task);
                std::size_t i = 0;
                int j = 0;
                if (!(is >> i >> j) || i >= apps.size() || j < 0 ||
                    j >= 3)
                    throw ApexError(
                        Status(ErrorCode::kInternal,
                               "malformed worker task '" + task +
                                   "'"));
                const Cell &cell = slots[i].cells[j];
                SweepJournal::CellRecord rec;
                rec.app = static_cast<int>(i);
                rec.cell = j;
                rec.variant = cell.name;
                rec.result = evaluateCellGuarded(
                    apps[i], *cell.variant, tech, child_eval,
                    options);
                return SweepJournal::encodeCellRecordPayload(rec);
            };
            runtime::WorkerPoolOptions wopts;
            wopts.workers = out.stats.jobs;
            wopts.task_retries = options.cell_retries;
            wopts.heartbeat_ms = options.worker_heartbeat_ms;
            wopts.liveness_timeout_ms =
                options.worker_liveness_timeout_ms;
            wopts.cancel = cancel;
            wopts.trace_id = options.trace_id;
            runtime::WorkerPool workers(handler, wopts);
            const std::vector<runtime::WorkerTaskOutcome> outcomes =
                workers.run(payloads);

            for (std::size_t k = 0; k < work.size(); ++k) {
                Cell &cell = slots[work[k].app].cells[work[k].cell];
                const runtime::WorkerTaskOutcome &o = outcomes[k];
                if (o.fate == runtime::TaskFate::kCancelled)
                    continue; // Assembly records the cancellation.
                counters.tasks.add(1);
                counters.eval_us.add(
                    static_cast<long>(o.wall_ms * 1e3));
                SweepJournal::CellRecord rec;
                rec.app = static_cast<int>(work[k].app);
                rec.cell = work[k].cell;
                rec.variant = cell.name;
                if (o.fate == runtime::TaskFate::kDone &&
                    SweepJournal::decodeCellRecordPayload(
                        o.response, &rec)) {
                    // Trust the payload's result, not its indices:
                    // the journal key is the supervisor's.
                    rec.app = static_cast<int>(work[k].app);
                    rec.cell = work[k].cell;
                    rec.variant = cell.name;
                } else {
                    // Quarantined (or an undecodable response, which
                    // is a protocol-level crash): record a durable
                    // kWorkerCrashed failure so --resume replays the
                    // verdict instead of re-poisoning a worker.
                    EvalResult &r = rec.result;
                    r.success = false;
                    r.pnr_attempts = std::max(1, o.attempts);
                    std::ostringstream msg;
                    msg << "worker died evaluating this cell ("
                        << runtime::workerDeathCauseName(
                               o.cause ==
                                       runtime::WorkerDeathCause::
                                           kNone
                                   ? runtime::WorkerDeathCause::
                                         kCrash
                                   : o.cause)
                        << "); quarantined after " << o.attempts
                        << (o.attempts == 1 ? " attempt"
                                            : " attempts");
                    r.status = Status(ErrorCode::kWorkerCrashed,
                                      msg.str());
                    r.error = r.status.toString();
                }
                cell.ran = true;
                cell.result = rec.result;
                journal.appendCell(rec);
                reportProgress(apps[work[k].app].name, cell.name);
            }
            out.stats.worker_restarts = workers.stats().restarts;
            out.stats.worker_retries = workers.stats().retries;
            out.stats.worker_quarantined =
                workers.stats().quarantined;
        }
    }

    // --- Deterministic assembly ------------------------------------
    // One sequential pass in (app, recipe-cell) order reproduces the
    // sequential driver's report byte for byte: same entry order,
    // same failure order, same diagnostics scoping.  Replayed cells
    // take exactly the same path as freshly-evaluated ones, which is
    // what makes a resumed report byte-identical.
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const apps::AppInfo &app = apps[i];
        AppSlot &slot = slots[i];
        if (!slot.build_ran) {
            recordFailure(
                out.report, app.name, "",
                slot.deadline_skipped
                    ? Status(ErrorCode::kTimeout,
                             "sweep deadline expired before variant "
                             "construction")
                    : Status(
                          ErrorCode::kCancelled,
                          "sweep cancelled before variant "
                          "construction"),
                1);
            continue;
        }
        if (!slot.validate_status.ok()) {
            recordFailure(out.report, app.name, "",
                          std::move(slot.validate_status), 1);
            continue;
        }
        if (slot.spec_failed)
            recordFailure(out.report, app.name, slot.spec_name,
                          std::move(slot.spec_status), 1);

        for (int j = 0; j < 3; ++j) {
            Cell &cell = slot.cells[j];
            if (!cell.present)
                continue;
            const std::string &vname = cell.name;
            if (cell.non_optimal_merges > 0) {
                // Surface clique searches that stopped before
                // optimality — previously a silent flag on the
                // merge result.
                DiagnosticRecord w;
                w.severity = Severity::kWarning;
                w.stage = "merge";
                w.code = cell.merge_timeouts > 0
                             ? ErrorCode::kTimeout
                             : ErrorCode::kBudgetExhausted;
                w.message =
                    std::to_string(cell.non_optimal_merges) +
                    " datapath merge(s) used a non-optimal clique "
                    "(budget exhausted" +
                    (cell.merge_timeouts > 0
                         ? ", " +
                               std::to_string(cell.merge_timeouts) +
                               " by deadline"
                         : std::string()) +
                    "); the PE may spend more area than necessary";
                w.scope = app.name + "/" + vname;
                out.report.diagnostics.report(std::move(w));
                // The diagnostic above is part of the byte-identical
                // report contract, but the runtime stat counts clique
                // searches cut short *this run* — a fully-replayed
                // app never re-ran its merges, so recounting its
                // journaled flags would double-count under --resume.
                if (!slot.skip_build) {
                    out.stats.non_optimal_cliques +=
                        cell.non_optimal_merges;
                    counters.non_optimal_cliques.add(
                        cell.non_optimal_merges);
                }
            }
            if (cell.mine_capped_levels > 0) {
                // Surface mining frontiers truncated at the
                // max_patterns_per_level safety valve — previously a
                // silent drop that could change which PE variants
                // exist downstream without any trace.
                DiagnosticRecord w;
                w.severity = Severity::kWarning;
                w.stage = "mine";
                w.code = ErrorCode::kBudgetExhausted;
                w.message =
                    "mining truncated " +
                    std::to_string(cell.mine_capped_levels) +
                    " level(s) at max_patterns_per_level (" +
                    std::to_string(explorer.options()
                                       .miner.max_patterns_per_level) +
                    "); candidate patterns were dropped and a better "
                    "subgraph may have been missed — raise the cap "
                    "or min_support to mine exhaustively";
                w.scope = app.name + "/" + vname;
                out.report.diagnostics.report(std::move(w));
                // Same replay policy as non_optimal_cliques: the
                // diagnostic is part of the byte-identical report,
                // the runtime stat counts truncations *this run*.
                if (!slot.skip_build) {
                    out.stats.mine_capped_levels +=
                        cell.mine_capped_levels;
                    counters.mine_capped_levels.add(
                        cell.mine_capped_levels);
                }
            }
            if (!cell.ran) {
                recordFailure(
                    out.report, app.name, vname,
                    cell.deadline_skipped
                        ? Status(ErrorCode::kTimeout,
                                 "sweep deadline expired before "
                                 "evaluation")
                        : Status(ErrorCode::kCancelled,
                                 "sweep cancelled before "
                                 "evaluation"),
                    1);
                continue;
            }
            EvalResult &r = cell.result;
            out.report.diagnostics.merge(r.diagnostics,
                                         app.name + "/" + vname);
            if (r.success) {
                ++out.report.evaluated;
                if (r.degraded) {
                    // The report mirrors the cell's durable outcome
                    // (byte-identical under --resume), but the stats
                    // count degradations *this run*: a cell replayed
                    // from the journal did not degrade again.
                    ++out.report.degraded;
                    if (!cell.replayed) {
                        ++out.stats.cells_degraded;
                        counters.cells_degraded.add(1);
                    }
                }
                out.entries.push_back(
                    {app.name, vname, std::move(r)});
            } else {
                Status s = r.status.ok()
                               ? Status(ErrorCode::kEvaluationFailed,
                                        r.error)
                               : r.status;
                recordFailure(out.report, app.name, vname,
                              std::move(s), r.pnr_attempts);
            }
        }
    }

    // --- Runtime counters ------------------------------------------
    // All counters live in the telemetry registry; this sweep's
    // contribution is the delta against the entry snapshots.
    out.stats.tasks_run =
        static_cast<long>(counters.tasks.value() - tasks_before);
    if (pool != nullptr) {
        const runtime::PoolStats after = pool->stats();
        out.stats.tasks_stolen =
            after.tasks_stolen - pool_before.tasks_stolen;
    }
    if (cache != nullptr) {
        const runtime::CacheStats after = cache->stats();
        out.stats.cache_hits = after.hits - cache_before.hits;
        out.stats.cache_misses = after.misses - cache_before.misses;
    }
    out.stats.build_ms =
        static_cast<double>(counters.build_us.value() -
                            build_us_before) /
        1e3;
    out.stats.eval_ms = static_cast<double>(counters.eval_us.value() -
                                            eval_us_before) /
                        1e3;
    out.stats.wall_ms =
        static_cast<double>(elapsedUs(wall_start)) / 1e3;
    if (telemetry::tracingEnabled())
        aggregateStageTimes(first_event, &out.report);

    // --- Durability verdict ----------------------------------------
    // A journal that died mid-run (disk full during an append) left
    // an on-disk log missing outcomes; surface it after assembly so
    // the report above still carries everything that ran.
    if (durability.ok())
        durability = journal.lastError().withContext(
            "journaling sweep outcomes in '" + options.journal_dir +
            "'");
    if (!durability.ok()) {
        telemetry::counter("apex.resource.sweep_durability_failures")
            .add(1);
        out.report.diagnostics.error("durability", durability);
        out.durability = std::move(durability);
    }
    return out;
}

} // namespace apex::core
