#ifndef APEX_CORE_ENCODING_H_
#define APEX_CORE_ENCODING_H_

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "core/status.hpp"

/**
 * @file
 * Text-payload encoding primitives shared by every layer that
 * serializes pipeline state into checksummed frames: the sweep
 * journal (core/journal.cpp), the worker-pool task protocol and the
 * service wire protocol (src/service/protocol.cpp).
 *
 * The format is deliberately dumb: length-prefixed strings
 * (`<len>\n<bytes>\n`) make every field safe to hold newlines,
 * spaces or arbitrary bytes (error messages do), and integers are
 * plain decimal fields.  All framing-level integrity (checksums,
 * versioning, truncation detection) lives a layer below, in
 * runtime/record.hpp — these helpers only need to be unambiguous,
 * not self-validating.
 *
 * Every decoder returns false on malformed input instead of
 * throwing; callers treat a false as frame corruption.
 */

namespace apex::core::enc {

/** Write one length-prefixed string. */
inline void
putStr(std::ostream &os, std::string_view s)
{
    os << s.size() << '\n';
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
    os << '\n';
}

/** Read one length-prefixed string; false on malformed input.
 *
 * The length field comes off the wire, so it is never trusted with
 * an up-front allocation: the string grows in bounded chunks as the
 * stream actually delivers bytes, and a forged huge length fails
 * with `false` (stream exhausted) instead of length_error/bad_alloc
 * from a blind resize. */
inline bool
getStr(std::istream &is, std::string *out)
{
    std::size_t n = 0;
    if (!(is >> n))
        return false;
    if (is.get() != '\n')
        return false;
    out->clear();
    constexpr std::size_t kChunk = 1u << 16;
    while (n > 0) {
        const std::size_t take = n < kChunk ? n : kChunk;
        const std::size_t old = out->size();
        out->resize(old + take);
        if (!is.read(out->data() + old,
                     static_cast<std::streamsize>(take)))
            return false;
        n -= take;
    }
    return is.get() == '\n';
}

/** Write a Status: code, message, context chain. */
inline void
putStatus(std::ostream &os, const Status &s)
{
    os << static_cast<int>(s.code()) << '\n';
    putStr(os, s.message());
    os << s.context().size() << '\n';
    for (const std::string &frame : s.context())
        putStr(os, frame);
}

/** Inverse of putStatus(); false on malformed input. */
inline bool
getStatus(std::istream &is, Status *out)
{
    int code = 0;
    std::string message;
    std::size_t nframes = 0;
    if (!(is >> code))
        return false;
    is.get();
    if (!getStr(is, &message))
        return false;
    if (!(is >> nframes))
        return false;
    is.get();
    Status s = code == 0 ? Status::okStatus()
                         : Status(static_cast<ErrorCode>(code),
                                  std::move(message));
    for (std::size_t i = 0; i < nframes; ++i) {
        std::string frame;
        if (!getStr(is, &frame))
            return false;
        // The rvalue overload appends to s in place and returns a
        // reference to s itself; assigning that back would self-move.
        (void)std::move(s).withContext(std::move(frame));
    }
    *out = std::move(s);
    return true;
}

/** Write a Diagnostics sink record by record. */
inline void
putDiagnostics(std::ostream &os, const Diagnostics &d)
{
    os << d.records().size() << '\n';
    for (const DiagnosticRecord &r : d.records()) {
        os << static_cast<int>(r.severity) << ' '
           << static_cast<int>(r.code) << ' ' << r.attempt << '\n';
        putStr(os, r.stage);
        putStr(os, r.message);
        putStr(os, r.scope);
    }
}

/** Inverse of putDiagnostics(); appends to @p out, false on
 * malformed input. */
inline bool
getDiagnostics(std::istream &is, Diagnostics *out)
{
    std::size_t n = 0;
    if (!(is >> n))
        return false;
    is.get();
    for (std::size_t i = 0; i < n; ++i) {
        DiagnosticRecord r;
        int severity = 0;
        int code = 0;
        if (!(is >> severity >> code >> r.attempt))
            return false;
        is.get();
        r.severity = static_cast<Severity>(severity);
        r.code = static_cast<ErrorCode>(code);
        if (!getStr(is, &r.stage) || !getStr(is, &r.message) ||
            !getStr(is, &r.scope))
            return false;
        out->report(std::move(r));
    }
    return true;
}

} // namespace apex::core::enc

#endif // APEX_CORE_ENCODING_H_
