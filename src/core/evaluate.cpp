#include "core/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "cgra/bitstream.hpp"
#include "core/fault.hpp"
#include "ir/signature.hpp"
#include "ir/validate.hpp"
#include "cgra/place.hpp"
#include "cgra/route.hpp"
#include "mapper/select.hpp"
#include "pipeline/app_pipeline.hpp"
#include "pipeline/pe_pipeline.hpp"
#include "pipeline/timing.hpp"
#include "runtime/telemetry.hpp"

namespace apex::core {

using mapper::MappedKind;

// ---------------------------------------------------------------------
// Artifact-cache keys and EvalResult serialization
// ---------------------------------------------------------------------

namespace {

/** Content fingerprint of a PE specification: everything evaluate()
 * reads from it (datapath structure, config space, pipelining). */
std::uint64_t
specFingerprint(const pe::PeSpec &spec)
{
    ir::Fnv64 f;
    f.mix(static_cast<std::uint64_t>(spec.dp.nodes.size()));
    for (const merging::DpNode &n : spec.dp.nodes) {
        f.mix(static_cast<std::uint64_t>(n.kind));
        f.mix(static_cast<std::uint64_t>(n.cls));
        f.mix(static_cast<std::uint64_t>(n.type));
        f.mix(static_cast<std::uint64_t>(n.is_output));
        f.mix(static_cast<std::uint64_t>(n.ops.size()));
        for (const ir::Op op : n.ops) // std::set: sorted, stable
            f.mix(static_cast<std::uint64_t>(op));
    }
    f.mix(static_cast<std::uint64_t>(spec.dp.edges.size()));
    for (const merging::DpEdge &e : spec.dp.edges) {
        f.mix(static_cast<std::uint64_t>(e.src));
        f.mix(static_cast<std::uint64_t>(e.dst));
        f.mix(static_cast<std::uint64_t>(e.port));
    }
    auto mix_ints = [&f](const std::vector<int> &v) {
        f.mix(static_cast<std::uint64_t>(v.size()));
        for (const int i : v)
            f.mix(static_cast<std::uint64_t>(i));
    };
    f.mix(static_cast<std::uint64_t>(spec.muxes.size()));
    for (const pe::MuxSite &m : spec.muxes) {
        f.mix(static_cast<std::uint64_t>(m.node));
        f.mix(static_cast<std::uint64_t>(m.port));
        mix_ints(m.sources);
    }
    mix_ints(spec.multi_op_blocks);
    mix_ints(spec.const_regs);
    mix_ints(spec.word_inputs);
    mix_ints(spec.bit_inputs);
    mix_ints(spec.word_outputs);
    mix_ints(spec.bit_outputs);
    mix_ints(spec.lut_blocks);
    f.mix(static_cast<std::uint64_t>(spec.has_register_file));
    f.mix(static_cast<std::uint64_t>(spec.pipeline_stages));
    return f.digest();
}

} // namespace

std::uint64_t
techFingerprint(const model::TechModel &tech)
{
    ir::Fnv64 f;
    for (const model::BlockCost &b : tech.block) {
        f.mixDouble(b.area);
        f.mixDouble(b.energy);
        f.mixDouble(b.delay);
    }
    f.mixDouble(tech.mux_input_area);
    f.mixDouble(tech.mux_input_area_bit);
    f.mixDouble(tech.mux_energy);
    f.mixDouble(tech.mux_delay);
    f.mixDouble(tech.config_bit_area);
    f.mixDouble(tech.decode_area_per_op);
    f.mixDouble(tech.decode_energy);
    f.mixDouble(tech.config_bit_energy);
    f.mixDouble(tech.decode_energy_per_op);
    f.mixDouble(tech.idle_toggle_factor);
    f.mixDouble(tech.pipe_reg_area);
    f.mixDouble(tech.pipe_reg_energy);
    f.mixDouble(tech.reg_setup_delay);
    f.mixDouble(tech.rf_area);
    f.mixDouble(tech.rf_energy);
    f.mix(static_cast<std::uint64_t>(tech.sb_tracks));
    f.mixDouble(tech.sb_area);
    f.mixDouble(tech.sb_energy_per_hop);
    f.mixDouble(tech.sb_hop_delay);
    f.mixDouble(tech.cb_area_per_input);
    f.mixDouble(tech.cb_area_per_input_bit);
    f.mixDouble(tech.cb_energy);
    f.mixDouble(tech.mem_tile_area);
    f.mixDouble(tech.mem_energy_access);
    f.mixDouble(tech.target_period);
    return f.digest();
}

std::string
evalCacheKey(const apps::AppInfo &app, const PeVariant &variant,
             EvalLevel level, const model::TechModel &tech,
             const EvalOptions &options)
{
    ir::Fnv64 f;
    f.mix(ir::fingerprint(app.graph));
    f.mixDouble(app.work_items_per_frame);
    f.mix(static_cast<std::uint64_t>(app.items_per_cycle));
    f.mix(specFingerprint(variant.spec));
    f.mix(static_cast<std::uint64_t>(variant.patterns.size()));
    for (const ir::Graph &p : variant.patterns)
        f.mix(ir::fingerprint(p));
    f.mix(static_cast<std::uint64_t>(level));
    f.mix(techFingerprint(tech));
    f.mix(static_cast<std::uint64_t>(options.fabric_width));
    f.mix(static_cast<std::uint64_t>(options.fabric_height));
    f.mix(static_cast<std::uint64_t>(options.auto_grow_fabric));
    f.mix(static_cast<std::uint64_t>(options.max_fabric_growths));
    f.mix(static_cast<std::uint64_t>(options.placer_seed));
    f.mix(static_cast<std::uint64_t>(options.place_retries));
    f.mix(
        static_cast<std::uint64_t>(options.route_track_escalations));
    // options.deadline is intentionally excluded: it never changes a
    // computed result, only whether one is computed at all.

    // Human-readable prefix for cache introspection; the hash is the
    // actual content address.
    std::ostringstream os;
    os << "eval/v2/" << app.name << '/' << variant.name << '/'
       << static_cast<int>(level) << '/' << std::hex << f.digest();
    return os.str();
}

namespace {

void
appendDouble(std::ostringstream &os, const char *name, double v)
{
    // %a round-trips IEEE doubles exactly: cache hits are
    // bit-identical to the run that populated the cache.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    os << name << ' ' << buf << '\n';
}

} // namespace

std::string
serializeEvalResult(const EvalResult &r)
{
    std::ostringstream os;
    os << "apexeval 2\n";
    os << "pnr_attempts " << r.pnr_attempts << '\n';
    os << "degraded " << (r.degraded ? 1 : 0) << '\n';
    os << "pe_count " << r.pe_count << '\n';
    appendDouble(os, "pe_area", r.pe_area);
    appendDouble(os, "pe_energy", r.pe_energy);
    os << "fabric_width " << r.fabric_width << '\n';
    os << "fabric_height " << r.fabric_height << '\n';
    appendDouble(os, "sb_area", r.sb_area);
    appendDouble(os, "cb_area", r.cb_area);
    appendDouble(os, "mem_area", r.mem_area);
    appendDouble(os, "cgra_area", r.cgra_area);
    appendDouble(os, "sb_energy", r.sb_energy);
    appendDouble(os, "cb_energy", r.cb_energy);
    appendDouble(os, "mem_energy", r.mem_energy);
    appendDouble(os, "cgra_energy", r.cgra_energy);
    os << "util_pes " << r.util.pes << '\n';
    os << "util_mems " << r.util.mems << '\n';
    os << "util_rf_entries " << r.util.rf_entries << '\n';
    os << "util_ios " << r.util.ios << '\n';
    os << "util_regs " << r.util.regs << '\n';
    os << "util_routing_tiles " << r.util.routing_tiles << '\n';
    os << "util_sb_hops " << r.util.sb_hops << '\n';
    os << "pipeline_stages " << r.pipeline_stages << '\n';
    appendDouble(os, "period_ns", r.period_ns);
    appendDouble(os, "latency_cycles", r.latency_cycles);
    appendDouble(os, "runtime_ms", r.runtime_ms);
    appendDouble(os, "perf_per_mm2", r.perf_per_mm2);
    appendDouble(os, "frames_per_ms_mm2", r.frames_per_ms_mm2);
    appendDouble(os, "total_energy_uj", r.total_energy_uj);
    appendDouble(os, "raw_compute_energy_uj",
                 r.raw_compute_energy_uj);
    appendDouble(os, "op_events", r.op_events);
    return os.str();
}

Result<EvalResult>
parseEvalResult(const std::string &text)
{
    std::istringstream is(text);
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != "apexeval" ||
        version != 2)
        return Status(ErrorCode::kParseError,
                      "bad apexeval header");

    EvalResult r;
    int degraded = 0;
    std::map<std::string, int *> ints{
        {"pnr_attempts", &r.pnr_attempts},
        {"degraded", &degraded},
        {"pe_count", &r.pe_count},
        {"fabric_width", &r.fabric_width},
        {"fabric_height", &r.fabric_height},
        {"util_pes", &r.util.pes},
        {"util_mems", &r.util.mems},
        {"util_rf_entries", &r.util.rf_entries},
        {"util_ios", &r.util.ios},
        {"util_regs", &r.util.regs},
        {"util_routing_tiles", &r.util.routing_tiles},
        {"util_sb_hops", &r.util.sb_hops},
        {"pipeline_stages", &r.pipeline_stages},
    };
    std::map<std::string, double *> doubles{
        {"pe_area", &r.pe_area},
        {"pe_energy", &r.pe_energy},
        {"sb_area", &r.sb_area},
        {"cb_area", &r.cb_area},
        {"mem_area", &r.mem_area},
        {"cgra_area", &r.cgra_area},
        {"sb_energy", &r.sb_energy},
        {"cb_energy", &r.cb_energy},
        {"mem_energy", &r.mem_energy},
        {"cgra_energy", &r.cgra_energy},
        {"period_ns", &r.period_ns},
        {"latency_cycles", &r.latency_cycles},
        {"runtime_ms", &r.runtime_ms},
        {"perf_per_mm2", &r.perf_per_mm2},
        {"frames_per_ms_mm2", &r.frames_per_ms_mm2},
        {"total_energy_uj", &r.total_energy_uj},
        {"raw_compute_energy_uj", &r.raw_compute_energy_uj},
        {"op_events", &r.op_events},
    };

    std::size_t parsed = 0;
    std::string name, value;
    while (is >> name >> value) {
        if (auto it = ints.find(name); it != ints.end()) {
            *it->second = std::atoi(value.c_str());
        } else if (auto dt = doubles.find(name);
                   dt != doubles.end()) {
            char *end = nullptr;
            *dt->second = std::strtod(value.c_str(), &end);
            if (end == value.c_str())
                return Status(ErrorCode::kParseError,
                              "bad double for '" + name + "'");
        } else {
            return Status(ErrorCode::kParseError,
                          "unknown apexeval field '" + name + "'");
        }
        ++parsed;
    }
    if (parsed != ints.size() + doubles.size())
        return Status(ErrorCode::kParseError,
                      "truncated apexeval record");
    r.degraded = degraded != 0;
    r.success = true;
    return r;
}

double
peInstanceEnergy(const mapper::RewriteRule &rule,
                 const pe::PeSpec &spec,
                 const model::TechModel &tech)
{
    double energy = spec.overheadEnergyPerCycle(tech);

    // Active datapath blocks of this rule.
    std::set<int> active;
    double active_energy = 0.0;
    for (ir::NodeId id = 0; id < rule.pattern.size(); ++id) {
        const ir::Op op = rule.pattern.op(id);
        if (!ir::opIsCompute(op))
            continue;
        const int dp_node = rule.node_to_dp[id];
        if (active.insert(dp_node).second) {
            active_energy +=
                model::blockCost(tech,
                                 spec.dp.nodes[dp_node].cls)
                    .energy;
        }
    }
    energy += active_energy;

    // Idle blocks still toggle.
    for (int b : spec.dp.blockIds()) {
        if (!active.count(b)) {
            energy += tech.idle_toggle_factor *
                      model::blockCost(tech, spec.dp.nodes[b].cls)
                          .energy;
        }
    }

    energy += tech.mux_energy *
              static_cast<double>(rule.placeholders.size());
    energy += 0.005 * static_cast<double>(rule.const_bindings.size());
    return energy;
}

EvalResult
evaluate(const apps::AppInfo &app, const PeVariant &variant,
         EvalLevel level, const model::TechModel &tech,
         const EvalOptions &options)
{
    EvalResult r;
    // Cell attribution: every span below (mapper, P&R, pipeliner,
    // and anything they call) inherits this "app/variant" scope, so
    // the per-cell stage-time breakdown can group by it.
    telemetry::ScopedCell cell_scope;
    if (telemetry::tracingEnabled())
        cell_scope.set(app.name + "/" + variant.name);
    APEX_SPAN("evaluate",
              {{"app", app.name}, {"variant", variant.name}});
    telemetry::StageTimer eval_timer(
        telemetry::histogram("apex.eval.ms"));
    const std::string pair_context =
        "evaluating '" + app.name + "' on '" + variant.name + "'";
    if (Status fault = checkFault(FaultStage::kEvaluate);
        !fault.ok()) {
        r.status = std::move(fault).withContext(pair_context);
        r.error = r.status.toString();
        r.diagnostics.error("evaluate", r.status);
        return r;
    }

    // Validate the application graph at the pipeline boundary: a
    // corrupt graph must be rejected here, not crash the mapper.
    if (Status s = ir::validate(app.graph); !s.ok()) {
        r.status = std::move(s).withContext(pair_context);
        r.error = r.status.toString();
        r.diagnostics.error("validate", r.status);
        return r;
    }

    // --- Artifact-cache lookup -------------------------------------
    // After the fault hook and validation so injected faults keep
    // their per-stage call ordinals and a corrupt graph is rejected
    // even when a stale entry exists for its fingerprint.
    std::string cache_key;
    if (options.cache != nullptr) {
        cache_key = evalCacheKey(app, variant, level, tech, options);
        if (auto hit = options.cache->get(cache_key)) {
            if (Result<EvalResult> cached = parseEvalResult(*hit);
                cached.ok()) {
                EvalResult out = std::move(cached).value();
                out.diagnostics.info(
                    "cache",
                    "evaluation served from artifact cache");
                return out;
            }
            // Format skew that slipped past the disk checksum:
            // recompute and overwrite on success.
        }
    }
    const auto memoize = [&](const EvalResult &ok_result) {
        if (options.cache != nullptr)
            options.cache->put(cache_key,
                               serializeEvalResult(ok_result));
    };

    // --- Compile: rewrite rules + instruction selection -----------
    if (Status s = options.deadline.check("instruction selection");
        !s.ok()) {
        r.status = std::move(s).withContext(pair_context);
        r.error = r.status.toString();
        r.diagnostics.error("deadline", r.status);
        return r;
    }
    pe::PeSpec spec = variant.spec; // mutable copy (pipelining)
    mapper::RewriteRuleSynthesizer synth(spec);
    const auto rules = synth.synthesizeLibrary(variant.patterns);
    mapper::InstructionSelector selector(rules);
    mapper::SelectionResult sel = selector.map(app.graph);
    if (!sel.success) {
        r.status = (sel.status.ok()
                        ? Status(ErrorCode::kMappingFailed, sel.error)
                        : sel.status)
                       .withContext(pair_context);
        r.error = "mapping failed: " + sel.error;
        r.diagnostics.error("map", r.status);
        return r;
    }

    // --- Post-mapping metrics --------------------------------------
    r.pe_count = sel.peCount();
    r.pe_area = spec.area(tech) * r.pe_count;

    const double invocations_per_item = 1.0 / app.items_per_cycle;
    double pe_energy_per_cycle = 0.0;
    for (const mapper::MappedNode &n : sel.mapped.nodes) {
        if (n.kind == MappedKind::kPe)
            pe_energy_per_cycle +=
                peInstanceEnergy(rules[n.rule], spec, tech);
    }
    r.pe_energy = pe_energy_per_cycle * invocations_per_item;

    // ASIC floor + FPGA comparator inputs.
    double raw_per_cycle = 0.0;
    int compute_nodes = 0;
    for (ir::NodeId id = 0; id < app.graph.size(); ++id) {
        const ir::Op op = app.graph.op(id);
        if (!ir::opIsCompute(op))
            continue;
        ++compute_nodes;
        raw_per_cycle +=
            model::blockCost(tech, model::blockClassOf(op)).energy;
    }
    const double frames_invocations =
        app.work_items_per_frame / app.items_per_cycle;
    r.raw_compute_energy_uj = raw_per_cycle * frames_invocations *
                              1e-6;
    r.op_events = static_cast<double>(compute_nodes) *
                  frames_invocations;

    // Timing of the unpipelined PE (informative at every level).
    const double unpipelined_period =
        pipeline::analyzeTiming(spec, tech).critical_path;
    r.period_ns = unpipelined_period;

    if (level == EvalLevel::kPostMapping) {
        r.success = true;
        memoize(r);
        return r;
    }

    // --- Optional pipelining (before PnR: registers must route) ----
    if (level == EvalLevel::kPostPipelining) {
        const auto pe_pipe = pipeline::pipelinePe(spec, tech);
        r.pipeline_stages = spec.pipeline_stages;
        r.period_ns = pe_pipe.period;
        const auto app_pipe = pipeline::pipelineApplication(
            &sel.mapped, spec.pipeline_stages, {});
        r.latency_cycles = app_pipe.max_latency;
    }

    // --- Place and route --------------------------------------------
    // Resilience ladder, cheapest remedy first: retry placement with
    // a derived seed, escalate routing tracks on congestion, then
    // grow the fabric.  Every attempt lands in r.diagnostics.
    int width = options.fabric_width;
    int height = options.fabric_height;
    cgra::PlacementResult placement;
    cgra::RouteResult routing;
    Status last_failure;
    bool pnr_ok = false;
    bool out_of_time = false;
    const int growths =
        options.auto_grow_fabric
            ? std::max(1, options.max_fabric_growths)
            : 1;
    const int seed_tries = std::max(1, options.place_retries);
    const int escalations =
        std::max(0, options.route_track_escalations);
    cgra::RouterOptions base_ropt;
    // The router's rip-up loop is the longest uninterruptible stretch
    // of the ladder, so it polls the deadline itself.
    base_ropt.deadline = options.deadline;

    for (int growth = 0; growth < growths && !pnr_ok; ++growth) {
        if (Status s = options.deadline.check(
                "fabric growth " + std::to_string(growth + 1));
            !s.ok()) {
            last_failure = std::move(s);
            r.diagnostics.error("deadline", last_failure,
                                r.pnr_attempts);
            out_of_time = true;
            break;
        }
        if (growth > 0) {
            if (growth % 2 == 1)
                height *= 2;
            else
                width *= 2;
            std::ostringstream os;
            os << "growing fabric to " << width << 'x' << height;
            r.diagnostics.info("place", os.str());
        }
        const cgra::Fabric fabric(width, height);
        for (int retry = 0; retry < seed_tries && !pnr_ok;
             ++retry) {
            if (Status s = options.deadline.check(
                    "placement attempt " +
                    std::to_string(r.pnr_attempts + 1));
                !s.ok()) {
                last_failure = std::move(s);
                r.diagnostics.error("deadline", last_failure,
                                    r.pnr_attempts);
                out_of_time = true;
                break;
            }
            cgra::PlacerOptions popt;
            popt.seed = options.placer_seed +
                        0x9E3779B9u * static_cast<unsigned>(retry);
            ++r.pnr_attempts;
            placement = cgra::place(fabric, sel.mapped, popt);
            if (!placement.success) {
                last_failure =
                    placement.status.ok()
                        ? Status(ErrorCode::kPlaceFailed,
                                 placement.error)
                        : placement.status;
                r.diagnostics.error("place", last_failure,
                                    r.pnr_attempts);
                // No seed conjures missing tiles: grow instead.
                if (last_failure.code() ==
                    ErrorCode::kBudgetExhausted)
                    break;
                continue;
            }
            if (r.pnr_attempts > 1)
                r.diagnostics.info("place", "placement succeeded",
                                   r.pnr_attempts);
            for (int esc = 0; esc <= escalations; ++esc) {
                cgra::RouterOptions ropt = base_ropt;
                ropt.tracks = base_ropt.tracks + 2 * esc;
                if (esc > 0)
                    telemetry::counter(
                        "apex.route.track_escalations")
                        .add(1);
                routing = cgra::route(fabric, placement, ropt);
                if (routing.success) {
                    if (esc > 0) {
                        std::ostringstream os;
                        os << "routing succeeded with "
                           << ropt.tracks
                           << " tracks (escalation " << esc << ")";
                        r.diagnostics.info("route", os.str(),
                                           r.pnr_attempts);
                    }
                    pnr_ok = true;
                    break;
                }
                last_failure =
                    routing.status.ok()
                        ? Status(ErrorCode::kRouteFailed,
                                 routing.error)
                        : routing.status;
                r.diagnostics.error("route", last_failure,
                                    r.pnr_attempts);
                // A timed-out route will not improve with more
                // tracks: stop the whole ladder.
                if (last_failure.code() == ErrorCode::kTimeout) {
                    out_of_time = true;
                    break;
                }
            }
            if (out_of_time)
                break;
        }
        if (out_of_time)
            break;
    }
    if (!pnr_ok) {
        std::ostringstream os;
        os << "place-and-route (" << r.pnr_attempts
           << " placement attempt(s), final fabric " << width << 'x'
           << height << ")";
        r.status = std::move(last_failure)
                       .withContext(os.str())
                       .withContext(pair_context);
        r.error = "place-and-route failed: " + r.status.message();
        return r;
    }
    r.fabric_width = width;
    r.fabric_height = height;

    // Application-level static timing.  Pre-pipelining, unpipelined
    // PEs chain combinationally through unregistered interconnect —
    // only explicit registers (window regs, memories, RF FIFOs, IO)
    // break the path; this is what the paper's 6.9x-12.5x
    // post-pipelining speedups are measured against.  Post-
    // pipelining, PEs are staged and every SB track is registered.
    if (level == EvalLevel::kPostPipelining) {
        r.period_ns = std::max(
            r.period_ns, tech.sb_hop_delay + tech.reg_setup_delay);
    } else {
        const double pe_delay =
            unpipelined_period - tech.reg_setup_delay;
        std::vector<std::vector<int>> in_edges(
            sel.mapped.nodes.size());
        for (std::size_t e = 0; e < placement.edges.size(); ++e)
            in_edges[placement.edges[e].dst].push_back(
                static_cast<int>(e));
        std::vector<double> arrival(sel.mapped.nodes.size(), 0.0);
        double worst = unpipelined_period;
        for (int id : sel.mapped.topoOrder()) {
            if (!cgra::isPlaceable(sel.mapped.nodes[id].kind))
                continue;
            double in_arrival = 0.0;
            for (int e : in_edges[id]) {
                const auto &edge = placement.edges[e];
                const double wire =
                    routing.paths[e].size() * tech.sb_hop_delay;
                // A registered edge launches from its last register.
                const double from =
                    edge.regs > 0
                        ? wire * 0.5
                        : arrival[edge.src] + wire;
                in_arrival = std::max(in_arrival, from);
            }
            const bool is_pe =
                sel.mapped.nodes[id].kind == MappedKind::kPe;
            arrival[id] = is_pe ? in_arrival + pe_delay : 0.0;
            worst = std::max(worst,
                             in_arrival + (is_pe ? pe_delay : 0.0) +
                                 tech.reg_setup_delay);
        }
        r.period_ns = worst;
    }

    const cgra::Fabric fabric(width, height);
    r.util = cgra::utilizationOf(fabric, sel.mapped, placement,
                                 routing);

    // --- Post-PnR area ----------------------------------------------
    const int rf_tiles =
        sel.mapped.count(MappedKind::kRegFile);
    const int sb_tiles = r.util.pes + r.util.mems + rf_tiles +
                         r.util.routing_tiles;
    r.sb_area = sb_tiles * tech.sb_area;
    r.cb_area =
        r.pe_count * (static_cast<double>(spec.word_inputs.size()) *
                          tech.cb_area_per_input +
                      static_cast<double>(spec.bit_inputs.size()) *
                          tech.cb_area_per_input_bit) +
        (r.util.mems + rf_tiles) * tech.cb_area_per_input;
    r.mem_area = r.util.mems * tech.mem_tile_area;
    const double rf_area = rf_tiles * tech.rf_area;
    r.cgra_area =
        r.pe_area + rf_area + r.sb_area + r.cb_area + r.mem_area;

    // --- Post-PnR energy (per output item) ---------------------------
    r.sb_energy = routing.total_hops * tech.sb_energy_per_hop *
                  invocations_per_item;
    r.cb_energy = static_cast<double>(placement.edges.size()) *
                  tech.cb_energy * invocations_per_item;
    r.mem_energy = r.util.mems * tech.mem_energy_access *
                   invocations_per_item;
    const double reg_energy =
        (r.util.regs * tech.pipe_reg_energy +
         r.util.rf_entries * tech.pipe_reg_energy * 0.4) *
        invocations_per_item;
    r.cgra_energy = r.pe_energy + r.sb_energy + r.cb_energy +
                    r.mem_energy + reg_energy;

    // --- Performance --------------------------------------------------
    const double cycles = frames_invocations + r.latency_cycles;
    r.runtime_ms = cycles * r.period_ns * 1e-6;
    const double area_mm2 = r.cgra_area * 1e-6;
    if (r.runtime_ms > 0.0 && area_mm2 > 0.0) {
        r.frames_per_ms_mm2 = 1.0 / (r.runtime_ms * area_mm2);
        r.perf_per_mm2 =
            r.frames_per_ms_mm2 * app.work_items_per_frame;
    }
    r.total_energy_uj =
        r.cgra_energy * app.work_items_per_frame * 1e-6;

    r.success = true;
    memoize(r);
    return r;
}

PeVariant
bestSpecializedVariant(const apps::AppInfo &app,
                       const Explorer &explorer,
                       const model::TechModel &tech,
                       runtime::ThreadPool *pool,
                       const EvalOptions &options)
{
    const int max_k = explorer.options().max_merged_subgraphs;
    auto score = [&](const PeVariant &v) {
        const EvalResult r =
            evaluate(app, v, EvalLevel::kPostMapping, tech,
                     options);
        return r.success ? r.pe_area * r.pe_energy : 1e300;
    };

    PeVariant best;
    if (pool != nullptr && pool->parallelism() > 1) {
        // Speculative parallel scan: build and score every candidate
        // k concurrently (k = 0 is the subset PE), then replay the
        // sequential stopping rule over the score sequence.  Each
        // score depends only on its own candidate, so the selected
        // variant is identical to the sequential walk; work past the
        // stopping point is wasted but off the critical path.
        std::vector<PeVariant> candidates(
            static_cast<std::size_t>(max_k) + 1);
        std::vector<double> scores(candidates.size(), 1e300);
        runtime::parallelFor(
            pool, static_cast<int>(candidates.size()), [&](int k) {
                candidates[k] = k == 0
                                    ? explorer.subsetVariant(app)
                                    : explorer.specializedVariant(
                                          app, k);
                scores[k] = score(candidates[k]);
            });
        std::size_t best_k = 0;
        for (std::size_t k = 1; k < candidates.size(); ++k) {
            if (scores[k] >= scores[best_k])
                break; // merging more subgraphs stopped paying off
            best_k = k;
        }
        best = std::move(candidates[best_k]);
    } else {
        best = explorer.subsetVariant(app);
        double best_score = score(best);
        for (int k = 1; k <= max_k; ++k) {
            PeVariant candidate =
                explorer.specializedVariant(app, k);
            const double s = score(candidate);
            if (s >= best_score)
                break; // merging more subgraphs stopped paying off
            best_score = s;
            best = std::move(candidate);
        }
    }
    best.name = "pe_spec_" + app.name;
    best.spec.name = best.name;
    return best;
}

} // namespace apex::core
