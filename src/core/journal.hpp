#ifndef APEX_CORE_JOURNAL_H_
#define APEX_CORE_JOURNAL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/status.hpp"
#include "runtime/record.hpp"

/**
 * @file
 * Crash-safe write-ahead journal for DSE sweeps.
 *
 * A sweep over many (application, PE variant) cells can run for
 * hours; a crash — OOM kill, power loss, a SIGKILLed CI job — used to
 * throw all of it away.  The journal makes sweeps durable: every
 * completed unit of work (one variant-construction outcome per app,
 * one evaluation outcome per cell) is appended to an append-only,
 * checksummed record log (runtime/record.hpp) under the cache
 * directory *before* the sweep moves on.  `apexc sweep --resume`
 * replays the journal and re-evaluates only the missing cells; the
 * assembled ExplorationReport is byte-identical to an uninterrupted
 * run — the same contract the parallel runtime gives `--jobs`.
 *
 * The header record carries a fingerprint of everything that shapes
 * the sweep (level, recipe flags, eval knobs, tech model, explorer
 * configuration, application set).  A resume against a journal with a
 * different fingerprint silently starts fresh — replaying cells of a
 * different configuration would poison the report.
 *
 * Records are keyed by (app index, cell index), so the append order —
 * which varies across job counts — does not matter for replay.
 * Appends are crash points for the fault injector
 * (APEX_FAULT="crash:N" kills the process at the Nth append), which
 * is how the kill -9 durability path stays rehearsable in tests and
 * CI.
 */

namespace apex::core {

/** Recipe cells per app (mirrors sweep.cpp's RecipeCell). */
inline constexpr int kJournalCellsPerApp = 3;

/** Journal for one sweep; all methods are safe to call when open()
 * failed (appends become no-ops).  A *write* failure mid-run is a
 * different story: the log on disk is now missing outcomes, so a
 * later --resume would silently re-run (or worse, mis-assemble) work
 * the user believes is checkpointed.  The record log latches the
 * failure (lastError()); runSweep checks it after assembly and fails
 * the sweep loudly with kResourceExhausted (exit 17) instead of
 * finishing with an unreplayable log — see DESIGN.md Sec. 7h. */
class SweepJournal {
  public:
    /** Outcome of one app's variant-construction task. */
    struct CellInfo {
        bool has_variant = false; ///< Recipe produced this cell.
        std::string variant;      ///< Variant name.
        int non_optimal_merges = 0;
        int merge_timeouts = 0;
        int mine_capped_levels = 0; ///< Mining levels truncated at
                                    ///< max_patterns_per_level.
    };
    struct AppRecord {
        int app = -1;
        Status validate_status; ///< Non-ok => whole app skipped.
        bool spec_failed = false;
        std::string spec_name;
        Status spec_status;
        std::array<CellInfo, kJournalCellsPerApp> cells;
    };

    /** Outcome of one (app, cell) evaluation. */
    struct CellRecord {
        int app = -1;
        int cell = -1;
        std::string variant;
        EvalResult result; ///< Success payload or failure status,
                           ///< diagnostics included either way.
    };

    SweepJournal() = default;
    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Open (and with @p resume, replay) the journal at
     * @p dir/sweep.journal.  @p fingerprint must cover every input
     * that shapes the sweep; a mismatching or schema-skewed prior
     * journal is restarted fresh.  A non-ok return means journaling
     * is unavailable (the sweep still runs, undurably).
     */
    Status open(const std::string &dir, std::uint64_t fingerprint,
                std::size_t app_count, bool resume);

    /** True when appends will reach disk. */
    bool active() const;

    /** The write failure that stopped journaling (ok while healthy).
     * Latched by the underlying record log on the first failed
     * append; once set, the log is closed and truncated back to its
     * last good frame. */
    Status lastError() const;

    /** Cells replayed from a prior run (0 unless resume matched). */
    int replayedCells() const { return replayed_cells_; }

    /** Replayed app record for @p app, or null. */
    const AppRecord *appRecord(std::size_t app) const;

    /** Replayed cell record, or null. */
    const CellRecord *cellRecord(std::size_t app, int cell) const;

    /**
     * Encode/decode one CellRecord as the exact payload bytes the
     * journal appends.  Shared with the process-isolation worker
     * protocol (core/sweep.cpp --isolate=process): a worker's
     * response *is* a journalable cell record, so the supervisor
     * checkpoints exactly what it received — checksummed end to end.
     */
    static std::string
    encodeCellRecordPayload(const CellRecord &rec);
    static bool decodeCellRecordPayload(const std::string &payload,
                                        CellRecord *out);

    /** Append one completed build outcome.  Crash point. */
    void appendApp(const AppRecord &rec);

    /** Append one completed evaluation.  Crash point. Thread-safe. */
    void appendCell(const CellRecord &rec);

  private:
    std::unique_ptr<runtime::RecordLog> log_;
    std::vector<std::optional<AppRecord>> apps_;
    std::vector<std::array<std::optional<CellRecord>,
                           kJournalCellsPerApp>>
        cells_;
    int replayed_cells_ = 0;
};

} // namespace apex::core

#endif // APEX_CORE_JOURNAL_H_
