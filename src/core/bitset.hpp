#ifndef APEX_CORE_BITSET_H_
#define APEX_CORE_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

/**
 * @file
 * Dense bitset substrate for the combinatorial kernels (clique search,
 * MIS, isomorphism candidate filtering, router tables).
 *
 * The hot inner loops of those kernels are set intersections and
 * membership tests over vertex sets of a few dozen to a few thousand
 * elements.  A 64-bit word array turns each of those into word-
 * parallel AND/ANDNOT plus popcount, and `forEach` iterates set bits
 * in ascending index order with countr_zero — the ascending order is
 * load-bearing: every kernel's determinism contract ties its
 * tie-breaking to ascending-index iteration.
 *
 * Two layers are provided:
 *  - DenseBitset: an owning fixed-universe set with the usual
 *    set/reset/test/count/intersect operations.
 *  - BitsetMatrix: n rows of equal width stored contiguously (row =
 *    adjacency of one vertex), so a branch-and-bound can intersect a
 *    candidate row against an adjacency row without touching per-node
 *    heap allocations.
 */

namespace apex::core {

namespace bitset_detail {
inline constexpr std::size_t kWordBits = 64;

inline std::size_t
wordsFor(std::size_t bits)
{
    return (bits + kWordBits - 1) / kWordBits;
}

/** Apply @p fn to every set bit of words[0..words_n), ascending. */
template <typename Fn>
inline void
forEachWord(const std::uint64_t *words, std::size_t words_n, Fn &&fn)
{
    for (std::size_t w = 0; w < words_n; ++w) {
        std::uint64_t word = words[w];
        while (word) {
            const int b = std::countr_zero(word);
            fn(static_cast<int>(w * kWordBits + b));
            word &= word - 1;
        }
    }
}

inline bool
anyWord(const std::uint64_t *words, std::size_t words_n)
{
    for (std::size_t w = 0; w < words_n; ++w)
        if (words[w])
            return true;
    return false;
}

inline std::size_t
countWords(const std::uint64_t *words, std::size_t words_n)
{
    std::size_t c = 0;
    for (std::size_t w = 0; w < words_n; ++w)
        c += static_cast<std::size_t>(std::popcount(words[w]));
    return c;
}
} // namespace bitset_detail

/** Owning fixed-universe dense bitset. */
class DenseBitset {
  public:
    DenseBitset() = default;
    explicit DenseBitset(std::size_t bits)
        : bits_(bits), words_(bitset_detail::wordsFor(bits), 0) {}

    std::size_t universe() const { return bits_; }
    std::size_t words() const { return words_.size(); }
    std::uint64_t *data() { return words_.data(); }
    const std::uint64_t *data() const { return words_.data(); }

    void set(std::size_t i) { words_[i >> 6] |= 1ull << (i & 63); }
    void reset(std::size_t i) { words_[i >> 6] &= ~(1ull << (i & 63)); }
    bool test(std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void setAll()
    {
        for (auto &w : words_)
            w = ~0ull;
        trim();
    }
    void clear()
    {
        for (auto &w : words_)
            w = 0;
    }

    bool any() const
    {
        return bitset_detail::anyWord(words_.data(), words_.size());
    }
    bool none() const { return !any(); }
    std::size_t count() const
    {
        return bitset_detail::countWords(words_.data(), words_.size());
    }

    /** this &= other (universes must match). */
    DenseBitset &operator&=(const DenseBitset &o)
    {
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] &= o.words_[w];
        return *this;
    }
    /** this &= ~other. */
    DenseBitset &andNot(const DenseBitset &o)
    {
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] &= ~o.words_[w];
        return *this;
    }
    DenseBitset &operator|=(const DenseBitset &o)
    {
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] |= o.words_[w];
        return *this;
    }

    /** True when this and @p o share no set bit. */
    bool disjoint(const DenseBitset &o) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w)
            if (words_[w] & o.words_[w])
                return false;
        return true;
    }

    /** Visit set bits in ascending index order. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        bitset_detail::forEachWord(words_.data(), words_.size(),
                                   static_cast<Fn &&>(fn));
    }

  private:
    /** Zero the tail bits past the universe after whole-word fills. */
    void trim()
    {
        const std::size_t tail = bits_ & 63;
        if (tail && !words_.empty())
            words_.back() &= (1ull << tail) - 1;
    }

    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

/**
 * n rows of a fixed-width bitset stored contiguously.  Row r is the
 * word range [r*rowWords(), (r+1)*rowWords()); kernels use it both for
 * adjacency matrices (row = neighbours of vertex r) and as a per-depth
 * candidate-set pool (row = candidate set at recursion depth r).
 */
class BitsetMatrix {
  public:
    BitsetMatrix() = default;
    BitsetMatrix(std::size_t rows, std::size_t bits)
        : bits_(bits), row_words_(bitset_detail::wordsFor(bits)),
          words_(rows * row_words_, 0) {}

    std::size_t rowWords() const { return row_words_; }
    std::size_t rows() const
    {
        return row_words_ ? words_.size() / row_words_ : 0;
    }

    std::uint64_t *row(std::size_t r)
    {
        return words_.data() + r * row_words_;
    }
    const std::uint64_t *row(std::size_t r) const
    {
        return words_.data() + r * row_words_;
    }

    /** Grow to at least @p rows rows (existing rows preserved). */
    void ensureRows(std::size_t rows)
    {
        if (rows * row_words_ > words_.size())
            words_.resize(rows * row_words_, 0);
    }

    void set(std::size_t r, std::size_t i)
    {
        row(r)[i >> 6] |= 1ull << (i & 63);
    }
    bool test(std::size_t r, std::size_t i) const
    {
        return (row(r)[i >> 6] >> (i & 63)) & 1;
    }
    void clearRow(std::size_t r)
    {
        std::uint64_t *w = row(r);
        for (std::size_t k = 0; k < row_words_; ++k)
            w[k] = 0;
    }

    /** dst row = a row & b row (rows of this matrix). */
    void intersectRows(std::size_t dst, std::size_t a, std::size_t b)
    {
        std::uint64_t *d = row(dst);
        const std::uint64_t *pa = row(a), *pb = row(b);
        for (std::size_t k = 0; k < row_words_; ++k)
            d[k] = pa[k] & pb[k];
    }

    bool rowAny(std::size_t r) const
    {
        return bitset_detail::anyWord(row(r), row_words_);
    }
    std::size_t rowCount(std::size_t r) const
    {
        return bitset_detail::countWords(row(r), row_words_);
    }

    template <typename Fn>
    void forEachInRow(std::size_t r, Fn &&fn) const
    {
        bitset_detail::forEachWord(row(r), row_words_,
                                   static_cast<Fn &&>(fn));
    }

  private:
    std::size_t bits_ = 0;
    std::size_t row_words_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace apex::core

#endif // APEX_CORE_BITSET_H_
