#include "core/journal.hpp"

#include <cstdio>
#include <sstream>

#include "core/encoding.hpp"
#include "core/fault.hpp"
#include "runtime/telemetry.hpp"

namespace apex::core {

namespace {

// Payload primitives (length-prefixed strings, Status, Diagnostics)
// are shared with the worker-pool and service protocols — see
// core/encoding.hpp.
using namespace enc;

constexpr std::string_view kJournalMagic = "apexsweep";
// Version 2: AppRecord cells carry mine_capped_levels.  A version
// mismatch is a fingerprint mismatch: the old journal is ignored and
// the sweep restarts from scratch (never mis-decoded).
constexpr int kJournalVersion = 2;

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

// --- record payloads -------------------------------------------------

std::string
encodeHeader(std::uint64_t fingerprint, std::size_t app_count)
{
    std::ostringstream os;
    os << "fp " << hex64(fingerprint) << "\napps " << app_count
       << '\n';
    return os.str();
}

bool
headerMatches(const runtime::FramedRecord &rec,
              std::uint64_t fingerprint, std::size_t app_count)
{
    return rec.type == "sweep" &&
           rec.payload == encodeHeader(fingerprint, app_count);
}

std::string
encodeApp(const SweepJournal::AppRecord &rec)
{
    std::ostringstream os;
    os << rec.app << '\n';
    putStatus(os, rec.validate_status);
    os << (rec.spec_failed ? 1 : 0) << '\n';
    putStr(os, rec.spec_name);
    putStatus(os, rec.spec_status);
    for (const SweepJournal::CellInfo &c : rec.cells) {
        os << (c.has_variant ? 1 : 0) << ' ' << c.non_optimal_merges
           << ' ' << c.merge_timeouts << ' ' << c.mine_capped_levels
           << '\n';
        putStr(os, c.variant);
    }
    return os.str();
}

bool
decodeApp(const std::string &payload, SweepJournal::AppRecord *out)
{
    std::istringstream is(payload);
    if (!(is >> out->app))
        return false;
    is.get();
    if (!getStatus(is, &out->validate_status))
        return false;
    int spec_failed = 0;
    if (!(is >> spec_failed))
        return false;
    is.get();
    out->spec_failed = spec_failed != 0;
    if (!getStr(is, &out->spec_name))
        return false;
    if (!getStatus(is, &out->spec_status))
        return false;
    for (SweepJournal::CellInfo &c : out->cells) {
        int has = 0;
        if (!(is >> has >> c.non_optimal_merges >> c.merge_timeouts >>
              c.mine_capped_levels))
            return false;
        is.get();
        c.has_variant = has != 0;
        if (!getStr(is, &c.variant))
            return false;
    }
    return true;
}

std::string
encodeCell(const SweepJournal::CellRecord &rec)
{
    const EvalResult &r = rec.result;
    std::ostringstream os;
    os << rec.app << ' ' << rec.cell << '\n';
    putStr(os, rec.variant);
    os << (r.success ? 1 : 0) << ' ' << r.pnr_attempts << ' '
       << (r.degraded ? 1 : 0) << '\n';
    putStatus(os, r.status);
    putStr(os, r.error);
    if (r.success)
        putStr(os, serializeEvalResult(r));
    putDiagnostics(os, r.diagnostics);
    return os.str();
}

bool
decodeCell(const std::string &payload, SweepJournal::CellRecord *out)
{
    std::istringstream is(payload);
    if (!(is >> out->app >> out->cell))
        return false;
    is.get();
    if (!getStr(is, &out->variant))
        return false;
    int success = 0;
    int degraded = 0;
    EvalResult r;
    if (!(is >> success >> r.pnr_attempts >> degraded))
        return false;
    is.get();
    r.degraded = degraded != 0;
    if (!getStatus(is, &r.status))
        return false;
    if (!getStr(is, &r.error))
        return false;
    if (success != 0) {
        std::string blob;
        if (!getStr(is, &blob))
            return false;
        Result<EvalResult> parsed = parseEvalResult(blob);
        if (!parsed.ok())
            return false;
        r = std::move(parsed).value();
    }
    if (!getDiagnostics(is, &r.diagnostics))
        return false;
    out->result = std::move(r);
    return true;
}

} // namespace

std::string
SweepJournal::encodeCellRecordPayload(const CellRecord &rec)
{
    return encodeCell(rec);
}

bool
SweepJournal::decodeCellRecordPayload(const std::string &payload,
                                      CellRecord *out)
{
    return decodeCell(payload, out);
}

Status
SweepJournal::open(const std::string &dir, std::uint64_t fingerprint,
                   std::size_t app_count, bool resume)
{
    log_.reset();
    apps_.assign(app_count, std::nullopt);
    cells_.assign(app_count, {});
    replayed_cells_ = 0;

    const std::string path = dir + "/sweep.journal";
    auto log = std::make_unique<runtime::RecordLog>();
    APEX_RETURN_IF_ERROR(
        log->open(path, kJournalMagic, kJournalVersion, resume));

    bool need_header = true;
    if (resume && !log->records().empty()) {
        APEX_SPAN("journal.replay");
        const auto &records = log->records();
        if (headerMatches(records.front(), fingerprint, app_count)) {
            need_header = false;
            for (std::size_t i = 1; i < records.size(); ++i) {
                const runtime::FramedRecord &rec = records[i];
                if (rec.type == "app") {
                    AppRecord app;
                    if (decodeApp(rec.payload, &app) && app.app >= 0 &&
                        static_cast<std::size_t>(app.app) < app_count)
                        apps_[app.app] = std::move(app);
                } else if (rec.type == "cell") {
                    CellRecord cell;
                    if (decodeCell(rec.payload, &cell) &&
                        cell.app >= 0 &&
                        static_cast<std::size_t>(cell.app) <
                            app_count &&
                        cell.cell >= 0 &&
                        cell.cell < kJournalCellsPerApp) {
                        auto &slot = cells_[cell.app][cell.cell];
                        if (!slot.has_value()) {
                            ++replayed_cells_;
                            telemetry::counter(
                                "apex.journal.replayed_cells")
                                .add(1);
                        }
                        slot = std::move(cell);
                    }
                }
            }
        } else {
            // A prior journal for a *different* sweep configuration:
            // replaying its cells would poison the report.  Close the
            // recovered handle and restart the log empty.
            log.reset();
            log = std::make_unique<runtime::RecordLog>();
            APEX_RETURN_IF_ERROR(log->open(path, kJournalMagic,
                                           kJournalVersion, false));
        }
    }
    if (need_header)
        APEX_RETURN_IF_ERROR(
            log->append("sweep", encodeHeader(fingerprint, app_count)));
    log_ = std::move(log);
    return Status::okStatus();
}

bool
SweepJournal::active() const
{
    return log_ != nullptr && log_->active();
}

Status
SweepJournal::lastError() const
{
    return log_ != nullptr ? log_->lastError() : Status::okStatus();
}

const SweepJournal::AppRecord *
SweepJournal::appRecord(std::size_t app) const
{
    if (app >= apps_.size() || !apps_[app].has_value())
        return nullptr;
    return &*apps_[app];
}

const SweepJournal::CellRecord *
SweepJournal::cellRecord(std::size_t app, int cell) const
{
    if (app >= cells_.size() || cell < 0 ||
        cell >= kJournalCellsPerApp ||
        !cells_[app][cell].has_value())
        return nullptr;
    return &*cells_[app][cell];
}

void
SweepJournal::appendApp(const AppRecord &rec)
{
    if (!active())
        return;
    APEX_SPAN("journal.append", {{"kind", "app"}});
    // A failed append latches in the record log (lastError()) and
    // deactivates it; later appends no-op and the sweep reports the
    // failure loudly after assembly.
    if (log_->append("app", encodeApp(rec)).ok())
        telemetry::counter("apex.journal.appends").add(1);
    crashPoint();
}

void
SweepJournal::appendCell(const CellRecord &rec)
{
    if (!active())
        return;
    APEX_SPAN("journal.append", {{"kind", "cell"}});
    if (log_->append("cell", encodeCell(rec)).ok())
        telemetry::counter("apex.journal.appends").add(1);
    crashPoint();
}

} // namespace apex::core
