#ifndef APEX_CORE_HETERO_H_
#define APEX_CORE_HETERO_H_

#include <string>
#include <vector>

#include "core/evaluate.hpp"

/**
 * @file
 * Heterogeneous-CGRA extension.
 *
 * The paper's CGRAs are homogeneous ("within one CGRA all PE tiles
 * are identical") and its related-work section contrasts with REVAMP,
 * which realizes heterogeneous fabrics.  This module implements that
 * natural extension on top of the APEX flow: several PE variants
 * coexist in one fabric (PE tile pools interleaved by type), a
 * combined rewrite-rule library lets instruction selection choose the
 * cheapest PE that executes each pattern, and evaluation accounts
 * area/energy per tile type.
 *
 * Evaluation levels: post-mapping and post-PnR (pipelining a
 * heterogeneous fabric would need per-type latency balancing and is
 * out of scope — documented in DESIGN.md).
 */

namespace apex::core {

/** A heterogeneous CGRA: one PE variant per tile type. */
struct HeteroCgra {
    std::string name;
    std::vector<PeVariant> types; ///< PE variant per tile type.
};

/** Evaluation record for a heterogeneous fabric. */
struct HeteroEvalResult {
    bool success = false;
    std::string error; ///< Legacy mirror of status (when failed).
    Status status;     ///< Typed outcome.

    std::vector<int> pe_count_by_type; ///< PE instances per type.
    int pe_count = 0;                  ///< Total PE instances.
    double pe_area = 0.0;              ///< Sum over typed instances.
    double pe_energy = 0.0;            ///< pJ per output item.

    // Post-PnR (zero when level == kPostMapping).
    int fabric_width = 0;
    int fabric_height = 0;
    double cgra_area = 0.0;
    double cgra_energy = 0.0;
    cgra::Utilization util;
};

/**
 * Map and evaluate @p app on the heterogeneous fabric.
 *
 * @param level  kPostMapping or kPostPnr.
 */
HeteroEvalResult evaluateHetero(const apps::AppInfo &app,
                                const HeteroCgra &cgra,
                                EvalLevel level,
                                const model::TechModel &tech,
                                const EvalOptions &options = {});

/**
 * Convenience constructor for the canonical two-type fabric: a
 * domain-specialized PE plus a minimal scalar PE (adder/logic only)
 * that absorbs the cheap single-op work.
 */
HeteroCgra makeBigLittleCgra(const PeVariant &big,
                             const std::string &name);

} // namespace apex::core

#endif // APEX_CORE_HETERO_H_
