#ifndef APEX_CORE_DEADLINE_H_
#define APEX_CORE_DEADLINE_H_

#include <chrono>
#include <string>

#include "core/status.hpp"

/**
 * @file
 * Wall-clock deadlines for the DSE pipeline.
 *
 * The exponential corners of the flow — the clique search, WL
 * canonicalization, the router's rip-up iterations, the sweep itself —
 * were historically bounded only by node budgets (or not at all), so
 * a pathological instance could stall a sweep for hours.  A Deadline
 * is an absolute point on the steady clock that those loops poll
 * cooperatively; expiry produces a real ErrorCode::kTimeout Status
 * (via check()) instead of a hang, and callers degrade to a cheaper
 * path or record the cell as timed out.
 *
 * A default-constructed Deadline is infinite (never expires), so
 * threading one through an API is free for callers that do not set
 * budgets.  Deadlines compose with earliest(): a per-cell deadline
 * never outlives the sweep deadline.
 *
 * Testability: expired() consults the fault injector's clock-skew
 * stage (APEX_FAULT="clock:N"), so a test can make the Nth deadline
 * poll observe a skewed clock and take the timeout path
 * deterministically, without sleeping.
 */

namespace apex {

/** Absolute wall-clock budget polled by long-running stages. */
class Deadline {
  public:
    using Clock = std::chrono::steady_clock;

    /** Infinite: never expires. */
    Deadline() = default;

    static Deadline infinite() { return {}; }

    /** Expires @p ms milliseconds from now (<= 0: already expired). */
    static Deadline after(double ms);

    /** Expires at @p when. */
    static Deadline at(Clock::time_point when);

    bool isInfinite() const { return !finite_; }

    /**
     * True once the budget is exhausted.  A finite deadline also
     * expires when the fault injector's clock-skew stage fires on
     * this poll (deterministic timeout testing).
     */
    bool expired() const;

    /** Milliseconds left; negative when expired, +inf when infinite. */
    double remainingMs() const;

    /**
     * Ok while time remains; Status(kTimeout, "deadline expired
     * before <what>") once expired.  The message carries no clock
     * readings so journaled reports replay byte-identically.
     */
    Status check(std::string_view what) const;

    /** The tighter of two deadlines. */
    static Deadline earliest(const Deadline &a, const Deadline &b);

  private:
    bool finite_ = false;
    Clock::time_point at_{};
};

} // namespace apex

#endif // APEX_CORE_DEADLINE_H_
