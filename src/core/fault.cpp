#include "core/fault.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/telemetry.hpp"

namespace apex {

namespace {

constexpr std::array<std::string_view, kNumFaultStages> kStageNames = {
    "deserialize", "validate",    "mine",        "merge",
    "map",         "place",       "route",       "evaluate",
    "crash",       "clock",       "worker_kill", "worker_hang",
    "worker_garbage", "disk_full", "accept_emfile",
};

} // namespace

std::string_view
faultStageName(FaultStage stage)
{
    const int i = static_cast<int>(stage);
    if (i < 0 || i >= kNumFaultStages)
        return "unknown";
    return kStageNames[i];
}

std::optional<FaultStage>
faultStageFromName(std::string_view name)
{
    for (int i = 0; i < kNumFaultStages; ++i)
        if (kStageNames[i] == name)
            return static_cast<FaultStage>(i);
    return std::nullopt;
}

ErrorCode
faultErrorCode(FaultStage stage)
{
    switch (stage) {
      case FaultStage::kDeserialize: return ErrorCode::kParseError;
      case FaultStage::kValidate:    return ErrorCode::kInvalidIr;
      case FaultStage::kMine:        return ErrorCode::kMiningFailed;
      case FaultStage::kMerge:       return ErrorCode::kMergeInfeasible;
      case FaultStage::kMap:         return ErrorCode::kMappingFailed;
      case FaultStage::kPlace:       return ErrorCode::kPlaceFailed;
      case FaultStage::kRoute:       return ErrorCode::kRouteFailed;
      case FaultStage::kEvaluate:    return ErrorCode::kEvaluationFailed;
      case FaultStage::kClockSkew:   return ErrorCode::kTimeout;
      case FaultStage::kWorkerKill:
      case FaultStage::kWorkerHang:
      case FaultStage::kWorkerGarbage:
          return ErrorCode::kWorkerCrashed;
      case FaultStage::kDiskFull:
          return ErrorCode::kResourceExhausted;
      case FaultStage::kAcceptEmfile:
          return ErrorCode::kUnavailable;
      default:                       return ErrorCode::kInternal;
    }
}

FaultInjector::FaultInjector()
{
    if (const char *spec = std::getenv("APEX_FAULT")) {
        if (const Status s = configure(spec); !s.ok())
            std::fprintf(stderr, "apex: ignoring APEX_FAULT: %s\n",
                         s.toString().c_str());
    }
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

Status
FaultInjector::configure(std::string_view spec)
{
    // Parse fully before arming so a bad spec leaves state untouched.
    struct Arm { FaultStage stage; int from; int count; };
    std::vector<Arm> arms;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string_view::npos)
            end = spec.size();
        const std::string_view entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;

        const std::size_t colon = entry.find(':');
        if (colon == std::string_view::npos)
            return Status(ErrorCode::kInvalidArgument,
                          "fault spec entry '" + std::string(entry) +
                              "' is missing ':N'");
        const auto stage = faultStageFromName(entry.substr(0, colon));
        if (!stage)
            return Status(ErrorCode::kInvalidArgument,
                          "unknown fault stage '" +
                              std::string(entry.substr(0, colon)) +
                              "'");
        int nth = 0, count = 1;
        char sep = 0;
        std::istringstream is{std::string(entry.substr(colon + 1))};
        if (!(is >> nth) || nth < 1)
            return Status(ErrorCode::kInvalidArgument,
                          "bad call ordinal in '" + std::string(entry) +
                              "'");
        if (is >> sep) {
            if (sep != ':' || !(is >> count) || count < 1)
                return Status(ErrorCode::kInvalidArgument,
                              "bad count in '" + std::string(entry) +
                                  "'");
        }
        arms.push_back({*stage, nth, count});
    }
    for (const Arm &a : arms)
        arm(a.stage, a.from, a.count);
    return Status::okStatus();
}

void
FaultInjector::arm(FaultStage stage, int nth_call, int count)
{
    const int i = static_cast<int>(stage);
    // Count before threshold: a concurrent onCall that sees the new
    // fail_from_ must also see the matching fail_count_.
    fail_count_[i].store(count, std::memory_order_relaxed);
    fail_from_[i].store(nth_call, std::memory_order_release);
}

void
FaultInjector::reset()
{
    for (int i = 0; i < kNumFaultStages; ++i) {
        fail_from_[i].store(0, std::memory_order_release);
        fail_count_[i].store(0, std::memory_order_relaxed);
        calls_[i].store(0, std::memory_order_relaxed);
    }
}

Status
FaultInjector::onCall(FaultStage stage)
{
    const int i = static_cast<int>(stage);
    // fetch_add hands every concurrent caller a unique ordinal, so an
    // armed window [from, from + count) fires on exactly `count`
    // calls even when stages run on many threads.
    const int n = calls_[i].fetch_add(1, std::memory_order_relaxed) + 1;
    const int from = fail_from_[i].load(std::memory_order_acquire);
    if (from > 0 && n >= from &&
        n < from + fail_count_[i].load(std::memory_order_relaxed)) {
        telemetry::counter("apex.fault.injected").add(1);
        std::ostringstream os;
        os << "injected fault at stage '" << faultStageName(stage)
           << "' (call " << n << ")";
        return Status(faultErrorCode(stage), os.str());
    }
    return Status::okStatus();
}

int
FaultInjector::callCount(FaultStage stage) const
{
    return calls_[static_cast<int>(stage)].load(
        std::memory_order_relaxed);
}

bool
FaultInjector::armed() const
{
    for (int i = 0; i < kNumFaultStages; ++i)
        if (fail_from_[i].load(std::memory_order_acquire) > 0)
            return true;
    return false;
}

void
crashPoint()
{
    if (checkFault(FaultStage::kCrash).ok())
        return;
    // Die the way kill -9 does: no atexit handlers, no destructors,
    // no stream flushes.  raise(SIGKILL) is uncatchable; _Exit(137)
    // (128 + SIGKILL) is the fallback if raising somehow returns.
    std::raise(SIGKILL);
    std::_Exit(137);
}

FaultScope::FaultScope(FaultStage stage, int nth_call, int count)
{
    FaultInjector &inj = FaultInjector::instance();
    inj.reset();
    inj.arm(stage, nth_call, count);
}

FaultScope::~FaultScope()
{
    FaultInjector::instance().reset();
}

} // namespace apex
