#include "core/hetero.hpp"

#include <algorithm>

#include "cgra/place.hpp"
#include "cgra/route.hpp"
#include "mapper/select.hpp"
#include "pe/baseline.hpp"

namespace apex::core {

using mapper::MappedKind;

HeteroCgra
makeBigLittleCgra(const PeVariant &big, const std::string &name)
{
    HeteroCgra cgra;
    cgra.name = name;

    PeVariant little;
    little.name = name + "_little";
    little.spec = pe::baselineSubsetPe(
        {ir::Op::kAdd, ir::Op::kSub, ir::Op::kLshr, ir::Op::kAshr},
        little.name);

    cgra.types.push_back(big);
    cgra.types.push_back(std::move(little));
    return cgra;
}

HeteroEvalResult
evaluateHetero(const apps::AppInfo &app, const HeteroCgra &cgra_def,
               EvalLevel level, const model::TechModel &tech,
               const EvalOptions &options)
{
    HeteroEvalResult r;
    const int num_types = static_cast<int>(cgra_def.types.size());
    if (num_types == 0) {
        r.status = Status(ErrorCode::kInvalidArgument, "no PE types");
        r.error = r.status.message();
        return r;
    }

    // Per-type rule libraries, combined with cheap-PE preference.
    std::vector<std::vector<mapper::RewriteRule>> libraries;
    std::vector<double> type_areas;
    for (const PeVariant &v : cgra_def.types) {
        mapper::RewriteRuleSynthesizer synth(v.spec);
        libraries.push_back(synth.synthesizeLibrary(v.patterns));
        type_areas.push_back(v.spec.area(tech));
    }
    const auto rules = mapper::combineLibraries(std::move(libraries),
                                                type_areas);

    mapper::InstructionSelector selector(rules);
    mapper::SelectionResult sel = selector.map(app.graph);
    if (!sel.success) {
        r.status = (sel.status.ok()
                        ? Status(ErrorCode::kMappingFailed, sel.error)
                        : sel.status)
                       .withContext("mapping '" + app.name +
                                    "' onto '" + cgra_def.name + "'");
        r.error = "mapping failed: " + sel.error;
        return r;
    }

    // --- Post-mapping ------------------------------------------------
    r.pe_count_by_type.assign(num_types, 0);
    const double invocations_per_item = 1.0 / app.items_per_cycle;
    double energy_per_cycle = 0.0;
    std::vector<int> pe_type_of_node(sel.mapped.nodes.size(), 0);
    for (std::size_t id = 0; id < sel.mapped.nodes.size(); ++id) {
        const mapper::MappedNode &n = sel.mapped.nodes[id];
        if (n.kind != MappedKind::kPe)
            continue;
        const int type = rules[n.rule].pe_type;
        pe_type_of_node[id] = type;
        ++r.pe_count_by_type[type];
        ++r.pe_count;
        r.pe_area += type_areas[type];
        energy_per_cycle += peInstanceEnergy(
            rules[n.rule], cgra_def.types[type].spec, tech);
    }
    r.pe_energy = energy_per_cycle * invocations_per_item;

    if (level == EvalLevel::kPostMapping) {
        r.success = true;
        return r;
    }

    // --- Place and route with typed PE pools --------------------------
    int width = options.fabric_width;
    int height = options.fabric_height;
    cgra::PlacementResult placement;
    cgra::RouteResult routing;
    for (int attempt = 0; attempt < 5; ++attempt) {
        const cgra::Fabric fabric(width, height);
        cgra::PlacerOptions popt;
        popt.seed = options.placer_seed;
        placement = cgra::placeHetero(fabric, sel.mapped,
                                      pe_type_of_node, num_types,
                                      popt);
        if (placement.success) {
            routing = cgra::route(fabric, placement);
            if (routing.success)
                break;
        }
        if (!options.auto_grow_fabric)
            break;
        if (attempt % 2 == 0)
            height *= 2;
        else
            width *= 2;
    }
    if (!placement.success || !routing.success) {
        Status failure;
        if (placement.success) {
            failure = routing.status.ok()
                          ? Status(ErrorCode::kRouteFailed,
                                   routing.error)
                          : routing.status;
        } else {
            failure = placement.status.ok()
                          ? Status(ErrorCode::kPlaceFailed,
                                   placement.error)
                          : placement.status;
        }
        r.status = std::move(failure).withContext(
            "place-and-route of '" + app.name + "' on '" +
            cgra_def.name + "'");
        r.error = "place-and-route failed: " + r.status.message();
        return r;
    }
    r.fabric_width = width;
    r.fabric_height = height;

    const cgra::Fabric fabric(width, height);
    r.util = cgra::utilizationOf(fabric, sel.mapped, placement,
                                 routing);

    // --- Post-PnR area/energy -----------------------------------------
    const int rf_tiles = sel.mapped.count(MappedKind::kRegFile);
    const int sb_tiles = r.util.pes + r.util.mems + rf_tiles +
                         r.util.routing_tiles;
    double cb_area = (r.util.mems + rf_tiles) *
                     tech.cb_area_per_input;
    for (std::size_t id = 0; id < sel.mapped.nodes.size(); ++id) {
        if (sel.mapped.nodes[id].kind != MappedKind::kPe)
            continue;
        const pe::PeSpec &spec =
            cgra_def.types[pe_type_of_node[id]].spec;
        cb_area += static_cast<double>(spec.word_inputs.size()) *
                       tech.cb_area_per_input +
                   static_cast<double>(spec.bit_inputs.size()) *
                       tech.cb_area_per_input_bit;
    }
    r.cgra_area = r.pe_area + rf_tiles * tech.rf_area +
                  sb_tiles * tech.sb_area + cb_area +
                  r.util.mems * tech.mem_tile_area;

    const double sb_energy = routing.total_hops *
                             tech.sb_energy_per_hop *
                             invocations_per_item;
    const double cb_energy =
        static_cast<double>(placement.edges.size()) *
        tech.cb_energy * invocations_per_item;
    const double mem_energy = r.util.mems * tech.mem_energy_access *
                              invocations_per_item;
    const double reg_energy =
        (r.util.regs * tech.pipe_reg_energy +
         r.util.rf_entries * tech.pipe_reg_energy * 0.4) *
        invocations_per_item;
    r.cgra_energy = r.pe_energy + sb_energy + cb_energy +
                    mem_energy + reg_energy;

    r.success = true;
    return r;
}

} // namespace apex::core
