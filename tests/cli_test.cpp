/**
 * End-to-end process tests of the apexc CLI: exit codes must match
 * exitCodeFor() for success, validation failures, the timeout path
 * and cooperative cancellation, and a SIGKILLed journaled sweep must
 * resume to byte-identical output.
 *
 * Each test shells out to the real binary (APEXC_PATH is injected by
 * CMake), so these cover the signal handlers and process teardown
 * that in-process tests cannot.
 */
#include <sys/wait.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/status.hpp"

namespace apex {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(fs::temp_directory_path() / ("apex_cli_test_" + tag))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

/** Run @p cmd through the shell; return its exit code (or the signal
 * number + 128, as the shell reports a killed child). */
int
run(const std::string &cmd)
{
    const int raw = std::system(cmd.c_str());
    if (raw == -1)
        return -1;
    if (WIFEXITED(raw))
        return WEXITSTATUS(raw);
    if (WIFSIGNALED(raw))
        return 128 + WTERMSIG(raw);
    return -1;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

const std::string apexc = APEXC_PATH;

TEST(Cli, SuccessExitsZero)
{
    EXPECT_EQ(run(apexc + " apps > /dev/null"), 0);
}

TEST(Cli, InvalidArgumentsExitWithValidationCode)
{
    const int want = exitCodeFor(ErrorCode::kInvalidArgument);
    EXPECT_EQ(run(apexc + " sweep --level bogus 2> /dev/null"),
              want);
    EXPECT_EQ(run(apexc + " explore no_such_app 2> /dev/null"),
              want);
    // --resume without --cache-dir: there is no journal to replay.
    EXPECT_EQ(run(apexc + " sweep --resume 2> /dev/null"), want);
}

TEST(Cli, ExpiredDeadlineExitsWithTimeoutCode)
{
    // The clock-skew fault makes the first deadline poll observe an
    // expired clock, so the timeout path runs without real waiting
    // despite the huge nominal budget.
    const int code =
        run("APEX_FAULT=clock:1:1000000 " + apexc +
            " sweep --level map --deadline 600000 > /dev/null");
    EXPECT_EQ(code, exitCodeFor(ErrorCode::kTimeout));
}

TEST(Cli, AlreadyExpiredDeadlineExitsTimeoutWithCoherentReport)
{
    // --deadline 0 is expired before the first cell can start: the
    // sweep must not wedge or report success — every cell is skipped
    // and the exit code is the timeout code, in both isolate modes.
    ScratchDir dir("deadline_zero");
    const int want = exitCodeFor(ErrorCode::kTimeout);
    for (const std::string isolate : {"thread", "process"}) {
        const std::string out =
            dir.str() + "/report_" + isolate + ".out";
        EXPECT_EQ(run(apexc + " sweep --level map --deadline 0" +
                      " --isolate " + isolate + " > " + out),
                  want)
            << isolate;
        const std::string report = slurp(out);
        EXPECT_NE(report.find("0 evaluated"), std::string::npos)
            << isolate << ": " << report;
    }
}

TEST(Cli, WorkerKillSweepCompletesWithQuarantine)
{
    // A cell that kills its worker on every allowed attempt must be
    // quarantined with its cause in the report while the rest of the
    // sweep completes; transparent recovery (1 kill, retries left)
    // must leave no trace in the report at all.
    ScratchDir dir("worker_kill");
    const std::string ref_out = dir.str() + "/reference.out";
    ASSERT_EQ(run(apexc + " sweep --level map > " + ref_out), 0);

    const std::string recovered = dir.str() + "/recovered.out";
    EXPECT_EQ(run("APEX_FAULT=worker_kill:2 " + apexc +
                  " sweep --level map --isolate process > " +
                  recovered + " 2> /dev/null"),
              0);
    EXPECT_EQ(slurp(ref_out), slurp(recovered));

    // Quarantine does not fail the sweep: the other cells evaluated,
    // so the exit code stays 0 and the failure lives in the report.
    const std::string poisoned = dir.str() + "/poisoned.out";
    EXPECT_EQ(run("APEX_FAULT=worker_kill:1:3 " + apexc +
                  " sweep --level map --isolate process"
                  " --cell-retries 2 > " +
                  poisoned + " 2> /dev/null"),
              0);
    const std::string report = slurp(poisoned);
    EXPECT_NE(report.find("stage 'worker'"), std::string::npos)
        << report;
    EXPECT_NE(report.find("(crash)"), std::string::npos) << report;
}

TEST(Cli, SigtermCancelsCooperativelyWithCancelledCode)
{
    // Post-PnR sweeps run for seconds; a SIGTERM shortly after launch
    // lands mid-sweep and must come back as a clean kCancelled exit,
    // not a default-action kill (which the shell would report as 143).
    const int code = run(
        "sh -c '" + apexc +
        " sweep --level pnr > /dev/null & pid=$!; sleep 0.2; "
        "kill -TERM $pid; wait $pid'");
    EXPECT_EQ(code, exitCodeFor(ErrorCode::kCancelled));
}

TEST(Cli, CrashedSweepResumesByteIdentical)
{
    ScratchDir dir("crash_resume");
    const std::string cache = dir.str() + "/cache";
    const std::string ref_out = dir.str() + "/reference.out";
    const std::string resume_out = dir.str() + "/resumed.out";

    // Reference: one uninterrupted, unjournaled sweep.
    ASSERT_EQ(run(apexc + " sweep --level map > " + ref_out), 0);

    // Crash: the fault injector hard-kills the process (as kill -9
    // would) at the 3rd journal append.
    const int crashed =
        run("APEX_FAULT=crash:3 " + apexc +
            " sweep --level map --cache-dir " + cache +
            " > /dev/null 2>&1");
    EXPECT_EQ(crashed, 128 + SIGKILL);
    EXPECT_TRUE(fs::exists(cache + "/sweep.journal"));

    // Resume: replays the journaled prefix, finishes the rest, and
    // prints exactly what the uninterrupted run printed.
    ASSERT_EQ(run(apexc + " sweep --level map --cache-dir " + cache +
                  " --resume > " + resume_out),
              0);
    EXPECT_EQ(slurp(ref_out), slurp(resume_out));
}

TEST(Cli, DiskFullJournalExitsResourceExhausted)
{
    // A journaled sweep whose very first durability write hits a
    // full disk must fail loudly with the resource-exhaustion exit
    // code (DESIGN.md Sec. 7h) — running on silently would leave an
    // unreplayable journal behind for the next --resume.
    ScratchDir dir("disk_full");
    const std::string out = dir.str() + "/report.out";
    EXPECT_EQ(run("APEX_FAULT=disk_full:1 " + apexc +
                  " sweep --level map --cache-dir " + dir.str() +
                  "/cache > " + out + " 2> " + dir.str() + "/err"),
              17);
    EXPECT_NE(slurp(dir.str() + "/err").find("ResourceExhausted"),
              std::string::npos);

    // Without --cache-dir there is no durability promise to break:
    // the same fault must not perturb the sweep, and the report is
    // byte-identical to an undisturbed run.  (The cache's
    // degrade-to-memory-only ladder is covered in-process by
    // durability_test.)
    const std::string ref_out = dir.str() + "/reference.out";
    ASSERT_EQ(run(apexc + " sweep --level map > " + ref_out), 0);
    const std::string degraded_out = dir.str() + "/degraded.out";
    EXPECT_EQ(run("APEX_FAULT=disk_full:1 " + apexc +
                  " sweep --level map > " + degraded_out +
                  " 2> /dev/null"),
              0);
    EXPECT_EQ(slurp(ref_out), slurp(degraded_out));
}

TEST(Cli, VersionReportsBuildIdentityAndProtocol)
{
    ScratchDir dir("version");
    const std::string out = dir.str() + "/version.out";
    ASSERT_EQ(run(apexc + " --version > " + out), 0);
    const std::string text = slurp(out);
    EXPECT_EQ(text.find("apex "), 0u);
    EXPECT_NE(text.find("protocol v"), std::string::npos);
}

TEST(Cli, ClientWithoutDaemonExitsUnavailable)
{
    ScratchDir dir("no_daemon");
    // No daemon listens here; the client must fail fast with the
    // service-stage exit code, not hang or crash.
    EXPECT_EQ(run(apexc + " client sweep --socket " + dir.str() +
                  "/absent.sock > /dev/null 2>&1"),
              exitCodeFor(ErrorCode::kUnavailable));
    EXPECT_EQ(run(apexc + " client info --socket " + dir.str() +
                  "/absent.sock > /dev/null 2>&1"),
              exitCodeFor(ErrorCode::kUnavailable));
}

} // namespace
} // namespace apex
