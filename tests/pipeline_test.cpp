#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "ir/builder.hpp"
#include "mapper/rewrite.hpp"
#include "mapper/select.hpp"
#include "merging/merge.hpp"
#include "model/tech.hpp"
#include "pe/baseline.hpp"
#include "pipeline/app_pipeline.hpp"
#include "pipeline/pe_pipeline.hpp"
#include "pipeline/timing.hpp"

namespace apex::pipeline {
namespace {

using ir::GraphBuilder;
using ir::Op;
using mapper::MappedGraph;
using mapper::MappedKind;
using mapper::MappedNode;

pe::PeSpec
deepPeSpec()
{
    // Four multiplies chained through adds: long critical path.
    GraphBuilder b;
    auto m1 = b.mul(b.input(), b.input());
    auto m2 = b.mul(m1, b.input());
    auto m3 = b.mul(m2, b.input());
    b.add(m3, b.input());
    return pe::makePeSpec(
        merging::datapathFromPattern(b.take()), "pe_deep");
}

TEST(TimingTest, CriticalPathAccumulatesBlockDelays) {
    const auto &tech = model::defaultTech();
    const pe::PeSpec spec = deepPeSpec();
    const auto report = analyzeTiming(spec, tech);
    const double mul_d =
        model::blockCost(tech, model::HwBlockClass::kMul).delay;
    const double add_d =
        model::blockCost(tech, model::HwBlockClass::kAddSub).delay;
    EXPECT_NEAR(report.critical_path,
                3 * mul_d + add_d + tech.reg_setup_delay, 1e-9);
}

TEST(TimingTest, BaselineMeetsRelaxedPeriodUnpipelined) {
    const auto &tech = model::defaultTech();
    const auto report = analyzeTiming(pe::baselinePe(), tech);
    // One mul + muxes: close to but above 1 ns.
    EXPECT_GT(report.critical_path, 0.9);
    EXPECT_LT(report.critical_path, 1.6);
}

TEST(TimingTest, StagesReducePeriodMonotonically) {
    const auto &tech = model::defaultTech();
    const pe::PeSpec spec = deepPeSpec();
    double prev = 1e9;
    for (int stages = 1; stages <= 4; ++stages) {
        const double p = stagedCriticalPath(spec, tech, stages);
        EXPECT_LE(p, prev + 1e-9) << stages << " stages";
        prev = p;
    }
    // 4 stages on a 4-block chain: one mul per stage.
    const double mul_d =
        model::blockCost(tech, model::HwBlockClass::kMul).delay;
    EXPECT_LE(stagedCriticalPath(spec, tech, 4),
              mul_d + tech.reg_setup_delay + 0.05);
}

TEST(TimingTest, StageAssignmentRespectsDependencies) {
    const auto &tech = model::defaultTech();
    const pe::PeSpec spec = deepPeSpec();
    std::vector<int> stage;
    assignStages(spec, tech, 3, &stage);
    for (const merging::DpEdge &e : spec.dp.edges)
        EXPECT_LE(stage[e.src], stage[e.dst])
            << "stage order must follow dataflow";
}

TEST(PePipelineTest, DeepPeGetsPipelined) {
    const auto &tech = model::defaultTech();
    pe::PeSpec spec = deepPeSpec();
    const auto result = pipelinePe(spec, tech);
    EXPECT_GT(result.stages, 1);
    EXPECT_LT(result.period, result.unpipelined);
    EXPECT_EQ(spec.pipeline_stages, result.stages);
    EXPECT_LE(result.period, tech.target_period + 0.3);
}

TEST(PePipelineTest, ShallowPeStaysCombinational) {
    const auto &tech = model::defaultTech();
    GraphBuilder b;
    b.add(b.input(), b.input());
    pe::PeSpec spec = pe::makePeSpec(
        merging::datapathFromPattern(b.take()), "pe_add");
    const auto result = pipelinePe(spec, tech);
    EXPECT_EQ(result.stages, 1);
    EXPECT_EQ(spec.pipeline_stages, 0);
}

MappedGraph
unbalancedDiamond()
{
    // in -> pe_a -> pe_b -> join; in -> join (short path).
    MappedGraph g;
    MappedNode in;
    in.kind = MappedKind::kInput;
    g.nodes.push_back(in);
    MappedNode a;
    a.kind = MappedKind::kPe;
    a.inputs = {0};
    g.nodes.push_back(a);
    MappedNode b;
    b.kind = MappedKind::kPe;
    b.inputs = {1};
    g.nodes.push_back(b);
    MappedNode join;
    join.kind = MappedKind::kPe;
    join.inputs = {2, 0};
    g.nodes.push_back(join);
    MappedNode out;
    out.kind = MappedKind::kOutput;
    out.inputs = {3};
    g.nodes.push_back(out);
    return g;
}

TEST(BranchDelayTest, BalancesDiamond) {
    MappedGraph g = unbalancedDiamond();
    const int pe_latency = 2;
    EXPECT_FALSE(delaysBalanced(g, pe_latency));
    const auto result = balanceBranchDelays(&g, pe_latency);
    EXPECT_EQ(result.registers_added, 4)
        << "short path lags by 2 PEs x 2 cycles";
    EXPECT_TRUE(delaysBalanced(g, pe_latency));
    EXPECT_EQ(result.max_latency, 6);
}

TEST(BranchDelayTest, NoopWhenAlreadyBalanced) {
    MappedGraph g = unbalancedDiamond();
    balanceBranchDelays(&g, 1);
    MappedGraph g2 = g;
    const auto again = balanceBranchDelays(&g2, 1);
    EXPECT_EQ(again.registers_added, 0);
}

TEST(BranchDelayTest, CombinationalPesNeedNoBalancing) {
    MappedGraph g = unbalancedDiamond();
    const auto result = balanceBranchDelays(&g, 0);
    EXPECT_EQ(result.registers_added, 0);
    EXPECT_TRUE(delaysBalanced(g, 0));
}

TEST(RegFileTest, LongChainBecomesFifo) {
    MappedGraph g = unbalancedDiamond();
    balanceBranchDelays(&g, 3); // 6-cycle lag -> chain of 6 regs
    const int regs_before = g.count(MappedKind::kReg);
    ASSERT_GE(regs_before, 6);

    const auto fold = foldRegisterChains(&g);
    EXPECT_EQ(fold.regfiles_created, 1);
    EXPECT_EQ(fold.registers_folded, regs_before);
    EXPECT_EQ(g.count(MappedKind::kReg), 0);
    const auto rfs = g.nodesOfKind(MappedKind::kRegFile);
    ASSERT_EQ(rfs.size(), 1u);
    EXPECT_EQ(g.nodes[rfs[0]].depth, regs_before);
    // Latency is preserved exactly.
    EXPECT_TRUE(delaysBalanced(g, 3));
}

TEST(RegFileTest, ShortChainsAreKept) {
    MappedGraph g = unbalancedDiamond();
    balanceBranchDelays(&g, 1); // chain of 2 regs only
    const auto fold = foldRegisterChains(&g);
    EXPECT_EQ(fold.regfiles_created, 0);
    EXPECT_EQ(g.count(MappedKind::kReg), 2);
}

TEST(RegFileTest, CutoffIsAdjustable) {
    MappedGraph g = unbalancedDiamond();
    balanceBranchDelays(&g, 1);
    AppPipelineOptions options;
    options.rf_cutoff = 1;
    const auto fold = foldRegisterChains(&g, options);
    EXPECT_EQ(fold.regfiles_created, 1);
}

TEST(AppPipelineTest, FullFlowOnRealApplication) {
    const auto app = apps::harrisCorner(1);
    const auto &tech = model::defaultTech();

    pe::PeSpec spec = pe::baselinePe();
    mapper::RewriteRuleSynthesizer synth(spec);
    mapper::InstructionSelector selector(synth.synthesizeLibrary({}));
    auto sel = selector.map(app.graph);
    ASSERT_TRUE(sel.success) << sel.error;

    const auto pe_result = pipelinePe(spec, tech);
    const auto result = pipelineApplication(
        &sel.mapped, spec.pipeline_stages, {});
    EXPECT_TRUE(delaysBalanced(sel.mapped, spec.pipeline_stages));
    EXPECT_GT(result.max_latency, 0);
    (void)pe_result;
}

} // namespace
} // namespace apex::pipeline
