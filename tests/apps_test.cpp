#include <gtest/gtest.h>

#include <set>

#include "apps/apps.hpp"
#include "apps/window.hpp"
#include "ir/interpreter.hpp"

namespace apex::apps {
namespace {

using ir::Op;

class AppValidityTest : public ::testing::TestWithParam<const char *> {
  protected:
    AppInfo load() const {
        const std::string name = GetParam();
        if (name == "camera") return cameraPipeline();
        if (name == "harris") return harrisCorner();
        if (name == "gaussian") return gaussianBlur();
        if (name == "unsharp") return unsharp();
        if (name == "resnet") return resnetLayer();
        if (name == "mobilenet") return mobilenetLayer();
        if (name == "laplacian") return laplacianPyramid();
        if (name == "stereo") return stereo();
        return fastCorner();
    }
};

TEST_P(AppValidityTest, GraphValidates) {
    const AppInfo app = load();
    std::string error;
    EXPECT_TRUE(app.graph.validate(&error)) << app.name << ": " << error;
    EXPECT_FALSE(app.graph.empty());
    EXPECT_GT(app.work_items_per_frame, 0.0);
    EXPECT_GE(app.items_per_cycle, 1);
}

TEST_P(AppValidityTest, HasIoAndCompute) {
    const AppInfo app = load();
    int inputs = 0, outputs = 0;
    for (ir::NodeId id = 0; id < app.graph.size(); ++id) {
        const Op op = app.graph.op(id);
        inputs += (op == Op::kInput || op == Op::kInputBit);
        outputs += (op == Op::kOutput || op == Op::kOutputBit);
    }
    EXPECT_GE(inputs, 1) << app.name;
    EXPECT_GE(outputs, 1) << app.name;
    EXPECT_GE(app.graph.computeNodes().size(), 8u) << app.name;
}

TEST_P(AppValidityTest, InterpreterRunsOnArbitraryInput) {
    const AppInfo app = load();
    ir::Interpreter interp;
    std::vector<std::uint64_t> inputs;
    for (ir::NodeId id = 0; id < app.graph.size(); ++id) {
        const Op op = app.graph.op(id);
        if (op == Op::kInput)
            inputs.push_back(120 + 7 * inputs.size());
        else if (op == Op::kInputBit)
            inputs.push_back(inputs.size() % 2);
    }
    const auto outs = interp.evalByOrder(app.graph, inputs);
    EXPECT_FALSE(outs.empty()) << app.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppValidityTest,
                         ::testing::Values("camera", "harris",
                                           "gaussian", "unsharp",
                                           "resnet", "mobilenet",
                                           "laplacian", "stereo",
                                           "fast"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(AppsTest, CameraOpMixMatchesPaper) {
    // Sec. 5.1: camera uses all baseline ops except left shift and
    // bitwise logical operations.
    const AppInfo app = cameraPipeline();
    const auto hist = app.graph.opHistogram();
    EXPECT_EQ(hist.count(Op::kShl), 0u);
    EXPECT_EQ(hist.count(Op::kAnd), 0u);
    EXPECT_EQ(hist.count(Op::kOr), 0u);
    EXPECT_EQ(hist.count(Op::kXor), 0u);
    EXPECT_GT(hist.at(Op::kMul), 0);
    EXPECT_GT(hist.at(Op::kAdd), 0);
    EXPECT_GT(hist.at(Op::kMin), 0);
}

TEST(AppsTest, CameraHasRoughly90OpsPerPixel) {
    const AppInfo app = cameraPipeline(1);
    const std::size_t compute = app.graph.computeNodes().size();
    EXPECT_GE(compute, 50u);
    EXPECT_LE(compute, 140u);
}

TEST(AppsTest, UnrollScalesComputeLinearly) {
    const std::size_t one = cameraPipeline(1).graph.computeNodes().size();
    const std::size_t four =
        cameraPipeline(4).graph.computeNodes().size();
    EXPECT_EQ(four, 4 * one);
}

TEST(AppsTest, GaussianIsMacChain) {
    const AppInfo app = gaussianBlur(1);
    const auto hist = app.graph.opHistogram();
    EXPECT_EQ(hist.at(Op::kMul), 9);
    EXPECT_EQ(hist.at(Op::kAdd), 8);
    EXPECT_EQ(hist.at(Op::kLshr), 1);
}

TEST(AppsTest, GaussianComputesBinomialBlur) {
    // All window taps equal v -> blur(v) == v (kernel sums to 16).
    const AppInfo app = gaussianBlur(1);
    ir::Interpreter interp;
    const auto outs = interp.evalByOrder(app.graph, {200});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0], 200u)
        << "uniform image must be unchanged by normalized blur";
}

TEST(AppsTest, RegistrySetsAreConsistent) {
    EXPECT_EQ(ipApps().size(), 4u);
    EXPECT_EQ(mlApps().size(), 2u);
    EXPECT_EQ(analyzedApps().size(), 6u);
    EXPECT_EQ(unseenApps().size(), 3u);
    EXPECT_EQ(allApps().size(), 9u);

    std::set<std::string> names;
    for (const AppInfo &a : allApps()) {
        EXPECT_TRUE(names.insert(a.name).second)
            << "duplicate app name " << a.name;
        EXPECT_FALSE(a.description.empty());
    }
    for (const AppInfo &a : unseenApps())
        EXPECT_TRUE(a.unseen);
    for (const AppInfo &a : analyzedApps())
        EXPECT_FALSE(a.unseen);
    for (const AppInfo &a : mlApps())
        EXPECT_EQ(a.domain, Domain::kMachineLearning);
}

TEST(AppsTest, MemTilesPresentForStencils) {
    // Line-buffered stencil apps must instantiate memory nodes.
    for (const AppInfo &a : ipApps()) {
        EXPECT_GE(a.graph.nodesWithOp(Op::kMem).size(), 2u) << a.name;
    }
}

TEST(WindowTest, TapCountAndStructure) {
    ir::GraphBuilder b;
    ir::Value in = b.input("s");
    const auto taps = windowTaps(b, in, 3, 5, "w");
    EXPECT_EQ(taps.size(), 15u);
    const ir::Graph &g = b.graph();
    // rows-1 memory nodes, rows*(cols-1) registers.
    EXPECT_EQ(g.nodesWithOp(Op::kMem).size(), 2u);
    EXPECT_EQ(g.nodesWithOp(Op::kReg).size(), 12u);
    // Rightmost tap of row 0 is the raw stream.
    EXPECT_EQ(taps[4].id(), in.id());
}

TEST(WindowTest, SingleRowHasNoMem) {
    ir::GraphBuilder b;
    const auto taps = windowTaps(b, b.input(), 1, 4, "w");
    EXPECT_EQ(taps.size(), 4u);
    EXPECT_TRUE(b.graph().nodesWithOp(Op::kMem).empty());
}

} // namespace
} // namespace apex::apps
