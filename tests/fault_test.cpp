// Fault-injection harness tests: the DSE pipeline must survive a
// deterministic fault at every stage — the sweep keeps going, only
// the affected app/variant is skipped, and the ExplorationReport
// names the failed stage, error code and attempts consumed.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/evaluate.hpp"
#include "core/fault.hpp"
#include "core/sweep.hpp"
#include "ir/serialize.hpp"

namespace apex::core {
namespace {

const model::TechModel tech = model::defaultTech();

class FaultTest : public ::testing::Test {
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }

    static std::vector<apps::AppInfo> smallApps() {
        return {apps::gaussianBlur(1), apps::unsharp(1)};
    }

    /** Eval options that make one injected fault terminal: no seed
     * retries, no track escalation, no fabric growth. */
    static EvalOptions strictEval() {
        EvalOptions eval;
        eval.place_retries = 1;
        eval.route_track_escalations = 0;
        eval.auto_grow_fabric = false;
        return eval;
    }
};

TEST_F(FaultTest, DeserializeFaultInjection) {
    const std::string text =
        ir::serialize(apps::gaussianBlur(1).graph);
    {
        FaultScope scope(FaultStage::kDeserialize, 1);
        const auto parsed = ir::parseGraph(text);
        ASSERT_FALSE(parsed.ok());
        EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
        EXPECT_NE(parsed.status().message().find("injected fault"),
                  std::string::npos);
    }
    // Disarmed again: the same text parses.
    EXPECT_TRUE(ir::parseGraph(text).ok());
}

TEST_F(FaultTest, SweepSurvivesFaultAtEveryStage) {
    const struct {
        FaultStage stage;
        EvalLevel level;
    } cases[] = {
        {FaultStage::kValidate, EvalLevel::kPostMapping},
        {FaultStage::kMine, EvalLevel::kPostMapping},
        {FaultStage::kMerge, EvalLevel::kPostMapping},
        {FaultStage::kMap, EvalLevel::kPostMapping},
        {FaultStage::kPlace, EvalLevel::kPostPnr},
        {FaultStage::kRoute, EvalLevel::kPostPnr},
        {FaultStage::kEvaluate, EvalLevel::kPostMapping},
    };
    const auto apps_list = smallApps();
    Explorer ex;

    for (const auto &c : cases) {
        SCOPED_TRACE(std::string(faultStageName(c.stage)));
        SweepOptions options;
        options.level = c.level;
        options.eval = strictEval();

        FaultScope scope(c.stage, 1);
        const SweepOutcome outcome =
            runSweep(apps_list, ex, tech, options);

        // The sweep finished and evaluated everything except the one
        // faulted pair (or app, for a validate fault).
        ASSERT_EQ(outcome.report.failures.size(), 1u);
        const StageFailure &f = outcome.report.failures.front();
        EXPECT_EQ(f.stage, faultStageName(c.stage));
        EXPECT_EQ(f.status.code(), faultErrorCode(c.stage));
        EXPECT_GE(f.attempts, 1);
        EXPECT_EQ(f.app, apps_list.front().name);
        EXPECT_EQ(outcome.report.skipped, 1);
        EXPECT_GE(outcome.report.evaluated, 3);
        EXPECT_EQ(outcome.entries.size(),
                  static_cast<std::size_t>(
                      outcome.report.evaluated));

        // The second application is untouched by the fault.
        int second_app_entries = 0;
        for (const SweepEntry &e : outcome.entries)
            if (e.app == apps_list.back().name)
                ++second_app_entries;
        EXPECT_EQ(second_app_entries, 3);

        // The summary names the failed stage for the operator.
        const std::string summary = outcome.report.summary();
        EXPECT_NE(summary.find("stage '" +
                               std::string(faultStageName(c.stage)) +
                               "'"),
                  std::string::npos);
    }
}

TEST_F(FaultTest, ValidateFaultSkipsWholeApp) {
    const auto apps_list = smallApps();
    Explorer ex;
    SweepOptions options;
    options.eval = strictEval();

    FaultScope scope(FaultStage::kValidate, 1);
    const SweepOutcome outcome =
        runSweep(apps_list, ex, tech, options);
    ASSERT_EQ(outcome.report.failures.size(), 1u);
    EXPECT_EQ(outcome.report.failures.front().app,
              apps_list.front().name);
    EXPECT_TRUE(outcome.report.failures.front().variant.empty());
    // Only the other app's variants ran.
    EXPECT_EQ(outcome.report.evaluated, 3);
}

TEST_F(FaultTest, PlacementRetriesWithNewSeedAfterFailure) {
    Explorer ex;
    const auto app = apps::gaussianBlur(1);
    EvalOptions options;
    options.place_retries = 3;

    // First placement call fails; the retry with a derived seed must
    // succeed and the trail must show both attempts.
    FaultScope scope(FaultStage::kPlace, 1);
    const EvalResult r = evaluate(app, ex.baselineVariant(),
                                  EvalLevel::kPostPnr, tech, options);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.pnr_attempts, 2);

    const auto trail = r.diagnostics.forStage("place");
    ASSERT_GE(trail.size(), 2u);
    EXPECT_EQ(trail[0].severity, Severity::kError);
    EXPECT_EQ(trail[0].code, ErrorCode::kPlaceFailed);
    EXPECT_EQ(trail[0].attempt, 1);
    EXPECT_EQ(trail[1].severity, Severity::kInfo);
    EXPECT_EQ(trail[1].attempt, 2);
}

TEST_F(FaultTest, RoutingRetriesWithMoreTracksAfterFailure) {
    Explorer ex;
    const auto app = apps::gaussianBlur(1);
    EvalOptions options;
    options.route_track_escalations = 2;

    FaultScope scope(FaultStage::kRoute, 1);
    const EvalResult r = evaluate(app, ex.baselineVariant(),
                                  EvalLevel::kPostPnr, tech, options);
    ASSERT_TRUE(r.success) << r.error;
    EXPECT_EQ(r.pnr_attempts, 1); // placement never failed

    const auto trail = r.diagnostics.forStage("route");
    ASSERT_GE(trail.size(), 2u);
    EXPECT_EQ(trail[0].severity, Severity::kError);
    EXPECT_EQ(trail[0].code, ErrorCode::kRouteFailed);
    EXPECT_EQ(trail[1].severity, Severity::kInfo);
    EXPECT_NE(trail[1].message.find("escalation"),
              std::string::npos);
}

TEST_F(FaultTest, ExhaustedRetriesReportTheFullTrail) {
    Explorer ex;
    const auto app = apps::gaussianBlur(1);
    EvalOptions options;
    options.place_retries = 2;
    options.auto_grow_fabric = false;

    // Both placement attempts fail: the evaluation must fail with
    // the typed code and report every attempt.
    FaultScope scope(FaultStage::kPlace, 1, 2);
    const EvalResult r = evaluate(app, ex.baselineVariant(),
                                  EvalLevel::kPostPnr, tech, options);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.status.code(), ErrorCode::kPlaceFailed);
    EXPECT_EQ(r.pnr_attempts, 2);
    EXPECT_EQ(r.diagnostics.count(Severity::kError), 2);
    EXPECT_FALSE(r.error.empty());
}

TEST_F(FaultTest, EvaluateRejectsCorruptApplicationGraph) {
    // A corrupt graph must be caught by boundary validation, not
    // crash the mapper.
    apps::AppInfo app = apps::gaussianBlur(1);
    const ir::NodeId victim = app.graph.size() - 1;
    app.graph.setOperand(victim, 0,
                         static_cast<ir::NodeId>(10000)); // dangling

    Explorer ex;
    const EvalResult r = evaluate(app, ex.baselineVariant(),
                                  EvalLevel::kPostMapping, tech);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.status.code(), ErrorCode::kInvalidIr);
    EXPECT_FALSE(r.diagnostics.forStage("validate").empty());
}

TEST_F(FaultTest, SweepSkipsCorruptAppAndContinues) {
    auto apps_list = smallApps();
    apps_list.front().graph.setOperand(
        apps_list.front().graph.size() - 1, 0,
        static_cast<ir::NodeId>(10000));

    Explorer ex;
    SweepOptions options;
    options.eval = strictEval();
    const SweepOutcome outcome =
        runSweep(apps_list, ex, tech, options);
    ASSERT_EQ(outcome.report.failures.size(), 1u);
    EXPECT_EQ(outcome.report.failures.front().stage, "validate");
    EXPECT_EQ(outcome.report.failures.front().status.code(),
              ErrorCode::kInvalidIr);
    EXPECT_EQ(outcome.report.evaluated, 3);
}

} // namespace
} // namespace apex::core
